//! Quickstart: build a HyBP-protected branch prediction unit, run a
//! synthetic SPEC-like workload through the cycle-level core model, and
//! compare against the unprotected baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hybp_repro::bp_common::Telemetry;
use hybp_repro::bp_pipeline::{SimConfig, Simulation};
use hybp_repro::bp_workloads::SpecBenchmark;
use hybp_repro::hybp::{cost, Mechanism};

fn main() {
    // A laptop-sized run: ~1.2M instructions of a branch-heavy benchmark.
    let mut cfg = SimConfig::default_run();
    cfg.warmup_instructions = 300_000;
    cfg.measure_instructions = 900_000;
    let bench = SpecBenchmark::Deepsjeng;

    println!(
        "workload: {} ({} static branches, target accuracy {:.1}%)",
        bench.name(),
        bench.profile().static_branches,
        bench.profile().target_accuracy * 100.0
    );

    for mech in [Mechanism::Baseline, Mechanism::hybp_default()] {
        // An in-memory telemetry ring captures span events (key refreshes,
        // context-switch stalls) alongside the plain counters.
        let sink = Telemetry::ring(4096);
        let metrics = Simulation::builder(mech, cfg)
            .single_thread(bench)
            .telemetry(sink.clone())
            .build()
            .expect("valid config")
            .run()
            .expect("completes");
        let stats = metrics.bpu;
        let refreshes = sink
            .drain()
            .iter()
            .filter(|e| e.scope == "keys" && e.name == "refresh")
            .count();
        println!(
            "{:<10} IPC {:.3} | direction accuracy {:.2}% | BTB hits L0/L1/L2 {:?} | misses {} \
             | key refreshes {}",
            mech.to_string(),
            metrics.threads[0].ipc(),
            stats.direction_accuracy() * 100.0,
            stats.btb_hits,
            stats.btb_misses,
            refreshes
        );
    }

    let c = cost::mechanism_cost(&Mechanism::hybp_default(), 2);
    println!(
        "HyBP hardware overhead: {:.1} KB ({:.1}% of the baseline predictor)",
        c.overhead_bytes() as f64 / 1024.0,
        c.overhead_fraction() * 100.0
    );
    println!(
        "  replicas {:.1} KB + keys tables {:.1} KB + cipher {:.1} KB",
        c.replication_bytes as f64 / 1024.0,
        c.keys_tables_bytes as f64 / 1024.0,
        c.cipher_bytes as f64 / 1024.0
    );
}
