//! SMT mix scenario: co-run a Table V benchmark pair under different
//! protection mechanisms and compare throughput and fairness.
//!
//! ```sh
//! cargo run --release --example smt_mix [mix_id 1..=12]
//! ```

use hybp_repro::bp_common::stats::hmean_fairness;
use hybp_repro::bp_pipeline::{SimConfig, Simulation};
use hybp_repro::bp_workloads::TABLE_V_MIXES;
use hybp_repro::hybp::Mechanism;

fn main() {
    let mix_id: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let mix = TABLE_V_MIXES
        .iter()
        .find(|m| m.id as usize == mix_id)
        .copied()
        .unwrap_or(TABLE_V_MIXES[6]);
    println!("{} ({})", mix.label(), mix.class());

    let mut cfg = SimConfig::default_run();
    cfg.warmup_instructions = 250_000;
    cfg.measure_instructions = 700_000;

    // Solo references (per mechanism) for fairness.
    for mech in [
        Mechanism::Baseline,
        Mechanism::Partition,
        Mechanism::replication_default(),
        Mechanism::hybp_default(),
    ] {
        let solo: Vec<f64> = mix
            .pair
            .iter()
            .map(|&b| {
                Simulation::builder(mech, cfg)
                    .single_thread(b)
                    .build()
                    .expect("valid config")
                    .run()
                    .expect("completes")
                    .threads[0]
                    .ipc()
            })
            .collect();
        let smt = Simulation::builder(mech, cfg)
            .smt(mix.pair)
            .build()
            .expect("valid config")
            .run()
            .expect("completes");
        let ipcs = smt.ipcs();
        let fairness = hmean_fairness(&ipcs, &solo).unwrap_or(0.0);
        println!(
            "{:<22} throughput {:.3} (= {:.3} + {:.3})  hmean fairness {:.3}",
            mech.to_string(),
            smt.throughput(),
            ipcs[0],
            ipcs[1],
            fairness
        );
    }
    println!();
    println!("Fairness is the harmonic mean of each thread's speedup vs running alone");
    println!("under the same mechanism (Luo et al.); higher is better, 0.5 is typical");
    println!("for two symmetric threads sharing one core.");
}
