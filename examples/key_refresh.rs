//! Code-book mechanics: watch the randomized index keys table refresh —
//! the paper's 263-cycle non-stalling rewrite — and the stale-key window.
//!
//! ```sh
//! cargo run --release --example key_refresh
//! ```

use hybp_repro::bp_common::{Asid, Vmid};
use hybp_repro::bp_crypto::keys::{IndexSeed, KeysTable, KeysTableConfig};
use hybp_repro::bp_crypto::{Qarma64, TweakableBlockCipher};

fn main() {
    let cipher = Qarma64::from_seed(0xC0DE_B00C);
    println!(
        "cipher: {} (modeled inline latency {} cycles — kept off the critical path)",
        cipher.name(),
        cipher.latency_cycles()
    );

    for entries in [1024usize, 4096, 32 * 1024] {
        let cfg = KeysTableConfig::with_entries(entries);
        let t = KeysTable::new(cfg).expect("valid config");
        println!(
            "{:>6}-entry table: {:>4} words of {} bits, refresh in {} cycles, {:.2} KB",
            entries,
            cfg.words(),
            cfg.word_bits,
            t.refresh_duration(),
            cfg.storage_bytes() as f64 / 1024.0
        );
    }

    // Demonstrate the non-stalling refresh: start one and sample a key early
    // and late in the rewrite.
    println!();
    let mut t = KeysTable::new(KeysTableConfig::paper_default()).expect("paper default");
    let seed1 = IndexSeed::derive(Asid::new(1), Vmid::new(0), 111);
    let seed2 = IndexSeed::derive(Asid::new(2), Vmid::new(0), 222);
    t.begin_refresh(&cipher, seed1, 0, 0);
    let old_first = t.key_at(0, 100_000);
    let old_last = t.key_at(1023, 100_000);
    t.begin_refresh(&cipher, seed2, 4096, 200_000);
    println!("refresh started at cycle 200000 (completes at 200263)");
    for (cycle, label) in [(200_010u64, "early"), (200_150, "mid"), (200_263, "done")] {
        let first = t.key_at(0, cycle);
        let last = t.key_at(1023, cycle);
        println!(
            "  cycle {cycle} ({label}): entry 0 {} | entry 1023 {}",
            if first == old_first { "stale" } else { "fresh" },
            if last == old_last { "stale" } else { "fresh" },
        );
    }
    println!(
        "stale lookups so far: {} (cost accuracy only, never correctness)",
        t.stale_hits()
    );
}
