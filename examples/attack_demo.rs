//! Attack demo: malicious training and eviction-set construction against
//! the unprotected baseline versus HyBP.
//!
//! ```sh
//! cargo run --release --example attack_demo
//! ```

use hybp_repro::bp_attacks::linear::break_affine;
use hybp_repro::bp_attacks::poc::{btb_training_topo, pht_training_topo, CoResidency, PocParams};
use hybp_repro::bp_attacks::ppp::{campaign, PppParams};
use hybp_repro::bp_crypto::{Llbc, Qarma64};
use hybp_repro::hybp::Mechanism;

fn main() {
    println!("== Malicious training (paper §VI-D PoC, scaled to 200 iterations) ==");
    let params = PocParams {
        iterations: 200,
        rounds_per_iteration: 100,
        success_threshold: 90,
        trainings_per_round: 8,
    };
    for (name, mech) in [
        ("Baseline", Mechanism::Baseline),
        ("HyBP", Mechanism::hybp_default()),
    ] {
        let btb = btb_training_topo(mech, CoResidency::SingleCore, params, 1);
        let pht = pht_training_topo(mech, CoResidency::SingleCore, params, 2);
        println!(
            "{name:<9} BTB training accuracy {:>5.1}%   PHT training accuracy {:>5.1}%",
            btb.training_accuracy() * 100.0,
            pht.training_accuracy() * 100.0
        );
    }

    println!();
    println!("== Eviction-set construction (Algorithm 1, sampled geometry) ==");
    let params = PppParams::quick();
    for (name, mech) in [
        ("Baseline", Mechanism::Baseline),
        ("HyBP", Mechanism::hybp_default()),
    ] {
        let c = campaign(mech, &params, 8, 77);
        println!(
            "{name:<9} genuine eviction sets {}/{} runs ({:.0} accesses/run)",
            c.successes,
            c.runs,
            c.total_accesses as f64 / f64::from(c.runs)
        );
    }

    println!();
    println!("== Why the cipher matters (§III-A) ==");
    let llbc = break_affine(&Llbc::from_seed(3), 0, 100, 1);
    let qarma = break_affine(&Qarma64::from_seed(3), 0, 100, 2);
    println!(
        "LLBC (CEASER-style, 2-cycle): {}",
        if llbc.is_some() {
            "affine map recovered in 65 queries — broken"
        } else {
            "resisted"
        }
    );
    println!(
        "QARMA-64 (HyBP's choice):     {}",
        if qarma.is_some() {
            "broken"
        } else {
            "no affine structure — resisted"
        }
    );
}
