//! Exhaustive mechanism × scenario matrix tests: every protection mechanism
//! must behave sanely under every workload/topology combination the
//! harnesses use (no panics, plausible metrics, correct event handling).

use hybp_repro::bp_common::{Addr, Asid, BranchKind, BranchRecord, HwThreadId, Privilege};
use hybp_repro::bp_pipeline::{RunMetrics, SimConfig, Simulation};
use hybp_repro::bp_workloads::profile::SpecBenchmark;
use hybp_repro::hybp::{HybpConfig, Mechanism, SecureBpu};

fn all_mechanisms() -> Vec<Mechanism> {
    vec![
        Mechanism::Baseline,
        Mechanism::Flush,
        Mechanism::Partition,
        Mechanism::Replication {
            extra_storage_pct: 0,
        },
        Mechanism::Replication {
            extra_storage_pct: 100,
        },
        Mechanism::Replication {
            extra_storage_pct: 300,
        },
        Mechanism::DisableSmt,
        Mechanism::hybp_default(),
        Mechanism::HyBp(HybpConfig::randomization_only()),
        Mechanism::HyBp(HybpConfig::with_keys_entries(32 * 1024)),
        Mechanism::TournamentBaseline,
    ]
}

fn run_st(mech: Mechanism, bench: SpecBenchmark, cfg: SimConfig) -> RunMetrics {
    Simulation::builder(mech, cfg)
        .single_thread(bench)
        .build()
        .expect("valid config")
        .run()
        .expect("completes")
}

fn run_smt(mech: Mechanism, pair: [SpecBenchmark; 2], cfg: SimConfig) -> RunMetrics {
    Simulation::builder(mech, cfg)
        .smt(pair)
        .build()
        .expect("valid config")
        .run()
        .expect("completes")
}

#[test]
fn every_mechanism_survives_event_storms() {
    // Rapid-fire context switches and privilege flips must never corrupt
    // state or panic, for any mechanism.
    for mech in all_mechanisms() {
        let mut bpu = SecureBpu::new(mech, 2, 99).expect("valid mechanism");
        let mut now = 0u64;
        for round in 0..50u64 {
            for t in 0..2u8 {
                let hw = HwThreadId::new(t);
                bpu.on_context_switch(hw, Asid::new((round % 7) as u16 + 1), now);
                bpu.on_privilege_change(hw, Privilege::Kernel, now + 1);
                let r = BranchRecord::conditional(
                    Addr::new(0x1000 + round * 4),
                    Addr::new(0x2000),
                    round % 2 == 0,
                    1,
                );
                let _ = bpu.process_branch(hw, &r, now + 2);
                bpu.on_privilege_change(hw, Privilege::User, now + 3);
            }
            now += 100;
        }
        let stats = bpu.observation().stats;
        assert_eq!(stats.context_switches, 100, "{mech}");
        assert_eq!(stats.privilege_changes, 200, "{mech}");
    }
}

#[test]
fn every_mechanism_handles_every_branch_kind() {
    for mech in all_mechanisms() {
        let mut bpu = SecureBpu::new(mech, 1, 7).expect("valid mechanism");
        let hw = HwThreadId::new(0);
        let records = [
            BranchRecord::conditional(Addr::new(0x100), Addr::new(0x200), true, 2),
            BranchRecord::conditional(Addr::new(0x104), Addr::new(0x200), false, 2),
            BranchRecord::unconditional(Addr::new(0x108), BranchKind::Direct, Addr::new(0x300), 2),
            BranchRecord::unconditional(
                Addr::new(0x10C),
                BranchKind::Indirect,
                Addr::new(0x400),
                2,
            ),
            BranchRecord::unconditional(Addr::new(0x110), BranchKind::Call, Addr::new(0x500), 2),
            BranchRecord::unconditional(Addr::new(0x520), BranchKind::Return, Addr::new(0x114), 2),
        ];
        for (i, r) in records.iter().enumerate() {
            let _ = bpu.process_branch(hw, r, i as u64 * 10);
        }
        let stats = bpu.observation().stats;
        assert_eq!(stats.branches, 6, "{mech}");
        assert_eq!(stats.conditional_branches, 2, "{mech}");
    }
}

#[test]
fn replication_sweep_is_monotone_in_capacity() {
    // More replication storage must never make steady-state IPC worse on a
    // capacity-sensitive benchmark (sanity for the Figure-8 sweep).
    let mut cfg = SimConfig::quick_test();
    cfg.warmup_instructions = 100_000;
    cfg.measure_instructions = 500_000;
    let ipc = |pct: u32| {
        run_st(
            Mechanism::Replication {
                extra_storage_pct: pct,
            },
            SpecBenchmark::Xz,
            cfg,
        )
        .threads[0]
            .ipc()
    };
    let low = ipc(0);
    let high = ipc(300);
    assert!(
        high > low * 0.99,
        "replication +300% ({high}) must not lose to +0% ({low})"
    );
}

#[test]
fn smt_derate_caps_scaling() {
    // SMT throughput must exceed solo but stay well below additive.
    let mut cfg = SimConfig::quick_test();
    cfg.warmup_instructions = 80_000;
    cfg.measure_instructions = 300_000;
    let solo_a = run_st(Mechanism::Baseline, SpecBenchmark::Wrf, cfg).throughput();
    let solo_b = run_st(Mechanism::Baseline, SpecBenchmark::Namd, cfg).throughput();
    let smt = run_smt(
        Mechanism::Baseline,
        [SpecBenchmark::Wrf, SpecBenchmark::Namd],
        cfg,
    )
    .throughput();
    assert!(
        smt > solo_a.max(solo_b) * 1.02,
        "smt {smt} vs solos {solo_a}/{solo_b}"
    );
    assert!(
        smt < (solo_a + solo_b) * 0.95,
        "smt scaling unrealistically additive: {smt} vs {solo_a}+{solo_b}"
    );
}

#[test]
fn tournament_baseline_is_slower_than_tage() {
    let mut cfg = SimConfig::quick_test();
    cfg.warmup_instructions = 100_000;
    cfg.measure_instructions = 400_000;
    let tage = run_st(Mechanism::Baseline, SpecBenchmark::Deepsjeng, cfg).threads[0].ipc();
    let tourney =
        run_st(Mechanism::TournamentBaseline, SpecBenchmark::Deepsjeng, cfg).threads[0].ipc();
    assert!(tage > tourney, "TAGE {tage} must beat tournament {tourney}");
}
