//! Round-trip and replay-fidelity tests for the `.bpt` trace store.
//!
//! Three layers, matching the capture → replay pipeline:
//!
//! 1. encode/decode round-trips for every benchmark profile the harness
//!    can replay (all single-thread streams, the kernel stream, and every
//!    Figure-7 SMT mix) at chunk sizes chosen to straddle chunk
//!    boundaries,
//! 2. end-to-end experiment fidelity: a `--trace-dir` replay of Figure 5
//!    produces a byte-identical CSV to the generator run that recorded
//!    the traces, independent of thread count,
//! 3. degradation: a corrupted stream fails a strict replay with a typed
//!    error naming the chunk, completes a lenient replay with the loss
//!    accounted in a `# partial` CSV, and an empty stream is a
//!    build-time config error.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use bench::{experiments, replay_stream_budget, Ctx, Scale};
use bp_common::pool::Pool;
use bp_faults::bytes::ByteFault;
use bp_pipeline::{kernel_stream_name, kernel_stream_seed, stream_name, stream_seed, SimConfig};
use bp_trace::{write_trace, ReadMode, TraceSession, TraceStore};
use bp_workloads::profile::SpecBenchmark;
use bp_workloads::{WorkloadGenerator, TABLE_V_MIXES};

/// Chunk sizes straddling boundaries: single-record chunks, primes that
/// never divide the record count, and the production default.
const CHUNK_SIZES: [usize; 5] = [1, 7, 64, 333, 4096];

fn tmp_base(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hybp-trace-rt-{tag}-{}", std::process::id()))
}

/// Opens a shared store over `dir` through the session front door.
fn open_store(dir: &Path, mode: ReadMode) -> Arc<TraceStore> {
    Arc::clone(
        TraceSession::open(dir)
            .mode(mode)
            .build()
            .expect("session opens")
            .store(),
    )
}

/// Generates `n` records the way the simulator's feed does.
fn gen_records(bench: SpecBenchmark, seed: u64, n: usize) -> Vec<bp_common::BranchRecord> {
    let mut g = WorkloadGenerator::new(bench.profile(), seed);
    (0..n).map(|_| g.next_branch()).collect()
}

fn assert_roundtrip(bench: SpecBenchmark, seed: u64, n: usize) {
    let records = gen_records(bench, seed, n);
    for chunk in CHUNK_SIZES {
        let bytes = write_trace(&records, chunk).expect("encodable stream");
        let (back, health) = TraceSession::decode(&bytes, ReadMode::Strict).expect("clean decode");
        assert_eq!(
            back,
            records,
            "{} seed {seed:#x} chunk {chunk}: decode must be bit-identical",
            bench.name()
        );
        assert!(
            health.is_clean(),
            "{} chunk {chunk}: {health}",
            bench.name()
        );
    }
}

#[test]
fn every_single_thread_stream_roundtrips_at_boundary_straddling_chunks() {
    let master = SimConfig::default_run().seed;
    for bench in SpecBenchmark::ALL {
        for sw in 0..2 {
            // 1000 records at chunk 333 leaves a 1-record final chunk at
            // 999·· boundaries; chunk 7 never divides it evenly.
            assert_roundtrip(bench, stream_seed(master, 0, sw), 1000);
        }
    }
    assert_roundtrip(SpecBenchmark::Kernel, kernel_stream_seed(master, 0), 1000);
}

#[test]
fn every_fig7_smt_mix_stream_roundtrips() {
    let master = SimConfig::default_run().seed;
    for mix in TABLE_V_MIXES {
        for (hw, bench) in mix.pair.into_iter().enumerate() {
            for sw in 0..2 {
                assert_roundtrip(bench, stream_seed(master, hw, sw), 700);
            }
            assert_roundtrip(SpecBenchmark::Kernel, kernel_stream_seed(master, hw), 700);
        }
    }
}

/// Records the quick-scale replay set for `benches` into `dir`, exactly
/// as `trace_tool record` does.
fn record_streams(dir: &Path, benches: &[SpecBenchmark]) {
    let master = SimConfig::default_run().seed;
    let margin = 1.25;
    let mut streams: Vec<(String, u64, SpecBenchmark)> = Vec::new();
    for &b in benches {
        for sw in 0..2 {
            streams.push((stream_name(0, sw, b), stream_seed(master, 0, sw), b));
        }
    }
    streams.push((
        kernel_stream_name(0),
        kernel_stream_seed(master, 0),
        SpecBenchmark::Kernel,
    ));
    let session = TraceSession::open(dir).build().expect("session opens");
    let store = session.store();
    for (name, seed, bench) in streams {
        let budget = (replay_stream_budget(Scale::Quick, &bench.profile()) as f64 * margin) as u64;
        let mut g = WorkloadGenerator::new(bench.profile(), seed);
        let mut records = Vec::new();
        let mut instructions = 0u64;
        while instructions < budget {
            let r = g.next_branch();
            instructions += u64::from(r.gap) + 1;
            records.push(r);
        }
        store
            .save(&name, seed, &records, bp_trace::DEFAULT_CHUNK_RECORDS)
            .expect("stream saved");
    }
}

/// One quick-scale Figure-5 run over [Mcf, Xz], returning the raw CSV and
/// the experiment result.
fn fig5_run(
    base: &Path,
    tag: &str,
    threads: usize,
    trace: Option<Arc<TraceStore>>,
) -> (Result<(), String>, String, Ctx) {
    let results = base.join(format!("results-{tag}"));
    let mut ctx = Ctx::custom(
        Scale::Quick,
        Pool::new(threads),
        bench::cache::ModelCache::standard(false),
    )
    .with_results_dir(&results);
    if let Some(store) = trace {
        ctx = ctx.with_trace_store(store);
    }
    let out = experiments::fig5::run_with_benches(&ctx, &[SpecBenchmark::Mcf, SpecBenchmark::Xz])
        .map_err(|e| e.to_string());
    let csv = std::fs::read_to_string(results.join("fig5_hybp_per_app.csv")).expect("csv written");
    (out, csv, ctx)
}

#[test]
fn fig5_replay_is_byte_identical_and_degrades_gracefully() {
    let base = tmp_base("fig5");
    let _ = std::fs::remove_dir_all(&base);
    let traces = base.join("traces");
    record_streams(&traces, &[SpecBenchmark::Mcf, SpecBenchmark::Xz]);

    // Generator run (4 worker threads) vs. intact replay (serial): the
    // CSVs must be byte-identical — replay reproduces the exact branch
    // stream, and thread count is not allowed to matter.
    let (gen_out, gen_csv, _) = fig5_run(&base, "gen", 4, None);
    gen_out.expect("generator run is clean");
    let intact = open_store(&traces, ReadMode::Strict);
    let (rep_out, rep_csv, _) = fig5_run(&base, "replay", 1, Some(intact));
    rep_out.expect("intact replay is clean");
    assert_eq!(gen_csv, rep_csv, "replayed CSV must be byte-identical");

    // Flip one payload bit mid-file in one of mcf's streams.
    let master = SimConfig::default_run().seed;
    let victim = traces.join(TraceStore::file_name(
        &stream_name(0, 0, SpecBenchmark::Mcf),
        stream_seed(master, 0, 0),
    ));
    let mut bytes = std::fs::read(&victim).expect("victim stream readable");
    assert!(
        ByteFault::parse("bitflip@4096@3")
            .expect("valid fault")
            .apply(&mut bytes),
        "fault must land inside the file"
    );
    std::fs::write(&victim, &bytes).expect("corrupted stream written");

    // Strict replay: the mcf point dies with a typed error naming the
    // damaged chunk; xz still completes, so the CSV is partial.
    let strict = open_store(&traces, ReadMode::Strict);
    let (strict_out, strict_csv, strict_ctx) = fig5_run(&base, "strict", 2, Some(strict));
    let err = strict_out.expect_err("strict replay of a corrupted stream must degrade");
    assert!(err.contains("degraded"), "{err}");
    assert!(strict_csv.starts_with("# partial:"), "{strict_csv}");
    assert!(
        strict_csv.contains("xz_r,"),
        "undamaged benchmark must survive: {strict_csv}"
    );
    assert!(!strict_csv.contains("mcf_r,"), "{strict_csv}");
    let failures = strict_ctx.supervisor.pending_failures();
    assert!(
        failures.iter().any(|(_, f)| f.message.contains("chunk")),
        "strict failure must name the damaged chunk: {failures:?}"
    );

    // Lenient replays: the run completes with every benchmark present,
    // the loss is accounted as trace degradation (partial CSV, error
    // exit), and the degraded result is deterministic across thread
    // counts.
    let lenient = open_store(&traces, ReadMode::Lenient);
    let (len_out, len_csv, len_ctx) = fig5_run(&base, "lenient", 2, Some(lenient));
    let err = len_out.expect_err("lenient replay of a corrupted stream must report degradation");
    assert!(err.contains("degraded"), "{err}");
    assert!(len_csv.starts_with("# partial:"), "{len_csv}");
    assert!(
        len_csv.contains("mcf_r,") && len_csv.contains("xz_r,"),
        "{len_csv}"
    );
    let failures = len_ctx.supervisor.pending_failures();
    assert!(
        failures
            .iter()
            .any(|(_, f)| f.message.contains("chunks_skipped=1")),
        "lenient degradation must carry the health ledger: {failures:?}"
    );
    let lenient2 = open_store(&traces, ReadMode::Lenient);
    let (_, len_csv_serial, _) = fig5_run(&base, "lenient-serial", 1, Some(lenient2));
    assert_eq!(
        len_csv, len_csv_serial,
        "degraded replay must stay deterministic across thread counts"
    );

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn empty_stream_is_a_build_error_not_a_silent_loop() {
    let base = tmp_base("empty");
    let _ = std::fs::remove_dir_all(&base);
    let store = open_store(&base, ReadMode::Strict);
    let cfg = SimConfig::default_run();
    // All three single-thread streams exist, but the first user stream
    // holds zero records: replay has nothing to feed, which must be a
    // config error at build time, not an infinite wrap at run time.
    let b = SpecBenchmark::Mcf;
    store
        .save(&stream_name(0, 0, b), stream_seed(cfg.seed, 0, 0), &[], 16)
        .expect("empty stream saved");
    store
        .save(
            &stream_name(0, 1, b),
            stream_seed(cfg.seed, 0, 1),
            &gen_records(b, 1, 10),
            16,
        )
        .expect("stream saved");
    store
        .save(
            &kernel_stream_name(0),
            kernel_stream_seed(cfg.seed, 0),
            &gen_records(SpecBenchmark::Kernel, 2, 10),
            16,
        )
        .expect("kernel stream saved");
    let err = match bp_pipeline::Simulation::builder(hybp::Mechanism::Baseline, cfg)
        .single_thread(b)
        .trace_store(Some(store))
        .build()
    {
        Ok(_) => panic!("an empty stream must not build"),
        Err(e) => e,
    };
    assert!(
        err.to_string().contains("no records"),
        "error must say why: {err}"
    );
    let _ = std::fs::remove_dir_all(&base);
}
