//! Determinism of the phase-sampling pipeline, end to end:
//!
//! 1. sampling the same trace under the same spec twice yields a
//!    byte-identical `.bps` sidecar (the CI `sampling-integrity` job
//!    `cmp`s exactly this),
//! 2. a sampled Figure-5 run produces a byte-identical CSV whether the
//!    sweep runs on 1 worker thread or 4 — clustering, selection, and
//!    replay are pure functions of (bytes, spec), never of scheduling.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use bench::{experiments, phased_records, Ctx, Scale};
use bp_common::pool::Pool;
use bp_pipeline::{stream_name, stream_seed, SimConfig};
use bp_trace::{sample_bytes, ReadMode, SamplingSpec, TraceSession, TraceStore};
use bp_workloads::profile::SpecBenchmark;

fn tmp_base(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hybp-sampling-det-{tag}-{}", std::process::id()))
}

/// Records a phased synthetic stream under `bench`'s canonical replay
/// name, long enough for a handful of 50K-instruction windows.
fn record_stream(dir: &Path, bench: SpecBenchmark) {
    let store = Arc::clone(
        TraceSession::open(dir)
            .build()
            .expect("session opens")
            .store(),
    );
    let seed = stream_seed(SimConfig::default_run().seed, 0, 0);
    let records = phased_records(
        seed ^ bench as u64,
        &[SpecBenchmark::Lbm, SpecBenchmark::Mcf],
        400_000,
        2_000_000,
    );
    store
        .save(&stream_name(0, 0, bench), seed, &records, 256)
        .expect("stream saved");
}

fn spec() -> SamplingSpec {
    SamplingSpec {
        k: 3,
        window: 50_000,
        warmup: 2,
        ..SamplingSpec::default()
    }
}

#[test]
fn same_trace_and_seed_give_byte_identical_sidecars() {
    let base = tmp_base("sidecar");
    let _ = std::fs::remove_dir_all(&base);
    record_stream(&base, SpecBenchmark::Mcf);
    let seed = stream_seed(SimConfig::default_run().seed, 0, 0);
    let file = base.join(TraceStore::file_name(
        &stream_name(0, 0, SpecBenchmark::Mcf),
        seed,
    ));
    let bytes = std::fs::read(&file).expect("trace readable");

    let (plan_a, _) = sample_bytes(&bytes, ReadMode::Strict, &spec()).expect("samples");
    let (plan_b, _) = sample_bytes(&bytes, ReadMode::Strict, &spec()).expect("samples");
    assert_eq!(
        plan_a.encode(),
        plan_b.encode(),
        "double-sampling the same bytes must be byte-identical"
    );

    // The sidecar round-trips exactly, so a decoded plan replays the same
    // windows the in-memory one selected.
    let decoded = bp_trace::PhasePlan::decode(&plan_a.encode()).expect("sidecar decodes");
    assert_eq!(decoded, plan_a);

    // The store path (LoadedTrace::sample) agrees with the file path.
    let store = Arc::clone(
        TraceSession::open(&base)
            .build()
            .expect("session opens")
            .store(),
    );
    let loaded = store
        .load(&stream_name(0, 0, SpecBenchmark::Mcf), seed)
        .expect("stream loads");
    let (plan_c, _) = loaded.sample(&spec()).expect("samples");
    assert_eq!(plan_c.encode(), plan_a.encode());

    let _ = std::fs::remove_dir_all(&base);
}

/// One sampled fig5 run over [Mcf, Xz] at `threads`, returning the CSV.
fn sampled_fig5(base: &Path, traces: &Path, tag: &str, threads: usize) -> String {
    let store = Arc::clone(
        TraceSession::open(traces)
            .build()
            .expect("session opens")
            .store(),
    );
    let results = base.join(format!("results-{tag}"));
    let ctx = Ctx::custom(
        Scale::Quick,
        Pool::new(threads),
        bench::cache::ModelCache::standard(false),
    )
    .with_results_dir(&results)
    .with_trace_store(store)
    .with_sampling(spec());
    experiments::fig5::run_with_benches(&ctx, &[SpecBenchmark::Mcf, SpecBenchmark::Xz])
        .expect("sampled fig5 completes");
    std::fs::read_to_string(results.join("fig5_hybp_per_app.csv")).expect("csv written")
}

#[test]
fn sampled_fig5_csv_is_identical_across_thread_counts() {
    let base = tmp_base("fig5");
    let _ = std::fs::remove_dir_all(&base);
    let traces = base.join("traces");
    record_stream(&traces, SpecBenchmark::Mcf);
    record_stream(&traces, SpecBenchmark::Xz);

    let serial = sampled_fig5(&base, &traces, "serial", 1);
    let parallel = sampled_fig5(&base, &traces, "parallel", 4);
    assert_eq!(
        serial, parallel,
        "sampled CSV must be byte-identical across thread counts"
    );
    assert!(
        serial.starts_with("# sampled: "),
        "sampled runs must be marked: {serial}"
    );
    let header = serial.lines().next().expect("header line");
    assert!(
        header.contains("windows (coverage") && header.contains('%'),
        "header must carry counts and coverage: {header}"
    );
    assert!(serial.contains("mcf_r,0,") && serial.contains("xz_r,0,"));
    assert!(serial.contains(",sampled"));

    let _ = std::fs::remove_dir_all(&base);
}
