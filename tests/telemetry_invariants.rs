//! Telemetry-backed proof of the paper's off-critical-path claim: a
//! KeysTable refresh runs concurrently with prediction — stale keys are
//! served while the code books rewrite — so refresh spans must never
//! overlap a prediction-critical-path stall.
//!
//! The simulation charges every stall it models to a named span or stage
//! counter. There is deliberately no `("sim", "keys_stall")` emitter: the
//! fetch path has no code that waits on the keys table (see
//! `bp-pipeline/src/sim.rs`). These tests pin that claim observationally —
//! refreshes demonstrably happen mid-run, predictions demonstrably land
//! during them, and the event stream carries zero keys-attributed stalls.

use hybp_repro::bp_common::{Telemetry, TelemetryEvent};
use hybp_repro::bp_pipeline::{SimConfig, Simulation};
use hybp_repro::bp_workloads::SpecBenchmark;
use hybp_repro::hybp::Mechanism;

/// A run short enough for a debug-mode test but with context switches
/// every 25K cycles, so key refreshes demonstrably happen mid-measurement.
fn refresh_heavy_cfg() -> SimConfig {
    let mut cfg = SimConfig::quick_test();
    cfg.warmup_instructions = 20_000;
    cfg.measure_instructions = 150_000;
    cfg.ctx_switch_interval = 25_000;
    cfg
}

fn run_with_sink() -> (hybp_repro::bp_pipeline::RunMetrics, Vec<TelemetryEvent>) {
    let sink = Telemetry::ring(1 << 14);
    let metrics = Simulation::builder(Mechanism::hybp_default(), refresh_heavy_cfg())
        .single_thread(SpecBenchmark::Deepsjeng)
        .telemetry(sink.clone())
        .build()
        .expect("valid config")
        .run()
        .expect("completes");
    assert_eq!(sink.dropped(), 0, "ring must not overflow in this run");
    (metrics, sink.drain())
}

#[test]
fn key_refreshes_overlap_zero_prediction_critical_path_stalls() {
    let (metrics, events) = run_with_sink();

    let refreshes: Vec<&TelemetryEvent> = events
        .iter()
        .filter(|e| e.scope == "keys" && e.name == "refresh")
        .collect();
    assert!(
        !refreshes.is_empty(),
        "context switches every 25K cycles must trigger key refreshes"
    );

    // Predictions were served *during* refresh windows — the stale-key
    // path, not a stall, carried them.
    assert!(
        metrics.bpu.predictions_during_refresh > 0,
        "no prediction landed inside a refresh window; the run cannot \
         witness the off-critical-path claim"
    );

    // The invariant in its falsifiable form: no keys-attributed stall
    // span exists at all, so every refresh span overlaps zero of them.
    let keys_stalls: Vec<&TelemetryEvent> = events
        .iter()
        .filter(|e| e.scope == "sim" && e.name == "keys_stall")
        .collect();
    assert!(
        keys_stalls.is_empty(),
        "the fetch path charged a stall to the keys table: {keys_stalls:?}"
    );
    for refresh in &refreshes {
        let (start, end) = refresh.span_bounds().expect("refresh is a span");
        let overlap: u64 = keys_stalls.iter().map(|s| s.span_overlap(start, end)).sum();
        assert_eq!(
            overlap, 0,
            "refresh [{start}, {end}) overlaps a prediction-critical-path stall"
        );
    }
}

#[test]
fn refreshes_coincide_with_context_switch_stalls_not_fetch() {
    // Control for the test above: refreshes are *triggered by* context
    // switches, whose (architectural, paper-modeled) cost is a span in the
    // same stream — so span overlap must be visible where it genuinely
    // exists. A refresh invariant test that could not detect any overlap
    // would be vacuous.
    let (_, events) = run_with_sink();
    let ctx_switches: Vec<&TelemetryEvent> = events
        .iter()
        .filter(|e| e.scope == "sim" && e.name == "ctx_switch_stall")
        .collect();
    assert!(!ctx_switches.is_empty(), "25K-cycle slices must switch");
    let overlapping = events
        .iter()
        .filter(|e| e.scope == "keys" && e.name == "refresh")
        .filter(|r| {
            let (start, end) = r.span_bounds().expect("refresh is a span");
            ctx_switches.iter().any(|c| c.span_overlap(start, end) > 0)
        })
        .count();
    assert!(
        overlapping > 0,
        "no refresh span overlaps the context-switch stall that started it"
    );
}

#[test]
fn telemetry_capture_does_not_change_the_simulation() {
    // Observation is passive: the same config with a disabled sink and an
    // enabled ring must produce identical metrics.
    let sink = Telemetry::ring(1 << 14);
    let observed = Simulation::builder(Mechanism::hybp_default(), refresh_heavy_cfg())
        .single_thread(SpecBenchmark::Deepsjeng)
        .telemetry(sink)
        .build()
        .expect("valid config")
        .run()
        .expect("completes");
    let plain = Simulation::builder(Mechanism::hybp_default(), refresh_heavy_cfg())
        .single_thread(SpecBenchmark::Deepsjeng)
        .build()
        .expect("valid config")
        .run()
        .expect("completes");
    assert_eq!(observed, plain, "telemetry must be a pure observer");
}
