//! Fault-injection robustness matrix: every protection mechanism must
//! tolerate every fault class with **bounded accuracy loss and zero
//! correctness loss** — the paper's "stale keys cost accuracy, never
//! correctness" claim, machine-checked under adversarial disturbance.
//!
//! For each (mechanism × fault class) pair the harness runs a clean and a
//! faulted simulation of the same configuration and asserts:
//!
//! 1. no panic anywhere in the stack (the run completes),
//! 2. the architectural branch-record streams are identical (per-generator
//!    [`StreamDigest`] agreement) — faults may change *predictions*, never
//!    the retired instruction stream,
//! 3. every thread still retires its full measurement quota,
//! 4. direction accuracy degrades by a bounded amount only,
//! 5. the fault class actually fired where it applies (no vacuous passes).
//!
//! A separate unit-level test pins the refresh-timing invariant: a delayed
//! or dropped code-book rewrite must not change the *acknowledged* refresh
//! duration, else timing would leak the fault state.

use std::sync::OnceLock;

use hybp_repro::bp_common::{Asid, Vmid};
use hybp_repro::bp_crypto::keys::{KeyManager, KeysTableConfig, PAPER_RENEWAL_THRESHOLD};
use hybp_repro::bp_crypto::Qarma64;
use hybp_repro::bp_faults::{FaultInjector, FaultPlan, FaultStats};
use hybp_repro::bp_pipeline::{RunMetrics, SimConfig, Simulation};
use hybp_repro::bp_workloads::SpecBenchmark;
use hybp_repro::hybp::{HybpConfig, Mechanism};

/// Accuracy may dip under disturbance, but boundedly: a faulted run loses at
/// most this much absolute direction accuracy versus the clean run.
const MAX_ACCURACY_LOSS: f64 = 0.25;

const BENCH: SpecBenchmark = SpecBenchmark::Deepsjeng;

fn all_mechanisms() -> Vec<Mechanism> {
    vec![
        Mechanism::Baseline,
        Mechanism::Flush,
        Mechanism::Partition,
        Mechanism::Replication {
            extra_storage_pct: 100,
        },
        Mechanism::DisableSmt,
        Mechanism::hybp_default(),
        Mechanism::HyBp(HybpConfig::randomization_only()),
        Mechanism::TournamentBaseline,
    ]
}

fn fault_cfg() -> SimConfig {
    let mut cfg = SimConfig::quick_test();
    cfg.warmup_instructions = 15_000;
    cfg.measure_instructions = 60_000;
    // Short enough that ordinary context switches also occur in-run.
    cfg.ctx_switch_interval = 25_000;
    cfg
}

fn run_one(mech: Mechanism, plan: Option<FaultPlan>) -> (RunMetrics, FaultStats) {
    let injector = plan.map(FaultInjector::from_plan);
    let metrics = Simulation::builder(mech, fault_cfg())
        .single_thread(BENCH)
        .fault_injector(injector.clone())
        .build()
        .expect("valid config")
        .run()
        .expect("completes");
    let stats = injector.map(|i| i.stats()).unwrap_or_default();
    (metrics, stats)
}

/// Clean reference runs, one per mechanism, computed once for the module.
fn clean_runs() -> &'static Vec<RunMetrics> {
    static CLEAN: OnceLock<Vec<RunMetrics>> = OnceLock::new();
    CLEAN.get_or_init(|| {
        all_mechanisms()
            .into_iter()
            .map(|m| run_one(m, None).0)
            .collect()
    })
}

fn is_hybp(mech: &Mechanism) -> bool {
    matches!(mech, Mechanism::HyBp(_))
}

/// Runs one fault class against every mechanism and checks the invariant.
///
/// `fired` extracts the class's counters from the stats; it must be non-zero
/// whenever the class applies (always, or only under HyBP when `hybp_only`).
fn check_class(
    name: &str,
    plan: &dyn Fn() -> FaultPlan,
    hybp_only: bool,
    fired: &dyn Fn(&FaultStats) -> u64,
) {
    let cfg = fault_cfg();
    for (mech, clean) in all_mechanisms().into_iter().zip(clean_runs()) {
        let (faulted, stats) = run_one(mech, Some(plan()));

        // Correctness: the architectural stream is untouched and every
        // thread finished its measurement quota.
        assert!(
            faulted.streams_agree_with(clean),
            "[{name}] {mech}: architectural streams diverged under faults"
        );
        for t in &faulted.threads {
            assert!(
                t.retired >= cfg.measure_instructions,
                "[{name}] {mech}: thread retired {} < quota {}",
                t.retired,
                cfg.measure_instructions
            );
        }

        // Accuracy: may degrade, but boundedly.
        let clean_acc = clean.bpu.direction_accuracy();
        let faulted_acc = faulted.bpu.direction_accuracy();
        assert!(
            faulted_acc >= clean_acc - MAX_ACCURACY_LOSS,
            "[{name}] {mech}: accuracy collapsed {clean_acc:.3} -> {faulted_acc:.3}"
        );
        assert!(
            faulted_acc > 0.5,
            "[{name}] {mech}: faulted accuracy {faulted_acc:.3} is no better than chance"
        );

        // The class must actually have fired where it applies.
        if !hybp_only || is_hybp(&mech) {
            assert!(
                fired(&stats) > 0,
                "[{name}] {mech}: fault class never fired (vacuous pass), stats {stats:?}"
            );
        }
    }
}

#[test]
fn sram_key_bit_flips_cost_accuracy_never_correctness() {
    check_class(
        "sram-key-flips",
        &|| FaultPlan::new(0xFA01).with_key_bit_flips(97),
        true,
        &|s| s.key_bit_flips,
    );
}

#[test]
fn btb_payload_flips_cost_accuracy_never_correctness() {
    check_class(
        "btb-payload-flips",
        &|| FaultPlan::new(0xFA02).with_btb_target_flips(53),
        false,
        &|s| s.btb_target_flips,
    );
}

#[test]
fn direction_flips_cost_accuracy_never_correctness() {
    check_class(
        "direction-flips",
        &|| FaultPlan::new(0xFA03).with_direction_flips(101),
        false,
        &|s| s.direction_flips,
    );
}

#[test]
fn refresh_disturbance_costs_accuracy_never_correctness() {
    // Forced context switches guarantee renewals happen in-run; delay/drop
    // faults then disturb the code-book rewrites those renewals start.
    check_class(
        "refresh-disturbance",
        &|| {
            FaultPlan::new(0xFA04)
                .with_forced_context_switches(6_000)
                .with_refresh_delays(2, 37)
                .with_refresh_drops(3)
        },
        true,
        &|s| s.refreshes_delayed + s.refreshes_dropped,
    );
}

#[test]
fn trace_anomalies_cost_accuracy_never_correctness() {
    check_class(
        "trace-anomalies",
        &|| {
            FaultPlan::new(0xFA05)
                .with_record_drops(211)
                .with_record_duplicates(223)
        },
        false,
        &|s| s.records_dropped + s.records_duplicated,
    );
}

#[test]
fn os_disturbance_costs_accuracy_never_correctness() {
    check_class(
        "os-disturbance",
        &|| {
            FaultPlan::new(0xFA06)
                .with_forced_context_switches(7_000)
                .with_forced_timers(5_000)
        },
        false,
        &|s| s.forced_context_switches + s.forced_timers,
    );
}

#[test]
fn counter_saturation_costs_accuracy_never_correctness() {
    check_class(
        "counter-saturation",
        &|| FaultPlan::new(0xFA07).with_counter_saturation(5_000),
        true,
        &|s| s.counters_saturated,
    );
}

#[test]
fn refresh_timing_is_fault_independent() {
    // KeyManager::renew must acknowledge the same nominal completion time
    // whether the rewrite proceeds, starts late, or is lost entirely —
    // otherwise refresh timing would leak the fault state (and the paper's
    // fixed 263-cycle rewrite would become observable side-channel input).
    let plans: [Option<FaultPlan>; 3] = [
        None,
        Some(FaultPlan::new(1).with_refresh_delays(1, 999)),
        Some(FaultPlan::new(2).with_refresh_drops(1)),
    ];
    let mut acknowledged = Vec::new();
    for plan in plans {
        let mut km = KeyManager::new(
            Box::new(Qarma64::from_seed(7)),
            2,
            KeysTableConfig::paper_default(),
            PAPER_RENEWAL_THRESHOLD,
            9,
        )
        .expect("paper default");
        km.set_fault_injector(plan.map(FaultInjector::from_plan));
        let duration = km.slot(0).table().refresh_duration();
        let done = km.renew(0, Asid::new(1), Vmid::new(0), 1_000);
        assert_eq!(done, 1_000 + duration, "renew must report nominal timing");
        acknowledged.push(done);
    }
    assert!(
        acknowledged.windows(2).all(|w| w[0] == w[1]),
        "acknowledged refresh completion varied across fault dispositions: {acknowledged:?}"
    );
}

/// The robustness matrix itself must be robust: with harness point faults
/// injected into its own sweep grid, the `sec_fault_matrix` experiment
/// still runs to completion under the supervisor, loses exactly the
/// injected points, writes a partial (never wrong) CSV, and reports the
/// degradation as a visible error.
#[test]
fn sec_fault_matrix_survives_point_faults_under_the_supervisor() {
    use bench::cache::ModelCache;
    use bench::{experiments, Ctx, Scale, SweepReport};
    use bp_common::pool::Pool;
    use bp_faults::points::PointFaultPlan;

    let base = std::env::temp_dir().join(format!("hybp-matrix-supervised-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    // One grid cell dies outright; a second fails once and must be
    // retried back to health.
    let plan =
        PointFaultPlan::parse("panic@sec_fault_matrix:grid@5,transient@sec_fault_matrix:grid@11@1")
            .expect("valid plan");
    let ctx = Ctx::custom(
        Scale::Quick,
        Pool::new(2),
        ModelCache::at_dir(base.join("cache"), false),
    )
    .with_results_dir(base.join("results"))
    .with_fault_points(plan);

    let exp = experiments::all()
        .into_iter()
        .find(|e| e.name == "sec_fault_matrix")
        .expect("registered experiment");
    let result = (exp.run)(&ctx);

    // The experiment completes (no panic escaped the supervisor) and
    // reports its degradation, naming the lost point.
    let err = result.expect_err("degraded run must error").to_string();
    assert!(err.contains("degraded"), "{err}");
    assert!(err.contains("sec_fault_matrix:grid[5]"), "{err}");

    // Exactly the injected failure was lost; the transient point
    // recovered via retry.
    let reports: Vec<SweepReport> = ctx.supervisor.drain();
    let grid = reports
        .iter()
        .find(|r| r.label == "sec_fault_matrix:grid")
        .expect("grid sweep report");
    assert_eq!(grid.lost(), 1, "{grid:?}");
    assert_eq!(grid.failures[0].index, 5);
    assert!(grid.failures[0].panicked);
    assert_eq!(grid.recovered, 1, "{grid:?}");
    let clean = reports
        .iter()
        .find(|r| r.label == "sec_fault_matrix:clean")
        .expect("clean sweep report");
    assert_eq!(clean.lost(), 0, "{clean:?}");

    // The CSV is partial, not wrong: one grid cell short, all others
    // present and well-formed.
    let text =
        std::fs::read_to_string(base.join("results/sec_fault_matrix.csv")).expect("csv written");
    let total = grid.total + clean.total;
    assert!(
        text.starts_with(&format!("# partial: {}/{} points\n", total - 1, total)),
        "{}",
        text.lines().next().unwrap_or("")
    );
    let rows = text.lines().skip(2).count();
    assert_eq!(rows, grid.total - 1, "one row per surviving grid cell");

    let _ = std::fs::remove_dir_all(&base);
}
