//! End-to-end integration tests: workloads → secure BPU → pipeline →
//! metrics, across protection mechanisms.

use hybp_repro::bp_pipeline::{RunMetrics, SimConfig, Simulation};
use hybp_repro::bp_workloads::profile::SpecBenchmark;
use hybp_repro::bp_workloads::TABLE_V_MIXES;
use hybp_repro::hybp::{cost, HybpConfig, Mechanism};

fn quick() -> SimConfig {
    let mut cfg = SimConfig::quick_test();
    cfg.warmup_instructions = 60_000;
    cfg.measure_instructions = 250_000;
    cfg
}

fn run_st(mech: Mechanism, bench: SpecBenchmark, cfg: SimConfig) -> RunMetrics {
    Simulation::builder(mech, cfg)
        .single_thread(bench)
        .build()
        .expect("valid config")
        .run()
        .expect("completes")
}

fn run_smt(mech: Mechanism, pair: [SpecBenchmark; 2], cfg: SimConfig) -> RunMetrics {
    Simulation::builder(mech, cfg)
        .smt(pair)
        .build()
        .expect("valid config")
        .run()
        .expect("completes")
}

#[test]
fn every_mechanism_completes_a_single_thread_run() {
    for mech in [
        Mechanism::Baseline,
        Mechanism::Flush,
        Mechanism::Partition,
        Mechanism::replication_default(),
        Mechanism::DisableSmt,
        Mechanism::hybp_default(),
        Mechanism::TournamentBaseline,
    ] {
        let m = run_st(mech, SpecBenchmark::Xz, quick());
        assert!(
            m.threads[0].ipc() > 0.3 && m.threads[0].ipc() < 8.0,
            "{mech}: ipc {}",
            m.threads[0].ipc()
        );
        assert!(m.bpu.branches > 10_000, "{mech}: too few branches");
    }
}

#[test]
fn every_mix_completes_an_smt_run_under_hybp() {
    for mix in &TABLE_V_MIXES[..4] {
        let m = run_smt(Mechanism::hybp_default(), mix.pair, quick());
        assert_eq!(m.threads.len(), 2, "{}", mix.label());
        for t in &m.threads {
            assert!(t.ipc() > 0.2, "{}: ipc {}", mix.label(), t.ipc());
        }
    }
}

#[test]
fn hybp_overhead_is_far_below_flush_and_partition() {
    // The paper's headline, end to end: at the default time slice HyBP's
    // cost is a small fraction of the alternatives'.
    let mut cfg = quick();
    cfg.measure_instructions = 1_200_000;
    let bench = SpecBenchmark::Deepsjeng;
    let ipc = |mech| run_st(mech, bench, cfg).threads[0].ipc();
    let base = ipc(Mechanism::Baseline);
    let hybp = ipc(Mechanism::hybp_default());
    let flush = ipc(Mechanism::Flush);
    let partition = ipc(Mechanism::Partition);
    let loss = |x: f64| (base - x) / base;
    assert!(
        loss(hybp) < loss(flush) * 0.6,
        "hybp {:.4} vs flush {:.4}",
        loss(hybp),
        loss(flush)
    );
    assert!(
        loss(hybp) < loss(partition) * 0.6,
        "hybp {:.4} vs partition {:.4}",
        loss(hybp),
        loss(partition)
    );
}

#[test]
fn smt_beats_disable_smt_in_throughput() {
    // Table I's Disable-SMT row: turning SMT off costs throughput.
    let mix = TABLE_V_MIXES[6]; // wrf + mcf
    let smt = run_smt(Mechanism::Baseline, mix.pair, quick()).throughput();
    let solo = run_st(Mechanism::Baseline, mix.pair[0], quick()).throughput();
    assert!(smt > solo, "smt {smt} vs solo {solo}");
}

#[test]
fn hardware_cost_is_consistent_with_bpu_storage() {
    // The cost model's baseline must match the assembled baseline BPU's
    // table storage within rounding.
    let bpu = hybp_repro::hybp::SecureBpu::new(Mechanism::Baseline, 1, 1).expect("valid mechanism");
    let model = cost::baseline_bpu_bytes();
    let actual = bpu.storage_bits().div_ceil(8);
    let ratio = actual as f64 / model as f64;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "assembled {actual} B vs model {model} B"
    );
}

#[test]
fn keys_table_size_increases_hybp_cost_but_not_accuracy_much() {
    let small = Mechanism::HyBp(HybpConfig::with_keys_entries(1024));
    let large = Mechanism::HyBp(HybpConfig::with_keys_entries(32 * 1024));
    assert!(
        cost::mechanism_cost(&large, 2).overhead_bytes()
            > cost::mechanism_cost(&small, 2).overhead_bytes()
    );
    // Without context switches the table size is performance-neutral.
    let ipc_small = run_st(small, SpecBenchmark::Wrf, quick()).threads[0].ipc();
    let ipc_large = run_st(large, SpecBenchmark::Wrf, quick()).threads[0].ipc();
    let delta = (ipc_small - ipc_large).abs() / ipc_small;
    assert!(
        delta < 0.02,
        "keys-table size changed steady-state IPC by {delta}"
    );
}

#[test]
fn deterministic_given_seed() {
    let a = run_st(Mechanism::hybp_default(), SpecBenchmark::Cam4, quick());
    let b = run_st(Mechanism::hybp_default(), SpecBenchmark::Cam4, quick());
    assert_eq!(a.threads[0].retired, b.threads[0].retired);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.bpu.direction_mispredicts, b.bpu.direction_mispredicts);
}
