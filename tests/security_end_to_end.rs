//! Cross-crate security integration tests: the attack harness against the
//! assembled system, checking the paper's Table III conclusions end to end.

use hybp_repro::bp_attacks::poc::{
    btb_training, pht_training, pht_training_topo, CoResidency, PocParams,
};
use hybp_repro::bp_attacks::{blind, pht_analysis};
use hybp_repro::hybp::Mechanism;

fn params() -> PocParams {
    PocParams {
        iterations: 50,
        rounds_per_iteration: 50,
        success_threshold: 45,
        trainings_per_round: 8,
    }
}

#[test]
fn table_iii_btb_row() {
    // Flush: no protection under SMT. Partition & HyBP: defend.
    let flush = btb_training(Mechanism::Flush, params(), 21);
    let partition = btb_training(Mechanism::Partition, params(), 22);
    let hybp = btb_training(Mechanism::hybp_default(), params(), 23);
    assert!(
        flush.training_accuracy() > 0.8,
        "flush must not stop concurrent SMT BTB training ({})",
        flush.training_accuracy()
    );
    assert!(partition.training_accuracy() < 0.1, "partition defends BTB");
    assert!(hybp.training_accuracy() < 0.1, "hybp defends BTB");
}

#[test]
fn table_iii_pht_row() {
    let flush = pht_training(Mechanism::Flush, params(), 31);
    let partition = pht_training(Mechanism::Partition, params(), 32);
    let hybp = pht_training(Mechanism::hybp_default(), params(), 33);
    // Under SMT with banked histories, the residual leak through the
    // shared tables is structural: Flush must leak clearly more than the
    // isolating mechanisms, which must collapse to noise.
    assert!(
        flush.training_accuracy() > hybp.training_accuracy() + 0.05,
        "flush ({}) must leak more than hybp ({})",
        flush.training_accuracy(),
        hybp.training_accuracy()
    );
    assert!(partition.training_accuracy() < 0.1, "partition defends PHT");
    assert!(hybp.training_accuracy() < 0.1, "hybp defends PHT");
    // And on a single core (the paper's PoC), baseline training is near
    // certain while HyBP collapses.
    let base_sc = pht_training_topo(Mechanism::Baseline, CoResidency::SingleCore, params(), 34);
    let hybp_sc = pht_training_topo(
        Mechanism::hybp_default(),
        CoResidency::SingleCore,
        params(),
        35,
    );
    assert!(base_sc.training_accuracy() > 0.7);
    assert!(hybp_sc.training_accuracy() < 0.1);
}

#[test]
fn security_budget_exceeds_time_slice() {
    // §VI-C: every analyzed attack needs more accesses than fit in a Linux
    // time slice (2^24 cycles), so changing keys per context switch is safe.
    let time_slice_accesses = (1u64 << 24) as f64;
    let blind_cost = blind::expected_accesses_hybrid(1140, 1024, 7, 16, 512);
    assert!(blind_cost > time_slice_accesses);
    let pht_cost = pht_analysis::PhtAttackParams::paper().accesses_per_probe();
    assert!(pht_cost > time_slice_accesses);
}

#[test]
fn hybp_with_weak_cipher_is_still_isolated_but_flagged() {
    // Using a linear cipher for the code book preserves the isolation
    // behaviour (PoCs fail) but the cipher itself is breakable — the
    // §III-A lesson. Both facts must hold.
    use hybp_repro::bp_crypto::{Llbc, TweakableBlockCipher};
    use hybp_repro::hybp::{CipherKind, HybpConfig};
    let mut cfg = HybpConfig::paper_default();
    cfg.cipher = CipherKind::Llbc;
    let poc = pht_training(Mechanism::HyBp(cfg), params(), 41);
    assert!(poc.training_accuracy() < 0.1, "isolation still holds");
    assert!(Llbc::from_seed(1).is_linear(), "but the cipher is linear");
}
