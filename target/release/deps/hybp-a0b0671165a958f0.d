/root/repo/target/release/deps/hybp-a0b0671165a958f0.d: crates/hybp/src/lib.rs crates/hybp/src/bpu.rs crates/hybp/src/codec.rs crates/hybp/src/cost.rs crates/hybp/src/mechanism.rs

/root/repo/target/release/deps/libhybp-a0b0671165a958f0.rlib: crates/hybp/src/lib.rs crates/hybp/src/bpu.rs crates/hybp/src/codec.rs crates/hybp/src/cost.rs crates/hybp/src/mechanism.rs

/root/repo/target/release/deps/libhybp-a0b0671165a958f0.rmeta: crates/hybp/src/lib.rs crates/hybp/src/bpu.rs crates/hybp/src/codec.rs crates/hybp/src/cost.rs crates/hybp/src/mechanism.rs

crates/hybp/src/lib.rs:
crates/hybp/src/bpu.rs:
crates/hybp/src/codec.rs:
crates/hybp/src/cost.rs:
crates/hybp/src/mechanism.rs:
