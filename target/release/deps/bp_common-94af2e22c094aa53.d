/root/repo/target/release/deps/bp_common-94af2e22c094aa53.d: crates/bp-common/src/lib.rs crates/bp-common/src/check.rs crates/bp-common/src/error.rs crates/bp-common/src/history.rs crates/bp-common/src/rng.rs crates/bp-common/src/stats.rs

/root/repo/target/release/deps/libbp_common-94af2e22c094aa53.rlib: crates/bp-common/src/lib.rs crates/bp-common/src/check.rs crates/bp-common/src/error.rs crates/bp-common/src/history.rs crates/bp-common/src/rng.rs crates/bp-common/src/stats.rs

/root/repo/target/release/deps/libbp_common-94af2e22c094aa53.rmeta: crates/bp-common/src/lib.rs crates/bp-common/src/check.rs crates/bp-common/src/error.rs crates/bp-common/src/history.rs crates/bp-common/src/rng.rs crates/bp-common/src/stats.rs

crates/bp-common/src/lib.rs:
crates/bp-common/src/check.rs:
crates/bp-common/src/error.rs:
crates/bp-common/src/history.rs:
crates/bp-common/src/rng.rs:
crates/bp-common/src/stats.rs:
