/root/repo/target/release/deps/table2_threat_model-b2af94b695cfd4d1.d: crates/bench/src/bin/table2_threat_model.rs

/root/repo/target/release/deps/table2_threat_model-b2af94b695cfd4d1: crates/bench/src/bin/table2_threat_model.rs

crates/bench/src/bin/table2_threat_model.rs:
