/root/repo/target/release/deps/ciphers-f57cb55a276b15ca.d: crates/bench/benches/ciphers.rs

/root/repo/target/release/deps/ciphers-f57cb55a276b15ca: crates/bench/benches/ciphers.rs

crates/bench/benches/ciphers.rs:
