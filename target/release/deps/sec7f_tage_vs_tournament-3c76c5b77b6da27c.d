/root/repo/target/release/deps/sec7f_tage_vs_tournament-3c76c5b77b6da27c.d: crates/bench/src/bin/sec7f_tage_vs_tournament.rs

/root/repo/target/release/deps/sec7f_tage_vs_tournament-3c76c5b77b6da27c: crates/bench/src/bin/sec7f_tage_vs_tournament.rs

crates/bench/src/bin/sec7f_tage_vs_tournament.rs:
