/root/repo/target/release/deps/fig5_hybp_per_app-00d080e10c95a7c8.d: crates/bench/src/bin/fig5_hybp_per_app.rs

/root/repo/target/release/deps/fig5_hybp_per_app-00d080e10c95a7c8: crates/bench/src/bin/fig5_hybp_per_app.rs

crates/bench/src/bin/fig5_hybp_per_app.rs:
