/root/repo/target/release/deps/keys_table-8014d6aff24e1ced.d: crates/bench/benches/keys_table.rs

/root/repo/target/release/deps/keys_table-8014d6aff24e1ced: crates/bench/benches/keys_table.rs

crates/bench/benches/keys_table.rs:
