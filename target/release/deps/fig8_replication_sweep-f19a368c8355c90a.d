/root/repo/target/release/deps/fig8_replication_sweep-f19a368c8355c90a.d: crates/bench/src/bin/fig8_replication_sweep.rs

/root/repo/target/release/deps/fig8_replication_sweep-f19a368c8355c90a: crates/bench/src/bin/fig8_replication_sweep.rs

crates/bench/src/bin/fig8_replication_sweep.rs:
