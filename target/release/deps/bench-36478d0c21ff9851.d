/root/repo/target/release/deps/bench-36478d0c21ff9851.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libbench-36478d0c21ff9851.rlib: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libbench-36478d0c21ff9851.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
