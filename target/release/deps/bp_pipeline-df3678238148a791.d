/root/repo/target/release/deps/bp_pipeline-df3678238148a791.d: crates/bp-pipeline/src/lib.rs crates/bp-pipeline/src/config.rs crates/bp-pipeline/src/error.rs crates/bp-pipeline/src/metrics.rs crates/bp-pipeline/src/sim.rs

/root/repo/target/release/deps/libbp_pipeline-df3678238148a791.rlib: crates/bp-pipeline/src/lib.rs crates/bp-pipeline/src/config.rs crates/bp-pipeline/src/error.rs crates/bp-pipeline/src/metrics.rs crates/bp-pipeline/src/sim.rs

/root/repo/target/release/deps/libbp_pipeline-df3678238148a791.rmeta: crates/bp-pipeline/src/lib.rs crates/bp-pipeline/src/config.rs crates/bp-pipeline/src/error.rs crates/bp-pipeline/src/metrics.rs crates/bp-pipeline/src/sim.rs

crates/bp-pipeline/src/lib.rs:
crates/bp-pipeline/src/config.rs:
crates/bp-pipeline/src/error.rs:
crates/bp-pipeline/src/metrics.rs:
crates/bp-pipeline/src/sim.rs:
