/root/repo/target/release/deps/table3_security_matrix-8faf55672bf43182.d: crates/bench/src/bin/table3_security_matrix.rs

/root/repo/target/release/deps/table3_security_matrix-8faf55672bf43182: crates/bench/src/bin/table3_security_matrix.rs

crates/bench/src/bin/table3_security_matrix.rs:
