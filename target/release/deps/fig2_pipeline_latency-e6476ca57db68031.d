/root/repo/target/release/deps/fig2_pipeline_latency-e6476ca57db68031.d: crates/bench/src/bin/fig2_pipeline_latency.rs

/root/repo/target/release/deps/fig2_pipeline_latency-e6476ca57db68031: crates/bench/src/bin/fig2_pipeline_latency.rs

crates/bench/src/bin/fig2_pipeline_latency.rs:
