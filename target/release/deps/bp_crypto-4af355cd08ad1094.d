/root/repo/target/release/deps/bp_crypto-4af355cd08ad1094.d: crates/bp-crypto/src/lib.rs crates/bp-crypto/src/keys.rs crates/bp-crypto/src/llbc.rs crates/bp-crypto/src/prince.rs crates/bp-crypto/src/qarma.rs

/root/repo/target/release/deps/libbp_crypto-4af355cd08ad1094.rlib: crates/bp-crypto/src/lib.rs crates/bp-crypto/src/keys.rs crates/bp-crypto/src/llbc.rs crates/bp-crypto/src/prince.rs crates/bp-crypto/src/qarma.rs

/root/repo/target/release/deps/libbp_crypto-4af355cd08ad1094.rmeta: crates/bp-crypto/src/lib.rs crates/bp-crypto/src/keys.rs crates/bp-crypto/src/llbc.rs crates/bp-crypto/src/prince.rs crates/bp-crypto/src/qarma.rs

crates/bp-crypto/src/lib.rs:
crates/bp-crypto/src/keys.rs:
crates/bp-crypto/src/llbc.rs:
crates/bp-crypto/src/prince.rs:
crates/bp-crypto/src/qarma.rs:
