/root/repo/target/release/deps/sec_fault_matrix-35859180ccfb1209.d: crates/bench/src/bin/sec_fault_matrix.rs

/root/repo/target/release/deps/sec_fault_matrix-35859180ccfb1209: crates/bench/src/bin/sec_fault_matrix.rs

crates/bench/src/bin/sec_fault_matrix.rs:
