/root/repo/target/release/deps/bp_workloads-83455a26444f5de7.d: crates/bp-workloads/src/lib.rs crates/bp-workloads/src/generator.rs crates/bp-workloads/src/mixes.rs crates/bp-workloads/src/profile.rs crates/bp-workloads/src/trace.rs

/root/repo/target/release/deps/libbp_workloads-83455a26444f5de7.rlib: crates/bp-workloads/src/lib.rs crates/bp-workloads/src/generator.rs crates/bp-workloads/src/mixes.rs crates/bp-workloads/src/profile.rs crates/bp-workloads/src/trace.rs

/root/repo/target/release/deps/libbp_workloads-83455a26444f5de7.rmeta: crates/bp-workloads/src/lib.rs crates/bp-workloads/src/generator.rs crates/bp-workloads/src/mixes.rs crates/bp-workloads/src/profile.rs crates/bp-workloads/src/trace.rs

crates/bp-workloads/src/lib.rs:
crates/bp-workloads/src/generator.rs:
crates/bp-workloads/src/mixes.rs:
crates/bp-workloads/src/profile.rs:
crates/bp-workloads/src/trace.rs:
