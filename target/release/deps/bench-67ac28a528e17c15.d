/root/repo/target/release/deps/bench-67ac28a528e17c15.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libbench-67ac28a528e17c15.rlib: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libbench-67ac28a528e17c15.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
