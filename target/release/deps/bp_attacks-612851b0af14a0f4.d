/root/repo/target/release/deps/bp_attacks-612851b0af14a0f4.d: crates/bp-attacks/src/lib.rs crates/bp-attacks/src/analysis.rs crates/bp-attacks/src/blind.rs crates/bp-attacks/src/contention.rs crates/bp-attacks/src/env.rs crates/bp-attacks/src/gem.rs crates/bp-attacks/src/linear.rs crates/bp-attacks/src/pht_analysis.rs crates/bp-attacks/src/poc.rs crates/bp-attacks/src/ppp.rs crates/bp-attacks/src/threat_model.rs

/root/repo/target/release/deps/libbp_attacks-612851b0af14a0f4.rlib: crates/bp-attacks/src/lib.rs crates/bp-attacks/src/analysis.rs crates/bp-attacks/src/blind.rs crates/bp-attacks/src/contention.rs crates/bp-attacks/src/env.rs crates/bp-attacks/src/gem.rs crates/bp-attacks/src/linear.rs crates/bp-attacks/src/pht_analysis.rs crates/bp-attacks/src/poc.rs crates/bp-attacks/src/ppp.rs crates/bp-attacks/src/threat_model.rs

/root/repo/target/release/deps/libbp_attacks-612851b0af14a0f4.rmeta: crates/bp-attacks/src/lib.rs crates/bp-attacks/src/analysis.rs crates/bp-attacks/src/blind.rs crates/bp-attacks/src/contention.rs crates/bp-attacks/src/env.rs crates/bp-attacks/src/gem.rs crates/bp-attacks/src/linear.rs crates/bp-attacks/src/pht_analysis.rs crates/bp-attacks/src/poc.rs crates/bp-attacks/src/ppp.rs crates/bp-attacks/src/threat_model.rs

crates/bp-attacks/src/lib.rs:
crates/bp-attacks/src/analysis.rs:
crates/bp-attacks/src/blind.rs:
crates/bp-attacks/src/contention.rs:
crates/bp-attacks/src/env.rs:
crates/bp-attacks/src/gem.rs:
crates/bp-attacks/src/linear.rs:
crates/bp-attacks/src/pht_analysis.rs:
crates/bp-attacks/src/poc.rs:
crates/bp-attacks/src/ppp.rs:
crates/bp-attacks/src/threat_model.rs:
