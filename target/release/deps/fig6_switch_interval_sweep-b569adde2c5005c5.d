/root/repo/target/release/deps/fig6_switch_interval_sweep-b569adde2c5005c5.d: crates/bench/src/bin/fig6_switch_interval_sweep.rs

/root/repo/target/release/deps/fig6_switch_interval_sweep-b569adde2c5005c5: crates/bench/src/bin/fig6_switch_interval_sweep.rs

crates/bench/src/bin/fig6_switch_interval_sweep.rs:
