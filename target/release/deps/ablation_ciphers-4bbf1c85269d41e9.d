/root/repo/target/release/deps/ablation_ciphers-4bbf1c85269d41e9.d: crates/bench/src/bin/ablation_ciphers.rs

/root/repo/target/release/deps/ablation_ciphers-4bbf1c85269d41e9: crates/bench/src/bin/ablation_ciphers.rs

crates/bench/src/bin/ablation_ciphers.rs:
