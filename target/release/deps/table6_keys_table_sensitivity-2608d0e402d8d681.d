/root/repo/target/release/deps/table6_keys_table_sensitivity-2608d0e402d8d681.d: crates/bench/src/bin/table6_keys_table_sensitivity.rs

/root/repo/target/release/deps/table6_keys_table_sensitivity-2608d0e402d8d681: crates/bench/src/bin/table6_keys_table_sensitivity.rs

crates/bench/src/bin/table6_keys_table_sensitivity.rs:
