/root/repo/target/release/deps/sec6_poc_training-dc7f47f31cee1d1c.d: crates/bench/src/bin/sec6_poc_training.rs

/root/repo/target/release/deps/sec6_poc_training-dc7f47f31cee1d1c: crates/bench/src/bin/sec6_poc_training.rs

crates/bench/src/bin/sec6_poc_training.rs:
