/root/repo/target/release/deps/fig7_smt_mixes-ba7f3b41d70a881b.d: crates/bench/src/bin/fig7_smt_mixes.rs

/root/repo/target/release/deps/fig7_smt_mixes-ba7f3b41d70a881b: crates/bench/src/bin/fig7_smt_mixes.rs

crates/bench/src/bin/fig7_smt_mixes.rs:
