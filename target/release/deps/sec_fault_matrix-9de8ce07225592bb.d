/root/repo/target/release/deps/sec_fault_matrix-9de8ce07225592bb.d: crates/bench/src/bin/sec_fault_matrix.rs

/root/repo/target/release/deps/sec_fault_matrix-9de8ce07225592bb: crates/bench/src/bin/sec_fault_matrix.rs

crates/bench/src/bin/sec_fault_matrix.rs:
