/root/repo/target/release/deps/hybp_repro-e228f29b0d248b89.d: src/lib.rs

/root/repo/target/release/deps/libhybp_repro-e228f29b0d248b89.rlib: src/lib.rs

/root/repo/target/release/deps/libhybp_repro-e228f29b0d248b89.rmeta: src/lib.rs

src/lib.rs:
