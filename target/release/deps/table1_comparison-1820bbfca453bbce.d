/root/repo/target/release/deps/table1_comparison-1820bbfca453bbce.d: crates/bench/src/bin/table1_comparison.rs

/root/repo/target/release/deps/table1_comparison-1820bbfca453bbce: crates/bench/src/bin/table1_comparison.rs

crates/bench/src/bin/table1_comparison.rs:
