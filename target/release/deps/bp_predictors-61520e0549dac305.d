/root/repo/target/release/deps/bp_predictors-61520e0549dac305.d: crates/bp-predictors/src/lib.rs crates/bp-predictors/src/bimodal.rs crates/bp-predictors/src/btb.rs crates/bp-predictors/src/codec.rs crates/bp-predictors/src/loop_pred.rs crates/bp-predictors/src/ras.rs crates/bp-predictors/src/sc.rs crates/bp-predictors/src/tage.rs crates/bp-predictors/src/tage_scl.rs crates/bp-predictors/src/tournament.rs

/root/repo/target/release/deps/libbp_predictors-61520e0549dac305.rlib: crates/bp-predictors/src/lib.rs crates/bp-predictors/src/bimodal.rs crates/bp-predictors/src/btb.rs crates/bp-predictors/src/codec.rs crates/bp-predictors/src/loop_pred.rs crates/bp-predictors/src/ras.rs crates/bp-predictors/src/sc.rs crates/bp-predictors/src/tage.rs crates/bp-predictors/src/tage_scl.rs crates/bp-predictors/src/tournament.rs

/root/repo/target/release/deps/libbp_predictors-61520e0549dac305.rmeta: crates/bp-predictors/src/lib.rs crates/bp-predictors/src/bimodal.rs crates/bp-predictors/src/btb.rs crates/bp-predictors/src/codec.rs crates/bp-predictors/src/loop_pred.rs crates/bp-predictors/src/ras.rs crates/bp-predictors/src/sc.rs crates/bp-predictors/src/tage.rs crates/bp-predictors/src/tage_scl.rs crates/bp-predictors/src/tournament.rs

crates/bp-predictors/src/lib.rs:
crates/bp-predictors/src/bimodal.rs:
crates/bp-predictors/src/btb.rs:
crates/bp-predictors/src/codec.rs:
crates/bp-predictors/src/loop_pred.rs:
crates/bp-predictors/src/ras.rs:
crates/bp-predictors/src/sc.rs:
crates/bp-predictors/src/tage.rs:
crates/bp-predictors/src/tage_scl.rs:
crates/bp-predictors/src/tournament.rs:
