/root/repo/target/release/deps/sec6_attack_costs-715236cefef5fd0b.d: crates/bench/src/bin/sec6_attack_costs.rs

/root/repo/target/release/deps/sec6_attack_costs-715236cefef5fd0b: crates/bench/src/bin/sec6_attack_costs.rs

crates/bench/src/bin/sec6_attack_costs.rs:
