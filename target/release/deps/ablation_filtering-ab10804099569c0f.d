/root/repo/target/release/deps/ablation_filtering-ab10804099569c0f.d: crates/bench/src/bin/ablation_filtering.rs

/root/repo/target/release/deps/ablation_filtering-ab10804099569c0f: crates/bench/src/bin/ablation_filtering.rs

crates/bench/src/bin/ablation_filtering.rs:
