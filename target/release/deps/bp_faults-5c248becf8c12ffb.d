/root/repo/target/release/deps/bp_faults-5c248becf8c12ffb.d: crates/bp-faults/src/lib.rs

/root/repo/target/release/deps/libbp_faults-5c248becf8c12ffb.rlib: crates/bp-faults/src/lib.rs

/root/repo/target/release/deps/libbp_faults-5c248becf8c12ffb.rmeta: crates/bp-faults/src/lib.rs

crates/bp-faults/src/lib.rs:
