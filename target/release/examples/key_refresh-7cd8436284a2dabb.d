/root/repo/target/release/examples/key_refresh-7cd8436284a2dabb.d: examples/key_refresh.rs

/root/repo/target/release/examples/key_refresh-7cd8436284a2dabb: examples/key_refresh.rs

examples/key_refresh.rs:
