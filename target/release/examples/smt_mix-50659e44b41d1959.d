/root/repo/target/release/examples/smt_mix-50659e44b41d1959.d: examples/smt_mix.rs

/root/repo/target/release/examples/smt_mix-50659e44b41d1959: examples/smt_mix.rs

examples/smt_mix.rs:
