/root/repo/target/release/examples/quickstart-fbd50ce2dfbd7c05.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-fbd50ce2dfbd7c05: examples/quickstart.rs

examples/quickstart.rs:
