/root/repo/target/debug/deps/bench-5bfa09ec5d21ced6.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libbench-5bfa09ec5d21ced6.rlib: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libbench-5bfa09ec5d21ced6.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
