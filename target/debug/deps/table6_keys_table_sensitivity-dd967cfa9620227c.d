/root/repo/target/debug/deps/table6_keys_table_sensitivity-dd967cfa9620227c.d: crates/bench/src/bin/table6_keys_table_sensitivity.rs

/root/repo/target/debug/deps/table6_keys_table_sensitivity-dd967cfa9620227c: crates/bench/src/bin/table6_keys_table_sensitivity.rs

crates/bench/src/bin/table6_keys_table_sensitivity.rs:
