/root/repo/target/debug/deps/mechanism_matrix-1a1204e63d5c61ef.d: tests/mechanism_matrix.rs

/root/repo/target/debug/deps/mechanism_matrix-1a1204e63d5c61ef: tests/mechanism_matrix.rs

tests/mechanism_matrix.rs:
