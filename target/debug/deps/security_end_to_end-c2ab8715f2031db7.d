/root/repo/target/debug/deps/security_end_to_end-c2ab8715f2031db7.d: tests/security_end_to_end.rs

/root/repo/target/debug/deps/security_end_to_end-c2ab8715f2031db7: tests/security_end_to_end.rs

tests/security_end_to_end.rs:
