/root/repo/target/debug/deps/table1_comparison-abd6b362c587fb49.d: crates/bench/src/bin/table1_comparison.rs

/root/repo/target/debug/deps/table1_comparison-abd6b362c587fb49: crates/bench/src/bin/table1_comparison.rs

crates/bench/src/bin/table1_comparison.rs:
