/root/repo/target/debug/deps/sec6_poc_training-d3f1b2d1a8735956.d: crates/bench/src/bin/sec6_poc_training.rs

/root/repo/target/debug/deps/sec6_poc_training-d3f1b2d1a8735956: crates/bench/src/bin/sec6_poc_training.rs

crates/bench/src/bin/sec6_poc_training.rs:
