/root/repo/target/debug/deps/sec6_poc_training-aaced4571db59b20.d: crates/bench/src/bin/sec6_poc_training.rs Cargo.toml

/root/repo/target/debug/deps/libsec6_poc_training-aaced4571db59b20.rmeta: crates/bench/src/bin/sec6_poc_training.rs Cargo.toml

crates/bench/src/bin/sec6_poc_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
