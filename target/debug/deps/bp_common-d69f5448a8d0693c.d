/root/repo/target/debug/deps/bp_common-d69f5448a8d0693c.d: crates/bp-common/src/lib.rs crates/bp-common/src/check.rs crates/bp-common/src/error.rs crates/bp-common/src/history.rs crates/bp-common/src/rng.rs crates/bp-common/src/stats.rs

/root/repo/target/debug/deps/bp_common-d69f5448a8d0693c: crates/bp-common/src/lib.rs crates/bp-common/src/check.rs crates/bp-common/src/error.rs crates/bp-common/src/history.rs crates/bp-common/src/rng.rs crates/bp-common/src/stats.rs

crates/bp-common/src/lib.rs:
crates/bp-common/src/check.rs:
crates/bp-common/src/error.rs:
crates/bp-common/src/history.rs:
crates/bp-common/src/rng.rs:
crates/bp-common/src/stats.rs:
