/root/repo/target/debug/deps/ablation_ciphers-5919076bc1687e67.d: crates/bench/src/bin/ablation_ciphers.rs Cargo.toml

/root/repo/target/debug/deps/libablation_ciphers-5919076bc1687e67.rmeta: crates/bench/src/bin/ablation_ciphers.rs Cargo.toml

crates/bench/src/bin/ablation_ciphers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
