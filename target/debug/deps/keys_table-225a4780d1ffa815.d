/root/repo/target/debug/deps/keys_table-225a4780d1ffa815.d: crates/bench/benches/keys_table.rs

/root/repo/target/debug/deps/keys_table-225a4780d1ffa815: crates/bench/benches/keys_table.rs

crates/bench/benches/keys_table.rs:
