/root/repo/target/debug/deps/keys_table-94203eda3d54363d.d: crates/bench/benches/keys_table.rs Cargo.toml

/root/repo/target/debug/deps/libkeys_table-94203eda3d54363d.rmeta: crates/bench/benches/keys_table.rs Cargo.toml

crates/bench/benches/keys_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
