/root/repo/target/debug/deps/bp_workloads-f251fefd657ef82b.d: crates/bp-workloads/src/lib.rs crates/bp-workloads/src/generator.rs crates/bp-workloads/src/mixes.rs crates/bp-workloads/src/profile.rs crates/bp-workloads/src/trace.rs

/root/repo/target/debug/deps/bp_workloads-f251fefd657ef82b: crates/bp-workloads/src/lib.rs crates/bp-workloads/src/generator.rs crates/bp-workloads/src/mixes.rs crates/bp-workloads/src/profile.rs crates/bp-workloads/src/trace.rs

crates/bp-workloads/src/lib.rs:
crates/bp-workloads/src/generator.rs:
crates/bp-workloads/src/mixes.rs:
crates/bp-workloads/src/profile.rs:
crates/bp-workloads/src/trace.rs:
