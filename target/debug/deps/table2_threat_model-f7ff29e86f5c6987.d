/root/repo/target/debug/deps/table2_threat_model-f7ff29e86f5c6987.d: crates/bench/src/bin/table2_threat_model.rs

/root/repo/target/debug/deps/table2_threat_model-f7ff29e86f5c6987: crates/bench/src/bin/table2_threat_model.rs

crates/bench/src/bin/table2_threat_model.rs:
