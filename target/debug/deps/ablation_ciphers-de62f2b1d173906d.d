/root/repo/target/debug/deps/ablation_ciphers-de62f2b1d173906d.d: crates/bench/src/bin/ablation_ciphers.rs

/root/repo/target/debug/deps/ablation_ciphers-de62f2b1d173906d: crates/bench/src/bin/ablation_ciphers.rs

crates/bench/src/bin/ablation_ciphers.rs:
