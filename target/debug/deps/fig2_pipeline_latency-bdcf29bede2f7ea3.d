/root/repo/target/debug/deps/fig2_pipeline_latency-bdcf29bede2f7ea3.d: crates/bench/src/bin/fig2_pipeline_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_pipeline_latency-bdcf29bede2f7ea3.rmeta: crates/bench/src/bin/fig2_pipeline_latency.rs Cargo.toml

crates/bench/src/bin/fig2_pipeline_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
