/root/repo/target/debug/deps/fig7_smt_mixes-95c3445b48aef6ae.d: crates/bench/src/bin/fig7_smt_mixes.rs

/root/repo/target/debug/deps/fig7_smt_mixes-95c3445b48aef6ae: crates/bench/src/bin/fig7_smt_mixes.rs

crates/bench/src/bin/fig7_smt_mixes.rs:
