/root/repo/target/debug/deps/table1_comparison-fdac988cc25c5d31.d: crates/bench/src/bin/table1_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_comparison-fdac988cc25c5d31.rmeta: crates/bench/src/bin/table1_comparison.rs Cargo.toml

crates/bench/src/bin/table1_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
