/root/repo/target/debug/deps/table2_threat_model-c4aa97a88a489fd0.d: crates/bench/src/bin/table2_threat_model.rs

/root/repo/target/debug/deps/table2_threat_model-c4aa97a88a489fd0: crates/bench/src/bin/table2_threat_model.rs

crates/bench/src/bin/table2_threat_model.rs:
