/root/repo/target/debug/deps/hybp_repro-a37b60bce125c13f.d: src/lib.rs

/root/repo/target/debug/deps/libhybp_repro-a37b60bce125c13f.rlib: src/lib.rs

/root/repo/target/debug/deps/libhybp_repro-a37b60bce125c13f.rmeta: src/lib.rs

src/lib.rs:
