/root/repo/target/debug/deps/table6_keys_table_sensitivity-6cb7725f67d28a9f.d: crates/bench/src/bin/table6_keys_table_sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libtable6_keys_table_sensitivity-6cb7725f67d28a9f.rmeta: crates/bench/src/bin/table6_keys_table_sensitivity.rs Cargo.toml

crates/bench/src/bin/table6_keys_table_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
