/root/repo/target/debug/deps/bench-a20e3885239b0944.d: crates/bench/src/lib.rs crates/bench/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libbench-a20e3885239b0944.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
