/root/repo/target/debug/deps/fig6_switch_interval_sweep-2ed5f088569ad601.d: crates/bench/src/bin/fig6_switch_interval_sweep.rs

/root/repo/target/debug/deps/fig6_switch_interval_sweep-2ed5f088569ad601: crates/bench/src/bin/fig6_switch_interval_sweep.rs

crates/bench/src/bin/fig6_switch_interval_sweep.rs:
