/root/repo/target/debug/deps/fig5_hybp_per_app-d3a9df67774cc62a.d: crates/bench/src/bin/fig5_hybp_per_app.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_hybp_per_app-d3a9df67774cc62a.rmeta: crates/bench/src/bin/fig5_hybp_per_app.rs Cargo.toml

crates/bench/src/bin/fig5_hybp_per_app.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
