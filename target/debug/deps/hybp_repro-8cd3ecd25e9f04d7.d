/root/repo/target/debug/deps/hybp_repro-8cd3ecd25e9f04d7.d: src/lib.rs

/root/repo/target/debug/deps/hybp_repro-8cd3ecd25e9f04d7: src/lib.rs

src/lib.rs:
