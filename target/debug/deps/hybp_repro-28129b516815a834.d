/root/repo/target/debug/deps/hybp_repro-28129b516815a834.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhybp_repro-28129b516815a834.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
