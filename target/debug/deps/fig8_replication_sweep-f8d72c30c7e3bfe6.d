/root/repo/target/debug/deps/fig8_replication_sweep-f8d72c30c7e3bfe6.d: crates/bench/src/bin/fig8_replication_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_replication_sweep-f8d72c30c7e3bfe6.rmeta: crates/bench/src/bin/fig8_replication_sweep.rs Cargo.toml

crates/bench/src/bin/fig8_replication_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
