/root/repo/target/debug/deps/hybp-c420ad5255522140.d: crates/hybp/src/lib.rs crates/hybp/src/bpu.rs crates/hybp/src/codec.rs crates/hybp/src/cost.rs crates/hybp/src/mechanism.rs Cargo.toml

/root/repo/target/debug/deps/libhybp-c420ad5255522140.rmeta: crates/hybp/src/lib.rs crates/hybp/src/bpu.rs crates/hybp/src/codec.rs crates/hybp/src/cost.rs crates/hybp/src/mechanism.rs Cargo.toml

crates/hybp/src/lib.rs:
crates/hybp/src/bpu.rs:
crates/hybp/src/codec.rs:
crates/hybp/src/cost.rs:
crates/hybp/src/mechanism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
