/root/repo/target/debug/deps/bp_workloads-1646c989811d5f2e.d: crates/bp-workloads/src/lib.rs crates/bp-workloads/src/generator.rs crates/bp-workloads/src/mixes.rs crates/bp-workloads/src/profile.rs crates/bp-workloads/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libbp_workloads-1646c989811d5f2e.rmeta: crates/bp-workloads/src/lib.rs crates/bp-workloads/src/generator.rs crates/bp-workloads/src/mixes.rs crates/bp-workloads/src/profile.rs crates/bp-workloads/src/trace.rs Cargo.toml

crates/bp-workloads/src/lib.rs:
crates/bp-workloads/src/generator.rs:
crates/bp-workloads/src/mixes.rs:
crates/bp-workloads/src/profile.rs:
crates/bp-workloads/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
