/root/repo/target/debug/deps/fig2_pipeline_latency-b2433ff55015294d.d: crates/bench/src/bin/fig2_pipeline_latency.rs

/root/repo/target/debug/deps/fig2_pipeline_latency-b2433ff55015294d: crates/bench/src/bin/fig2_pipeline_latency.rs

crates/bench/src/bin/fig2_pipeline_latency.rs:
