/root/repo/target/debug/deps/sec6_poc_training-f4dc77cc0187e410.d: crates/bench/src/bin/sec6_poc_training.rs

/root/repo/target/debug/deps/sec6_poc_training-f4dc77cc0187e410: crates/bench/src/bin/sec6_poc_training.rs

crates/bench/src/bin/sec6_poc_training.rs:
