/root/repo/target/debug/deps/simulator-ea81044736d24e1b.d: crates/bench/benches/simulator.rs

/root/repo/target/debug/deps/simulator-ea81044736d24e1b: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:
