/root/repo/target/debug/deps/ablation_filtering-d20e54c62cf2ce45.d: crates/bench/src/bin/ablation_filtering.rs

/root/repo/target/debug/deps/ablation_filtering-d20e54c62cf2ce45: crates/bench/src/bin/ablation_filtering.rs

crates/bench/src/bin/ablation_filtering.rs:
