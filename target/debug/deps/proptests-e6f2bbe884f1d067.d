/root/repo/target/debug/deps/proptests-e6f2bbe884f1d067.d: crates/bp-crypto/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e6f2bbe884f1d067: crates/bp-crypto/tests/proptests.rs

crates/bp-crypto/tests/proptests.rs:
