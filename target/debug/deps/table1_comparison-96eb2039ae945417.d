/root/repo/target/debug/deps/table1_comparison-96eb2039ae945417.d: crates/bench/src/bin/table1_comparison.rs

/root/repo/target/debug/deps/table1_comparison-96eb2039ae945417: crates/bench/src/bin/table1_comparison.rs

crates/bench/src/bin/table1_comparison.rs:
