/root/repo/target/debug/deps/sec7f_tage_vs_tournament-d75a2a4182619c79.d: crates/bench/src/bin/sec7f_tage_vs_tournament.rs

/root/repo/target/debug/deps/sec7f_tage_vs_tournament-d75a2a4182619c79: crates/bench/src/bin/sec7f_tage_vs_tournament.rs

crates/bench/src/bin/sec7f_tage_vs_tournament.rs:
