/root/repo/target/debug/deps/bp_attacks-0f43a38d055a743b.d: crates/bp-attacks/src/lib.rs crates/bp-attacks/src/analysis.rs crates/bp-attacks/src/blind.rs crates/bp-attacks/src/contention.rs crates/bp-attacks/src/env.rs crates/bp-attacks/src/gem.rs crates/bp-attacks/src/linear.rs crates/bp-attacks/src/pht_analysis.rs crates/bp-attacks/src/poc.rs crates/bp-attacks/src/ppp.rs crates/bp-attacks/src/threat_model.rs Cargo.toml

/root/repo/target/debug/deps/libbp_attacks-0f43a38d055a743b.rmeta: crates/bp-attacks/src/lib.rs crates/bp-attacks/src/analysis.rs crates/bp-attacks/src/blind.rs crates/bp-attacks/src/contention.rs crates/bp-attacks/src/env.rs crates/bp-attacks/src/gem.rs crates/bp-attacks/src/linear.rs crates/bp-attacks/src/pht_analysis.rs crates/bp-attacks/src/poc.rs crates/bp-attacks/src/ppp.rs crates/bp-attacks/src/threat_model.rs Cargo.toml

crates/bp-attacks/src/lib.rs:
crates/bp-attacks/src/analysis.rs:
crates/bp-attacks/src/blind.rs:
crates/bp-attacks/src/contention.rs:
crates/bp-attacks/src/env.rs:
crates/bp-attacks/src/gem.rs:
crates/bp-attacks/src/linear.rs:
crates/bp-attacks/src/pht_analysis.rs:
crates/bp-attacks/src/poc.rs:
crates/bp-attacks/src/ppp.rs:
crates/bp-attacks/src/threat_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
