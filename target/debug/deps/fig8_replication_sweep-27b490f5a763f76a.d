/root/repo/target/debug/deps/fig8_replication_sweep-27b490f5a763f76a.d: crates/bench/src/bin/fig8_replication_sweep.rs

/root/repo/target/debug/deps/fig8_replication_sweep-27b490f5a763f76a: crates/bench/src/bin/fig8_replication_sweep.rs

crates/bench/src/bin/fig8_replication_sweep.rs:
