/root/repo/target/debug/deps/bp_pipeline-9b867adf8290f954.d: crates/bp-pipeline/src/lib.rs crates/bp-pipeline/src/config.rs crates/bp-pipeline/src/error.rs crates/bp-pipeline/src/metrics.rs crates/bp-pipeline/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libbp_pipeline-9b867adf8290f954.rmeta: crates/bp-pipeline/src/lib.rs crates/bp-pipeline/src/config.rs crates/bp-pipeline/src/error.rs crates/bp-pipeline/src/metrics.rs crates/bp-pipeline/src/sim.rs Cargo.toml

crates/bp-pipeline/src/lib.rs:
crates/bp-pipeline/src/config.rs:
crates/bp-pipeline/src/error.rs:
crates/bp-pipeline/src/metrics.rs:
crates/bp-pipeline/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
