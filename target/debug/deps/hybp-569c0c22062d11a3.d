/root/repo/target/debug/deps/hybp-569c0c22062d11a3.d: crates/hybp/src/lib.rs crates/hybp/src/bpu.rs crates/hybp/src/codec.rs crates/hybp/src/cost.rs crates/hybp/src/mechanism.rs

/root/repo/target/debug/deps/hybp-569c0c22062d11a3: crates/hybp/src/lib.rs crates/hybp/src/bpu.rs crates/hybp/src/codec.rs crates/hybp/src/cost.rs crates/hybp/src/mechanism.rs

crates/hybp/src/lib.rs:
crates/hybp/src/bpu.rs:
crates/hybp/src/codec.rs:
crates/hybp/src/cost.rs:
crates/hybp/src/mechanism.rs:
