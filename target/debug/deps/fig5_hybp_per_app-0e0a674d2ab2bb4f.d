/root/repo/target/debug/deps/fig5_hybp_per_app-0e0a674d2ab2bb4f.d: crates/bench/src/bin/fig5_hybp_per_app.rs

/root/repo/target/debug/deps/fig5_hybp_per_app-0e0a674d2ab2bb4f: crates/bench/src/bin/fig5_hybp_per_app.rs

crates/bench/src/bin/fig5_hybp_per_app.rs:
