/root/repo/target/debug/deps/fig5_hybp_per_app-3f64631a6211330c.d: crates/bench/src/bin/fig5_hybp_per_app.rs

/root/repo/target/debug/deps/fig5_hybp_per_app-3f64631a6211330c: crates/bench/src/bin/fig5_hybp_per_app.rs

crates/bench/src/bin/fig5_hybp_per_app.rs:
