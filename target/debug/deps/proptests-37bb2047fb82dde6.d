/root/repo/target/debug/deps/proptests-37bb2047fb82dde6.d: crates/hybp/tests/proptests.rs

/root/repo/target/debug/deps/proptests-37bb2047fb82dde6: crates/hybp/tests/proptests.rs

crates/hybp/tests/proptests.rs:
