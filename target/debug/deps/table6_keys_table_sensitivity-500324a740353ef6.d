/root/repo/target/debug/deps/table6_keys_table_sensitivity-500324a740353ef6.d: crates/bench/src/bin/table6_keys_table_sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libtable6_keys_table_sensitivity-500324a740353ef6.rmeta: crates/bench/src/bin/table6_keys_table_sensitivity.rs Cargo.toml

crates/bench/src/bin/table6_keys_table_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
