/root/repo/target/debug/deps/sec7f_tage_vs_tournament-0f49971d14b0f68b.d: crates/bench/src/bin/sec7f_tage_vs_tournament.rs Cargo.toml

/root/repo/target/debug/deps/libsec7f_tage_vs_tournament-0f49971d14b0f68b.rmeta: crates/bench/src/bin/sec7f_tage_vs_tournament.rs Cargo.toml

crates/bench/src/bin/sec7f_tage_vs_tournament.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
