/root/repo/target/debug/deps/proptests-a0cdae6a0c196d2a.d: crates/bp-predictors/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a0cdae6a0c196d2a: crates/bp-predictors/tests/proptests.rs

crates/bp-predictors/tests/proptests.rs:
