/root/repo/target/debug/deps/sec6_poc_training-3953c755357d20a0.d: crates/bench/src/bin/sec6_poc_training.rs

/root/repo/target/debug/deps/sec6_poc_training-3953c755357d20a0: crates/bench/src/bin/sec6_poc_training.rs

crates/bench/src/bin/sec6_poc_training.rs:
