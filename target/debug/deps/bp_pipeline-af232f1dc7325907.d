/root/repo/target/debug/deps/bp_pipeline-af232f1dc7325907.d: crates/bp-pipeline/src/lib.rs crates/bp-pipeline/src/config.rs crates/bp-pipeline/src/error.rs crates/bp-pipeline/src/metrics.rs crates/bp-pipeline/src/sim.rs

/root/repo/target/debug/deps/bp_pipeline-af232f1dc7325907: crates/bp-pipeline/src/lib.rs crates/bp-pipeline/src/config.rs crates/bp-pipeline/src/error.rs crates/bp-pipeline/src/metrics.rs crates/bp-pipeline/src/sim.rs

crates/bp-pipeline/src/lib.rs:
crates/bp-pipeline/src/config.rs:
crates/bp-pipeline/src/error.rs:
crates/bp-pipeline/src/metrics.rs:
crates/bp-pipeline/src/sim.rs:
