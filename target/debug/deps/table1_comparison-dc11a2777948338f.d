/root/repo/target/debug/deps/table1_comparison-dc11a2777948338f.d: crates/bench/src/bin/table1_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_comparison-dc11a2777948338f.rmeta: crates/bench/src/bin/table1_comparison.rs Cargo.toml

crates/bench/src/bin/table1_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
