/root/repo/target/debug/deps/end_to_end-210d5191b7b145e3.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-210d5191b7b145e3: tests/end_to_end.rs

tests/end_to_end.rs:
