/root/repo/target/debug/deps/hybp_repro-5339ac88076d8b0d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhybp_repro-5339ac88076d8b0d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
