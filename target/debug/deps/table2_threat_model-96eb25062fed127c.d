/root/repo/target/debug/deps/table2_threat_model-96eb25062fed127c.d: crates/bench/src/bin/table2_threat_model.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_threat_model-96eb25062fed127c.rmeta: crates/bench/src/bin/table2_threat_model.rs Cargo.toml

crates/bench/src/bin/table2_threat_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
