/root/repo/target/debug/deps/fig8_replication_sweep-b27fbd1f2247cae5.d: crates/bench/src/bin/fig8_replication_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_replication_sweep-b27fbd1f2247cae5.rmeta: crates/bench/src/bin/fig8_replication_sweep.rs Cargo.toml

crates/bench/src/bin/fig8_replication_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
