/root/repo/target/debug/deps/fig5_hybp_per_app-01bf3b9ef4ca2643.d: crates/bench/src/bin/fig5_hybp_per_app.rs

/root/repo/target/debug/deps/fig5_hybp_per_app-01bf3b9ef4ca2643: crates/bench/src/bin/fig5_hybp_per_app.rs

crates/bench/src/bin/fig5_hybp_per_app.rs:
