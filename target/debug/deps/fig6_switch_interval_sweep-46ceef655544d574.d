/root/repo/target/debug/deps/fig6_switch_interval_sweep-46ceef655544d574.d: crates/bench/src/bin/fig6_switch_interval_sweep.rs

/root/repo/target/debug/deps/fig6_switch_interval_sweep-46ceef655544d574: crates/bench/src/bin/fig6_switch_interval_sweep.rs

crates/bench/src/bin/fig6_switch_interval_sweep.rs:
