/root/repo/target/debug/deps/predictors-fed796d0372e82f3.d: crates/bench/benches/predictors.rs

/root/repo/target/debug/deps/predictors-fed796d0372e82f3: crates/bench/benches/predictors.rs

crates/bench/benches/predictors.rs:
