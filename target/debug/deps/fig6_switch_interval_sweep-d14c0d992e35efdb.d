/root/repo/target/debug/deps/fig6_switch_interval_sweep-d14c0d992e35efdb.d: crates/bench/src/bin/fig6_switch_interval_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_switch_interval_sweep-d14c0d992e35efdb.rmeta: crates/bench/src/bin/fig6_switch_interval_sweep.rs Cargo.toml

crates/bench/src/bin/fig6_switch_interval_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
