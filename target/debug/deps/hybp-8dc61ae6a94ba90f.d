/root/repo/target/debug/deps/hybp-8dc61ae6a94ba90f.d: crates/hybp/src/lib.rs crates/hybp/src/bpu.rs crates/hybp/src/codec.rs crates/hybp/src/cost.rs crates/hybp/src/mechanism.rs

/root/repo/target/debug/deps/libhybp-8dc61ae6a94ba90f.rlib: crates/hybp/src/lib.rs crates/hybp/src/bpu.rs crates/hybp/src/codec.rs crates/hybp/src/cost.rs crates/hybp/src/mechanism.rs

/root/repo/target/debug/deps/libhybp-8dc61ae6a94ba90f.rmeta: crates/hybp/src/lib.rs crates/hybp/src/bpu.rs crates/hybp/src/codec.rs crates/hybp/src/cost.rs crates/hybp/src/mechanism.rs

crates/hybp/src/lib.rs:
crates/hybp/src/bpu.rs:
crates/hybp/src/codec.rs:
crates/hybp/src/cost.rs:
crates/hybp/src/mechanism.rs:
