/root/repo/target/debug/deps/ciphers-924c69d4dc156e07.d: crates/bench/benches/ciphers.rs Cargo.toml

/root/repo/target/debug/deps/libciphers-924c69d4dc156e07.rmeta: crates/bench/benches/ciphers.rs Cargo.toml

crates/bench/benches/ciphers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
