/root/repo/target/debug/deps/fig6_switch_interval_sweep-167deddd4adbc158.d: crates/bench/src/bin/fig6_switch_interval_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_switch_interval_sweep-167deddd4adbc158.rmeta: crates/bench/src/bin/fig6_switch_interval_sweep.rs Cargo.toml

crates/bench/src/bin/fig6_switch_interval_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
