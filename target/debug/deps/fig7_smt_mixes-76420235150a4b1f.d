/root/repo/target/debug/deps/fig7_smt_mixes-76420235150a4b1f.d: crates/bench/src/bin/fig7_smt_mixes.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_smt_mixes-76420235150a4b1f.rmeta: crates/bench/src/bin/fig7_smt_mixes.rs Cargo.toml

crates/bench/src/bin/fig7_smt_mixes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
