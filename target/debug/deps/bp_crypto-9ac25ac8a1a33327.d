/root/repo/target/debug/deps/bp_crypto-9ac25ac8a1a33327.d: crates/bp-crypto/src/lib.rs crates/bp-crypto/src/keys.rs crates/bp-crypto/src/llbc.rs crates/bp-crypto/src/prince.rs crates/bp-crypto/src/qarma.rs

/root/repo/target/debug/deps/bp_crypto-9ac25ac8a1a33327: crates/bp-crypto/src/lib.rs crates/bp-crypto/src/keys.rs crates/bp-crypto/src/llbc.rs crates/bp-crypto/src/prince.rs crates/bp-crypto/src/qarma.rs

crates/bp-crypto/src/lib.rs:
crates/bp-crypto/src/keys.rs:
crates/bp-crypto/src/llbc.rs:
crates/bp-crypto/src/prince.rs:
crates/bp-crypto/src/qarma.rs:
