/root/repo/target/debug/deps/proptests-f872aeb5ed663354.d: crates/bp-common/tests/proptests.rs

/root/repo/target/debug/deps/proptests-f872aeb5ed663354: crates/bp-common/tests/proptests.rs

crates/bp-common/tests/proptests.rs:
