/root/repo/target/debug/deps/fault_injection-4b1af865fae81287.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-4b1af865fae81287: tests/fault_injection.rs

tests/fault_injection.rs:
