/root/repo/target/debug/deps/table6_keys_table_sensitivity-83c1e921ab44752d.d: crates/bench/src/bin/table6_keys_table_sensitivity.rs

/root/repo/target/debug/deps/table6_keys_table_sensitivity-83c1e921ab44752d: crates/bench/src/bin/table6_keys_table_sensitivity.rs

crates/bench/src/bin/table6_keys_table_sensitivity.rs:
