/root/repo/target/debug/deps/fig7_smt_mixes-af86369db70093c5.d: crates/bench/src/bin/fig7_smt_mixes.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_smt_mixes-af86369db70093c5.rmeta: crates/bench/src/bin/fig7_smt_mixes.rs Cargo.toml

crates/bench/src/bin/fig7_smt_mixes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
