/root/repo/target/debug/deps/sec7f_tage_vs_tournament-407d0be7fdeb96a2.d: crates/bench/src/bin/sec7f_tage_vs_tournament.rs

/root/repo/target/debug/deps/sec7f_tage_vs_tournament-407d0be7fdeb96a2: crates/bench/src/bin/sec7f_tage_vs_tournament.rs

crates/bench/src/bin/sec7f_tage_vs_tournament.rs:
