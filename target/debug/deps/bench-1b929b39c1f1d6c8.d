/root/repo/target/debug/deps/bench-1b929b39c1f1d6c8.d: crates/bench/src/lib.rs crates/bench/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libbench-1b929b39c1f1d6c8.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
