/root/repo/target/debug/deps/sec6_attack_costs-95e093165a070226.d: crates/bench/src/bin/sec6_attack_costs.rs

/root/repo/target/debug/deps/sec6_attack_costs-95e093165a070226: crates/bench/src/bin/sec6_attack_costs.rs

crates/bench/src/bin/sec6_attack_costs.rs:
