/root/repo/target/debug/deps/table1_comparison-2dd3898bc6d0b445.d: crates/bench/src/bin/table1_comparison.rs

/root/repo/target/debug/deps/table1_comparison-2dd3898bc6d0b445: crates/bench/src/bin/table1_comparison.rs

crates/bench/src/bin/table1_comparison.rs:
