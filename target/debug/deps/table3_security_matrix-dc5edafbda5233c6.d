/root/repo/target/debug/deps/table3_security_matrix-dc5edafbda5233c6.d: crates/bench/src/bin/table3_security_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_security_matrix-dc5edafbda5233c6.rmeta: crates/bench/src/bin/table3_security_matrix.rs Cargo.toml

crates/bench/src/bin/table3_security_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
