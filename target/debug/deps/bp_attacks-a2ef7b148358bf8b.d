/root/repo/target/debug/deps/bp_attacks-a2ef7b148358bf8b.d: crates/bp-attacks/src/lib.rs crates/bp-attacks/src/analysis.rs crates/bp-attacks/src/blind.rs crates/bp-attacks/src/contention.rs crates/bp-attacks/src/env.rs crates/bp-attacks/src/gem.rs crates/bp-attacks/src/linear.rs crates/bp-attacks/src/pht_analysis.rs crates/bp-attacks/src/poc.rs crates/bp-attacks/src/ppp.rs crates/bp-attacks/src/threat_model.rs

/root/repo/target/debug/deps/bp_attacks-a2ef7b148358bf8b: crates/bp-attacks/src/lib.rs crates/bp-attacks/src/analysis.rs crates/bp-attacks/src/blind.rs crates/bp-attacks/src/contention.rs crates/bp-attacks/src/env.rs crates/bp-attacks/src/gem.rs crates/bp-attacks/src/linear.rs crates/bp-attacks/src/pht_analysis.rs crates/bp-attacks/src/poc.rs crates/bp-attacks/src/ppp.rs crates/bp-attacks/src/threat_model.rs

crates/bp-attacks/src/lib.rs:
crates/bp-attacks/src/analysis.rs:
crates/bp-attacks/src/blind.rs:
crates/bp-attacks/src/contention.rs:
crates/bp-attacks/src/env.rs:
crates/bp-attacks/src/gem.rs:
crates/bp-attacks/src/linear.rs:
crates/bp-attacks/src/pht_analysis.rs:
crates/bp-attacks/src/poc.rs:
crates/bp-attacks/src/ppp.rs:
crates/bp-attacks/src/threat_model.rs:
