/root/repo/target/debug/deps/fig2_pipeline_latency-c6e77733f6352c75.d: crates/bench/src/bin/fig2_pipeline_latency.rs

/root/repo/target/debug/deps/fig2_pipeline_latency-c6e77733f6352c75: crates/bench/src/bin/fig2_pipeline_latency.rs

crates/bench/src/bin/fig2_pipeline_latency.rs:
