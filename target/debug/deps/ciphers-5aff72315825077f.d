/root/repo/target/debug/deps/ciphers-5aff72315825077f.d: crates/bench/benches/ciphers.rs

/root/repo/target/debug/deps/ciphers-5aff72315825077f: crates/bench/benches/ciphers.rs

crates/bench/benches/ciphers.rs:
