/root/repo/target/debug/deps/ablation_filtering-cf5be7ed06bfd5fa.d: crates/bench/src/bin/ablation_filtering.rs

/root/repo/target/debug/deps/ablation_filtering-cf5be7ed06bfd5fa: crates/bench/src/bin/ablation_filtering.rs

crates/bench/src/bin/ablation_filtering.rs:
