/root/repo/target/debug/deps/predictors-e0a52933912d2b16.d: crates/bench/benches/predictors.rs Cargo.toml

/root/repo/target/debug/deps/libpredictors-e0a52933912d2b16.rmeta: crates/bench/benches/predictors.rs Cargo.toml

crates/bench/benches/predictors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
