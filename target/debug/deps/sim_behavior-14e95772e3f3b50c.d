/root/repo/target/debug/deps/sim_behavior-14e95772e3f3b50c.d: crates/bp-pipeline/tests/sim_behavior.rs

/root/repo/target/debug/deps/sim_behavior-14e95772e3f3b50c: crates/bp-pipeline/tests/sim_behavior.rs

crates/bp-pipeline/tests/sim_behavior.rs:
