/root/repo/target/debug/deps/bench-55c3b819170cb9ed.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/bench-55c3b819170cb9ed: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
