/root/repo/target/debug/deps/bench-0b843fdec08c0ce3.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/bench-0b843fdec08c0ce3: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
