/root/repo/target/debug/deps/sec6_attack_costs-1d06162a7f0f1b62.d: crates/bench/src/bin/sec6_attack_costs.rs

/root/repo/target/debug/deps/sec6_attack_costs-1d06162a7f0f1b62: crates/bench/src/bin/sec6_attack_costs.rs

crates/bench/src/bin/sec6_attack_costs.rs:
