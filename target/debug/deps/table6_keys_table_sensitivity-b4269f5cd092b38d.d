/root/repo/target/debug/deps/table6_keys_table_sensitivity-b4269f5cd092b38d.d: crates/bench/src/bin/table6_keys_table_sensitivity.rs

/root/repo/target/debug/deps/table6_keys_table_sensitivity-b4269f5cd092b38d: crates/bench/src/bin/table6_keys_table_sensitivity.rs

crates/bench/src/bin/table6_keys_table_sensitivity.rs:
