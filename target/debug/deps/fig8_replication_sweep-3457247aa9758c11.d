/root/repo/target/debug/deps/fig8_replication_sweep-3457247aa9758c11.d: crates/bench/src/bin/fig8_replication_sweep.rs

/root/repo/target/debug/deps/fig8_replication_sweep-3457247aa9758c11: crates/bench/src/bin/fig8_replication_sweep.rs

crates/bench/src/bin/fig8_replication_sweep.rs:
