/root/repo/target/debug/deps/bp_faults-e5da3cc5ff3c120c.d: crates/bp-faults/src/lib.rs

/root/repo/target/debug/deps/libbp_faults-e5da3cc5ff3c120c.rlib: crates/bp-faults/src/lib.rs

/root/repo/target/debug/deps/libbp_faults-e5da3cc5ff3c120c.rmeta: crates/bp-faults/src/lib.rs

crates/bp-faults/src/lib.rs:
