/root/repo/target/debug/deps/sec_fault_matrix-922af64992443753.d: crates/bench/src/bin/sec_fault_matrix.rs

/root/repo/target/debug/deps/sec_fault_matrix-922af64992443753: crates/bench/src/bin/sec_fault_matrix.rs

crates/bench/src/bin/sec_fault_matrix.rs:
