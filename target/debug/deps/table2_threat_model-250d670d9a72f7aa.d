/root/repo/target/debug/deps/table2_threat_model-250d670d9a72f7aa.d: crates/bench/src/bin/table2_threat_model.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_threat_model-250d670d9a72f7aa.rmeta: crates/bench/src/bin/table2_threat_model.rs Cargo.toml

crates/bench/src/bin/table2_threat_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
