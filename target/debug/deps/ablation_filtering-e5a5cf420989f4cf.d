/root/repo/target/debug/deps/ablation_filtering-e5a5cf420989f4cf.d: crates/bench/src/bin/ablation_filtering.rs Cargo.toml

/root/repo/target/debug/deps/libablation_filtering-e5a5cf420989f4cf.rmeta: crates/bench/src/bin/ablation_filtering.rs Cargo.toml

crates/bench/src/bin/ablation_filtering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
