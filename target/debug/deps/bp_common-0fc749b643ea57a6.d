/root/repo/target/debug/deps/bp_common-0fc749b643ea57a6.d: crates/bp-common/src/lib.rs crates/bp-common/src/check.rs crates/bp-common/src/error.rs crates/bp-common/src/history.rs crates/bp-common/src/rng.rs crates/bp-common/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libbp_common-0fc749b643ea57a6.rmeta: crates/bp-common/src/lib.rs crates/bp-common/src/check.rs crates/bp-common/src/error.rs crates/bp-common/src/history.rs crates/bp-common/src/rng.rs crates/bp-common/src/stats.rs Cargo.toml

crates/bp-common/src/lib.rs:
crates/bp-common/src/check.rs:
crates/bp-common/src/error.rs:
crates/bp-common/src/history.rs:
crates/bp-common/src/rng.rs:
crates/bp-common/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
