/root/repo/target/debug/deps/bp_workloads-3f12fe02fa470982.d: crates/bp-workloads/src/lib.rs crates/bp-workloads/src/generator.rs crates/bp-workloads/src/mixes.rs crates/bp-workloads/src/profile.rs crates/bp-workloads/src/trace.rs

/root/repo/target/debug/deps/libbp_workloads-3f12fe02fa470982.rlib: crates/bp-workloads/src/lib.rs crates/bp-workloads/src/generator.rs crates/bp-workloads/src/mixes.rs crates/bp-workloads/src/profile.rs crates/bp-workloads/src/trace.rs

/root/repo/target/debug/deps/libbp_workloads-3f12fe02fa470982.rmeta: crates/bp-workloads/src/lib.rs crates/bp-workloads/src/generator.rs crates/bp-workloads/src/mixes.rs crates/bp-workloads/src/profile.rs crates/bp-workloads/src/trace.rs

crates/bp-workloads/src/lib.rs:
crates/bp-workloads/src/generator.rs:
crates/bp-workloads/src/mixes.rs:
crates/bp-workloads/src/profile.rs:
crates/bp-workloads/src/trace.rs:
