/root/repo/target/debug/deps/fig2_pipeline_latency-985ea95213dd99af.d: crates/bench/src/bin/fig2_pipeline_latency.rs

/root/repo/target/debug/deps/fig2_pipeline_latency-985ea95213dd99af: crates/bench/src/bin/fig2_pipeline_latency.rs

crates/bench/src/bin/fig2_pipeline_latency.rs:
