/root/repo/target/debug/deps/ablation_ciphers-b798e6e087095541.d: crates/bench/src/bin/ablation_ciphers.rs Cargo.toml

/root/repo/target/debug/deps/libablation_ciphers-b798e6e087095541.rmeta: crates/bench/src/bin/ablation_ciphers.rs Cargo.toml

crates/bench/src/bin/ablation_ciphers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
