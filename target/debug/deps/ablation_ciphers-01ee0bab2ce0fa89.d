/root/repo/target/debug/deps/ablation_ciphers-01ee0bab2ce0fa89.d: crates/bench/src/bin/ablation_ciphers.rs

/root/repo/target/debug/deps/ablation_ciphers-01ee0bab2ce0fa89: crates/bench/src/bin/ablation_ciphers.rs

crates/bench/src/bin/ablation_ciphers.rs:
