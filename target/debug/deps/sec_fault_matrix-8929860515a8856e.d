/root/repo/target/debug/deps/sec_fault_matrix-8929860515a8856e.d: crates/bench/src/bin/sec_fault_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libsec_fault_matrix-8929860515a8856e.rmeta: crates/bench/src/bin/sec_fault_matrix.rs Cargo.toml

crates/bench/src/bin/sec_fault_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
