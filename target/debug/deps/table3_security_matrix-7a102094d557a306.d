/root/repo/target/debug/deps/table3_security_matrix-7a102094d557a306.d: crates/bench/src/bin/table3_security_matrix.rs

/root/repo/target/debug/deps/table3_security_matrix-7a102094d557a306: crates/bench/src/bin/table3_security_matrix.rs

crates/bench/src/bin/table3_security_matrix.rs:
