/root/repo/target/debug/deps/sec_fault_matrix-51c9c87cb73678db.d: crates/bench/src/bin/sec_fault_matrix.rs

/root/repo/target/debug/deps/sec_fault_matrix-51c9c87cb73678db: crates/bench/src/bin/sec_fault_matrix.rs

crates/bench/src/bin/sec_fault_matrix.rs:
