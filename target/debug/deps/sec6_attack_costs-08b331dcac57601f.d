/root/repo/target/debug/deps/sec6_attack_costs-08b331dcac57601f.d: crates/bench/src/bin/sec6_attack_costs.rs Cargo.toml

/root/repo/target/debug/deps/libsec6_attack_costs-08b331dcac57601f.rmeta: crates/bench/src/bin/sec6_attack_costs.rs Cargo.toml

crates/bench/src/bin/sec6_attack_costs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
