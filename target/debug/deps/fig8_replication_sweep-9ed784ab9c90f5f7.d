/root/repo/target/debug/deps/fig8_replication_sweep-9ed784ab9c90f5f7.d: crates/bench/src/bin/fig8_replication_sweep.rs

/root/repo/target/debug/deps/fig8_replication_sweep-9ed784ab9c90f5f7: crates/bench/src/bin/fig8_replication_sweep.rs

crates/bench/src/bin/fig8_replication_sweep.rs:
