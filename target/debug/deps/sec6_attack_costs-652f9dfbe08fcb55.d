/root/repo/target/debug/deps/sec6_attack_costs-652f9dfbe08fcb55.d: crates/bench/src/bin/sec6_attack_costs.rs

/root/repo/target/debug/deps/sec6_attack_costs-652f9dfbe08fcb55: crates/bench/src/bin/sec6_attack_costs.rs

crates/bench/src/bin/sec6_attack_costs.rs:
