/root/repo/target/debug/deps/ablation_filtering-7c38a3dca08d9b07.d: crates/bench/src/bin/ablation_filtering.rs

/root/repo/target/debug/deps/ablation_filtering-7c38a3dca08d9b07: crates/bench/src/bin/ablation_filtering.rs

crates/bench/src/bin/ablation_filtering.rs:
