/root/repo/target/debug/deps/fig7_smt_mixes-0a1c79e103cd197c.d: crates/bench/src/bin/fig7_smt_mixes.rs

/root/repo/target/debug/deps/fig7_smt_mixes-0a1c79e103cd197c: crates/bench/src/bin/fig7_smt_mixes.rs

crates/bench/src/bin/fig7_smt_mixes.rs:
