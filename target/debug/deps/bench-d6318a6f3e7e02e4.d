/root/repo/target/debug/deps/bench-d6318a6f3e7e02e4.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libbench-d6318a6f3e7e02e4.rlib: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libbench-d6318a6f3e7e02e4.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
