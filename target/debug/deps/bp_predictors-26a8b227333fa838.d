/root/repo/target/debug/deps/bp_predictors-26a8b227333fa838.d: crates/bp-predictors/src/lib.rs crates/bp-predictors/src/bimodal.rs crates/bp-predictors/src/btb.rs crates/bp-predictors/src/codec.rs crates/bp-predictors/src/loop_pred.rs crates/bp-predictors/src/ras.rs crates/bp-predictors/src/sc.rs crates/bp-predictors/src/tage.rs crates/bp-predictors/src/tage_scl.rs crates/bp-predictors/src/tournament.rs

/root/repo/target/debug/deps/bp_predictors-26a8b227333fa838: crates/bp-predictors/src/lib.rs crates/bp-predictors/src/bimodal.rs crates/bp-predictors/src/btb.rs crates/bp-predictors/src/codec.rs crates/bp-predictors/src/loop_pred.rs crates/bp-predictors/src/ras.rs crates/bp-predictors/src/sc.rs crates/bp-predictors/src/tage.rs crates/bp-predictors/src/tage_scl.rs crates/bp-predictors/src/tournament.rs

crates/bp-predictors/src/lib.rs:
crates/bp-predictors/src/bimodal.rs:
crates/bp-predictors/src/btb.rs:
crates/bp-predictors/src/codec.rs:
crates/bp-predictors/src/loop_pred.rs:
crates/bp-predictors/src/ras.rs:
crates/bp-predictors/src/sc.rs:
crates/bp-predictors/src/tage.rs:
crates/bp-predictors/src/tage_scl.rs:
crates/bp-predictors/src/tournament.rs:
