/root/repo/target/debug/deps/mechanism_matrix-9bb7cbde29a96c4e.d: tests/mechanism_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libmechanism_matrix-9bb7cbde29a96c4e.rmeta: tests/mechanism_matrix.rs Cargo.toml

tests/mechanism_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
