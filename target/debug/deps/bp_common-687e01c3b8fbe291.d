/root/repo/target/debug/deps/bp_common-687e01c3b8fbe291.d: crates/bp-common/src/lib.rs crates/bp-common/src/check.rs crates/bp-common/src/error.rs crates/bp-common/src/history.rs crates/bp-common/src/rng.rs crates/bp-common/src/stats.rs

/root/repo/target/debug/deps/libbp_common-687e01c3b8fbe291.rlib: crates/bp-common/src/lib.rs crates/bp-common/src/check.rs crates/bp-common/src/error.rs crates/bp-common/src/history.rs crates/bp-common/src/rng.rs crates/bp-common/src/stats.rs

/root/repo/target/debug/deps/libbp_common-687e01c3b8fbe291.rmeta: crates/bp-common/src/lib.rs crates/bp-common/src/check.rs crates/bp-common/src/error.rs crates/bp-common/src/history.rs crates/bp-common/src/rng.rs crates/bp-common/src/stats.rs

crates/bp-common/src/lib.rs:
crates/bp-common/src/check.rs:
crates/bp-common/src/error.rs:
crates/bp-common/src/history.rs:
crates/bp-common/src/rng.rs:
crates/bp-common/src/stats.rs:
