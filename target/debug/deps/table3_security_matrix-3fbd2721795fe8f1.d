/root/repo/target/debug/deps/table3_security_matrix-3fbd2721795fe8f1.d: crates/bench/src/bin/table3_security_matrix.rs

/root/repo/target/debug/deps/table3_security_matrix-3fbd2721795fe8f1: crates/bench/src/bin/table3_security_matrix.rs

crates/bench/src/bin/table3_security_matrix.rs:
