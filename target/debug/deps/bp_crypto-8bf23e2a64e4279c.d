/root/repo/target/debug/deps/bp_crypto-8bf23e2a64e4279c.d: crates/bp-crypto/src/lib.rs crates/bp-crypto/src/keys.rs crates/bp-crypto/src/llbc.rs crates/bp-crypto/src/prince.rs crates/bp-crypto/src/qarma.rs Cargo.toml

/root/repo/target/debug/deps/libbp_crypto-8bf23e2a64e4279c.rmeta: crates/bp-crypto/src/lib.rs crates/bp-crypto/src/keys.rs crates/bp-crypto/src/llbc.rs crates/bp-crypto/src/prince.rs crates/bp-crypto/src/qarma.rs Cargo.toml

crates/bp-crypto/src/lib.rs:
crates/bp-crypto/src/keys.rs:
crates/bp-crypto/src/llbc.rs:
crates/bp-crypto/src/prince.rs:
crates/bp-crypto/src/qarma.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
