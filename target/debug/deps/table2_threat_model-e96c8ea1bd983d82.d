/root/repo/target/debug/deps/table2_threat_model-e96c8ea1bd983d82.d: crates/bench/src/bin/table2_threat_model.rs

/root/repo/target/debug/deps/table2_threat_model-e96c8ea1bd983d82: crates/bench/src/bin/table2_threat_model.rs

crates/bench/src/bin/table2_threat_model.rs:
