/root/repo/target/debug/deps/sec7f_tage_vs_tournament-1416c0a1e764a470.d: crates/bench/src/bin/sec7f_tage_vs_tournament.rs

/root/repo/target/debug/deps/sec7f_tage_vs_tournament-1416c0a1e764a470: crates/bench/src/bin/sec7f_tage_vs_tournament.rs

crates/bench/src/bin/sec7f_tage_vs_tournament.rs:
