/root/repo/target/debug/deps/sec_fault_matrix-60573b888d15f20d.d: crates/bench/src/bin/sec_fault_matrix.rs

/root/repo/target/debug/deps/sec_fault_matrix-60573b888d15f20d: crates/bench/src/bin/sec_fault_matrix.rs

crates/bench/src/bin/sec_fault_matrix.rs:
