/root/repo/target/debug/deps/fig6_switch_interval_sweep-0385b5a00fc469dd.d: crates/bench/src/bin/fig6_switch_interval_sweep.rs

/root/repo/target/debug/deps/fig6_switch_interval_sweep-0385b5a00fc469dd: crates/bench/src/bin/fig6_switch_interval_sweep.rs

crates/bench/src/bin/fig6_switch_interval_sweep.rs:
