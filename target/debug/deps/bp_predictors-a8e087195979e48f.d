/root/repo/target/debug/deps/bp_predictors-a8e087195979e48f.d: crates/bp-predictors/src/lib.rs crates/bp-predictors/src/bimodal.rs crates/bp-predictors/src/btb.rs crates/bp-predictors/src/codec.rs crates/bp-predictors/src/loop_pred.rs crates/bp-predictors/src/ras.rs crates/bp-predictors/src/sc.rs crates/bp-predictors/src/tage.rs crates/bp-predictors/src/tage_scl.rs crates/bp-predictors/src/tournament.rs Cargo.toml

/root/repo/target/debug/deps/libbp_predictors-a8e087195979e48f.rmeta: crates/bp-predictors/src/lib.rs crates/bp-predictors/src/bimodal.rs crates/bp-predictors/src/btb.rs crates/bp-predictors/src/codec.rs crates/bp-predictors/src/loop_pred.rs crates/bp-predictors/src/ras.rs crates/bp-predictors/src/sc.rs crates/bp-predictors/src/tage.rs crates/bp-predictors/src/tage_scl.rs crates/bp-predictors/src/tournament.rs Cargo.toml

crates/bp-predictors/src/lib.rs:
crates/bp-predictors/src/bimodal.rs:
crates/bp-predictors/src/btb.rs:
crates/bp-predictors/src/codec.rs:
crates/bp-predictors/src/loop_pred.rs:
crates/bp-predictors/src/ras.rs:
crates/bp-predictors/src/sc.rs:
crates/bp-predictors/src/tage.rs:
crates/bp-predictors/src/tage_scl.rs:
crates/bp-predictors/src/tournament.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
