/root/repo/target/debug/deps/ablation_filtering-c3f1299f837aff60.d: crates/bench/src/bin/ablation_filtering.rs Cargo.toml

/root/repo/target/debug/deps/libablation_filtering-c3f1299f837aff60.rmeta: crates/bench/src/bin/ablation_filtering.rs Cargo.toml

crates/bench/src/bin/ablation_filtering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
