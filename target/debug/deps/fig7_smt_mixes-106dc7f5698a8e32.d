/root/repo/target/debug/deps/fig7_smt_mixes-106dc7f5698a8e32.d: crates/bench/src/bin/fig7_smt_mixes.rs

/root/repo/target/debug/deps/fig7_smt_mixes-106dc7f5698a8e32: crates/bench/src/bin/fig7_smt_mixes.rs

crates/bench/src/bin/fig7_smt_mixes.rs:
