/root/repo/target/debug/deps/table3_security_matrix-d4fed0ed4ebf4eb7.d: crates/bench/src/bin/table3_security_matrix.rs

/root/repo/target/debug/deps/table3_security_matrix-d4fed0ed4ebf4eb7: crates/bench/src/bin/table3_security_matrix.rs

crates/bench/src/bin/table3_security_matrix.rs:
