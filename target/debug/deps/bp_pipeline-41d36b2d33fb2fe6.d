/root/repo/target/debug/deps/bp_pipeline-41d36b2d33fb2fe6.d: crates/bp-pipeline/src/lib.rs crates/bp-pipeline/src/config.rs crates/bp-pipeline/src/error.rs crates/bp-pipeline/src/metrics.rs crates/bp-pipeline/src/sim.rs

/root/repo/target/debug/deps/libbp_pipeline-41d36b2d33fb2fe6.rlib: crates/bp-pipeline/src/lib.rs crates/bp-pipeline/src/config.rs crates/bp-pipeline/src/error.rs crates/bp-pipeline/src/metrics.rs crates/bp-pipeline/src/sim.rs

/root/repo/target/debug/deps/libbp_pipeline-41d36b2d33fb2fe6.rmeta: crates/bp-pipeline/src/lib.rs crates/bp-pipeline/src/config.rs crates/bp-pipeline/src/error.rs crates/bp-pipeline/src/metrics.rs crates/bp-pipeline/src/sim.rs

crates/bp-pipeline/src/lib.rs:
crates/bp-pipeline/src/config.rs:
crates/bp-pipeline/src/error.rs:
crates/bp-pipeline/src/metrics.rs:
crates/bp-pipeline/src/sim.rs:
