/root/repo/target/debug/deps/ablation_ciphers-41898328e59e1098.d: crates/bench/src/bin/ablation_ciphers.rs

/root/repo/target/debug/deps/ablation_ciphers-41898328e59e1098: crates/bench/src/bin/ablation_ciphers.rs

crates/bench/src/bin/ablation_ciphers.rs:
