/root/repo/target/debug/deps/bp_crypto-e1b8b33d6b6f9e3a.d: crates/bp-crypto/src/lib.rs crates/bp-crypto/src/keys.rs crates/bp-crypto/src/llbc.rs crates/bp-crypto/src/prince.rs crates/bp-crypto/src/qarma.rs

/root/repo/target/debug/deps/libbp_crypto-e1b8b33d6b6f9e3a.rlib: crates/bp-crypto/src/lib.rs crates/bp-crypto/src/keys.rs crates/bp-crypto/src/llbc.rs crates/bp-crypto/src/prince.rs crates/bp-crypto/src/qarma.rs

/root/repo/target/debug/deps/libbp_crypto-e1b8b33d6b6f9e3a.rmeta: crates/bp-crypto/src/lib.rs crates/bp-crypto/src/keys.rs crates/bp-crypto/src/llbc.rs crates/bp-crypto/src/prince.rs crates/bp-crypto/src/qarma.rs

crates/bp-crypto/src/lib.rs:
crates/bp-crypto/src/keys.rs:
crates/bp-crypto/src/llbc.rs:
crates/bp-crypto/src/prince.rs:
crates/bp-crypto/src/qarma.rs:
