/root/repo/target/debug/deps/bp_attacks-e04e5ae6a7bae0e1.d: crates/bp-attacks/src/lib.rs crates/bp-attacks/src/analysis.rs crates/bp-attacks/src/blind.rs crates/bp-attacks/src/contention.rs crates/bp-attacks/src/env.rs crates/bp-attacks/src/gem.rs crates/bp-attacks/src/linear.rs crates/bp-attacks/src/pht_analysis.rs crates/bp-attacks/src/poc.rs crates/bp-attacks/src/ppp.rs crates/bp-attacks/src/threat_model.rs

/root/repo/target/debug/deps/libbp_attacks-e04e5ae6a7bae0e1.rlib: crates/bp-attacks/src/lib.rs crates/bp-attacks/src/analysis.rs crates/bp-attacks/src/blind.rs crates/bp-attacks/src/contention.rs crates/bp-attacks/src/env.rs crates/bp-attacks/src/gem.rs crates/bp-attacks/src/linear.rs crates/bp-attacks/src/pht_analysis.rs crates/bp-attacks/src/poc.rs crates/bp-attacks/src/ppp.rs crates/bp-attacks/src/threat_model.rs

/root/repo/target/debug/deps/libbp_attacks-e04e5ae6a7bae0e1.rmeta: crates/bp-attacks/src/lib.rs crates/bp-attacks/src/analysis.rs crates/bp-attacks/src/blind.rs crates/bp-attacks/src/contention.rs crates/bp-attacks/src/env.rs crates/bp-attacks/src/gem.rs crates/bp-attacks/src/linear.rs crates/bp-attacks/src/pht_analysis.rs crates/bp-attacks/src/poc.rs crates/bp-attacks/src/ppp.rs crates/bp-attacks/src/threat_model.rs

crates/bp-attacks/src/lib.rs:
crates/bp-attacks/src/analysis.rs:
crates/bp-attacks/src/blind.rs:
crates/bp-attacks/src/contention.rs:
crates/bp-attacks/src/env.rs:
crates/bp-attacks/src/gem.rs:
crates/bp-attacks/src/linear.rs:
crates/bp-attacks/src/pht_analysis.rs:
crates/bp-attacks/src/poc.rs:
crates/bp-attacks/src/ppp.rs:
crates/bp-attacks/src/threat_model.rs:
