/root/repo/target/debug/examples/attack_demo-b3e01c14b0c0f809.d: examples/attack_demo.rs

/root/repo/target/debug/examples/attack_demo-b3e01c14b0c0f809: examples/attack_demo.rs

examples/attack_demo.rs:
