/root/repo/target/debug/examples/key_refresh-52000af93f54931c.d: examples/key_refresh.rs

/root/repo/target/debug/examples/key_refresh-52000af93f54931c: examples/key_refresh.rs

examples/key_refresh.rs:
