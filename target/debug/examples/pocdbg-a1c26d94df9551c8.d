/root/repo/target/debug/examples/pocdbg-a1c26d94df9551c8.d: crates/bp-attacks/examples/pocdbg.rs

/root/repo/target/debug/examples/pocdbg-a1c26d94df9551c8: crates/bp-attacks/examples/pocdbg.rs

crates/bp-attacks/examples/pocdbg.rs:
