/root/repo/target/debug/examples/key_refresh-18c5bbeb7225fb12.d: examples/key_refresh.rs Cargo.toml

/root/repo/target/debug/examples/libkey_refresh-18c5bbeb7225fb12.rmeta: examples/key_refresh.rs Cargo.toml

examples/key_refresh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
