/root/repo/target/debug/examples/attack_demo-9f914fbb5793a221.d: examples/attack_demo.rs Cargo.toml

/root/repo/target/debug/examples/libattack_demo-9f914fbb5793a221.rmeta: examples/attack_demo.rs Cargo.toml

examples/attack_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
