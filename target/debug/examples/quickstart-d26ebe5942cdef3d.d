/root/repo/target/debug/examples/quickstart-d26ebe5942cdef3d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d26ebe5942cdef3d: examples/quickstart.rs

examples/quickstart.rs:
