/root/repo/target/debug/examples/calibrate-43f6eb69a0b50d2d.d: crates/bp-workloads/examples/calibrate.rs

/root/repo/target/debug/examples/calibrate-43f6eb69a0b50d2d: crates/bp-workloads/examples/calibrate.rs

crates/bp-workloads/examples/calibrate.rs:
