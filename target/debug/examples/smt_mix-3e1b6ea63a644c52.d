/root/repo/target/debug/examples/smt_mix-3e1b6ea63a644c52.d: examples/smt_mix.rs

/root/repo/target/debug/examples/smt_mix-3e1b6ea63a644c52: examples/smt_mix.rs

examples/smt_mix.rs:
