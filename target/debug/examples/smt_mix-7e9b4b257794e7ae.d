/root/repo/target/debug/examples/smt_mix-7e9b4b257794e7ae.d: examples/smt_mix.rs Cargo.toml

/root/repo/target/debug/examples/libsmt_mix-7e9b4b257794e7ae.rmeta: examples/smt_mix.rs Cargo.toml

examples/smt_mix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
