//! Umbrella crate for the HyBP reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so that the runnable
//! examples in `examples/` and the integration tests in `tests/` can reach the
//! whole system through a single dependency.
//!
//! The actual functionality lives in the member crates:
//!
//! * [`bp_common`] — shared types, PRNGs, statistics.
//! * [`bp_crypto`] — QARMA-64 / PRINCE / LLBC ciphers and the randomized keys table.
//! * [`bp_predictors`] — 3-level BTB, TAGE-SC-L, tournament predictor.
//! * [`bp_workloads`] — synthetic SPEC CPU2017-like branch workloads and mixes.
//! * [`bp_pipeline`] — cycle-level SMT-2 out-of-order core model.
//! * [`hybp`] — the paper's contribution: the hybrid protection mechanisms.
//! * [`bp_attacks`] — PPP / GEM / blind-contention / reuse attack harnesses.
//! * [`bp_faults`] — deterministic fault plans for the robustness harness.
//! * [`bp_trace`] — corruption-tolerant binary branch-trace store and replay.

pub use bp_attacks;
pub use bp_common;
pub use bp_crypto;
pub use bp_faults;
pub use bp_pipeline;
pub use bp_predictors;
pub use bp_trace;
pub use bp_workloads;
pub use hybp;
