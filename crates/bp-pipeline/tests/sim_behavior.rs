//! Behavioural tests for the cycle-level core model.

use bp_pipeline::{CoreConfig, RunMetrics, SimConfig, Simulation};
use bp_workloads::profile::SpecBenchmark;
use hybp::Mechanism;

fn cfg(measure: u64) -> SimConfig {
    let mut c = SimConfig::quick_test();
    c.warmup_instructions = 60_000;
    c.measure_instructions = measure;
    c
}

fn run_st(mech: Mechanism, bench: SpecBenchmark, cfg: SimConfig) -> RunMetrics {
    Simulation::builder(mech, cfg)
        .single_thread(bench)
        .build()
        .expect("valid config")
        .run()
        .expect("completes")
}

fn run_smt(mech: Mechanism, pair: [SpecBenchmark; 2], cfg: SimConfig) -> RunMetrics {
    Simulation::builder(mech, cfg)
        .smt(pair)
        .build()
        .expect("valid config")
        .run()
        .expect("completes")
}

#[test]
fn ipc_never_exceeds_structural_limits() {
    for b in [
        SpecBenchmark::Imagick,
        SpecBenchmark::Lbm,
        SpecBenchmark::Mcf,
    ] {
        let m = run_st(Mechanism::Baseline, b, cfg(300_000));
        let ipc = m.threads[0].ipc();
        let core = CoreConfig::sunny_cove();
        assert!(ipc <= f64::from(core.issue_width), "{b:?}: ipc {ipc}");
        assert!(
            ipc <= b.profile().base_ipc * 1.01,
            "{b:?}: ipc {ipc} exceeds intrinsic {}",
            b.profile().base_ipc
        );
    }
}

#[test]
fn bigger_mispredict_penalty_hurts() {
    let mut a = cfg(400_000);
    a.core.mispredict_penalty = 8;
    let mut b = cfg(400_000);
    b.core.mispredict_penalty = 32;
    let fast = run_st(Mechanism::Baseline, SpecBenchmark::Deepsjeng, a).threads[0].ipc();
    let slow = run_st(Mechanism::Baseline, SpecBenchmark::Deepsjeng, b).threads[0].ipc();
    assert!(
        slow < fast,
        "penalty 32 ({slow}) must be slower than 8 ({fast})"
    );
}

#[test]
fn kernel_episodes_charge_time() {
    // More frequent kernel episodes reduce user IPC even on the baseline
    // (the kernel's lower intrinsic ILP and predictor pollution).
    let mut rare = cfg(500_000);
    rare.kernel_timer_interval = u64::MAX / 4;
    let mut frequent = cfg(500_000);
    frequent.kernel_timer_interval = 60_000;
    let bench = SpecBenchmark::Wrf;
    let fast = run_st(Mechanism::Baseline, bench, rare).threads[0].ipc();
    let slow = run_st(Mechanism::Baseline, bench, frequent).threads[0].ipc();
    assert!(
        slow < fast,
        "frequent kernel entries ({slow}) must cost vs none ({fast})"
    );
}

#[test]
fn tiny_window_throttles_ipc() {
    let mut small = cfg(300_000);
    small.core.window_size = 8;
    let bench = SpecBenchmark::Imagick; // intrinsic IPC 4.4
    let throttled = run_st(Mechanism::Baseline, bench, small).threads[0].ipc();
    let normal = run_st(Mechanism::Baseline, bench, cfg(300_000)).threads[0].ipc();
    assert!(
        throttled < normal,
        "8-entry window ({throttled}) must throttle vs 176 ({normal})"
    );
}

#[test]
fn smt_threads_progress_together() {
    // Neither thread may be starved: both finish their measurement and the
    // slower thread's IPC is at least a third of its solo value.
    let c = cfg(250_000);
    let pair = [SpecBenchmark::Imagick, SpecBenchmark::Mcf];
    let smt = run_smt(Mechanism::Baseline, pair, c);
    for (i, t) in smt.threads.iter().enumerate() {
        assert_eq!(t.retired, c.measure_instructions, "thread {i} starved");
        let solo = run_st(Mechanism::Baseline, pair[i], c).threads[0].ipc();
        assert!(
            t.ipc() > solo / 3.0,
            "thread {i} ipc {} vs solo {solo}",
            t.ipc()
        );
    }
}

#[test]
fn metrics_are_reproducible_across_identical_runs() {
    let a = run_smt(
        Mechanism::hybp_default(),
        [SpecBenchmark::Xz, SpecBenchmark::Namd],
        cfg(200_000),
    );
    let b = run_smt(
        Mechanism::hybp_default(),
        [SpecBenchmark::Xz, SpecBenchmark::Namd],
        cfg(200_000),
    );
    assert_eq!(a, b, "identical configs must produce identical metrics");
}

#[test]
fn different_seeds_produce_different_runs() {
    let mut c2 = cfg(200_000);
    c2.seed ^= 0xFFFF;
    let a = run_st(Mechanism::Baseline, SpecBenchmark::Cam4, cfg(200_000));
    let b = run_st(Mechanism::Baseline, SpecBenchmark::Cam4, c2);
    assert_ne!(
        a.cycles, b.cycles,
        "different seeds should perturb the cycle count"
    );
}
