//! Behavioural tests for the cycle-level core model.

use bp_pipeline::{CoreConfig, SimConfig, Simulation};
use bp_workloads::profile::SpecBenchmark;
use hybp::Mechanism;

fn cfg(measure: u64) -> SimConfig {
    let mut c = SimConfig::quick_test();
    c.warmup_instructions = 60_000;
    c.measure_instructions = measure;
    c
}

#[test]
fn ipc_never_exceeds_structural_limits() {
    for b in [
        SpecBenchmark::Imagick,
        SpecBenchmark::Lbm,
        SpecBenchmark::Mcf,
    ] {
        let m = Simulation::single_thread(Mechanism::Baseline, b, cfg(300_000))
            .expect("valid config")
            .run();
        let ipc = m.threads[0].ipc();
        let core = CoreConfig::sunny_cove();
        assert!(ipc <= f64::from(core.issue_width), "{b:?}: ipc {ipc}");
        assert!(
            ipc <= b.profile().base_ipc * 1.01,
            "{b:?}: ipc {ipc} exceeds intrinsic {}",
            b.profile().base_ipc
        );
    }
}

#[test]
fn bigger_mispredict_penalty_hurts() {
    let mut a = cfg(400_000);
    a.core.mispredict_penalty = 8;
    let mut b = cfg(400_000);
    b.core.mispredict_penalty = 32;
    let fast = Simulation::single_thread(Mechanism::Baseline, SpecBenchmark::Deepsjeng, a)
        .expect("valid config")
        .run()
        .threads[0]
        .ipc();
    let slow = Simulation::single_thread(Mechanism::Baseline, SpecBenchmark::Deepsjeng, b)
        .expect("valid config")
        .run()
        .threads[0]
        .ipc();
    assert!(
        slow < fast,
        "penalty 32 ({slow}) must be slower than 8 ({fast})"
    );
}

#[test]
fn kernel_episodes_charge_time() {
    // More frequent kernel episodes reduce user IPC even on the baseline
    // (the kernel's lower intrinsic ILP and predictor pollution).
    let mut rare = cfg(500_000);
    rare.kernel_timer_interval = u64::MAX / 4;
    let mut frequent = cfg(500_000);
    frequent.kernel_timer_interval = 60_000;
    let bench = SpecBenchmark::Wrf;
    let fast = Simulation::single_thread(Mechanism::Baseline, bench, rare)
        .expect("valid config")
        .run()
        .threads[0]
        .ipc();
    let slow = Simulation::single_thread(Mechanism::Baseline, bench, frequent)
        .expect("valid config")
        .run()
        .threads[0]
        .ipc();
    assert!(
        slow < fast,
        "frequent kernel entries ({slow}) must cost vs none ({fast})"
    );
}

#[test]
fn tiny_window_throttles_ipc() {
    let mut small = cfg(300_000);
    small.core.window_size = 8;
    let bench = SpecBenchmark::Imagick; // intrinsic IPC 4.4
    let throttled = Simulation::single_thread(Mechanism::Baseline, bench, small)
        .expect("valid config")
        .run()
        .threads[0]
        .ipc();
    let normal = Simulation::single_thread(Mechanism::Baseline, bench, cfg(300_000))
        .expect("valid config")
        .run()
        .threads[0]
        .ipc();
    assert!(
        throttled < normal,
        "8-entry window ({throttled}) must throttle vs 176 ({normal})"
    );
}

#[test]
fn smt_threads_progress_together() {
    // Neither thread may be starved: both finish their measurement and the
    // slower thread's IPC is at least a third of its solo value.
    let c = cfg(250_000);
    let pair = [SpecBenchmark::Imagick, SpecBenchmark::Mcf];
    let smt = Simulation::smt(Mechanism::Baseline, pair, c)
        .expect("valid config")
        .run();
    for (i, t) in smt.threads.iter().enumerate() {
        assert_eq!(t.retired, c.measure_instructions, "thread {i} starved");
        let solo = Simulation::single_thread(Mechanism::Baseline, pair[i], c)
            .expect("valid config")
            .run()
            .threads[0]
            .ipc();
        assert!(
            t.ipc() > solo / 3.0,
            "thread {i} ipc {} vs solo {solo}",
            t.ipc()
        );
    }
}

#[test]
fn metrics_are_reproducible_across_identical_runs() {
    let a = Simulation::smt(
        Mechanism::hybp_default(),
        [SpecBenchmark::Xz, SpecBenchmark::Namd],
        cfg(200_000),
    )
    .expect("valid config")
    .run();
    let b = Simulation::smt(
        Mechanism::hybp_default(),
        [SpecBenchmark::Xz, SpecBenchmark::Namd],
        cfg(200_000),
    )
    .expect("valid config")
    .run();
    assert_eq!(a, b, "identical configs must produce identical metrics");
}

#[test]
fn different_seeds_produce_different_runs() {
    let mut c2 = cfg(200_000);
    c2.seed ^= 0xFFFF;
    let a = Simulation::single_thread(Mechanism::Baseline, SpecBenchmark::Cam4, cfg(200_000))
        .expect("valid config")
        .run();
    let b = Simulation::single_thread(Mechanism::Baseline, SpecBenchmark::Cam4, c2)
        .expect("valid config")
        .run();
    assert_ne!(
        a.cycles, b.cycles,
        "different seeds should perturb the cycle count"
    );
}
