//! Cycle-level SMT-2 out-of-order core model for the HyBP reproduction.
//!
//! This is the substitute for the paper's gem5 setup (see `DESIGN.md` §2).
//! It models the mechanisms through which branch predictor behaviour reaches
//! IPC:
//!
//! * a shared front end with ICOUNT fetch arbitration, charged fetch bubbles
//!   for slow BTB levels and full redirect penalties for mispredictions
//!   (misprediction penalty grows with any extra front-end encryption
//!   latency — the Figure-2 knob),
//! * per-thread instruction windows with ILP-limited retirement sharing the
//!   issue width (SMT contention and fairness),
//! * an OS model: periodic timer/kernel episodes (privilege changes) and
//!   context switches at a configurable interval, both of which drive the
//!   protection mechanisms' events.
//!
//! The entry point is [`Simulation`]; experiment harnesses in the `bench`
//! crate build one per (mechanism, workload, interval) point.

pub mod config;
pub mod error;
pub mod metrics;
mod sampled;
mod sim;

pub use config::{CoreConfig, SimConfig};
pub use error::{MetricsError, SimError};
pub use metrics::{RunMetrics, StageCycles, StreamDigest, ThreadMetrics};
pub use sampled::{
    FullReplay, ReplayEstimate, SampledEstimate, SampledReplay, MISPREDICT_REDIRECT_CYCLES,
    MPKI_ABS_MARGIN, MPKI_REL_MARGIN,
};
pub use sim::{
    kernel_stream_name, kernel_stream_seed, stream_name, stream_seed, CycleDriver, Simulation,
    SimulationBuilder,
};
