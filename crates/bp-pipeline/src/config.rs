//! Simulation configuration (paper Table IV, gem5 column).

use bp_common::{ConfigError, Cycle};

/// Core microarchitecture parameters (Sunny Cove-like, Table IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle from the selected thread.
    pub fetch_width: u32,
    /// Total retire/issue bandwidth shared by all SMT threads.
    pub issue_width: u32,
    /// Per-thread in-flight instruction window (ROB share).
    pub window_size: u32,
    /// Cycles from fetch to branch resolution: the misprediction penalty.
    pub mispredict_penalty: u32,
    /// Extra front-end cycles (inline encryption latency, Figure 2). Added
    /// to every redirect penalty.
    pub extra_frontend_cycles: u32,
    /// Fixed pipeline cost of an architectural context switch (drain etc.),
    /// in cycles, independent of predictor effects.
    pub context_switch_cost: u32,
    /// Per-thread ILP derate applied when two hardware threads co-run,
    /// modeling shared cache/ROB/port contention the branch-centric model
    /// does not capture structurally (typical SMT scaling is 1.2-1.4x, not
    /// additive).
    pub smt_ilp_derate: f64,
}

impl CoreConfig {
    /// The paper's Sunny Cove-like configuration: 8-wide, 19-stage pipeline
    /// (≈ 16-cycle redirect), 352-entry ROB shared between threads.
    pub fn sunny_cove() -> Self {
        CoreConfig {
            fetch_width: 8,
            issue_width: 8,
            window_size: 176,
            mispredict_penalty: 16,
            extra_frontend_cycles: 0,
            context_switch_cost: 200,
            smt_ilp_derate: 0.72,
        }
    }

    /// Checks the core parameters for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when a width or the window is zero, or the
    /// SMT ILP derate falls outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.fetch_width == 0 {
            return Err(ConfigError::zero("fetch_width"));
        }
        if self.issue_width == 0 {
            return Err(ConfigError::zero("issue_width"));
        }
        if self.window_size == 0 {
            return Err(ConfigError::zero("window_size"));
        }
        if !(self.smt_ilp_derate > 0.0 && self.smt_ilp_derate <= 1.0) {
            return Err(ConfigError::inconsistent(
                "smt_ilp_derate",
                "must lie in (0, 1]",
            ));
        }
        Ok(())
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::sunny_cove()
    }
}

/// Full simulation parameters: core + OS behaviour + run lengths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Core microarchitecture.
    pub core: CoreConfig,
    /// Context-switch interval per hardware thread, in cycles (the paper
    /// sweeps 256K..16M; 16M ≈ the default Linux time slice at 4 GHz).
    pub ctx_switch_interval: Cycle,
    /// Interval of timer/interrupt kernel episodes (privilege changes), in
    /// cycles (stands in for ticks, interrupts and syscalls combined).
    pub kernel_timer_interval: Cycle,
    /// Kernel instructions per timer episode.
    pub kernel_episode_instructions: u64,
    /// Kernel instructions spent in the scheduler around a context switch.
    pub scheduler_instructions: u64,
    /// Instructions retired per hardware thread before measurement starts.
    pub warmup_instructions: u64,
    /// Instructions measured per hardware thread after warmup.
    pub measure_instructions: u64,
    /// Master seed (workloads, replacement, keys).
    pub seed: u64,
    /// SMT capacity of the core (isolation slots = 2x this). Mechanisms
    /// partition/replicate for the core's capability, not for the number of
    /// threads currently running.
    pub smt_capacity: usize,
}

impl SimConfig {
    /// Laptop-scale defaults: the paper's intervals with scaled-down
    /// instruction counts (see `DESIGN.md` §8).
    pub fn default_run() -> Self {
        SimConfig {
            core: CoreConfig::sunny_cove(),
            ctx_switch_interval: 16_000_000,
            kernel_timer_interval: 300_000,
            kernel_episode_instructions: 1_500,
            scheduler_instructions: 4_000,
            warmup_instructions: 1_000_000,
            measure_instructions: 2_000_000,
            seed: 0x5EED,
            smt_capacity: 2,
        }
    }

    /// Same parameters with a different context-switch interval.
    pub fn with_interval(interval: Cycle) -> Self {
        SimConfig {
            ctx_switch_interval: interval,
            ..Self::default_run()
        }
    }

    /// Short runs for unit/integration tests.
    pub fn quick_test() -> Self {
        SimConfig {
            warmup_instructions: 50_000,
            measure_instructions: 150_000,
            ..Self::default_run()
        }
    }

    /// Checks the full configuration for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the core parameters are invalid, an
    /// OS-event interval is zero, there is nothing to measure, or the SMT
    /// capacity is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.core.validate()?;
        if self.ctx_switch_interval == 0 {
            return Err(ConfigError::zero("ctx_switch_interval"));
        }
        if self.kernel_timer_interval == 0 {
            return Err(ConfigError::zero("kernel_timer_interval"));
        }
        if self.measure_instructions == 0 {
            return Err(ConfigError::zero("measure_instructions"));
        }
        if self.smt_capacity == 0 {
            return Err(ConfigError::zero("smt_capacity"));
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::default_run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sunny_cove_matches_table_iv_shape() {
        let c = CoreConfig::sunny_cove();
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.issue_width, 8);
        assert!(c.mispredict_penalty >= 12, "19-stage pipeline class");
    }

    #[test]
    fn default_interval_is_16m() {
        assert_eq!(SimConfig::default_run().ctx_switch_interval, 16_000_000);
        assert_eq!(
            SimConfig::with_interval(256_000).ctx_switch_interval,
            256_000
        );
    }

    #[test]
    fn stock_configs_validate() {
        assert_eq!(SimConfig::default_run().validate(), Ok(()));
        assert_eq!(SimConfig::quick_test().validate(), Ok(()));
        assert_eq!(CoreConfig::sunny_cove().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_degenerate_values() {
        let mut c = SimConfig::default_run();
        c.measure_instructions = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::default_run();
        c.ctx_switch_interval = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::default_run();
        c.smt_capacity = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::default_run();
        c.core.fetch_width = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::default_run();
        c.core.smt_ilp_derate = 0.0;
        assert!(c.validate().is_err());
        c.core.smt_ilp_derate = f64::NAN;
        assert!(c.validate().is_err());
    }
}
