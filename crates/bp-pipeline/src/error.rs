//! Typed errors for simulation construction and execution.

use bp_common::{ConfigError, Cycle};
use std::error::Error;
use std::fmt;

/// A simulation that could not be built or did not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// The configuration was rejected before any cycle ran.
    Config(ConfigError),
    /// The run hit its runaway deadline before every thread finished its
    /// measurement quota — the model stopped making forward progress.
    Runaway {
        /// The cycle at which the run was abandoned.
        cycle: Cycle,
        /// The deadline that was exceeded.
        deadline: Cycle,
    },
    /// A sampled replay's phase plan does not match the trace it was asked
    /// to replay: a selected window's seek target is not a chunk boundary
    /// any more, or the window ran out of records mid-measurement. The
    /// sidecar is stale — re-run `trace_tool sample` over the current trace.
    StalePlan {
        /// The window index whose replay failed.
        window: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid simulation config: {e}"),
            SimError::Runaway { cycle, deadline } => write!(
                f,
                "simulation hit the runaway deadline ({cycle} >= {deadline} cycles) \
                 before all threads finished measuring"
            ),
            SimError::StalePlan { window } => write!(
                f,
                "phase plan is stale for this trace (window {window} failed to \
                 seek or measure); re-run `trace_tool sample`"
            ),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::Runaway { .. } | SimError::StalePlan { .. } => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

/// A metrics query whose inputs do not line up with the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsError {
    /// A per-thread reference vector has the wrong length (or the run has no
    /// threads at all).
    ShapeMismatch {
        /// Hardware threads in the run.
        threads: usize,
        /// Entries supplied by the caller.
        supplied: usize,
    },
    /// The run has no per-thread metrics at all, so per-thread queries have
    /// nothing to compare against (distinct from a caller-side shape error).
    EmptyRun,
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::ShapeMismatch { threads, supplied } => write!(
                f,
                "per-thread reference vector has {supplied} entries for {threads} threads"
            ),
            MetricsError::EmptyRun => write!(f, "run produced no per-thread metrics"),
        }
    }
}

impl Error for MetricsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_errors_convert_and_chain() {
        let e: SimError = ConfigError::zero("measure_instructions").into();
        assert!(e.to_string().contains("measure_instructions"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn runaway_names_both_cycles() {
        let e = SimError::Runaway {
            cycle: 10,
            deadline: 5,
        };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains('5'));
    }

    #[test]
    fn shape_mismatch_is_descriptive() {
        let e = MetricsError::ShapeMismatch {
            threads: 2,
            supplied: 3,
        };
        assert!(e.to_string().contains("3 entries for 2 threads"));
    }

    #[test]
    fn empty_run_is_descriptive() {
        assert!(MetricsError::EmptyRun
            .to_string()
            .contains("no per-thread metrics"));
    }
}
