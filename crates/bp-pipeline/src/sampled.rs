//! Bounded-error sampled replay: drive only a phase plan's representative
//! windows through the BPU and recombine by cluster weight.
//!
//! This is the replay half of the SimPoint-style pipeline whose analysis
//! half lives in `bp_trace::sampling`. A [`PhasePlan`] names k
//! representative windows; [`SampledReplay`] seeks the trace cursor to
//! each one (per-chunk delta reset makes mid-file seeks exact), warms the
//! predictor over the plan's warmup prefix, measures exactly the window's
//! instructions, and weights each window's MPKI/IPC by the number of
//! windows its cluster stands for. [`FullReplay`] drives the whole trace
//! under the identical cycle model, so the two estimates are directly
//! comparable — that comparison is what the `bench_sampling` harness and
//! the CI `sampling-integrity` job pin.
//!
//! Both drivers share the [`CycleDriver`](crate::CycleDriver) cost model:
//! each record costs its gap plus one cycle, plus the charged BTB latency,
//! plus [`MISPREDICT_REDIRECT_CYCLES`] on a miss. The sampled estimate is
//! therefore an estimator *of the full replay under this model*, and the
//! reported [`SampledEstimate::error_bound_mpki`] bounds that gap — see
//! `DESIGN.md` §6h for the derivation.

use bp_common::{Asid, ConfigError, Cycle, HwThreadId};
use bp_trace::{PhasePlan, RecordCursor};
use hybp::SecureBpu;

use crate::error::SimError;
use crate::sim::{stream_name, stream_seed, SimulationBuilder};

/// Redirect penalty charged per misprediction, matching
/// [`CycleDriver`](crate::CycleDriver)'s virtual clock.
pub const MISPREDICT_REDIRECT_CYCLES: u64 = 8;

/// Relative slack in the error bound: covers warmup truncation bias (the
/// first window of a phase is measured with at most `warmup` windows of
/// predictor history, where the full replay has the whole prefix).
pub const MPKI_REL_MARGIN: f64 = 0.02;

/// Absolute slack in the error bound (MPKI): floors the bound for
/// near-zero-MPKI traces where the relative terms vanish.
pub const MPKI_ABS_MARGIN: f64 = 0.35;

/// Measured cost of one replayed region: instruction, branch, misprediction
/// and cycle totals under the shared cycle model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayEstimate {
    /// Instructions replayed (Σ gap+1 over the region's records).
    pub instructions: u64,
    /// Branch records driven through the BPU.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Cycles charged under the shared cost model.
    pub cycles: u64,
}

impl ReplayEstimate {
    /// Mispredictions per thousand instructions.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.mispredicts as f64 * 1000.0 / self.instructions as f64
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.instructions as f64 / self.cycles as f64
    }
}

/// A sampled replay's result: the weighted estimate, the per-selection
/// measurements behind it, and the bound the estimate is honest to.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledEstimate {
    /// Cluster-weight-combined totals. `instructions`/`cycles`/... are the
    /// *extrapolated* totals (each window's counts times its weight), so
    /// [`ReplayEstimate::mpki`]/[`ReplayEstimate::ipc`] on this value are
    /// the instruction-weighted estimates for the whole trace.
    pub estimate: ReplayEstimate,
    /// One measurement per plan selection, in plan order.
    pub windows: Vec<ReplayEstimate>,
    /// Instructions actually driven through the BPU (warmup + measured),
    /// the numerator of the replay-cost reduction.
    pub replayed_instructions: u64,
    /// Bound on `|sampled MPKI - full-replay MPKI|` under the shared cycle
    /// model; see `DESIGN.md` §6h.
    pub error_bound_mpki: f64,
    /// Fraction of trace instructions touched (from the plan).
    pub coverage: f64,
}

/// Drives one branch through the BPU and returns `(cycles, mispredicted)`
/// under the shared cycle model.
fn drive_one(
    bpu: &mut SecureBpu,
    hw: HwThreadId,
    rec: &bp_common::BranchRecord,
    now: Cycle,
) -> (u64, bool) {
    let outcome = bpu.process_branch(hw, rec, now);
    let miss = outcome.mispredicted();
    let cost = u64::from(rec.gap)
        + 1
        + u64::from(outcome.btb_latency)
        + if miss { MISPREDICT_REDIRECT_CYCLES } else { 0 };
    (cost, miss)
}

/// Whole-trace replay under the shared cycle model: the ground truth a
/// [`SampledReplay`] estimate is compared against.
// No `Debug`: owns the [`SecureBpu`] and with it the key material
// (secret-hygiene).
pub struct FullReplay {
    bpu: SecureBpu,
    cursor: RecordCursor,
    hw: HwThreadId,
}

impl FullReplay {
    /// Replays every record in the trace once and returns the exact totals.
    pub fn run(mut self) -> ReplayEstimate {
        let mut est = ReplayEstimate::default();
        let mut now: Cycle = 1;
        for rec in self.cursor.by_ref() {
            let (cost, miss) = drive_one(&mut self.bpu, self.hw, &rec, now);
            now += cost;
            est.instructions += u64::from(rec.gap) + 1;
            est.branches += 1;
            est.mispredicts += u64::from(miss);
            est.cycles += cost;
        }
        est
    }
}

/// Phase-plan-guided replay: seek, warm, measure, recombine.
// No `Debug`: owns the [`SecureBpu`] and with it the key material
// (secret-hygiene).
pub struct SampledReplay {
    bpu: SecureBpu,
    cursor: RecordCursor,
    hw: HwThreadId,
    plan: PhasePlan,
}

impl SampledReplay {
    /// Replays the plan's representative windows and returns the weighted
    /// estimate.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StalePlan`] when a selection's seek target is no
    /// longer a valid chunk boundary or a window runs out of records — the
    /// plan was computed over different bytes than the store now holds.
    pub fn run(mut self) -> Result<SampledEstimate, SimError> {
        let mut windows = Vec::with_capacity(self.plan.selections.len());
        let mut replayed = 0u64;
        let mut now: Cycle = 1;
        for sel in &self.plan.selections {
            let stale = SimError::StalePlan {
                window: sel.window_index,
            };
            if !self.cursor.seek(sel.seek_offset, sel.seek_skip) {
                return Err(stale);
            }
            // Warmup: train the predictor, measure nothing. Warmup spans
            // whole record-aligned windows, so the count lands exactly.
            let mut warmed = 0u64;
            while warmed < sel.warmup_instructions {
                let Some(rec) = self.cursor.next() else {
                    return Err(stale);
                };
                let (cost, _) = drive_one(&mut self.bpu, self.hw, &rec, now);
                now += cost;
                warmed += u64::from(rec.gap) + 1;
            }
            if warmed != sel.warmup_instructions {
                return Err(stale);
            }
            // Measurement: exactly the window's instructions (windows close
            // on record boundaries, so equality is an invariant, not luck).
            let mut est = ReplayEstimate::default();
            while est.instructions < sel.window_instructions {
                let Some(rec) = self.cursor.next() else {
                    return Err(stale);
                };
                let (cost, miss) = drive_one(&mut self.bpu, self.hw, &rec, now);
                now += cost;
                est.instructions += u64::from(rec.gap) + 1;
                est.branches += 1;
                est.mispredicts += u64::from(miss);
                est.cycles += cost;
            }
            if est.instructions != sel.window_instructions {
                return Err(stale);
            }
            replayed += warmed + est.instructions;
            windows.push(est);
        }

        let mut combined = ReplayEstimate::default();
        let mut min_mpki = f64::INFINITY;
        let mut max_mpki = 0.0f64;
        for (sel, w) in self.plan.selections.iter().zip(&windows) {
            combined.instructions += sel.weight_windows * w.instructions;
            combined.branches += sel.weight_windows * w.branches;
            combined.mispredicts += sel.weight_windows * w.mispredicts;
            combined.cycles += sel.weight_windows * w.cycles;
            min_mpki = min_mpki.min(w.mpki());
            max_mpki = max_mpki.max(w.mpki());
        }
        let spread = (max_mpki - min_mpki).max(0.0);
        let error_bound_mpki =
            self.plan.dispersion() * spread + MPKI_REL_MARGIN * combined.mpki() + MPKI_ABS_MARGIN;
        Ok(SampledEstimate {
            estimate: combined,
            windows,
            replayed_instructions: replayed,
            error_bound_mpki,
            coverage: self.plan.coverage(),
        })
    }
}

impl SimulationBuilder {
    /// The shared replay substrate: the first configured benchmark's first
    /// user stream, loaded from the builder's trace store, plus a BPU
    /// announced on hardware thread 0.
    fn replay_parts(self) -> Result<(SecureBpu, RecordCursor, HwThreadId), ConfigError> {
        self.cfg.validate()?;
        let bench = self
            .threads
            .first()
            .and_then(|sw| sw.first())
            .copied()
            .ok_or_else(|| ConfigError::zero("hardware threads"))?;
        let store = self.trace_store.as_ref().ok_or_else(|| {
            ConfigError::inconsistent("sampled replay", "replay requires a trace store")
        })?;
        let loaded = store
            .load(&stream_name(0, 0, bench), stream_seed(self.cfg.seed, 0, 0))
            .map_err(|_| {
                ConfigError::inconsistent(
                    "trace replay",
                    "stream missing or undecodable in the trace store",
                )
            })?;
        if loaded.is_empty() {
            return Err(ConfigError::inconsistent(
                "trace replay",
                "trace stream holds no records",
            ));
        }
        let cursor = loaded.records();
        let mut bpu = SecureBpu::new(
            self.mechanism,
            self.cfg.smt_capacity.max(self.threads.len()),
            self.cfg.seed,
        )?;
        bpu.set_fault_injector(self.faults.clone());
        bpu.set_telemetry(self.telemetry.clone());
        let hw = HwThreadId::new(0);
        bpu.on_context_switch(hw, Asid::new(1), 0);
        Ok((bpu, cursor, hw))
    }

    /// Builds a [`FullReplay`] over the first configured stream: the exact
    /// whole-trace baseline a sampled estimate is compared against.
    ///
    /// # Errors
    ///
    /// Same conditions as [`sampled_replay`](SimulationBuilder::sampled_replay).
    pub fn full_replay(self) -> Result<FullReplay, ConfigError> {
        let (bpu, cursor, hw) = self.replay_parts()?;
        Ok(FullReplay { bpu, cursor, hw })
    }

    /// Builds a [`SampledReplay`] that replays only `plan`'s representative
    /// windows of the first configured stream.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when no workload was chosen, no trace
    /// store is attached, or the stream is missing, undecodable, or empty.
    /// A plan/trace mismatch surfaces later, as [`SimError::StalePlan`]
    /// from [`SampledReplay::run`].
    pub fn sampled_replay(self, plan: PhasePlan) -> Result<SampledReplay, ConfigError> {
        let (bpu, cursor, hw) = self.replay_parts()?;
        Ok(SampledReplay {
            bpu,
            cursor,
            hw,
            plan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::Simulation;
    use bp_trace::{SamplingSpec, TraceSession, TraceStore};
    use bp_workloads::profile::SpecBenchmark;
    use bp_workloads::WorkloadGenerator;
    use hybp::Mechanism;
    use std::sync::Arc;

    /// Records a two-phase stream (easy then hard branches) for `bench`'s
    /// canonical slot and returns the store.
    fn phased_store(tag: &str, windows: u64, window: u64) -> (Arc<TraceStore>, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("hybp-sampled-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::clone(
            TraceSession::open(&dir)
                .build()
                .expect("session opens")
                .store(),
        );
        let cfg = SimConfig::default_run();
        let seed = stream_seed(cfg.seed, 0, 0);
        let mut easy = WorkloadGenerator::new(SpecBenchmark::Lbm.profile(), seed);
        let mut hard = WorkloadGenerator::new(SpecBenchmark::Mcf.profile(), seed ^ 1);
        let mut records = Vec::new();
        let budget = windows * window;
        let mut instructions = 0u64;
        while instructions < budget {
            // Alternate phases every ~8 windows of instructions.
            let phase = (instructions / (window * 8)) % 2;
            let r = if phase == 0 {
                easy.next_branch()
            } else {
                hard.next_branch()
            };
            instructions += u64::from(r.gap) + 1;
            records.push(r);
        }
        store
            .save(&stream_name(0, 0, SpecBenchmark::Mcf), seed, &records, 256)
            .expect("stream saved");
        (store, dir)
    }

    fn builder(store: &Arc<TraceStore>) -> SimulationBuilder {
        Simulation::builder(Mechanism::Baseline, SimConfig::default_run())
            .single_thread(SpecBenchmark::Mcf)
            .trace_store(Some(Arc::clone(store)))
    }

    #[test]
    fn sampled_estimate_tracks_full_replay_within_bound() {
        let (store, dir) = phased_store("bound", 64, 20_000);
        let cfg = SimConfig::default_run();
        let loaded = store
            .load(
                &stream_name(0, 0, SpecBenchmark::Mcf),
                stream_seed(cfg.seed, 0, 0),
            )
            .expect("stream loads");
        let spec = SamplingSpec {
            k: 4,
            window: 20_000,
            warmup: 4,
            ..SamplingSpec::default()
        };
        let (plan, _) = loaded.sample(&spec).expect("samples");

        let full = builder(&store).full_replay().expect("builds").run();
        let sampled = builder(&store)
            .sampled_replay(plan)
            .expect("builds")
            .run()
            .expect("plan matches trace");

        let err = (sampled.estimate.mpki() - full.mpki()).abs();
        eprintln!(
            "sampled {} vs full {}: error {err}, bound {}",
            sampled.estimate.mpki(),
            full.mpki(),
            sampled.error_bound_mpki
        );
        assert!(
            err <= sampled.error_bound_mpki,
            "sampled {} vs full {}: error {err} exceeds bound {}",
            sampled.estimate.mpki(),
            full.mpki(),
            sampled.error_bound_mpki
        );
        // The whole point: replay touches a small fraction of the trace.
        assert!(
            sampled.replayed_instructions * 4 < full.instructions,
            "sampled replay must touch <25% of the trace ({} of {})",
            sampled.replayed_instructions,
            full.instructions
        );
        assert!(sampled.coverage > 0.0 && sampled.coverage < 0.5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_plan_fails_loudly_not_silently() {
        let (store, dir) = phased_store("stale", 16, 10_000);
        let cfg = SimConfig::default_run();
        let loaded = store
            .load(
                &stream_name(0, 0, SpecBenchmark::Mcf),
                stream_seed(cfg.seed, 0, 0),
            )
            .expect("stream loads");
        let spec = SamplingSpec {
            k: 2,
            window: 10_000,
            ..SamplingSpec::default()
        };
        let (mut plan, _) = loaded.sample(&spec).expect("samples");
        // Poison one selection's seek target: mid-payload is never a chunk
        // boundary, so the cursor must fuse and the replay must error.
        plan.selections[0].seek_offset += 3;
        let err = match builder(&store).sampled_replay(plan).expect("builds").run() {
            Ok(_) => panic!("a stale plan must not produce an estimate"),
            Err(e) => e,
        };
        assert!(matches!(err, SimError::StalePlan { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_without_a_store_is_a_config_error() {
        let b = Simulation::builder(Mechanism::Baseline, SimConfig::default_run())
            .single_thread(SpecBenchmark::Mcf);
        let err = match b.full_replay() {
            Ok(_) => panic!("replay without a store must be rejected"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("trace store"), "{err}");
    }
}
