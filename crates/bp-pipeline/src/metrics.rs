//! Run metrics: IPC, throughput, fairness inputs, predictor statistics, and
//! architectural stream digests.

use bp_common::telemetry::{Observable, TelemetrySnapshot};
use bp_common::{BranchRecord, Cycle};
use hybp::BpuStats;

use crate::error::MetricsError;

/// Records folded between digest checkpoints.
pub const DIGEST_CHECKPOINT_INTERVAL: u64 = 1024;

/// A rolling digest of one generator's branch-record stream.
///
/// The digest is folded over every record *as generated*, before any fault
/// disposition is applied, so it witnesses the architectural instruction
/// stream rather than what the predictor happened to see. Because a
/// generator's stream is a deterministic function of its seed, two runs of
/// the same configuration must agree on every common prefix even when faults
/// change how far each run got — that is exactly what
/// [`StreamDigest::agrees_with`] checks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StreamDigest {
    /// Records folded so far.
    pub records: u64,
    /// Running hash over all folded records.
    pub hash: u64,
    /// Hash snapshots taken every [`DIGEST_CHECKPOINT_INTERVAL`] records.
    pub checkpoints: Vec<u64>,
}

impl StreamDigest {
    /// An empty digest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one branch record into the digest.
    pub fn fold(&mut self, rec: &BranchRecord) {
        let mut x = rec.pc.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= rec.target.raw().rotate_left(17);
        x ^= u64::from(rec.taken) << 1 | u64::from(rec.gap) << 8;
        x ^= (rec.kind as u64) << 56;
        self.hash = (self.hash ^ x).wrapping_mul(0x100_0000_01B3).rotate_left(5);
        self.records += 1;
        if self.records.is_multiple_of(DIGEST_CHECKPOINT_INTERVAL) {
            self.checkpoints.push(self.hash);
        }
    }

    /// Whether two digests describe the same underlying stream: every
    /// checkpoint present in both matches, and when the record counts are
    /// equal the final hashes match too. Differing lengths are fine — a
    /// disturbed run may pull more or fewer records before finishing.
    pub fn agrees_with(&self, other: &StreamDigest) -> bool {
        let common = self.checkpoints.len().min(other.checkpoints.len());
        if self.checkpoints[..common] != other.checkpoints[..common] {
            return false;
        }
        if self.records == other.records {
            return self.hash == other.hash;
        }
        true
    }
}

/// Per-stage cycle attribution: where front-end time went over a whole run
/// (warmup included).
///
/// Each counter accumulates the stall amount charged at the point where the
/// simulation charges it, so the counters are exact, not sampled:
///
/// * `redirect_stall_cycles` — full redirect penalty per misprediction
///   (including any extra front-end encryption latency),
/// * `btb_stall_cycles` — fetch bubbles for slow BTB levels,
/// * `ctx_switch_stall_cycles` — the configured cost per context switch,
/// * `fetch_idle_cycles` — cycles in which no thread could fetch at all
///   (every thread stalled or window-full).
///
/// There is intentionally no "keys table" stall counter: HyBP's refresh is
/// off the prediction critical path (stale keys serve until the background
/// rewrite lands), so no front-end charge point for key state exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct StageCycles {
    /// Cycles with no fetch-eligible thread.
    pub fetch_idle_cycles: u64,
    /// Redirect penalties charged for mispredictions.
    pub redirect_stall_cycles: u64,
    /// Fetch bubbles charged for slow BTB levels.
    pub btb_stall_cycles: u64,
    /// Context-switch costs charged by the OS model.
    pub ctx_switch_stall_cycles: u64,
}

impl Observable for StageCycles {
    /// Scope `"stages"`: one counter per attribution bucket.
    fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::new("stages")
            .with("fetch_idle_cycles", self.fetch_idle_cycles)
            .with("redirect_stall_cycles", self.redirect_stall_cycles)
            .with("btb_stall_cycles", self.btb_stall_cycles)
            .with("ctx_switch_stall_cycles", self.ctx_switch_stall_cycles)
    }
}

/// Metrics of one hardware thread over the measured region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadMetrics {
    /// Instructions retired during measurement.
    pub retired: u64,
    /// Cycles elapsed during measurement.
    pub cycles: Cycle,
}

impl ThreadMetrics {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }
}

/// Metrics of a full simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Per-hardware-thread metrics.
    pub threads: Vec<ThreadMetrics>,
    /// Total measured cycles.
    pub cycles: Cycle,
    /// BPU statistics accumulated over the whole run (including warmup).
    pub bpu: BpuStats,
    /// Per-stage cycle attribution over the whole run (including warmup).
    pub stages: StageCycles,
    /// Per-hardware-thread stream digests: one per software thread in
    /// schedule order, then the kernel generator's digest last. Empty for
    /// hand-built metrics.
    pub stream_digests: Vec<Vec<StreamDigest>>,
}

impl RunMetrics {
    /// Sum of per-thread IPCs (the paper's throughput metric).
    pub fn throughput(&self) -> f64 {
        self.threads.iter().map(ThreadMetrics::ipc).sum()
    }

    /// Per-thread IPC vector. Empty when the run has no threads — callers
    /// that need "no threads" to be an error should use
    /// [`RunMetrics::hmean_fairness`], which reports it as
    /// [`MetricsError::EmptyRun`].
    pub fn ipcs(&self) -> Vec<f64> {
        self.threads.iter().map(ThreadMetrics::ipc).collect()
    }

    /// Hmean fairness versus per-thread solo IPCs (same mechanism, run
    /// alone).
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::EmptyRun`] when the run has no per-thread
    /// metrics at all (where [`RunMetrics::ipcs`] silently yields an empty
    /// vector), and [`MetricsError::ShapeMismatch`] when `solo_ipcs` does
    /// not have one entry per hardware thread.
    pub fn hmean_fairness(&self, solo_ipcs: &[f64]) -> Result<f64, MetricsError> {
        if self.threads.is_empty() {
            return Err(MetricsError::EmptyRun);
        }
        bp_common::stats::hmean_fairness(&self.ipcs(), solo_ipcs).ok_or(
            MetricsError::ShapeMismatch {
                threads: self.threads.len(),
                supplied: solo_ipcs.len(),
            },
        )
    }

    /// Whether every generator's stream digest agrees with `other`'s on
    /// their common prefixes — the "identical architectural streams"
    /// invariant of the fault harness. Shape mismatches are disagreements.
    pub fn streams_agree_with(&self, other: &RunMetrics) -> bool {
        self.stream_digests.len() == other.stream_digests.len()
            && self
                .stream_digests
                .iter()
                .zip(&other.stream_digests)
                .all(|(a, b)| a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.agrees_with(y)))
    }
}

impl Observable for RunMetrics {
    /// Scope `"run"`: whole-run totals plus the stage attribution counters
    /// (the BPU's own counters live under the `"bpu"` scope via
    /// `BpuStats::snapshot`).
    fn snapshot(&self) -> TelemetrySnapshot {
        let s = &self.stages;
        TelemetrySnapshot::new("run")
            .with("threads", self.threads.len() as u64)
            .with("cycles", self.cycles)
            .with(
                "retired",
                self.threads.iter().map(|t| t.retired).sum::<u64>(),
            )
            .with("fetch_idle_cycles", s.fetch_idle_cycles)
            .with("redirect_stall_cycles", s.redirect_stall_cycles)
            .with("btb_stall_cycles", s.btb_stall_cycles)
            .with("ctx_switch_stall_cycles", s.ctx_switch_stall_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_common::Addr;

    fn rec(i: u64, taken: bool) -> BranchRecord {
        BranchRecord::conditional(
            Addr::new(0x1000 + i * 4),
            Addr::new(0x9000 + i * 8),
            taken,
            3,
        )
    }

    #[test]
    fn ipc_and_throughput() {
        let m = RunMetrics {
            threads: vec![
                ThreadMetrics {
                    retired: 200,
                    cycles: 100,
                },
                ThreadMetrics {
                    retired: 100,
                    cycles: 100,
                },
            ],
            cycles: 100,
            bpu: BpuStats::default(),
            stages: StageCycles::default(),
            stream_digests: Vec::new(),
        };
        assert!((m.threads[0].ipc() - 2.0).abs() < 1e-12);
        assert!((m.throughput() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_is_zero_ipc() {
        let t = ThreadMetrics {
            retired: 5,
            cycles: 0,
        };
        assert_eq!(t.ipc(), 0.0);
    }

    #[test]
    fn fairness_uses_solo_baseline() {
        let m = RunMetrics {
            threads: vec![
                ThreadMetrics {
                    retired: 100,
                    cycles: 100,
                },
                ThreadMetrics {
                    retired: 100,
                    cycles: 100,
                },
            ],
            cycles: 100,
            bpu: BpuStats::default(),
            stages: StageCycles::default(),
            stream_digests: Vec::new(),
        };
        let f = m.hmean_fairness(&[2.0, 2.0]).expect("matching shapes");
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fairness_shape_mismatch_is_typed() {
        let m = RunMetrics {
            threads: vec![ThreadMetrics {
                retired: 100,
                cycles: 100,
            }],
            cycles: 100,
            bpu: BpuStats::default(),
            stages: StageCycles::default(),
            stream_digests: Vec::new(),
        };
        assert_eq!(
            m.hmean_fairness(&[1.0, 2.0]),
            Err(MetricsError::ShapeMismatch {
                threads: 1,
                supplied: 2
            })
        );
    }

    #[test]
    fn empty_run_fairness_is_empty_run_not_shape_mismatch() {
        let m = RunMetrics {
            threads: Vec::new(),
            cycles: 0,
            bpu: BpuStats::default(),
            stages: StageCycles::default(),
            stream_digests: Vec::new(),
        };
        // `ipcs()` on the same run silently yields an empty vector; the
        // fairness query names the condition instead of blaming the caller's
        // reference vector.
        assert!(m.ipcs().is_empty());
        assert_eq!(m.hmean_fairness(&[]), Err(MetricsError::EmptyRun));
        assert_eq!(m.hmean_fairness(&[1.0]), Err(MetricsError::EmptyRun));
    }

    #[test]
    fn run_snapshot_exposes_totals_and_stages() {
        let m = RunMetrics {
            threads: vec![ThreadMetrics {
                retired: 100,
                cycles: 50,
            }],
            cycles: 70,
            bpu: BpuStats::default(),
            stages: StageCycles {
                fetch_idle_cycles: 7,
                redirect_stall_cycles: 40,
                btb_stall_cycles: 2,
                ctx_switch_stall_cycles: 200,
            },
            stream_digests: Vec::new(),
        };
        let snap = m.snapshot();
        assert_eq!(snap.scope, "run");
        assert_eq!(snap.get("threads"), 1);
        assert_eq!(snap.get("retired"), 100);
        assert_eq!(snap.get("cycles"), 70);
        assert_eq!(snap.get("redirect_stall_cycles"), 40);
        let stages = m.stages.snapshot();
        assert_eq!(stages.scope, "stages");
        assert_eq!(stages.get("ctx_switch_stall_cycles"), 200);
        assert_eq!(stages.get("missing"), 0);
    }

    #[test]
    fn digest_prefix_agreement() {
        let mut a = StreamDigest::new();
        let mut b = StreamDigest::new();
        for i in 0..(DIGEST_CHECKPOINT_INTERVAL * 3) {
            a.fold(&rec(i, i % 3 == 0));
            b.fold(&rec(i, i % 3 == 0));
        }
        // b pulls further along the same stream: still agrees.
        for i in (DIGEST_CHECKPOINT_INTERVAL * 3)..(DIGEST_CHECKPOINT_INTERVAL * 5) {
            b.fold(&rec(i, i % 3 == 0));
        }
        assert!(a.agrees_with(&b) && b.agrees_with(&a));
    }

    #[test]
    fn digest_detects_divergence() {
        let mut a = StreamDigest::new();
        let mut b = StreamDigest::new();
        for i in 0..(DIGEST_CHECKPOINT_INTERVAL * 2) {
            a.fold(&rec(i, true));
            // One flipped outcome early in the stream.
            b.fold(&rec(i, i != 17));
        }
        assert!(!a.agrees_with(&b));
        // Same length, different content, no checkpoint yet: final hash
        // still catches it.
        let mut c = StreamDigest::new();
        let mut d = StreamDigest::new();
        c.fold(&rec(1, true));
        d.fold(&rec(2, true));
        assert!(!c.agrees_with(&d));
    }
}
