//! Run metrics: IPC, throughput, fairness inputs, predictor statistics.

use bp_common::Cycle;
use hybp::BpuStats;

/// Metrics of one hardware thread over the measured region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadMetrics {
    /// Instructions retired during measurement.
    pub retired: u64,
    /// Cycles elapsed during measurement.
    pub cycles: Cycle,
}

impl ThreadMetrics {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }
}

/// Metrics of a full simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Per-hardware-thread metrics.
    pub threads: Vec<ThreadMetrics>,
    /// Total measured cycles.
    pub cycles: Cycle,
    /// BPU statistics accumulated over the whole run (including warmup).
    pub bpu: BpuStats,
}

impl RunMetrics {
    /// Sum of per-thread IPCs (the paper's throughput metric).
    pub fn throughput(&self) -> f64 {
        self.threads.iter().map(ThreadMetrics::ipc).sum()
    }

    /// Per-thread IPC vector.
    pub fn ipcs(&self) -> Vec<f64> {
        self.threads.iter().map(ThreadMetrics::ipc).collect()
    }

    /// Hmean fairness versus per-thread solo IPCs (same mechanism, run
    /// alone). `None` when the shapes mismatch.
    pub fn hmean_fairness(&self, solo_ipcs: &[f64]) -> Option<f64> {
        bp_common::stats::hmean_fairness(&self.ipcs(), solo_ipcs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_throughput() {
        let m = RunMetrics {
            threads: vec![
                ThreadMetrics { retired: 200, cycles: 100 },
                ThreadMetrics { retired: 100, cycles: 100 },
            ],
            cycles: 100,
            bpu: BpuStats::default(),
        };
        assert!((m.threads[0].ipc() - 2.0).abs() < 1e-12);
        assert!((m.throughput() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_is_zero_ipc() {
        let t = ThreadMetrics { retired: 5, cycles: 0 };
        assert_eq!(t.ipc(), 0.0);
    }

    #[test]
    fn fairness_uses_solo_baseline() {
        let m = RunMetrics {
            threads: vec![
                ThreadMetrics { retired: 100, cycles: 100 },
                ThreadMetrics { retired: 100, cycles: 100 },
            ],
            cycles: 100,
            bpu: BpuStats::default(),
        };
        let f = m.hmean_fairness(&[2.0, 2.0]).unwrap();
        assert!((f - 0.5).abs() < 1e-12);
    }
}
