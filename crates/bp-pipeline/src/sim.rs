//! The cycle-level simulation loop.

use std::sync::Arc;

use bp_common::telemetry::{Observable, TelemetrySnapshot};
use bp_common::{Addr, Asid, BranchRecord, ConfigError, Cycle, HwThreadId, Privilege, Telemetry};
use bp_faults::{FaultInjector, TraceDisposition};
use bp_trace::TraceStore;
use bp_workloads::profile::{BenchmarkProfile, SpecBenchmark};
use bp_workloads::WorkloadGenerator;
use hybp::SecureBpu;

use crate::config::SimConfig;
use crate::error::SimError;
use crate::metrics::{RunMetrics, StageCycles, StreamDigest, ThreadMetrics};

/// Seed of the user stream on hardware thread `hw`, software slot `sw`,
/// under master seed `master`. Public so trace capture (the `trace_tool`
/// binary) records streams under exactly the seeds replay will ask for.
pub fn stream_seed(master: u64, hw: usize, sw: usize) -> u64 {
    master ^ ((hw as u64) << 32) ^ ((sw as u64) << 16) ^ 0xABCD
}

/// Seed of hardware thread `hw`'s kernel stream under master seed `master`.
pub fn kernel_stream_seed(master: u64, hw: usize) -> u64 {
    master ^ 0xFEED ^ (hw as u64)
}

/// Canonical store name of the user stream at (`hw`, `sw`) running `bench`.
pub fn stream_name(hw: usize, sw: usize, bench: SpecBenchmark) -> String {
    format!("t{hw}s{sw}-{}", bench.name())
}

/// Canonical store name of hardware thread `hw`'s kernel stream.
pub fn kernel_stream_name(hw: usize) -> String {
    format!("kernel-t{hw}")
}

/// A captured stream being replayed from a [`TraceStore`].
///
/// Holds a streaming cursor, not a decoded vector: the store keeps only
/// the raw file bytes resident and the cursor decodes one chunk at a
/// time, so replay memory stays O(chunk) per stream.
#[derive(Debug)]
struct ReplaySource {
    cursor: bp_trace::RecordCursor,
    profile: BenchmarkProfile,
    store: Arc<TraceStore>,
}

/// Where one instruction stream's branches come from: the synthetic
/// generator, or a captured trace replayed record-for-record.
#[derive(Debug)]
enum Feed {
    Generate(WorkloadGenerator),
    Replay(ReplaySource),
}

impl Feed {
    fn next_branch(&mut self) -> BranchRecord {
        match self {
            Feed::Generate(g) => g.next_branch(),
            Feed::Replay(r) => match r.cursor.next() {
                Some(rec) => rec,
                None => {
                    // The capture ran out before the simulation did: restart
                    // the stream and let the store count the wrap as
                    // degradation (the replay is no longer the recorded run).
                    r.cursor.reset();
                    r.store.note_wrap();
                    // Non-empty is enforced at build; the fallback only
                    // guards the unreachable empty case (panic-freedom).
                    r.cursor.next().unwrap_or_else(|| {
                        BranchRecord::conditional(Addr::new(0x1000), Addr::new(0x1010), true, 16)
                    })
                }
            },
        }
    }

    fn profile(&self) -> &BenchmarkProfile {
        match self {
            Feed::Generate(g) => g.profile(),
            Feed::Replay(r) => &r.profile,
        }
    }
}

/// Fetch progress within one instruction stream.
#[derive(Debug, Clone)]
struct FetchState {
    pending: Option<bp_common::BranchRecord>,
    gap_left: u32,
    /// How a fault hook told us to treat the pending branch once its gap is
    /// fetched (trace anomalies; `Keep` when no faults are armed).
    disposition: TraceDisposition,
}

impl FetchState {
    fn new() -> Self {
        FetchState {
            pending: None,
            gap_left: 0,
            disposition: TraceDisposition::Keep,
        }
    }
}

/// Privilege mode state machine of one hardware thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    User,
    /// In a kernel episode with `remaining` instructions; `then_switch`
    /// marks scheduler episodes that end in a context switch.
    Kernel {
        remaining: u64,
        then_switch: bool,
    },
}

/// Per-hardware-thread simulation state.
#[derive(Debug)]
struct HwContext {
    hw: HwThreadId,
    /// Software threads alternated by the context-switch schedule.
    user_gens: Vec<Feed>,
    asids: Vec<Asid>,
    active: usize,
    kernel_gen: Feed,
    mode: Mode,
    user_fetch: FetchState,
    kernel_fetch: FetchState,
    /// One digest per user generator, plus the kernel generator's last.
    digests: Vec<StreamDigest>,
    window: u32,
    retire_credit: f64,
    retired_total: u64,
    /// Measurement bookkeeping.
    measured_retired: u64,
    measure_start: Option<Cycle>,
    measure_end: Option<Cycle>,
    stall_until: Cycle,
    next_cs: Cycle,
    next_timer: Cycle,
}

impl HwContext {
    /// The fetch state of the currently active stream (user or kernel).
    fn fetch_state(&mut self) -> &mut FetchState {
        match self.mode {
            Mode::User => &mut self.user_fetch,
            Mode::Kernel { .. } => &mut self.kernel_fetch,
        }
    }

    fn active_base_ipc(&self) -> f64 {
        match self.mode {
            Mode::User => self.user_gens[self.active].profile().base_ipc,
            Mode::Kernel { .. } => self.kernel_gen.profile().base_ipc,
        }
    }

    fn done(&self, measure_target: u64) -> bool {
        self.measured_retired >= measure_target
    }
}

/// Configures and constructs a [`Simulation`]: workload layout, fault
/// injection and telemetry wiring all converge here, so the simulation has a
/// single way in instead of a constructor per concern.
///
/// Obtain one from [`Simulation::builder`], pick a workload shape with
/// [`single_thread`](SimulationBuilder::single_thread),
/// [`smt`](SimulationBuilder::smt) or
/// [`threads`](SimulationBuilder::threads), then
/// [`build`](SimulationBuilder::build).
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    pub(crate) mechanism: hybp::Mechanism,
    pub(crate) cfg: SimConfig,
    pub(crate) threads: Vec<Vec<SpecBenchmark>>,
    pub(crate) faults: Option<FaultInjector>,
    pub(crate) telemetry: Telemetry,
    pub(crate) trace_store: Option<Arc<TraceStore>>,
}

impl SimulationBuilder {
    /// A single-hardware-thread workload of `bench`: two software instances
    /// of the benchmark alternate at the context-switch interval (so the
    /// baseline sees realistic cross-process pollution rather than a
    /// pristine predictor).
    pub fn single_thread(mut self, bench: SpecBenchmark) -> Self {
        self.threads = vec![vec![bench, bench]];
        self
    }

    /// An SMT workload: hardware thread `i` alternates between two software
    /// instances of `pair[i]`.
    pub fn smt(mut self, pair: [SpecBenchmark; 2]) -> Self {
        self.threads = vec![vec![pair[0], pair[0]], vec![pair[1], pair[1]]];
        self
    }

    /// Fully explicit workload layout: `threads[i]` lists the software
    /// threads that time-share hardware thread `i`.
    pub fn threads(mut self, threads: &[Vec<SpecBenchmark>]) -> Self {
        self.threads = threads.to_vec();
        self
    }

    /// Attaches (or detaches) a fault injector. The injector disturbs the
    /// predictor (key/payload/direction faults, via the BPU), the trace feed
    /// (dropped/duplicated records) and the OS model (forced context
    /// switches and timer interrupts).
    pub fn fault_injector(mut self, faults: Option<FaultInjector>) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches a telemetry sink. The simulation emits rare-event spans
    /// (context-switch stalls) and forwards the sink to the BPU's key
    /// manager, which emits one span per key refresh; hot-path facts stay in
    /// plain counters ([`StageCycles`], `BpuStats`). A disabled sink costs
    /// one branch per would-be event.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Replays every instruction stream from captured `.bpt` traces in
    /// `store` instead of running the synthetic generators. Streams are
    /// looked up by the canonical [`stream_name`]/[`stream_seed`] scheme,
    /// so a store recorded with `trace_tool record` at the same master
    /// seed replays the identical dynamic run. `None` (the default)
    /// generates.
    pub fn trace_store(mut self, store: Option<Arc<TraceStore>>) -> Self {
        self.trace_store = store;
        self
    }

    /// Builds the simulation.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when no workload was chosen, any hardware
    /// thread has no software threads, the configuration or mechanism is
    /// invalid, or (under [`trace_store`](SimulationBuilder::trace_store))
    /// a required stream is missing, undecodable, or empty — for the full
    /// trace diagnosis, load the stream through the store directly before
    /// building.
    pub fn build(self) -> Result<Simulation, ConfigError> {
        let SimulationBuilder {
            mechanism,
            cfg,
            threads,
            faults,
            telemetry,
            trace_store,
        } = self;
        cfg.validate()?;
        if threads.is_empty() {
            return Err(ConfigError::zero("hardware threads"));
        }
        if threads.iter().any(Vec::is_empty) {
            return Err(ConfigError::inconsistent(
                "software threads",
                "every hardware thread needs at least one software thread",
            ));
        }
        // `ConfigError` carries only static text (secret-hygiene keeps it
        // Copy-friendly); callers wanting the full chunk/offset diagnosis
        // pre-load through the store, which surfaces the real `TraceError`.
        let feed = |name: String, seed: u64, profile: BenchmarkProfile| match &trace_store {
            None => Ok(Feed::Generate(WorkloadGenerator::new(profile, seed))),
            Some(store) => {
                let loaded = store.load(&name, seed).map_err(|_| {
                    ConfigError::inconsistent(
                        "trace replay",
                        "stream missing or undecodable in the trace store",
                    )
                })?;
                if loaded.is_empty() {
                    return Err(ConfigError::inconsistent(
                        "trace replay",
                        "trace stream holds no records",
                    ));
                }
                Ok(Feed::Replay(ReplaySource {
                    cursor: loaded.records(),
                    profile,
                    store: Arc::clone(store),
                }))
            }
        };
        let mut bpu = SecureBpu::new(mechanism, cfg.smt_capacity.max(threads.len()), cfg.seed)?;
        bpu.set_fault_injector(faults.clone());
        bpu.set_telemetry(telemetry.clone());
        let mut next_asid = 1u16;
        let mut contexts = Vec::with_capacity(threads.len());
        for (i, sw) in threads.iter().enumerate() {
            let mut user_gens = Vec::with_capacity(sw.len());
            for (j, b) in sw.iter().enumerate() {
                user_gens.push(feed(
                    stream_name(i, j, *b),
                    stream_seed(cfg.seed, i, j),
                    b.profile(),
                )?);
            }
            let asids: Vec<Asid> = (0..sw.len())
                .map(|_| {
                    let a = Asid::new(next_asid);
                    next_asid = next_asid.wrapping_add(1);
                    a
                })
                .collect();
            contexts.push(HwContext {
                hw: HwThreadId::new(i as u8),
                digests: vec![StreamDigest::new(); user_gens.len() + 1],
                user_gens,
                asids,
                active: 0,
                kernel_gen: feed(
                    kernel_stream_name(i),
                    kernel_stream_seed(cfg.seed, i),
                    SpecBenchmark::Kernel.profile(),
                )?,
                mode: Mode::User,
                user_fetch: FetchState::new(),
                kernel_fetch: FetchState::new(),
                window: 0,
                retire_credit: 0.0,
                retired_total: 0,
                measured_retired: 0,
                measure_start: None,
                measure_end: None,
                stall_until: 0,
                // Stagger per-thread OS events so they do not align.
                next_cs: cfg.ctx_switch_interval + (i as Cycle) * (cfg.ctx_switch_interval / 3 + 1),
                next_timer: cfg.kernel_timer_interval
                    + (i as Cycle) * (cfg.kernel_timer_interval / 3 + 1),
            });
        }
        let mut sim = Simulation {
            cfg,
            bpu,
            contexts,
            cycle: 0,
            faults,
            telemetry,
            stages: StageCycles::default(),
        };
        // Announce the initial software threads.
        for i in 0..sim.contexts.len() {
            let hw = sim.contexts[i].hw;
            let asid = sim.contexts[i].asids[0];
            sim.bpu.on_context_switch(hw, asid, 0);
        }
        Ok(sim)
    }

    /// Builds a [`CycleDriver`] instead of a full [`Simulation`]: the same
    /// BPU and workload feed, stripped of the fetch/retire pipeline model so
    /// micro-benchmarks can push one branch per call through the complete
    /// predict-resolve-redirect path (`bench::speed`'s `full_cycle` kernel).
    ///
    /// Only the first hardware thread's first software feed drives the BPU;
    /// configure it with [`single_thread`](SimulationBuilder::single_thread).
    ///
    /// # Errors
    ///
    /// Same conditions as [`build`](SimulationBuilder::build).
    pub fn build_cycle_driver(self) -> Result<CycleDriver, ConfigError> {
        let mut sim = self.build()?;
        let hw = sim.contexts[0].hw;
        let asid = sim.contexts[0].asids[0];
        let ctx = sim.contexts.swap_remove(0);
        let feed = ctx
            .user_gens
            .into_iter()
            .next()
            .ok_or_else(|| ConfigError::zero("software threads"))?;
        Ok(CycleDriver {
            bpu: sim.bpu,
            feed,
            hw,
            asid,
            now: 1,
            branches: 0,
            mispredicts: 0,
        })
    }
}

/// A branch-at-a-time driver over the full BPU path — context lookup, codec
/// transforms, direction predict, BTB lookup, training, and redirect
/// bookkeeping — without the surrounding pipeline timing model.
///
/// This is the measurement substrate for the `full_cycle` kernel in
/// `bench::speed`: each [`drive_one`](CycleDriver::drive_one) call feeds one
/// generated branch through [`SecureBpu::process_branch`] on a virtual cycle
/// clock that advances by the charged latency, so key-refresh cadence and
/// BTB latency behave as they do in a real run.
// No `Debug`: owns the [`SecureBpu`] and with it the key material
// (secret-hygiene).
pub struct CycleDriver {
    bpu: SecureBpu,
    feed: Feed,
    hw: HwThreadId,
    asid: Asid,
    now: Cycle,
    branches: u64,
    mispredicts: u64,
}

impl CycleDriver {
    /// Feeds the next workload branch through the BPU and returns whether it
    /// mispredicted. Advances the virtual cycle clock by the outcome's
    /// charged latency so refresh thresholds fire on a realistic cadence.
    pub fn drive_one(&mut self) -> bool {
        let rec = self.feed.next_branch();
        let outcome = self.bpu.process_branch(self.hw, &rec, self.now);
        let miss = outcome.mispredicted();
        self.now += 1 + outcome.btb_latency as Cycle + if miss { 8 } else { 0 };
        self.branches += 1;
        self.mispredicts += miss as u64;
        miss
    }

    /// Branches driven so far.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Mispredicted branches so far (sanity telemetry for the harness: a
    /// driver predicting everything or nothing indicates a wiring bug).
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// The active security-domain announcement, re-assertable after flushes.
    pub fn reannounce(&mut self) {
        self.bpu.on_context_switch(self.hw, self.asid, self.now);
    }
}

/// A trace-driven, cycle-level SMT simulation of one core plus OS events.
///
/// # Examples
///
/// ```
/// use bp_pipeline::{SimConfig, Simulation};
/// use bp_workloads::SpecBenchmark;
/// use hybp::Mechanism;
///
/// let mut cfg = SimConfig::quick_test();
/// cfg.warmup_instructions = 5_000;
/// cfg.measure_instructions = 20_000;
/// let m = Simulation::builder(Mechanism::Baseline, cfg)
///     .single_thread(SpecBenchmark::Lbm)
///     .build()
///     .expect("valid config")
///     .run()
///     .expect("completes");
/// assert!(m.threads[0].ipc() > 0.5);
/// ```
// No `Debug`: owns the [`SecureBpu`] and with it the key material
// (secret-hygiene).
pub struct Simulation {
    cfg: SimConfig,
    bpu: SecureBpu,
    contexts: Vec<HwContext>,
    cycle: Cycle,
    faults: Option<FaultInjector>,
    telemetry: Telemetry,
    stages: StageCycles,
}

impl Simulation {
    /// Starts configuring a simulation of `mechanism` under `cfg`; pick a
    /// workload shape on the returned [`SimulationBuilder`].
    pub fn builder(mechanism: hybp::Mechanism, cfg: SimConfig) -> SimulationBuilder {
        SimulationBuilder {
            mechanism,
            cfg,
            threads: Vec::new(),
            faults: None,
            telemetry: Telemetry::disabled(),
            trace_store: None,
        }
    }

    /// Read access to the BPU (attack/analysis harnesses).
    pub fn bpu(&self) -> &SecureBpu {
        &self.bpu
    }

    /// Per-stage cycle attribution accumulated so far.
    pub fn stages(&self) -> StageCycles {
        self.stages
    }

    /// Runs warmup + measurement. Running an already-finished simulation
    /// again returns the same final metrics.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runaway`] when the runaway deadline elapses
    /// before every hardware thread finishes its measurement quota — the
    /// model stopped making forward progress.
    pub fn run(&mut self) -> Result<RunMetrics, SimError> {
        let measure = self.cfg.measure_instructions;
        let deadline = self.deadline();
        loop {
            if self.contexts.iter().all(|c| c.done(measure)) {
                break;
            }
            if self.cycle >= deadline {
                return Err(SimError::Runaway {
                    cycle: self.cycle,
                    deadline,
                });
            }
            self.step();
        }
        let threads = self
            .contexts
            .iter()
            .map(|c| ThreadMetrics {
                retired: c.measured_retired.min(measure),
                cycles: match (c.measure_start, c.measure_end) {
                    (Some(s), Some(e)) => e - s,
                    (Some(s), None) => self.cycle.saturating_sub(s).max(1),
                    _ => 1,
                },
            })
            .collect();
        Ok(RunMetrics {
            threads,
            cycles: self.cycle,
            bpu: self.bpu.observation().stats,
            stages: self.stages,
            stream_digests: self.contexts.iter().map(|c| c.digests.clone()).collect(),
        })
    }

    /// Generous runaway bound: even at 0.05 IPC the run fits.
    fn deadline(&self) -> Cycle {
        (self.cfg.warmup_instructions + self.cfg.measure_instructions) * 40 + 10_000_000
    }

    /// One simulated cycle: retire, OS events, fetch.
    fn step(&mut self) {
        self.cycle += 1;
        let now = self.cycle;
        self.retire(now);
        self.os_events(now);
        self.fetch(now);
    }

    /// ILP-limited retirement sharing the issue width.
    fn retire(&mut self, now: Cycle) {
        let mut budget = self.cfg.core.issue_width;
        let n = self.contexts.len();
        let derate = if n > 1 {
            self.cfg.core.smt_ilp_derate
        } else {
            1.0
        };
        // Rotate service order so no thread is structurally favoured.
        for k in 0..n {
            let i = (now as usize + k) % n;
            let c = &mut self.contexts[i];
            let ipc = c.active_base_ipc() * derate;
            c.retire_credit = (c.retire_credit + ipc).min(ipc * 4.0 + 1.0);
            let want = (c.retire_credit as u32).min(c.window);
            let grant = want.min(budget);
            if grant > 0 {
                budget -= grant;
                c.window -= grant;
                c.retire_credit -= f64::from(grant);
                c.retired_total += u64::from(grant);
                if c.retired_total >= self.cfg.warmup_instructions {
                    if c.measure_start.is_none() {
                        c.measure_start = Some(now);
                    }
                    if c.measure_end.is_none() {
                        c.measured_retired += u64::from(grant);
                        if c.measured_retired >= self.cfg.measure_instructions {
                            c.measure_end = Some(now);
                        }
                    }
                }
            }
        }
    }

    /// Timer interrupts and context switches (entered only from user mode;
    /// kernel exits fire the deferred actions).
    fn os_events(&mut self, now: Cycle) {
        for i in 0..self.contexts.len() {
            let (mode, mut next_cs, mut next_timer, hw) = {
                let c = &self.contexts[i];
                (c.mode, c.next_cs, c.next_timer, c.hw)
            };
            if mode != Mode::User {
                continue;
            }
            // An adversarial OS can reschedule or interrupt at any moment;
            // a forced event simply pulls the next deadline to "now".
            if let Some(f) = &self.faults {
                let d = f.on_os_tick(hw.index(), now);
                if d.force_context_switch {
                    next_cs = now;
                    self.contexts[i].next_cs = now;
                }
                if d.force_timer {
                    next_timer = now;
                    self.contexts[i].next_timer = now;
                }
            }
            if now >= next_cs {
                // Scheduler entry: privilege change into the kernel; the
                // actual thread switch happens when the episode ends.
                self.bpu.on_privilege_change(hw, Privilege::Kernel, now);
                let c = &mut self.contexts[i];
                c.mode = Mode::Kernel {
                    remaining: self.cfg.scheduler_instructions,
                    then_switch: true,
                };
            } else if now >= next_timer {
                self.bpu.on_privilege_change(hw, Privilege::Kernel, now);
                let c = &mut self.contexts[i];
                c.mode = Mode::Kernel {
                    remaining: self.cfg.kernel_episode_instructions,
                    then_switch: false,
                };
                c.next_timer = now + self.cfg.kernel_timer_interval;
            }
        }
    }

    /// ICOUNT fetch: the least-loaded ready thread fetches up to
    /// `fetch_width` instructions, stopping at redirects/bubbles.
    ///
    /// Stall attribution happens where each stall is charged: redirect and
    /// BTB-bubble penalties below, context-switch costs in
    /// `note_kernel_progress`. There is deliberately no "waiting on the keys
    /// table" charge point anywhere in the front end: HyBP serves stale keys
    /// while a refresh's background SRAM rewrite runs, so no fetch path can
    /// park on key state. If such a path were ever added it would have to
    /// emit a `("sim", "keys_stall")` span — the telemetry invariant tests
    /// pin the count of those spans at zero while refresh spans are in
    /// flight.
    fn fetch(&mut self, now: Cycle) {
        let pick = self
            .contexts
            .iter()
            .enumerate()
            .filter(|(_, c)| c.stall_until <= now && c.window < self.cfg.core.window_size)
            .min_by_key(|(_, c)| c.window)
            .map(|(i, _)| i);
        let Some(i) = pick else {
            // Every thread is stalled or window-full: the front end idles.
            self.stages.fetch_idle_cycles += 1;
            return;
        };
        let mut budget = self.cfg.core.fetch_width;
        while budget > 0 {
            // Re-resolve everything each iteration: a kernel-episode end can
            // switch the active stream (and even stall the thread) mid-fetch.
            if self.contexts[i].stall_until > now {
                break;
            }
            let c = &mut self.contexts[i];
            let mode_before = c.mode;
            if c.fetch_state().pending.is_none() {
                let (rec, digest_idx) = match c.mode {
                    Mode::User => (c.user_gens[c.active].next_branch(), c.active),
                    Mode::Kernel { .. } => (c.kernel_gen.next_branch(), c.digests.len() - 1),
                };
                // Witness the architectural stream *before* any fault
                // disposition — trace anomalies change what the predictor
                // sees, never what the program executes.
                if let Some(d) = c.digests.get_mut(digest_idx) {
                    d.fold(&rec);
                }
                let hw_idx = c.hw.index();
                let disposition = match &self.faults {
                    Some(f) => f.on_branch_record(hw_idx, now),
                    None => TraceDisposition::Keep,
                };
                let fetch_state = c.fetch_state();
                fetch_state.gap_left = rec.gap;
                fetch_state.pending = Some(rec);
                fetch_state.disposition = disposition;
            }
            let fetch_state = c.fetch_state();
            if fetch_state.gap_left > 0 {
                // Fetch gap (non-branch) instructions first.
                let gap_now = fetch_state.gap_left.min(budget);
                fetch_state.gap_left -= gap_now;
                budget -= gap_now;
                c.window += gap_now;
                self.note_kernel_progress(i, u64::from(gap_now), now);
                // Mode may have changed (episode ended): restart resolution.
                if self.contexts[i].mode != mode_before {
                    continue;
                }
                continue;
            }
            // Fetch the branch itself. (The pending slot was filled above;
            // an empty one here means the stream is wedged — stop fetching
            // rather than crash.)
            let Some(rec) = fetch_state.pending.take() else {
                break;
            };
            let disposition =
                std::mem::replace(&mut fetch_state.disposition, TraceDisposition::Keep);
            budget -= 1;
            c.window += 1;
            let hw = c.hw;
            if disposition == TraceDisposition::Drop {
                // The record was lost on the way to the predictor: fetch it
                // as a plain instruction, never predicting or training.
                self.note_kernel_progress(i, 1, now);
                continue;
            }
            let outcome = self.bpu.process_branch(hw, &rec, now);
            if disposition == TraceDisposition::Duplicate {
                // The feed replayed the record: the predictor sees (and
                // trains on) it twice, but it retires only once.
                let _ = self.bpu.process_branch(hw, &rec, now);
            }
            self.note_kernel_progress(i, 1, now);
            if outcome.mispredicted() {
                let penalty = Cycle::from(self.cfg.core.mispredict_penalty)
                    + Cycle::from(self.cfg.core.extra_frontend_cycles)
                    + Cycle::from(self.bpu.extra_frontend_cycles());
                self.stages.redirect_stall_cycles += penalty;
                let c = &mut self.contexts[i];
                c.stall_until = c.stall_until.max(now + penalty);
                break;
            } else if outcome.btb_latency > 0 {
                self.stages.btb_stall_cycles += Cycle::from(outcome.btb_latency);
                let c = &mut self.contexts[i];
                c.stall_until = c.stall_until.max(now + Cycle::from(outcome.btb_latency));
                break;
            }
        }
    }

    /// Advances kernel-episode accounting by `instructions` fetched; fires
    /// the deferred context switch / privilege return at episode end.
    fn note_kernel_progress(&mut self, i: usize, instructions: u64, now: Cycle) {
        if instructions == 0 {
            return;
        }
        let c = &mut self.contexts[i];
        let Mode::Kernel {
            remaining,
            then_switch,
        } = c.mode
        else {
            return;
        };
        if remaining > instructions {
            c.mode = Mode::Kernel {
                remaining: remaining - instructions,
                then_switch,
            };
            return;
        }
        // Episode over.
        let hw = c.hw;
        c.mode = Mode::User;
        if then_switch {
            c.active = (c.active + 1) % c.user_gens.len();
            let asid = c.asids[c.active];
            let cost = Cycle::from(self.cfg.core.context_switch_cost);
            c.next_cs = now + self.cfg.ctx_switch_interval;
            c.stall_until = now + cost;
            // The outgoing thread's fetch state is abandoned (it will get a
            // fresh stream when it returns — different dynamic path).
            c.user_fetch = FetchState::new();
            self.stages.ctx_switch_stall_cycles += cost;
            self.telemetry.span(
                now,
                "sim",
                "ctx_switch_stall",
                now,
                now + cost,
                hw.index() as u64,
            );
            self.bpu.on_context_switch(hw, asid, now);
        }
        self.bpu.on_privilege_change(hw, Privilege::User, now);
    }
}

impl Observable for Simulation {
    /// Scope `"sim"`: elapsed cycles plus per-stage stall attribution.
    fn snapshot(&self) -> TelemetrySnapshot {
        let s = &self.stages;
        TelemetrySnapshot::new("sim")
            .with("cycles", self.cycle)
            .with("fetch_idle_cycles", s.fetch_idle_cycles)
            .with("redirect_stall_cycles", s.redirect_stall_cycles)
            .with("btb_stall_cycles", s.btb_stall_cycles)
            .with("ctx_switch_stall_cycles", s.ctx_switch_stall_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybp::Mechanism;

    fn quick() -> SimConfig {
        let mut cfg = SimConfig::quick_test();
        cfg.warmup_instructions = 30_000;
        cfg.measure_instructions = 120_000;
        cfg
    }

    fn run_st(mech: Mechanism, bench: SpecBenchmark, cfg: SimConfig) -> RunMetrics {
        Simulation::builder(mech, cfg)
            .single_thread(bench)
            .build()
            .expect("valid config")
            .run()
            .expect("completes")
    }

    fn run_smt(mech: Mechanism, pair: [SpecBenchmark; 2], cfg: SimConfig) -> RunMetrics {
        Simulation::builder(mech, cfg)
            .smt(pair)
            .build()
            .expect("valid config")
            .run()
            .expect("completes")
    }

    #[test]
    fn baseline_ipc_approaches_base_ipc() {
        let m = run_st(Mechanism::Baseline, SpecBenchmark::Lbm, quick());
        let ipc = m.threads[0].ipc();
        let base = SpecBenchmark::Lbm.profile().base_ipc;
        assert!(
            ipc > base * 0.8 && ipc <= base * 1.02,
            "lbm IPC {ipc} vs base {base}"
        );
    }

    #[test]
    fn harder_branches_cost_ipc() {
        let lbm = run_st(Mechanism::Baseline, SpecBenchmark::Lbm, quick()).threads[0].ipc();
        let mcf = run_st(Mechanism::Baseline, SpecBenchmark::Mcf, quick()).threads[0].ipc();
        assert!(mcf < lbm, "mcf {mcf} must be slower than lbm {lbm}");
    }

    #[test]
    fn extra_frontend_latency_reduces_ipc() {
        let mut cfg = quick();
        let base = run_st(Mechanism::Baseline, SpecBenchmark::Mcf, cfg).threads[0].ipc();
        cfg.core.extra_frontend_cycles = 8;
        let slow = run_st(Mechanism::Baseline, SpecBenchmark::Mcf, cfg).threads[0].ipc();
        assert!(
            slow < base * 0.99,
            "8 extra cycles must cost mcf >1% (got {base} -> {slow})"
        );
    }

    #[test]
    fn smt_throughput_beats_single_thread() {
        let cfg = quick();
        let solo = run_st(Mechanism::Baseline, SpecBenchmark::Wrf, cfg).throughput();
        let smt = run_smt(
            Mechanism::Baseline,
            [SpecBenchmark::Wrf, SpecBenchmark::Mcf],
            cfg,
        )
        .throughput();
        assert!(
            smt > solo * 1.05,
            "SMT throughput {smt} must beat solo {solo}"
        );
    }

    #[test]
    fn flush_costs_more_at_small_intervals() {
        let mut small = quick();
        small.measure_instructions = 500_000;
        small.ctx_switch_interval = 25_000;
        let mut big = quick();
        big.measure_instructions = 500_000;
        big.ctx_switch_interval = 8_000_000;
        let bench = SpecBenchmark::Deepsjeng;
        let ipc_small = run_st(Mechanism::Flush, bench, small).threads[0].ipc();
        let ipc_big = run_st(Mechanism::Flush, bench, big).threads[0].ipc();
        assert!(
            ipc_small < ipc_big,
            "flush at 100K ({ipc_small}) must be slower than at 16M ({ipc_big})"
        );
    }

    #[test]
    fn hybp_close_to_baseline_at_default_interval() {
        let cfg = quick();
        let base = run_st(Mechanism::Baseline, SpecBenchmark::Xz, cfg).threads[0].ipc();
        let hybp = run_st(Mechanism::hybp_default(), SpecBenchmark::Xz, cfg).threads[0].ipc();
        let loss = (base - hybp) / base;
        assert!(
            loss < 0.05,
            "HyBP loss at 16M interval should be small, got {loss}"
        );
    }

    #[test]
    fn partition_loses_to_hybp_on_capacity_sensitive_bench() {
        let mut cfg = quick();
        // Long enough for the quarter-capacity tables to be the bottleneck
        // (short runs are dominated by cold-start for both mechanisms).
        cfg.warmup_instructions = 150_000;
        cfg.measure_instructions = 600_000;
        let part = run_st(Mechanism::Partition, SpecBenchmark::Fotonik3d, cfg).threads[0].ipc();
        let hybp =
            run_st(Mechanism::hybp_default(), SpecBenchmark::Fotonik3d, cfg).threads[0].ipc();
        assert!(
            part < hybp,
            "partition ({part}) must underperform HyBP ({hybp}) on fotonik3d"
        );
    }

    #[test]
    fn all_threads_reach_measurement() {
        let cfg = quick();
        let m = run_smt(
            Mechanism::hybp_default(),
            [SpecBenchmark::CactuBssn, SpecBenchmark::Xz],
            cfg,
        );
        for (i, t) in m.threads.iter().enumerate() {
            assert_eq!(
                t.retired, cfg.measure_instructions,
                "thread {i} must complete measurement"
            );
            assert!(t.ipc() > 0.1, "thread {i} ipc {}", t.ipc());
        }
    }

    #[test]
    fn builder_without_workload_is_a_config_error() {
        // `expect_err` would need `Simulation: Debug`, which secret-hygiene
        // forbids (it owns the BPU's key material) — match instead.
        let err = match Simulation::builder(Mechanism::Baseline, quick()).build() {
            Err(e) => e,
            Ok(_) => panic!("no workload chosen must be rejected"),
        };
        assert!(err.to_string().contains("hardware threads"));
    }

    #[test]
    fn stage_cycles_attribute_known_stalls() {
        let mut cfg = quick();
        cfg.ctx_switch_interval = 25_000;
        let m = run_st(Mechanism::Baseline, SpecBenchmark::Mcf, cfg);
        let s = m.stages;
        assert!(
            s.redirect_stall_cycles > 0,
            "mcf mispredicts must charge redirects"
        );
        assert!(
            s.ctx_switch_stall_cycles > 0,
            "25K interval must context-switch"
        );
        assert_eq!(
            s.ctx_switch_stall_cycles % Cycle::from(cfg.core.context_switch_cost),
            0,
            "every context switch charges exactly the configured cost"
        );
    }

    #[test]
    fn telemetry_sink_sees_ctx_switch_spans_and_key_refreshes() {
        let sink = Telemetry::ring(4096);
        let mut cfg = quick();
        cfg.ctx_switch_interval = 25_000;
        let mut sim = Simulation::builder(Mechanism::hybp_default(), cfg)
            .single_thread(SpecBenchmark::Xz)
            .telemetry(sink.clone())
            .build()
            .expect("valid config");
        sim.run().expect("completes");
        let events = sink.drain();
        let cost = Cycle::from(cfg.core.context_switch_cost);
        let cs: Vec<_> = events
            .iter()
            .filter(|e| e.scope == "sim" && e.name == "ctx_switch_stall")
            .collect();
        assert!(!cs.is_empty(), "context switches must emit stall spans");
        for e in &cs {
            let (start, end) = e.span_bounds().expect("stall events are spans");
            assert_eq!(end - start, cost);
        }
        assert!(
            events
                .iter()
                .any(|e| e.scope == "keys" && e.name == "refresh"),
            "HyBP context switches must emit key refresh spans"
        );
        assert_eq!(sink.dropped(), 0, "ring must be large enough for this run");
    }

    #[test]
    fn simulation_snapshot_matches_stage_counters() {
        let mut sim = Simulation::builder(Mechanism::Baseline, quick())
            .single_thread(SpecBenchmark::Mcf)
            .build()
            .expect("valid config");
        let m = sim.run().expect("completes");
        let snap = sim.snapshot();
        assert_eq!(snap.scope, "sim");
        assert_eq!(snap.get("cycles"), m.cycles);
        assert_eq!(
            snap.get("redirect_stall_cycles"),
            m.stages.redirect_stall_cycles
        );
        assert_eq!(
            snap.get("ctx_switch_stall_cycles"),
            m.stages.ctx_switch_stall_cycles
        );
    }
}
