//! Property-based tests on the predictor structures, on the in-repo
//! deterministic harness (`bp_common::check`).

use bp_common::check::Checker;
use bp_common::Addr;
use bp_predictors::btb::{BtbConfig, BtbHierarchy, BtbTable};
use bp_predictors::codec::{IdentityCodec, TableId, TableUnit};
use bp_predictors::ras::ReturnAddressStack;
use bp_predictors::tage_scl::TageScL;
use bp_predictors::DirectionPredictor;

/// Insert-then-lookup returns the stored content for any PC/target,
/// regardless of geometry.
#[test]
fn btb_insert_lookup_roundtrip() {
    Checker::new("btb_insert_lookup_roundtrip")
        .cases(256)
        .run(|g| {
            let sets_pow = g.u32_in(0, 8);
            let ways = g.usize_in(1, 8);
            let (pc, content) = (g.u64(), g.u64());
            let cfg = BtbConfig::new(1 << sets_pow, ways, 24);
            let mut t = BtbTable::new(cfg, TableId::new(TableUnit::Btb, 0), 1);
            let mut c = IdentityCodec::new();
            t.insert(Addr::new(pc), content, &mut c, 0);
            assert_eq!(t.lookup(Addr::new(pc), &mut c, 1), Some(content));
        });
}

/// Occupancy never exceeds capacity and flush always zeroes it.
#[test]
fn btb_occupancy_bounded() {
    Checker::new("btb_occupancy_bounded").run(|g| {
        let len = g.usize_in(1, 300);
        let pcs = g.vec(len, |g| g.u64());
        let cfg = BtbConfig::new(16, 2, 16);
        let mut t = BtbTable::new(cfg, TableId::new(TableUnit::Btb, 1), 2);
        let mut c = IdentityCodec::new();
        for (i, &pc) in pcs.iter().enumerate() {
            t.insert(Addr::new(pc), i as u64, &mut c, i as u64);
            assert!(t.occupancy() <= cfg.entries());
        }
        t.flush();
        assert_eq!(t.occupancy(), 0);
    });
}

/// The hierarchy finds a just-installed branch at L0 for any PC.
#[test]
fn hierarchy_install_hits() {
    Checker::new("hierarchy_install_hits").cases(128).run(|g| {
        let (pc, tgt) = (g.u64(), g.u64());
        let mut h = BtbHierarchy::zen2();
        let mut c = IdentityCodec::new();
        h.update(Addr::new(pc), Addr::new(tgt), &mut c, 0);
        let r = h.lookup(Addr::new(pc), &mut c, 1);
        assert_eq!(r.level(), Some(0));
        assert_eq!(r.target(), Some(Addr::new(tgt)));
    });
}

/// Direction predictors converge on any constant-direction branch.
#[test]
fn tage_learns_any_constant_branch() {
    Checker::new("tage_learns_any_constant_branch")
        .cases(64)
        .run(|g| {
            let (pc, dir) = (g.u64(), g.bool());
            let mut p = TageScL::paper_default();
            let mut c = IdentityCodec::new();
            for i in 0..32u64 {
                let _ = p.predict(Addr::new(pc), &mut c, i);
                p.update(Addr::new(pc), dir, &mut c, i);
            }
            assert_eq!(p.predict(Addr::new(pc), &mut c, 100), dir);
        });
}

/// The RAS is a strict LIFO up to its capacity, for any push sequence.
#[test]
fn ras_is_lifo() {
    Checker::new("ras_is_lifo").run(|g| {
        let len = g.usize_in(1, 32);
        let addrs = g.vec(len, |g| g.u64());
        let mut ras = ReturnAddressStack::new(64);
        for &a in &addrs {
            ras.push(Addr::new(a));
        }
        for &a in addrs.iter().rev() {
            assert_eq!(ras.pop(), Some(Addr::new(a)));
        }
        assert_eq!(ras.pop(), None);
    });
}

/// Predictions are deterministic: two identical predictors fed the same
/// stream agree everywhere.
#[test]
fn tage_is_deterministic() {
    Checker::new("tage_is_deterministic").cases(32).run(|g| {
        let len = g.usize_in(1, 200);
        let stream = g.vec(len, |g| (g.u32_in(0, 1 << 16) as u16, g.bool()));
        let mut a = TageScL::paper_default();
        let mut b = TageScL::paper_default();
        let mut ca = IdentityCodec::new();
        let mut cb = IdentityCodec::new();
        for (i, &(pc16, taken)) in stream.iter().enumerate() {
            let pc = Addr::new(0x1000 + u64::from(pc16) * 4);
            let pa = a.predict(pc, &mut ca, i as u64);
            let pb = b.predict(pc, &mut cb, i as u64);
            assert_eq!(pa, pb);
            a.update(pc, taken, &mut ca, i as u64);
            b.update(pc, taken, &mut cb, i as u64);
        }
    });
}
