//! Storage-budget ground truth: the totals `budgets.toml` declares,
//! re-derived here from the live `storage_bits()` implementations.
//!
//! Three representations of each predictor's storage must agree
//! bit-for-bit:
//!
//! 1. the runtime accounting (`storage_bits()` on the config types);
//! 2. the checked-in manifest (`budgets.toml`), whose component formulas
//!    the `storage-budget` lint evaluates from the named geometry consts;
//! 3. the literature reference values for the named configurations
//!    (SNIPPETS.md, CBP-class TAGE-SC-L lineage), pinned below.
//!
//! The lint ties (2) to the consts; the tests in this module tie (1) to
//! (2)'s declared totals, closing the triangle. If a geometry const
//! changes, *both* checks fail until the manifest is updated — drift
//! cannot happen silently in either direction.

/// `budgets.toml` declared total for `[tage.paper_scl]` (bits).
pub const BUDGET_TAGE_PAPER_SCL_BITS: u64 = 442_368;
/// `budgets.toml` declared total for `[sc.default_scl]` (bits).
pub const BUDGET_SC_DEFAULT_SCL_BITS: u64 = 24_576;
/// `budgets.toml` declared total for `[loop_pred.default_scl]` (bits).
pub const BUDGET_LOOP_DEFAULT_SCL_BITS: u64 = 3_008;
/// `budgets.toml` declared total for `[bimodal.paper_base]` (bits).
pub const BUDGET_BIMODAL_PAPER_BASE_BITS: u64 = 12_288;
/// `budgets.toml` declared total for `[btb.zen2]` (bits).
pub const BUDGET_BTB_ZEN2_BITS: u64 = 461_760;
/// `budgets.toml` declared total for `[tage_scl.paper]` (bits).
pub const BUDGET_TAGE_SCL_PAPER_BITS: u64 = 469_952;

/// SNIPPETS.md reference: CBP TAGE-SC-L 64KB, TAGE component (bits).
pub const REFERENCE_TAGE_64KB_BITS: u64 = 463_917;
/// SNIPPETS.md reference: CBP TAGE-SC-L 64KB, SC component (bits).
pub const REFERENCE_SC_64KB_BITS: u64 = 58_190;
/// SNIPPETS.md reference: CBP TAGE-SC-L 64KB, loop component (bits).
pub const REFERENCE_LOOP_64KB_BITS: u64 = 1_248;
/// The 64KB storage tier cap every paper-scale config must fit (bits).
pub const TIER_64KB_BITS: u64 = 524_288;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bimodal::Bimodal;
    use crate::btb::BtbHierarchyConfig;
    use crate::loop_pred::LoopPredictor;
    use crate::sc::ScConfig;
    use crate::tage::TageConfig;
    use crate::tage_scl::TageScL;
    use crate::DirectionPredictor;

    #[test]
    fn tage_storage_matches_the_declared_budget() {
        assert_eq!(
            TageConfig::paper_scl().storage_bits(),
            BUDGET_TAGE_PAPER_SCL_BITS
        );
    }

    #[test]
    fn sc_storage_matches_the_declared_budget() {
        assert_eq!(
            ScConfig::default_scl().storage_bits(),
            BUDGET_SC_DEFAULT_SCL_BITS
        );
    }

    #[test]
    fn loop_storage_matches_the_declared_budget() {
        assert_eq!(
            LoopPredictor::default_scl().storage_bits(),
            BUDGET_LOOP_DEFAULT_SCL_BITS
        );
    }

    #[test]
    fn bimodal_storage_matches_the_declared_budget() {
        assert_eq!(
            Bimodal::paper_base().storage_bits(),
            BUDGET_BIMODAL_PAPER_BASE_BITS
        );
    }

    #[test]
    fn btb_storage_matches_the_declared_budget() {
        assert_eq!(
            BtbHierarchyConfig::zen2().storage_bits(),
            BUDGET_BTB_ZEN2_BITS
        );
    }

    #[test]
    fn tage_scl_storage_matches_the_declared_budget() {
        assert_eq!(
            TageScL::paper_default().storage_bits_with_slots(),
            BUDGET_TAGE_SCL_PAPER_BITS
        );
    }

    #[test]
    fn paper_configs_fit_the_64kb_tier() {
        assert!(BUDGET_TAGE_SCL_PAPER_BITS <= TIER_64KB_BITS);
        assert!(
            REFERENCE_TAGE_64KB_BITS + REFERENCE_SC_64KB_BITS + REFERENCE_LOOP_64KB_BITS
                <= TIER_64KB_BITS
        );
    }
}
