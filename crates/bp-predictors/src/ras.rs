//! Return address stack.
//!
//! A small circular stack predicting return targets. Under every isolation
//! mechanism the RAS is per-hardware-thread (it is tiny), matching both real
//! designs and the paper's Samsung Exynos discussion (RAS content encryption
//! is mentioned there; here isolation suffices since the structure is
//! replicated per thread anyway).

use bp_common::Addr;

/// A fixed-capacity return address stack with wrap-around overwrite.
///
/// # Examples
///
/// ```
/// use bp_predictors::ras::ReturnAddressStack;
/// use bp_common::Addr;
///
/// let mut ras = ReturnAddressStack::new(16);
/// ras.push(Addr::new(0x1004));
/// assert_eq!(ras.pop(), Some(Addr::new(0x1004)));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    entries: Vec<Addr>,
    top: usize,
    depth: usize,
}

impl ReturnAddressStack {
    /// Creates a stack with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ReturnAddressStack {
            entries: vec![Addr::new(0); capacity],
            top: 0,
            depth: 0,
        }
    }

    /// Pushes a return address (the PC after a call). Overwrites the oldest
    /// entry when full, as hardware does.
    pub fn push(&mut self, return_addr: Addr) {
        self.entries[self.top] = return_addr;
        self.top = (self.top + 1) % self.entries.len();
        self.depth = (self.depth + 1).min(self.entries.len());
    }

    /// Pops the predicted return target, or `None` when empty.
    pub fn pop(&mut self) -> Option<Addr> {
        if self.depth == 0 {
            return None;
        }
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.depth -= 1;
        Some(self.entries[self.top])
    }

    /// Peeks without popping.
    pub fn peek(&self) -> Option<Addr> {
        if self.depth == 0 {
            None
        } else {
            Some(self.entries[(self.top + self.entries.len() - 1) % self.entries.len()])
        }
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Clears the stack.
    pub fn flush(&mut self) {
        self.top = 0;
        self.depth = 0;
    }

    /// Modeled storage in bits (48-bit return addresses).
    pub fn storage_bits(&self) -> u64 {
        self.entries.len() as u64 * 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = ReturnAddressStack::new(8);
        r.push(Addr::new(1));
        r.push(Addr::new(2));
        r.push(Addr::new(3));
        assert_eq!(r.pop(), Some(Addr::new(3)));
        assert_eq!(r.pop(), Some(Addr::new(2)));
        assert_eq!(r.pop(), Some(Addr::new(1)));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_overwrites_oldest() {
        let mut r = ReturnAddressStack::new(2);
        r.push(Addr::new(1));
        r.push(Addr::new(2));
        r.push(Addr::new(3)); // overwrites 1
        assert_eq!(r.depth(), 2);
        assert_eq!(r.pop(), Some(Addr::new(3)));
        assert_eq!(r.pop(), Some(Addr::new(2)));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn peek_does_not_pop() {
        let mut r = ReturnAddressStack::new(4);
        r.push(Addr::new(9));
        assert_eq!(r.peek(), Some(Addr::new(9)));
        assert_eq!(r.depth(), 1);
    }

    #[test]
    fn flush_empties() {
        let mut r = ReturnAddressStack::new(4);
        r.push(Addr::new(9));
        r.flush();
        assert_eq!(r.pop(), None);
        assert_eq!(r.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = ReturnAddressStack::new(0);
    }
}
