//! TAGE-SC-L: the paper's baseline direction predictor (Figure 3b).
//!
//! Combines [`crate::tage::Tage`] with the statistical corrector and
//! the loop predictor: the loop predictor overrides when confident; the
//! corrector may revise TAGE's output when the provider is weak and the
//! corrector is confident.
//!
//! Like [`Tage`], the predictor supports isolation slots: the small
//! structures (base predictor, corrector, loop table, history registers) are
//! replicated per slot — under HyBP these are the physically isolated
//! components — while the large tagged tables stay shared.

use crate::codec::TableCodec;
use crate::loop_pred::LoopPredictor;
use crate::sc::StatisticalCorrector;
use crate::tage::{Tage, TageConfig};
use crate::DirectionPredictor;
use bp_common::history::GlobalHistory;
use bp_common::{fast_mod_usize, Addr, Cycle};

/// The combined TAGE-SC-L predictor.
///
/// # Examples
///
/// ```
/// use bp_predictors::tage_scl::TageScL;
/// use bp_predictors::codec::IdentityCodec;
/// use bp_predictors::DirectionPredictor;
/// use bp_common::Addr;
///
/// let mut p = TageScL::paper_default();
/// let mut c = IdentityCodec::new();
/// for step in 0..100u64 {
///     let pc = Addr::new(0x4000);
///     let _ = p.predict(pc, &mut c, step);
///     p.update(pc, true, &mut c, step);
/// }
/// assert!(p.predict(Addr::new(0x4000), &mut c, 100));
/// ```
#[derive(Debug, Clone)]
pub struct TageScL {
    tage: Tage,
    sc: Vec<StatisticalCorrector>,
    loop_pred: Vec<LoopPredictor>,
    /// Mirror of the retired global history, per slot, consulted by the SC.
    histories: Vec<GlobalHistory>,
    last_sc: Option<(u64, usize, crate::sc::ScVerdict)>,
}

impl TageScL {
    /// Builds a single-slot TAGE-SC-L.
    pub fn new(config: TageConfig) -> Self {
        TageScL::with_slots(config, 1)
    }

    /// Builds TAGE-SC-L with `slots` isolated copies of the small
    /// structures and shared tagged tables.
    pub fn with_slots(config: TageConfig, slots: usize) -> Self {
        TageScL::with_layout(config, slots, slots)
    }

    /// General layout: `iso_slots` replicas of the small tables (base, SC,
    /// loop) and `history_slots` history banks. Conventional SMT shares the
    /// tables and banks only the histories (`iso_slots = 1`); HyBP
    /// replicates both per `(thread, privilege)` slot. Indices are taken
    /// modulo each count.
    ///
    /// # Panics
    ///
    /// Panics if a slot count is zero.
    pub fn with_layout(config: TageConfig, iso_slots: usize, history_slots: usize) -> Self {
        assert!(iso_slots > 0 && history_slots > 0, "need at least one slot");
        TageScL {
            tage: Tage::with_layout(config, iso_slots, history_slots),
            sc: (0..iso_slots)
                .map(|_| StatisticalCorrector::default_scl())
                .collect(),
            loop_pred: (0..iso_slots)
                .map(|_| LoopPredictor::default_scl())
                .collect(),
            histories: (0..history_slots).map(|_| GlobalHistory::new()).collect(),
            last_sc: None,
        }
    }

    /// The paper-scale predictor (≈ 66 KB class), single slot.
    pub fn paper_default() -> Self {
        TageScL::new(TageConfig::paper_scl())
    }

    /// Number of isolation slots.
    pub fn slot_count(&self) -> usize {
        self.sc.len()
    }

    /// Access to the inner TAGE (attack harnesses inspect occupancy).
    pub fn tage(&self) -> &Tage {
        &self.tage
    }

    /// Predicts for a branch executing in `slot`. Generic over the codec so
    /// concrete codecs inline through the whole TAGE-SC-L stack; `dyn`
    /// callers keep working (`dyn TableCodec` implements `TableCodec`).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds.
    pub fn predict_slot<C: TableCodec + ?Sized>(
        &mut self,
        pc: Addr,
        slot: usize,
        codec: &mut C,
        now: Cycle,
    ) -> bool {
        let si = fast_mod_usize(slot, self.sc.len());
        let hi = fast_mod_usize(slot, self.histories.len());
        let lv = self.loop_pred[si].consult(pc, codec, now);
        let tage_pred = self.tage.predict_slot(pc, slot, codec, now);
        let sc = self.sc[si].consult(pc, tage_pred.taken, &self.histories[hi], codec, now);
        self.last_sc = Some((pc.raw(), slot, sc));
        if lv.confident {
            return lv.taken;
        }
        // The corrector overrides only weak TAGE outputs, and only when its
        // own confidence clears the dynamic threshold.
        if tage_pred.weak && sc.confident {
            sc.taken
        } else {
            tage_pred.taken
        }
    }

    /// Trains all components for a branch in `slot` and advances that slot's
    /// histories.
    pub fn update_slot<C: TableCodec + ?Sized>(
        &mut self,
        pc: Addr,
        slot: usize,
        taken: bool,
        codec: &mut C,
        now: Cycle,
    ) {
        let si = fast_mod_usize(slot, self.sc.len());
        let hi = fast_mod_usize(slot, self.histories.len());
        self.loop_pred[si].train(pc, taken, codec, now);
        if let Some((saved_pc, saved_slot, verdict)) = self.last_sc.take() {
            if saved_pc == pc.raw() && saved_slot == slot {
                self.sc[si].train(pc, taken, verdict, &self.histories[hi], codec, now);
            }
        }
        self.tage.update_slot(pc, slot, taken, codec, now);
        self.histories[hi].push(taken);
    }

    /// Flushes one slot's physically isolated components: base predictor,
    /// history registers, corrector and loop table. The shared tagged tables
    /// are untouched (they are protected by key changes under HyBP).
    pub fn flush_slot_isolated(&mut self, slot: usize) {
        let si = fast_mod_usize(slot, self.sc.len());
        let hi = fast_mod_usize(slot, self.histories.len());
        self.tage.flush_slot(slot);
        self.sc[si].flush();
        self.loop_pred[si].flush();
        self.histories[hi].clear();
        self.last_sc = None;
    }

    /// Storage accounting: shared tagged tables once, small structures per
    /// slot.
    pub fn storage_bits_with_slots(&self) -> u64 {
        self.tage.storage_bits_with_slots()
            + self
                .sc
                .iter()
                .map(StatisticalCorrector::storage_bits)
                .sum::<u64>()
            + self
                .loop_pred
                .iter()
                .map(LoopPredictor::storage_bits)
                .sum::<u64>()
    }

    /// Storage of one slot's isolated small structures, in bits (base +
    /// corrector + loop table). This is the quantity HyBP replicates.
    pub fn isolated_slot_storage_bits(&self) -> u64 {
        self.tage.config().base_storage_bits()
            + self.sc[0].storage_bits()
            + self.loop_pred[0].storage_bits()
    }
}

impl DirectionPredictor for TageScL {
    fn predict(&mut self, pc: Addr, codec: &mut dyn TableCodec, now: Cycle) -> bool {
        self.predict_slot(pc, 0, codec, now)
    }

    fn update(&mut self, pc: Addr, taken: bool, codec: &mut dyn TableCodec, now: Cycle) {
        self.update_slot(pc, 0, taken, codec, now);
    }

    fn flush(&mut self) {
        self.tage.flush_all();
        for s in &mut self.sc {
            s.flush();
        }
        for l in &mut self.loop_pred {
            l.flush();
        }
        for h in &mut self.histories {
            h.clear();
        }
        self.last_sc = None;
    }

    fn storage_bits(&self) -> u64 {
        self.storage_bits_with_slots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::IdentityCodec;
    use bp_common::rng::Xoshiro256StarStar;

    fn accuracy<F: FnMut(u64) -> bool>(p: &mut TageScL, pc: u64, n: u64, mut f: F) -> f64 {
        let mut c = IdentityCodec::new();
        let mut ok = 0u64;
        for s in 0..n {
            let t = f(s);
            if p.predict(Addr::new(pc), &mut c, s) == t {
                ok += 1;
            }
            p.update(Addr::new(pc), t, &mut c, s);
        }
        ok as f64 / n as f64
    }

    #[test]
    fn long_constant_loop_is_near_perfect_after_warmup() {
        // Trip count 40: beyond the tagged tables' easy range but trivial
        // for the loop predictor.
        let mut p = TageScL::paper_default();
        let _warm = accuracy(&mut p, 0x100, 40 * 8, |s| (s % 40) + 1 < 40);
        let steady = accuracy(&mut p, 0x100, 40 * 20, |s| (s % 40) + 1 < 40);
        assert!(steady > 0.97, "steady-state accuracy {steady}");
    }

    #[test]
    fn mixed_workload_accuracy_is_high() {
        let mut p = TageScL::paper_default();
        let mut c = IdentityCodec::new();
        let mut rng = Xoshiro256StarStar::seeded(17);
        // 200 branches: 60% strongly biased, 30% pattern, 10% random.
        let kinds: Vec<u8> = (0..200)
            .map(|i| {
                if i < 120 {
                    0
                } else if i < 180 {
                    1
                } else {
                    2
                }
            })
            .collect();
        let biases: Vec<bool> = (0..200).map(|_| rng.chance(0.5)).collect();
        let (mut ok, mut total) = (0u64, 0u64);
        for round in 0..120u64 {
            for b in 0..200usize {
                let pc = Addr::new(0x8000 + (b as u64) * 16);
                let t = match kinds[b] {
                    0 => biases[b] != rng.chance(0.02),
                    1 => !(round + b as u64).is_multiple_of(3),
                    _ => rng.chance(0.5),
                };
                if p.predict(pc, &mut c, round) == t {
                    ok += 1;
                }
                p.update(pc, t, &mut c, round);
                total += 1;
            }
        }
        let acc = ok as f64 / total as f64;
        assert!(acc > 0.87, "mixed accuracy {acc}");
    }

    #[test]
    fn flush_loses_warm_state() {
        let mut p = TageScL::paper_default();
        let a1 = accuracy(&mut p, 0x300, 3000, |s| s % 2 == 0);
        assert!(a1 > 0.9);
        p.flush();
        let mut c = IdentityCodec::new();
        let cold = p.predict(Addr::new(0x300), &mut c, 0);
        assert!(!cold, "cold bimodal default is not-taken");
    }

    #[test]
    fn slot_flush_keeps_other_slots_warm() {
        let mut p = TageScL::with_slots(TageConfig::paper_scl(), 2);
        let mut c = IdentityCodec::new();
        // Warm both slots on the same always-taken branch.
        for s in 0..500u64 {
            for slot in 0..2 {
                let _ = p.predict_slot(Addr::new(0x900), slot, &mut c, s);
                p.update_slot(Addr::new(0x900), slot, true, &mut c, s);
            }
        }
        p.flush_slot_isolated(0);
        // Slot 1 still predicts taken (its base/hist survive; shared tagged
        // tables also survive).
        assert!(p.predict_slot(Addr::new(0x900), 1, &mut c, 1000));
    }

    #[test]
    fn storage_includes_all_components() {
        let p = TageScL::paper_default();
        let kb = p.storage_bits() as f64 / 8.0 / 1024.0;
        assert!((38.0..75.0).contains(&kb), "TAGE-SC-L storage {kb} KB");
        // Isolated share: base (12 Kbit) + SC + loop ≈ 4.5 KB class.
        let iso_kb = p.isolated_slot_storage_bits() as f64 / 8.0 / 1024.0;
        assert!((1.0..6.0).contains(&iso_kb), "isolated share {iso_kb} KB");
    }
}
