//! TAGE: the TAgged GEometric-history-length predictor (Seznec & Michaud).
//!
//! The paper's direction predictor is TAGE-SC-L; this module implements the
//! TAGE core — a bimodal base (provided by [`crate::bimodal::Bimodal`]) plus
//! a set of partially tagged tables indexed by hashes of geometrically
//! growing global-history lengths. The statistical corrector and loop
//! predictor live in [`crate::sc`] and [`crate::loop_pred`], combined in
//! [`crate::tage_scl`].
//!
//! # Isolation slots
//!
//! Under HyBP the base predictor is physically isolated per
//! `(hardware thread, privilege)` while the tagged tables are shared (and
//! randomized). [`Tage::with_slots`] therefore replicates the base predictor
//! and the per-thread history registers across `slots` isolation slots while
//! keeping a single set of tagged tables; every prediction names the slot it
//! executes in. The single-slot constructors model conventional hardware.

use crate::bimodal::Bimodal;
use crate::codec::{TableCodec, TableId, TableUnit};
use crate::DirectionPredictor;
use bp_common::history::{GlobalHistory, PathHistory};
use bp_common::rng::SplitMix64;
use bp_common::{fast_mod, fast_mod_usize, Addr, Cycle};

/// Geometry of one tagged table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaggedTableConfig {
    /// Entry count.
    pub entries: usize,
    /// Partial tag width in bits.
    pub tag_bits: u32,
    /// Global-history length hashed into the index/tag.
    pub history_len: usize,
}

/// TAGE configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TageConfig {
    /// Base predictor prediction entries (paper: 8192, hysteresis shared 2:1).
    pub base_entries: usize,
    /// The tagged tables, shortest history first.
    pub tagged: Vec<TaggedTableConfig>,
    /// Signed counter width (3 ⇒ range −4..=3).
    pub ctr_bits: u32,
    /// Useful counter width.
    pub u_bits: u32,
    /// Updates between periodic useful-counter resets.
    pub u_reset_period: u64,
}

// Paper-scale geometry, named so `budgets.toml` can verify the storage
// budget bit-for-bit against these exact values (the `storage-budget`
// lint parses them from this file; keep them plain integer literals).

/// Base (bimodal) prediction entries of the paper-scale TAGE.
pub const PAPER_BASE_ENTRIES: usize = 8192;
/// Entries per tagged table.
pub const PAPER_TAGGED_ENTRIES: usize = 2048;
/// Tables carrying the short partial tag (the shortest histories).
pub const PAPER_SHORT_TABLES: usize = 5;
/// Tables carrying the long partial tag.
pub const PAPER_LONG_TABLES: usize = 10;
/// Partial tag width on the short-history tables.
pub const PAPER_SHORT_TAG_BITS: u32 = 8;
/// Partial tag width on the long-history tables.
pub const PAPER_LONG_TAG_BITS: u32 = 11;
/// Signed prediction counter width.
pub const PAPER_CTR_BITS: u32 = 3;
/// Useful counter width.
pub const PAPER_U_BITS: u32 = 1;

impl TageConfig {
    /// The paper-scale TAGE: 8K-entry base, 15 tagged tables of 2K entries
    /// (modeling the "thirty 1K-entry interleaved banks"), tags 8 bits on
    /// the five shortest tables and 11 bits beyond, histories 4..640.
    pub fn paper_scl() -> Self {
        let lengths = [
            4, 6, 9, 13, 19, 29, 43, 64, 96, 144, 216, 324, 486, 600, 640,
        ];
        debug_assert_eq!(lengths.len(), PAPER_SHORT_TABLES + PAPER_LONG_TABLES);
        TageConfig {
            base_entries: PAPER_BASE_ENTRIES,
            tagged: lengths
                .iter()
                .enumerate()
                .map(|(i, &history_len)| TaggedTableConfig {
                    entries: PAPER_TAGGED_ENTRIES,
                    tag_bits: if i < PAPER_SHORT_TABLES {
                        PAPER_SHORT_TAG_BITS
                    } else {
                        PAPER_LONG_TAG_BITS
                    },
                    history_len,
                })
                .collect(),
            ctr_bits: PAPER_CTR_BITS,
            u_bits: PAPER_U_BITS,
            u_reset_period: 256 * 1024,
        }
    }

    /// A proportionally smaller TAGE: every table scaled to
    /// `numer/denom` of its size (used by Partition and the Figure-8
    /// Replication sweep). Sizes are clamped to at least 16 entries.
    ///
    /// # Panics
    ///
    /// Panics if `numer` is zero or `denom` is zero.
    pub fn scaled(&self, numer: usize, denom: usize) -> Self {
        assert!(numer > 0 && denom > 0, "scale must be positive");
        let mut cfg = self.clone();
        cfg.base_entries = (cfg.base_entries * numer / denom).max(16);
        for t in &mut cfg.tagged {
            t.entries = (t.entries * numer / denom).max(16);
        }
        cfg
    }

    /// Total modeled storage in bits for one base replica plus the tagged
    /// tables (callers multiply the base share by slot count).
    pub fn storage_bits(&self) -> u64 {
        self.base_storage_bits() + self.tagged_storage_bits()
    }

    /// Storage of one base predictor replica in bits.
    pub fn base_storage_bits(&self) -> u64 {
        self.base_entries as u64 + (self.base_entries as u64 / 2)
    }

    /// Storage of the tagged tables in bits.
    pub fn tagged_storage_bits(&self) -> u64 {
        self.tagged
            .iter()
            .map(|t| t.entries as u64 * u64::from(self.ctr_bits + t.tag_bits + self.u_bits))
            .sum()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TaggedEntry {
    tag: u64,
    /// Signed counter; sign gives the prediction.
    ctr: i8,
    /// Useful counter.
    u: u8,
}

impl TaggedEntry {
    const EMPTY: TaggedEntry = TaggedEntry {
        tag: 0,
        ctr: 0,
        u: 0,
    };
}

#[derive(Debug, Clone)]
struct TaggedTable {
    config: TaggedTableConfig,
    id: TableId,
    entries: Vec<TaggedEntry>,
}

impl TaggedTable {
    fn new(config: TaggedTableConfig, table_num: usize) -> Self {
        TaggedTable {
            id: TableId::new(TableUnit::TageTagged, table_num),
            entries: vec![TaggedEntry::EMPTY; config.entries],
            config,
        }
    }

    fn flush(&mut self) {
        self.entries.fill(TaggedEntry::EMPTY);
    }
}

/// Per-slot history state: the global/path registers and the folded
/// histories for every tagged table (hardware: per-SMT-thread registers).
///
/// The folded registers are stored as a flattened struct-of-arrays bank
/// rather than per-table `FoldedHistory` structs: the three folds of one
/// table (index, tag, tag2) share that table's history length, so each push
/// reads the evicted history bit once per *table* instead of once per
/// *fold*, and the values/widths/out-points stay in three contiguous
/// arrays. The per-fold arithmetic is bit-identical to
/// [`bp_common::history::FoldedHistory::update`].
#[derive(Debug, Clone)]
struct HistoryState {
    global: GlobalHistory,
    path: PathHistory,
    /// Folded values, 3 per table: `[index, tag, tag2]` interleaved.
    fold_values: Vec<u64>,
    /// Fold widths in bits, parallel to `fold_values`.
    fold_widths: Vec<u32>,
    /// Evicted-bit positions (`history_len % width`), parallel to
    /// `fold_values`.
    fold_out: Vec<u32>,
    /// History length per table (shared by its three folds).
    lengths: Vec<usize>,
}

impl HistoryState {
    fn new(tables: &[TaggedTableConfig]) -> Self {
        let mut fold_widths = Vec::with_capacity(tables.len() * 3);
        let mut fold_out = Vec::with_capacity(tables.len() * 3);
        let mut lengths = Vec::with_capacity(tables.len());
        for t in tables {
            let index_bits = usize::BITS - (t.entries - 1).leading_zeros();
            let widths = [
                (index_bits as usize).max(1),
                t.tag_bits as usize,
                (t.tag_bits as usize).saturating_sub(1).max(1),
            ];
            for w in widths {
                assert!(w > 0 && w <= 32, "fold width out of range");
                fold_widths.push(w as u32);
                fold_out.push((t.history_len % w) as u32);
            }
            assert!(
                t.history_len <= GlobalHistory::CAPACITY,
                "length exceeds capacity"
            );
            lengths.push(t.history_len);
        }
        HistoryState {
            global: GlobalHistory::new(),
            path: PathHistory::new(),
            fold_values: vec![0; tables.len() * 3],
            fold_widths,
            fold_out,
            lengths,
        }
    }

    fn clear(&mut self) {
        self.global.clear();
        self.path.clear();
        self.fold_values.fill(0);
    }

    /// Folded (index, tag, tag2) values for `table`.
    #[inline]
    fn folds(&self, table: usize) -> (u64, u64, u64) {
        let j = table * 3;
        (
            self.fold_values[j],
            self.fold_values[j + 1],
            self.fold_values[j + 2],
        )
    }

    fn push(&mut self, pc: Addr, taken: bool) {
        self.global.push(taken);
        self.path.push(pc.bits(2, 1) == 1);
        let inserted = self.global.bit(0) as u64;
        for (t, &len) in self.lengths.iter().enumerate() {
            if len == 0 {
                continue;
            }
            let evicted = if len < GlobalHistory::CAPACITY {
                self.global.bit(len) as u64
            } else {
                0
            };
            for k in 0..3 {
                let j = t * 3 + k;
                let width = self.fold_widths[j];
                // Rotate left by one inside `width`, inject new bit, eject
                // old bit (FoldedHistory::update, inlined over the bank).
                let mut v = (self.fold_values[j] << 1) | inserted;
                v ^= evicted << self.fold_out[j];
                v ^= (v >> width) & 1;
                v &= (1u64 << width) - 1;
                self.fold_values[j] = v;
            }
        }
    }
}

/// The result of a TAGE table walk, kept so the update path does not have to
/// repeat the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagePrediction {
    /// Final predicted direction.
    pub taken: bool,
    /// Index of the provider tagged table, or `None` when the base provided.
    pub provider: Option<usize>,
    /// The alternate prediction (next-longest matching component).
    pub alt_taken: bool,
    /// Whether the provider entry was weak (|2·ctr+1| = 1).
    pub weak: bool,
}

const MAX_TABLES: usize = 24;

/// Saved state between `predict` and `update` for one branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TageLookupState {
    pc: u64,
    slot: usize,
    pred: TagePrediction,
    provider_idx: usize,
    indices: [u64; MAX_TABLES],
    tags: [u64; MAX_TABLES],
}

/// The TAGE predictor (per-slot bases + shared tagged tables).
#[derive(Debug, Clone)]
pub struct Tage {
    config: TageConfig,
    bases: Vec<Bimodal>,
    tables: Vec<TaggedTable>,
    histories: Vec<HistoryState>,
    /// Counter choosing alt-pred for newly allocated weak providers.
    use_alt_on_new_alloc: i8,
    updates: u64,
    alloc_rng: SplitMix64,
    last: Option<TageLookupState>,
}

impl Tage {
    /// Builds a single-slot TAGE predictor (conventional hardware).
    pub fn new(config: TageConfig) -> Self {
        Tage::with_slots(config, 1)
    }

    /// Builds TAGE with `slots` isolated base predictors and history banks
    /// sharing one set of tagged tables (the HyBP layout).
    pub fn with_slots(config: TageConfig, slots: usize) -> Self {
        Tage::with_layout(config, slots, slots)
    }

    /// Fully general layout: `base_slots` physical base-predictor replicas
    /// and `history_slots` history register banks, sharing one set of
    /// tagged tables. Conventional SMT hardware banks the (tiny) history
    /// registers per thread while sharing every table (`base_slots = 1`);
    /// HyBP replicates both per isolation slot. Slot indices are taken
    /// modulo each count.
    ///
    /// # Panics
    ///
    /// Panics if a slot count is zero, there are no tagged tables, or more
    /// than 24.
    pub fn with_layout(config: TageConfig, base_slots: usize, history_slots: usize) -> Self {
        let slots = base_slots;
        assert!(slots > 0 && history_slots > 0, "need at least one slot");
        assert!(
            !config.tagged.is_empty() && config.tagged.len() <= MAX_TABLES,
            "tagged table count must be 1..=24"
        );
        let tables = config
            .tagged
            .iter()
            .enumerate()
            .map(|(i, &c)| TaggedTable::new(c, i))
            .collect();
        Tage {
            bases: (0..slots)
                .map(|_| Bimodal::new(config.base_entries.next_power_of_two(), 1))
                .collect(),
            tables,
            histories: (0..history_slots)
                .map(|_| HistoryState::new(&config.tagged))
                .collect(),
            use_alt_on_new_alloc: 0,
            updates: 0,
            alloc_rng: SplitMix64::new(0x7A6E),
            last: None,
            config,
        }
    }

    /// The paper-scale TAGE, single slot.
    pub fn paper_scl() -> Self {
        Tage::new(TageConfig::paper_scl())
    }

    /// The configuration.
    pub fn config(&self) -> &TageConfig {
        &self.config
    }

    /// Number of isolation slots.
    pub fn slot_count(&self) -> usize {
        self.bases.len()
    }

    fn raw_index(&self, table: usize, slot: usize, pc: Addr) -> u64 {
        let t = &self.tables[table];
        let bits = (usize::BITS - (t.config.entries - 1).leading_zeros()).max(1);
        let p = pc.raw() >> 2;
        let h = &self.histories[fast_mod_usize(slot, self.histories.len())];
        let (fi, _, _) = h.folds(table);
        p ^ (p >> bits) ^ fi ^ h.path.low_bits(bits.min(16) as usize)
    }

    fn raw_tag(&self, table: usize, slot: usize, pc: Addr) -> u64 {
        let t = &self.tables[table];
        let mask = (1u64 << t.config.tag_bits) - 1;
        let (_, f1, f2) = self.histories[fast_mod_usize(slot, self.histories.len())].folds(table);
        ((pc.raw() >> 2) ^ f1 ^ (f2 << 1)) & mask
    }

    /// Detailed prediction for a branch executing in `slot`.
    ///
    /// Generic over the codec so concrete codecs (HyBP's QARMA-backed codec,
    /// the identity codec) inline their transforms into the table walk; the
    /// [`DirectionPredictor`] impl forwards the `dyn` entry point here. The
    /// walk itself is allocation-free: the provider/alternate search tracks
    /// the last two matching tables in scalars instead of a match list.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds.
    pub fn predict_slot<C: TableCodec + ?Sized>(
        &mut self,
        pc: Addr,
        slot: usize,
        codec: &mut C,
        now: Cycle,
    ) -> TagePrediction {
        let slot_b = fast_mod_usize(slot, self.bases.len());
        let mut indices = [0u64; MAX_TABLES];
        let mut tags = [0u64; MAX_TABLES];
        let mut match_count = 0usize;
        let mut last_match = usize::MAX;
        let mut second_last = usize::MAX;
        for i in 0..self.tables.len() {
            let raw_idx = self.raw_index(i, slot, pc);
            let raw_tag = self.raw_tag(i, slot, pc);
            let t = &self.tables[i];
            let idx = fast_mod(
                codec.transform_index(t.id, raw_idx, pc, now),
                t.config.entries as u64,
            );
            let tag =
                codec.transform_tag(t.id, raw_tag, pc, now) & ((1u64 << t.config.tag_bits) - 1);
            indices[i] = idx;
            tags[i] = tag;
            let e = &t.entries[idx as usize];
            // An empty entry (never allocated) cannot match tag 0 by luck:
            // require either non-zero counter state or a non-zero tag.
            if e.tag == tag && (e.ctr != 0 || e.u != 0 || e.tag != 0) {
                second_last = last_match;
                last_match = i;
                match_count += 1;
            }
        }
        let base_pred = self.bases[slot_b].predict(pc, codec, now);
        let (provider, alt) = match match_count {
            0 => (None, None),
            1 => (Some(last_match), None),
            _ => (Some(last_match), Some(second_last)),
        };
        let alt_taken = match alt {
            Some(a) => self.tables[a].entries[indices[a] as usize].ctr >= 0,
            None => base_pred,
        };
        let pred = match provider {
            Some(p) => {
                let e = &self.tables[p].entries[indices[p] as usize];
                let weak = e.ctr == 0 || e.ctr == -1;
                let newly = e.u == 0;
                let taken = if weak && newly && self.use_alt_on_new_alloc >= 0 {
                    alt_taken
                } else {
                    e.ctr >= 0
                };
                TagePrediction {
                    taken,
                    provider: Some(p),
                    alt_taken,
                    weak,
                }
            }
            None => TagePrediction {
                taken: base_pred,
                provider: None,
                alt_taken: base_pred,
                weak: true,
            },
        };
        self.last = Some(TageLookupState {
            pc: pc.raw(),
            slot,
            pred,
            provider_idx: provider.unwrap_or(usize::MAX),
            indices,
            tags,
        });
        pred
    }

    /// Trains with the resolved outcome; must follow
    /// [`Tage::predict_slot`] for the same branch and slot. Also advances the
    /// slot's histories.
    ///
    /// Generic over the codec (see [`Tage::predict_slot`]); the hot path
    /// performs no heap allocation — the allocation-victim search tracks the
    /// first two u==0 candidates in scalars.
    pub fn update_slot<C: TableCodec + ?Sized>(
        &mut self,
        pc: Addr,
        slot: usize,
        taken: bool,
        codec: &mut C,
        now: Cycle,
    ) {
        let state = match self.last.take() {
            Some(s) if s.pc == pc.raw() && s.slot == slot => s,
            // Lookup state lost (predict was for another branch, or caller
            // updates without predicting): recompute silently.
            _ => {
                self.predict_slot(pc, slot, codec, now);
                match self.last.take() {
                    Some(s) => s,
                    // predict_slot() always stores lookup state; stay total
                    // and skip the update rather than aborting.
                    None => {
                        debug_assert!(false, "predict_slot must store lookup state");
                        return;
                    }
                }
            }
        };
        self.updates += 1;
        let ctr_max = (1i8 << (self.config.ctr_bits - 1)) - 1;
        let ctr_min = -(1i8 << (self.config.ctr_bits - 1));
        let u_max = ((1u16 << self.config.u_bits) - 1) as u8;

        let provider = state.provider_idx;
        let mispredicted = state.pred.taken != taken;

        if provider != usize::MAX {
            let idx = state.indices[provider] as usize;
            let provider_pred = self.tables[provider].entries[idx].ctr >= 0;
            let e_u = self.tables[provider].entries[idx].u;
            // use_alt counter: trained when the provider was weak & new and
            // disagreed with the alternate.
            if state.pred.weak && e_u == 0 && provider_pred != state.pred.alt_taken {
                let alt_correct = state.pred.alt_taken == taken;
                self.use_alt_on_new_alloc = if alt_correct {
                    (self.use_alt_on_new_alloc + 1).min(7)
                } else {
                    (self.use_alt_on_new_alloc - 1).max(-8)
                };
            }
            // Useful bit: provider differs from alt and was correct.
            if provider_pred != state.pred.alt_taken {
                let e = &mut self.tables[provider].entries[idx];
                if provider_pred == taken {
                    e.u = (e.u + 1).min(u_max);
                } else {
                    e.u = e.u.saturating_sub(1);
                }
            }
            let e = &mut self.tables[provider].entries[idx];
            e.ctr = if taken {
                (e.ctr + 1).min(ctr_max)
            } else {
                (e.ctr - 1).max(ctr_min)
            };
        } else {
            let b = fast_mod_usize(slot, self.bases.len());
            self.bases[b].update(pc, taken, codec, now);
        }
        // Keep the base warm while the provider is weak (cheap stand-in for
        // TAGE's alternate update policy).
        if provider != usize::MAX && state.pred.weak {
            let b = fast_mod_usize(slot, self.bases.len());
            self.bases[b].update(pc, taken, codec, now);
        }

        // Allocation on misprediction in a longer-history table.
        if mispredicted {
            let start = if provider == usize::MAX {
                0
            } else {
                provider + 1
            };
            if start < self.tables.len() {
                // First two free (u == 0) candidate tables; only their
                // existence and identity matter below, so the scan stops at
                // two instead of collecting a list.
                let mut first_free = usize::MAX;
                let mut second_free = usize::MAX;
                for j in start..self.tables.len() {
                    if self.tables[j].entries[state.indices[j] as usize].u == 0 {
                        if first_free == usize::MAX {
                            first_free = j;
                        } else {
                            second_free = j;
                            break;
                        }
                    }
                }
                if first_free == usize::MAX {
                    for j in start..self.tables.len() {
                        let e = &mut self.tables[j].entries[state.indices[j] as usize];
                        e.u = e.u.saturating_sub(1);
                    }
                } else {
                    // Prefer shorter history with a random skew, as in the
                    // reference implementation. The RNG draw happens only
                    // when a second candidate exists — exactly as it did
                    // with the list (`free.len() > 1` short-circuit), so
                    // the allocation RNG stream is unchanged.
                    let pick = if second_free != usize::MAX && self.alloc_rng.next_below(4) == 0 {
                        second_free
                    } else {
                        first_free
                    };
                    let e = &mut self.tables[pick].entries[state.indices[pick] as usize];
                    *e = TaggedEntry {
                        tag: state.tags[pick],
                        ctr: if taken { 0 } else { -1 },
                        u: 0,
                    };
                }
            }
        }

        if self.updates.is_multiple_of(self.config.u_reset_period) {
            for t in &mut self.tables {
                for e in &mut t.entries {
                    e.u >>= 1;
                }
            }
        }

        let hs = fast_mod_usize(slot, self.histories.len());
        self.histories[hs].push(pc, taken);
    }

    /// Clears everything: tagged tables, all bases, all histories.
    pub fn flush_all(&mut self) {
        for b in &mut self.bases {
            b.flush();
        }
        for t in &mut self.tables {
            t.flush();
        }
        for h in &mut self.histories {
            h.clear();
        }
        self.last = None;
    }

    /// Clears only one slot's physically isolated state: its base predictor
    /// and history registers (the HyBP context-switch action; the shared
    /// tagged tables are protected by the key change instead).
    pub fn flush_slot(&mut self, slot: usize) {
        let b = fast_mod_usize(slot, self.bases.len());
        self.bases[b].flush();
        let h = fast_mod_usize(slot, self.histories.len());
        self.histories[h].clear();
        self.last = None;
    }

    /// Number of tagged tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Occupancy (allocated entries) of tagged table `i` (analysis helper).
    pub fn tagged_occupancy(&self, i: usize) -> usize {
        self.tables[i]
            .entries
            .iter()
            .filter(|e| e.tag != 0 || e.ctr != 0 || e.u != 0)
            .count()
    }

    /// Storage bits accounting for base replication across slots.
    pub fn storage_bits_with_slots(&self) -> u64 {
        self.config.base_storage_bits() * self.bases.len() as u64
            + self.config.tagged_storage_bits()
    }
}

impl DirectionPredictor for Tage {
    fn predict(&mut self, pc: Addr, codec: &mut dyn TableCodec, now: Cycle) -> bool {
        self.predict_slot(pc, 0, codec, now).taken
    }

    fn update(&mut self, pc: Addr, taken: bool, codec: &mut dyn TableCodec, now: Cycle) {
        self.update_slot(pc, 0, taken, codec, now);
    }

    fn flush(&mut self) {
        self.flush_all();
    }

    fn storage_bits(&self) -> u64 {
        self.storage_bits_with_slots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::IdentityCodec;
    use bp_common::rng::Xoshiro256StarStar;

    fn run_pattern<F: FnMut(u64) -> bool>(
        tage: &mut Tage,
        pcs: &[u64],
        iters: usize,
        mut outcome: F,
    ) -> f64 {
        let mut c = IdentityCodec::new();
        let mut correct = 0usize;
        let mut total = 0usize;
        let mut step = 0u64;
        for _ in 0..iters {
            for &p in pcs {
                let pc = Addr::new(p);
                let t = outcome(step);
                let pred = tage.predict(pc, &mut c, step);
                if pred == t {
                    correct += 1;
                }
                tage.update(pc, t, &mut c, step);
                step += 1;
                total += 1;
            }
        }
        correct as f64 / total as f64
    }

    #[test]
    fn learns_biased_branches() {
        let mut tage = Tage::paper_scl();
        let acc = run_pattern(&mut tage, &[0x1000], 500, |_| true);
        assert!(acc > 0.98, "always-taken accuracy {acc}");
    }

    #[test]
    fn learns_alternating_pattern() {
        let mut tage = Tage::paper_scl();
        let acc = run_pattern(&mut tage, &[0x2000], 1000, |s| s % 2 == 0);
        assert!(acc > 0.95, "alternating accuracy {acc}");
    }

    #[test]
    fn learns_short_period_pattern() {
        // Period-5 pattern TTTNT: bimodal alone cannot learn this; the
        // tagged tables must.
        let mut tage = Tage::paper_scl();
        let pattern = [true, true, true, false, true];
        let acc = run_pattern(&mut tage, &[0x3000], 2000, |s| pattern[(s % 5) as usize]);
        assert!(acc > 0.9, "period-5 accuracy {acc}");
    }

    #[test]
    fn beats_bimodal_on_history_correlated_branch() {
        // Branch B's outcome equals branch A's previous outcome: pure
        // history correlation.
        let mut tage = Tage::paper_scl();
        let mut bimodal = Bimodal::paper_base();
        let mut c = IdentityCodec::new();
        let mut rng = Xoshiro256StarStar::seeded(5);
        let (mut tage_ok, mut bi_ok, mut total) = (0, 0, 0);
        let mut a_prev = false;
        for step in 0..20_000u64 {
            let a = rng.chance(0.5);
            let b = a_prev;
            for (pc, outcome) in [(Addr::new(0x100), a), (Addr::new(0x200), b)] {
                if tage.predict(pc, &mut c, step) == outcome {
                    tage_ok += 1;
                }
                tage.update(pc, outcome, &mut c, step);
                if bimodal.predict(pc, &mut c, step) == outcome {
                    bi_ok += 1;
                }
                bimodal.update(pc, outcome, &mut c, step);
                total += 1;
            }
            a_prev = a;
        }
        let tage_acc = tage_ok as f64 / total as f64;
        let bi_acc = bi_ok as f64 / total as f64;
        assert!(
            tage_acc > bi_acc + 0.15,
            "tage {tage_acc} should beat bimodal {bi_acc} clearly"
        );
        // A is pure noise (50% ceiling), B is fully determined by history
        // (100% ceiling): overall ceiling is 75%. TAGE should be near it.
        assert!(tage_acc > 0.72, "tage accuracy {tage_acc}");
    }

    #[test]
    fn flush_erases_learned_state() {
        let mut tage = Tage::paper_scl();
        let acc1 = run_pattern(&mut tage, &[0x3000], 2000, |s| s % 2 == 0);
        tage.flush_all();
        assert!(acc1 > 0.9);
        for i in 0..tage.table_count() {
            assert_eq!(
                tage.tagged_occupancy(i),
                0,
                "table {i} not empty after flush"
            );
        }
    }

    #[test]
    fn slots_isolate_base_and_history() {
        let mut tage = Tage::with_slots(TageConfig::paper_scl(), 2);
        let mut c = IdentityCodec::new();
        // Train slot 0 heavily taken on one PC.
        for s in 0..200u64 {
            tage.predict_slot(Addr::new(0x100), 0, &mut c, s);
            tage.update_slot(Addr::new(0x100), 0, true, &mut c, s);
        }
        // Slot 1's base knows nothing: cold prediction is not-taken.
        let p = tage.predict_slot(Addr::new(0x100), 1, &mut c, 1000);
        // The tagged tables are shared, so a provider may exist; but if the
        // base provides (no provider), the prediction must be cold.
        if p.provider.is_none() {
            assert!(!p.taken, "slot 1 base must be cold");
        }
        // Flushing slot 0 must not disturb slot 1's histories.
        tage.flush_slot(0);
        assert_eq!(tage.slot_count(), 2);
    }

    #[test]
    fn paper_storage_is_about_66kb_class() {
        let cfg = TageConfig::paper_scl();
        let kb = cfg.storage_bits() as f64 / 8.0 / 1024.0;
        assert!((35.0..70.0).contains(&kb), "TAGE storage {kb} KB");
    }

    #[test]
    fn scaled_quarters_tables() {
        let cfg = TageConfig::paper_scl();
        let q = cfg.scaled(1, 4);
        assert_eq!(q.base_entries, cfg.base_entries / 4);
        assert_eq!(q.tagged[0].entries, cfg.tagged[0].entries / 4);
        let one_and_half = cfg.scaled(3, 2);
        assert_eq!(
            one_and_half.tagged[0].entries,
            cfg.tagged[0].entries * 3 / 2
        );
    }

    #[test]
    fn update_without_predict_recovers() {
        let mut tage = Tage::paper_scl();
        let mut c = IdentityCodec::new();
        // Must not panic even without a preceding predict.
        tage.update(Addr::new(0x4000), true, &mut c, 0);
    }

    #[test]
    fn smaller_tage_is_not_better_on_big_working_set() {
        let mut big = Tage::paper_scl();
        let mut small = Tage::new(TageConfig::paper_scl().scaled(1, 4));
        let pcs: Vec<u64> = (0..3000u64).map(|i| 0x10_0000 + i * 8).collect();
        let mut rng = Xoshiro256StarStar::seeded(9);
        let biases: Vec<bool> = (0..pcs.len()).map(|_| rng.chance(0.5)).collect();
        let mut c = IdentityCodec::new();
        let (mut big_ok, mut small_ok, mut total) = (0, 0, 0);
        for round in 0..30u64 {
            for (i, &p) in pcs.iter().enumerate() {
                let pc = Addr::new(p);
                let t = biases[i] ^ (rng.chance(0.05));
                if big.predict(pc, &mut c, round) == t {
                    big_ok += 1;
                }
                big.update(pc, t, &mut c, round);
                if small.predict(pc, &mut c, round) == t {
                    small_ok += 1;
                }
                small.update(pc, t, &mut c, round);
                total += 1;
            }
        }
        let big_acc = big_ok as f64 / total as f64;
        let small_acc = small_ok as f64 / total as f64;
        assert!(
            big_acc >= small_acc - 0.01,
            "full-size TAGE ({big_acc}) must not lose to quarter ({small_acc})"
        );
    }

    #[test]
    fn base_replication_counts_in_storage() {
        let one = Tage::with_slots(TageConfig::paper_scl(), 1);
        let four = Tage::with_slots(TageConfig::paper_scl(), 4);
        let delta = four.storage_bits_with_slots() - one.storage_bits_with_slots();
        assert_eq!(delta, 3 * TageConfig::paper_scl().base_storage_bits());
    }
}
