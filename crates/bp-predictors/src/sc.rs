//! The statistical corrector (the "SC" of TAGE-SC-L).
//!
//! A GEHL-style bank of signed counter tables indexed by the PC hashed with
//! different global-history lengths. The corrector revises TAGE's prediction
//! when the provider is statistically unreliable: it computes a weighted
//! vote and, when its confidence exceeds a dynamic threshold, overrides weak
//! TAGE outputs. This is a faithful simplification of Seznec's CBP-5
//! TAGE-SC-L corrector, scaled to the paper's storage budget.

use crate::codec::{TableCodec, TableId, TableUnit};
use bp_common::history::GlobalHistory;
use bp_common::{fast_mod, Addr, Cycle};

/// Configuration of the statistical corrector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScConfig {
    /// Entries per component table (power of two).
    pub entries: usize,
    /// History lengths of the component tables (0 = bias table).
    pub history_lens: Vec<usize>,
    /// Counter width in bits (6 ⇒ −32..=31).
    pub ctr_bits: u32,
}

/// Entries per component table of the default corrector. Named (and kept
/// a plain literal) so `budgets.toml` can verify storage bit-for-bit.
pub const SCL_SC_ENTRIES: usize = 1024;
/// Component tables of the default corrector (bias + three histories).
pub const SCL_SC_TABLES: usize = 4;
/// Counter width of the default corrector.
pub const SCL_SC_CTR_BITS: u32 = 6;

impl ScConfig {
    /// The default corrector: bias table + three history components.
    pub fn default_scl() -> Self {
        let lens = vec![0, 4, 10, 21];
        debug_assert_eq!(lens.len(), SCL_SC_TABLES);
        ScConfig {
            entries: SCL_SC_ENTRIES,
            history_lens: lens,
            ctr_bits: SCL_SC_CTR_BITS,
        }
    }

    /// Total modeled storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.entries as u64 * self.history_lens.len() as u64 * u64::from(self.ctr_bits)
    }
}

/// The statistical corrector.
#[derive(Debug, Clone)]
pub struct StatisticalCorrector {
    config: ScConfig,
    tables: Vec<Vec<i8>>,
    /// Dynamic confidence threshold (trained like in the reference SC).
    threshold: i32,
    threshold_ctr: i8,
}

/// The corrector's verdict for one branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScVerdict {
    /// Direction the corrector votes for.
    pub taken: bool,
    /// Whether its confidence clears the override threshold.
    pub confident: bool,
    /// The raw summed vote (for diagnostics).
    pub sum: i32,
}

impl StatisticalCorrector {
    /// Creates the corrector.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or no components are given.
    pub fn new(config: ScConfig) -> Self {
        assert!(
            config.entries.is_power_of_two(),
            "entries must be a power of two"
        );
        assert!(
            !config.history_lens.is_empty(),
            "need at least one component"
        );
        StatisticalCorrector {
            tables: vec![vec![0; config.entries]; config.history_lens.len()],
            threshold: 5,
            threshold_ctr: 0,
            config,
        }
    }

    /// The default corrector.
    pub fn default_scl() -> Self {
        Self::new(ScConfig::default_scl())
    }

    fn index<C: TableCodec + ?Sized>(
        &self,
        comp: usize,
        pc: Addr,
        history: &GlobalHistory,
        codec: &mut C,
        now: Cycle,
    ) -> usize {
        let hist_len = self.config.history_lens[comp];
        let h = if hist_len == 0 {
            0
        } else {
            history.low_bits(hist_len.min(64))
        };
        let raw = (pc.raw() >> 2) ^ h ^ ((h >> 7) << 1) ^ (comp as u64) << 3;
        let id = TableId::new(TableUnit::StatisticalCorrector, comp);
        fast_mod(
            codec.transform_index(id, raw, pc, now),
            self.config.entries as u64,
        ) as usize
    }

    /// Computes the corrector's vote for `pc`, biased by the TAGE
    /// prediction (`tage_taken` contributes to the sum as in the reference).
    pub fn consult<C: TableCodec + ?Sized>(
        &mut self,
        pc: Addr,
        tage_taken: bool,
        history: &GlobalHistory,
        codec: &mut C,
        now: Cycle,
    ) -> ScVerdict {
        let mut sum: i32 = if tage_taken { 8 } else { -8 };
        for comp in 0..self.tables.len() {
            let i = self.index(comp, pc, history, codec, now);
            sum += i32::from(self.tables[comp][i]) * 2 + 1;
        }
        ScVerdict {
            taken: sum >= 0,
            confident: sum.abs() > self.threshold,
            sum,
        }
    }

    /// Trains the corrector with the outcome. Counters are updated whenever
    /// the vote was weak or wrong; the threshold adapts toward the point
    /// where overrides are net-positive.
    pub fn train<C: TableCodec + ?Sized>(
        &mut self,
        pc: Addr,
        taken: bool,
        verdict: ScVerdict,
        history: &GlobalHistory,
        codec: &mut C,
        now: Cycle,
    ) {
        let max = (1i8 << (self.config.ctr_bits - 1)) - 1;
        let min = -(1i8 << (self.config.ctr_bits - 1));
        if verdict.taken != taken || verdict.sum.abs() <= self.threshold * 2 {
            for comp in 0..self.tables.len() {
                let i = self.index(comp, pc, history, codec, now);
                let c = &mut self.tables[comp][i];
                *c = if taken {
                    (*c + 1).min(max)
                } else {
                    (*c - 1).max(min)
                };
            }
        }
        // Dynamic threshold adaptation (Seznec's scheme, simplified): grow
        // when confident overrides mispredict, shrink when hesitant votes
        // were right.
        if verdict.confident && verdict.taken != taken {
            self.threshold_ctr += 1;
            if self.threshold_ctr >= 4 {
                self.threshold = (self.threshold + 1).min(63);
                self.threshold_ctr = 0;
            }
        } else if !verdict.confident && verdict.taken == taken {
            self.threshold_ctr -= 1;
            if self.threshold_ctr <= -4 {
                self.threshold = (self.threshold - 1).max(1);
                self.threshold_ctr = 0;
            }
        }
    }

    /// Clears all corrector state.
    pub fn flush(&mut self) {
        for t in &mut self.tables {
            t.fill(0);
        }
        self.threshold = 5;
        self.threshold_ctr = 0;
    }

    /// Modeled storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.config.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::IdentityCodec;

    #[test]
    fn corrector_learns_to_oppose_bad_tage() {
        // TAGE always says taken; the branch is always not-taken. After
        // training, the corrector must vote not-taken confidently.
        let mut sc = StatisticalCorrector::default_scl();
        let mut c = IdentityCodec::new();
        let h = GlobalHistory::new();
        let pc = Addr::new(0x500);
        for _ in 0..200 {
            let v = sc.consult(pc, true, &h, &mut c, 0);
            sc.train(pc, false, v, &h, &mut c, 0);
        }
        let v = sc.consult(pc, true, &h, &mut c, 0);
        assert!(!v.taken, "corrector should oppose the wrong TAGE output");
        assert!(v.confident);
    }

    #[test]
    fn corrector_agrees_with_good_tage() {
        let mut sc = StatisticalCorrector::default_scl();
        let mut c = IdentityCodec::new();
        let h = GlobalHistory::new();
        let pc = Addr::new(0x700);
        for _ in 0..100 {
            let v = sc.consult(pc, true, &h, &mut c, 0);
            sc.train(pc, true, v, &h, &mut c, 0);
        }
        assert!(sc.consult(pc, true, &h, &mut c, 0).taken);
    }

    #[test]
    fn flush_resets_votes() {
        let mut sc = StatisticalCorrector::default_scl();
        let mut c = IdentityCodec::new();
        let h = GlobalHistory::new();
        let pc = Addr::new(0x900);
        for _ in 0..200 {
            let v = sc.consult(pc, true, &h, &mut c, 0);
            sc.train(pc, false, v, &h, &mut c, 0);
        }
        sc.flush();
        let v = sc.consult(pc, true, &h, &mut c, 0);
        assert!(v.taken, "flushed corrector follows TAGE's bias term");
    }

    #[test]
    fn storage_accounting() {
        let cfg = ScConfig::default_scl();
        assert_eq!(cfg.storage_bits(), 1024 * 4 * 6);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_entries_rejected() {
        let _ = StatisticalCorrector::new(ScConfig {
            entries: 1000,
            history_lens: vec![0],
            ctr_bits: 6,
        });
    }
}
