//! The bimodal base predictor with shared hysteresis (paper Figure 3b).
//!
//! The TAGE base component: a PC-indexed 2-bit counter table where the
//! hysteresis (strength) bit is shared between pairs of entries — the
//! paper's geometry is 8 Kbit of prediction bits and 4 Kbit of hysteresis.
//! Under HyBP this small table is physically isolated per
//! `(thread, privilege)` slot rather than randomized.

use crate::codec::{TableCodec, TableId, TableUnit};
use crate::DirectionPredictor;
use bp_common::{fast_mod, Addr, Cycle};

/// Bimodal predictor with shared hysteresis.
///
/// # Examples
///
/// ```
/// use bp_predictors::bimodal::Bimodal;
/// use bp_predictors::codec::IdentityCodec;
/// use bp_predictors::DirectionPredictor;
/// use bp_common::Addr;
///
/// let mut p = Bimodal::paper_base();
/// let mut c = IdentityCodec::new();
/// let pc = Addr::new(0x1000);
/// for _ in 0..4 {
///     let _ = p.predict(pc, &mut c, 0);
///     p.update(pc, true, &mut c, 0);
/// }
/// assert!(p.predict(pc, &mut c, 0));
/// ```
#[derive(Debug, Clone)]
pub struct Bimodal {
    /// Direction bits, one per entry.
    pred: Vec<bool>,
    /// Hysteresis bits, shared between `1 << hyst_shift` neighbours.
    hyst: Vec<bool>,
    hyst_shift: u32,
    id: TableId,
}

/// Prediction entries of the paper's base predictor. Named (and kept a
/// plain literal) so `budgets.toml` can verify storage bit-for-bit.
pub const PAPER_BIMODAL_ENTRIES: usize = 8192;
/// Hysteresis sharing shift of the paper's base predictor (2:1).
pub const PAPER_BIMODAL_HYST_SHIFT: u32 = 1;

impl Bimodal {
    /// Creates a bimodal predictor with `entries` prediction bits and
    /// `entries >> hyst_shift` hysteresis bits.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `hyst_shift` would leave
    /// no hysteresis bits.
    pub fn new(entries: usize, hyst_shift: u32) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        assert!(
            entries >> hyst_shift > 0,
            "hysteresis shift leaves no hysteresis bits"
        );
        Bimodal {
            pred: vec![false; entries],
            hyst: vec![true; entries >> hyst_shift],
            hyst_shift,
            id: TableId::new(TableUnit::TageBase, 0),
        }
    }

    /// The paper's base predictor: 8 Kbit prediction + 4 Kbit hysteresis.
    pub fn paper_base() -> Self {
        Bimodal::new(PAPER_BIMODAL_ENTRIES, PAPER_BIMODAL_HYST_SHIFT)
    }

    /// Number of prediction entries.
    pub fn entries(&self) -> usize {
        self.pred.len()
    }

    fn index<C: TableCodec + ?Sized>(&mut self, pc: Addr, codec: &mut C, now: Cycle) -> usize {
        let raw = pc.bits(2, 32);
        fast_mod(
            codec.transform_index(self.id, raw, pc, now),
            self.pred.len() as u64,
        ) as usize
    }

    /// Predicts the direction at `pc`. Generic over the codec so concrete
    /// codecs inline on the hot path; the [`DirectionPredictor`] impl
    /// forwards the `dyn` entry point here.
    pub fn predict<C: TableCodec + ?Sized>(&mut self, pc: Addr, codec: &mut C, now: Cycle) -> bool {
        let i = self.index(pc, codec, now);
        self.pred[i]
    }

    /// Trains the entry at `pc` toward `taken` (generic twin of the
    /// [`DirectionPredictor`] method).
    pub fn update<C: TableCodec + ?Sized>(
        &mut self,
        pc: Addr,
        taken: bool,
        codec: &mut C,
        now: Cycle,
    ) {
        let i = self.index(pc, codec, now);
        let h = i >> self.hyst_shift;
        // 2-bit counter semantics with a shared strength bit: moving against
        // the prediction first weakens (clears hysteresis), then flips.
        if self.pred[i] == taken {
            self.hyst[h] = true;
        } else if self.hyst[h] {
            self.hyst[h] = false;
        } else {
            self.pred[i] = taken;
            self.hyst[h] = false;
        }
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&mut self, pc: Addr, codec: &mut dyn TableCodec, now: Cycle) -> bool {
        Bimodal::predict(self, pc, codec, now)
    }

    fn update(&mut self, pc: Addr, taken: bool, codec: &mut dyn TableCodec, now: Cycle) {
        Bimodal::update(self, pc, taken, codec, now)
    }

    fn flush(&mut self) {
        self.pred.fill(false);
        self.hyst.fill(true);
    }

    fn storage_bits(&self) -> u64 {
        (self.pred.len() + self.hyst.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::IdentityCodec;

    fn pc(i: u64) -> Addr {
        Addr::new(0x1000 + i * 4)
    }

    #[test]
    fn learns_a_biased_branch() {
        let mut p = Bimodal::paper_base();
        let mut c = IdentityCodec::new();
        for _ in 0..4 {
            p.update(pc(0), true, &mut c, 0);
        }
        assert!(p.predict(pc(0), &mut c, 0));
        for _ in 0..4 {
            p.update(pc(0), false, &mut c, 0);
        }
        assert!(!p.predict(pc(0), &mut c, 0));
    }

    #[test]
    fn hysteresis_resists_single_anomaly() {
        let mut p = Bimodal::paper_base();
        let mut c = IdentityCodec::new();
        for _ in 0..4 {
            p.update(pc(0), true, &mut c, 0);
        }
        p.update(pc(0), false, &mut c, 0); // one glitch: weaken, don't flip
        assert!(p.predict(pc(0), &mut c, 0));
        p.update(pc(0), false, &mut c, 0); // second: flip
        assert!(!p.predict(pc(0), &mut c, 0));
    }

    #[test]
    fn shared_hysteresis_couples_neighbours() {
        let mut p = Bimodal::new(16, 1);
        let mut c = IdentityCodec::new();
        // Entries 0 and 1 share hysteresis bit 0. PCs 0x1000 and 0x1004 map
        // to indices 1024.. — build two PCs mapping to entries 0 and 1.
        let a = Addr::new(0 << 2);
        let b = Addr::new(1 << 2);
        for _ in 0..4 {
            p.update(a, true, &mut c, 0);
        }
        // Strengthened shared bit; one contrary update on b's entry clears
        // the shared hysteresis.
        p.update(b, true, &mut c, 0);
        assert!(p.predict(a, &mut c, 0));
    }

    #[test]
    fn flush_resets_to_weakly_not_taken() {
        let mut p = Bimodal::paper_base();
        let mut c = IdentityCodec::new();
        for _ in 0..4 {
            p.update(pc(3), true, &mut c, 0);
        }
        p.flush();
        assert!(!p.predict(pc(3), &mut c, 0));
    }

    #[test]
    fn storage_matches_paper_geometry() {
        let p = Bimodal::paper_base();
        assert_eq!(p.storage_bits(), 8192 + 4096);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Bimodal::new(1000, 1);
    }
}
