//! Set-associative branch target buffers and the Zen 2-style three-level
//! hierarchy (paper Figure 3a).
//!
//! The hierarchy is (mostly) exclusive, which is what gives HyBP the
//! *filtering* property the paper highlights: a new branch target is
//! installed in L0; evictions cascade downward (L0 victim → L1, L1 victim →
//! L2); an L1/L2 hit promotes the entry back up. Information therefore only
//! reaches the big shared L2 at the rate upper levels miss/evict — the `m`
//! factor in §V-B's security argument.
//!
//! All index/tag/content transformations go through a
//! [`codec::TableCodec`](crate::codec::TableCodec), so the same structure
//! serves the unprotected baseline and every protection mechanism.

use crate::codec::{TableCodec, TableId, TableUnit};
use bp_common::rng::SplitMix64;
use bp_common::{fast_mod, Addr, Cycle};

/// Byte alignment assumed for branch PCs when forming indices (4-byte
/// instructions on the modeled ARM-like ISA).
const PC_SHIFT: u32 = 2;

/// Geometry of one BTB level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Partial tag width in bits.
    pub tag_bits: u32,
    /// Modeled size of one entry in bits (Zen 2: 60).
    pub entry_bits: u32,
}

// Zen 2-style geometry, named (and kept plain literals) so
// `budgets.toml` can verify the storage budget bit-for-bit.

/// Modeled bits per BTB entry (target + attributes; Zen 2-style).
pub const BTB_ENTRY_BITS: u32 = 60;
/// L0 sets of the Zen 2-style hierarchy.
pub const ZEN2_L0_SETS: usize = 4;
/// L0 ways.
pub const ZEN2_L0_WAYS: usize = 4;
/// L1 sets.
pub const ZEN2_L1_SETS: usize = 64;
/// L1 ways.
pub const ZEN2_L1_WAYS: usize = 8;
/// L2 sets.
pub const ZEN2_L2_SETS: usize = 1024;
/// L2 ways.
pub const ZEN2_L2_WAYS: usize = 7;

impl BtbConfig {
    /// Creates a config. Non-power-of-two set counts are allowed (scaled
    /// configurations for the Figure-8 sweep reduce sets fractionally); the
    /// index is then taken modulo `sets`.
    ///
    /// # Panics
    ///
    /// Panics if `sets`, `ways` or `tag_bits` are zero or `tag_bits > 48`.
    pub fn new(sets: usize, ways: usize, tag_bits: u32) -> Self {
        assert!(sets > 0, "sets must be positive");
        assert!(ways > 0, "ways must be positive");
        assert!(tag_bits > 0 && tag_bits <= 48, "tag bits must be 1..=48");
        BtbConfig {
            sets,
            ways,
            tag_bits,
            entry_bits: BTB_ENTRY_BITS,
        }
    }

    /// This config scaled to `numer/denom` of its sets (at least 1).
    pub fn scaled(&self, numer: usize, denom: usize) -> Self {
        assert!(numer > 0 && denom > 0, "scale must be positive");
        BtbConfig {
            sets: (self.sets * numer / denom).max(1),
            ..*self
        }
    }

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }

    /// Modeled storage in bits.
    pub fn storage_bits(&self) -> u64 {
        (self.entries() as u64) * u64::from(self.entry_bits)
    }

    fn set_bits(&self) -> u32 {
        if self.sets <= 1 {
            0
        } else {
            usize::BITS - (self.sets - 1).leading_zeros()
        }
    }

    /// The raw (pre-codec) set index of a PC.
    pub fn raw_index(&self, pc: Addr) -> u64 {
        if self.sets == 1 {
            0
        } else {
            fast_mod(pc.bits(PC_SHIFT, self.set_bits()), self.sets as u64)
        }
    }

    /// The raw (pre-codec) partial tag of a PC.
    pub fn raw_tag(&self, pc: Addr) -> u64 {
        pc.bits(PC_SHIFT + self.set_bits(), self.tag_bits)
    }

    fn tag_mask(&self) -> u64 {
        if self.tag_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.tag_bits) - 1
        }
    }
}

/// One stored BTB entry.
///
/// `raw_pc` is simulation bookkeeping (used to recompute indices when an
/// entry migrates between levels); the *observable* state — what attacks can
/// interact with — is the transformed tag and the encoded content only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BtbEntry {
    valid: bool,
    tag: u64,
    encoded_content: u64,
    raw_pc: u64,
}

impl BtbEntry {
    const INVALID: BtbEntry = BtbEntry {
        valid: false,
        tag: 0,
        encoded_content: 0,
        raw_pc: 0,
    };
}

/// A single set-associative BTB table with random replacement.
#[derive(Debug, Clone)]
pub struct BtbTable {
    config: BtbConfig,
    id: TableId,
    entries: Vec<BtbEntry>,
    replacement: SplitMix64,
    lookups: u64,
    hits: u64,
}

/// What a table insert did: either an empty/duplicate way was used, or a
/// victim was evicted (returned so hierarchies can cascade it downward).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Stored without evicting anything.
    Stored,
    /// Stored, evicting a valid entry (its raw PC and encoded content).
    Evicted {
        /// Raw PC of the evicted branch (simulation bookkeeping).
        victim_pc: Addr,
        /// The victim's content, still encoded with whatever key wrote it.
        victim_encoded_content: u64,
    },
}

impl BtbTable {
    /// Creates an empty table.
    pub fn new(config: BtbConfig, id: TableId, seed: u64) -> Self {
        BtbTable {
            entries: vec![BtbEntry::INVALID; config.entries()],
            config,
            id,
            replacement: SplitMix64::new(seed),
            lookups: 0,
            hits: 0,
        }
    }

    /// The table geometry.
    pub fn config(&self) -> &BtbConfig {
        &self.config
    }

    /// Lookup by PC. Returns the *decoded* content on a tag hit.
    ///
    /// Under a stale or foreign key the decoded content is garbage — that is
    /// the randomization working as intended, and the pipeline will pay a
    /// misprediction when it acts on it.
    pub fn lookup<C: TableCodec + ?Sized>(
        &mut self,
        pc: Addr,
        codec: &mut C,
        now: Cycle,
    ) -> Option<u64> {
        self.lookups += 1;
        let set = fast_mod(
            codec.transform_index(self.id, self.config.raw_index(pc), pc, now),
            self.config.sets as u64,
        ) as usize;
        let tag =
            codec.transform_tag(self.id, self.config.raw_tag(pc), pc, now) & self.config.tag_mask();
        for way in 0..self.config.ways {
            let e = &self.entries[set * self.config.ways + way];
            if e.valid && e.tag == tag {
                self.hits += 1;
                return Some(codec.decode_content(self.id, e.encoded_content));
            }
        }
        None
    }

    /// Inserts (or overwrites) the mapping `pc -> content`, encoding the
    /// content through the codec. Returns what happened to the set.
    pub fn insert<C: TableCodec + ?Sized>(
        &mut self,
        pc: Addr,
        content: u64,
        codec: &mut C,
        now: Cycle,
    ) -> InsertOutcome {
        let encoded = codec.encode_content(self.id, content);
        self.insert_encoded(pc, encoded, codec, now)
    }

    /// Inserts already-encoded content (used when migrating entries between
    /// levels without re-keying them).
    pub fn insert_encoded<C: TableCodec + ?Sized>(
        &mut self,
        pc: Addr,
        encoded_content: u64,
        codec: &mut C,
        now: Cycle,
    ) -> InsertOutcome {
        let set = fast_mod(
            codec.transform_index(self.id, self.config.raw_index(pc), pc, now),
            self.config.sets as u64,
        ) as usize;
        let tag =
            codec.transform_tag(self.id, self.config.raw_tag(pc), pc, now) & self.config.tag_mask();
        let base = set * self.config.ways;
        // Overwrite an existing mapping for the same tag.
        for way in 0..self.config.ways {
            let e = &mut self.entries[base + way];
            if e.valid && e.tag == tag {
                e.encoded_content = encoded_content;
                e.raw_pc = pc.raw();
                return InsertOutcome::Stored;
            }
        }
        // Fill an invalid way.
        for way in 0..self.config.ways {
            let e = &mut self.entries[base + way];
            if !e.valid {
                *e = BtbEntry {
                    valid: true,
                    tag,
                    encoded_content,
                    raw_pc: pc.raw(),
                };
                return InsertOutcome::Stored;
            }
        }
        // Random replacement.
        let way = self.replacement.next_below(self.config.ways as u64) as usize;
        let victim = self.entries[base + way];
        self.entries[base + way] = BtbEntry {
            valid: true,
            tag,
            encoded_content,
            raw_pc: pc.raw(),
        };
        InsertOutcome::Evicted {
            victim_pc: Addr::new(victim.raw_pc),
            victim_encoded_content: victim.encoded_content,
        }
    }

    /// Removes the entry for `pc` if present, returning its encoded content.
    pub fn remove<C: TableCodec + ?Sized>(
        &mut self,
        pc: Addr,
        codec: &mut C,
        now: Cycle,
    ) -> Option<u64> {
        let set = fast_mod(
            codec.transform_index(self.id, self.config.raw_index(pc), pc, now),
            self.config.sets as u64,
        ) as usize;
        let tag =
            codec.transform_tag(self.id, self.config.raw_tag(pc), pc, now) & self.config.tag_mask();
        for way in 0..self.config.ways {
            let e = &mut self.entries[set * self.config.ways + way];
            if e.valid && e.tag == tag {
                e.valid = false;
                return Some(e.encoded_content);
            }
        }
        None
    }

    /// Invalidates every entry.
    pub fn flush(&mut self) {
        self.entries.fill(BtbEntry::INVALID);
    }

    /// Number of valid entries (test/analysis helper).
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// (lookups, hits) counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.hits)
    }
}

/// Result of a hierarchical BTB lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbLookup {
    level: Option<u8>,
    target: Option<Addr>,
    latency: u32,
}

impl BtbLookup {
    /// The level that hit (0..=2), or `None` on a full miss.
    pub fn level(&self) -> Option<u8> {
        self.level
    }

    /// The (decoded) predicted target, or `None` on a miss.
    pub fn target(&self) -> Option<Addr> {
        self.target
    }

    /// The fetch-bubble cycles this lookup costs (0 for an L0 hit).
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Whether no level produced a target.
    pub fn is_miss(&self) -> bool {
        self.level.is_none()
    }
}

/// Geometry of the whole hierarchy plus its isolation layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbHierarchyConfig {
    /// L0 geometry (per isolation slot if `slots > 1`).
    pub l0: BtbConfig,
    /// L1 geometry (per isolation slot if `slots > 1`).
    pub l1: BtbConfig,
    /// L2 geometry (shared if `l2_shared`, else per slot).
    pub l2: BtbConfig,
    /// Number of isolation slots for the physically isolated levels.
    pub slots: usize,
    /// Whether L2 is one shared structure (baseline, Flush, HyBP) or
    /// per-slot (Partition, Replication).
    pub l2_shared: bool,
    /// Added fetch-bubble latency per level on a hit at that level.
    pub latencies: [u32; 3],
}

impl BtbHierarchyConfig {
    /// The Zen 2-style baseline of the paper: 16 / 512 / 7K entries (L2 as
    /// 1024 sets x 7 ways), hit latencies 0/1/4 cycles, one slot, shared L2.
    pub fn zen2() -> Self {
        BtbHierarchyConfig {
            // Upper levels carry wide tags (they are tiny, so the bits are
            // cheap and aliasing there would be disproportionately costly);
            // the big L2 uses the 12-bit partial tag the paper's security
            // analysis assumes (its T parameter).
            l0: BtbConfig::new(ZEN2_L0_SETS, ZEN2_L0_WAYS, 20),
            l1: BtbConfig::new(ZEN2_L1_SETS, ZEN2_L1_WAYS, 14),
            l2: BtbConfig::new(ZEN2_L2_SETS, ZEN2_L2_WAYS, 12),
            slots: 1,
            l2_shared: true,
            latencies: [0, 1, 4],
        }
    }

    /// Total modeled storage in bits.
    pub fn storage_bits(&self) -> u64 {
        let upper = (self.l0.storage_bits() + self.l1.storage_bits()) * self.slots as u64;
        let l2 = if self.l2_shared {
            self.l2.storage_bits()
        } else {
            self.l2.storage_bits() * self.slots as u64
        };
        upper + l2
    }
}

/// The three-level, mostly exclusive BTB hierarchy.
///
/// `slot` selects the physically isolated replica of L0/L1 (and of L2 when
/// not shared); the baseline uses a single slot.
#[derive(Debug, Clone)]
pub struct BtbHierarchy {
    config: BtbHierarchyConfig,
    l0: Vec<BtbTable>,
    l1: Vec<BtbTable>,
    l2: Vec<BtbTable>,
}

impl BtbHierarchy {
    /// Builds the hierarchy from a config, with a fixed internal seed.
    pub fn with_config(config: BtbHierarchyConfig, seed: u64) -> Self {
        assert!(config.slots > 0, "need at least one slot");
        let mut sm = SplitMix64::new(seed);
        let l0 = (0..config.slots)
            .map(|_| BtbTable::new(config.l0, TableId::new(TableUnit::Btb, 0), sm.next_u64()))
            .collect();
        let l1 = (0..config.slots)
            .map(|_| BtbTable::new(config.l1, TableId::new(TableUnit::Btb, 1), sm.next_u64()))
            .collect();
        let l2_count = if config.l2_shared { 1 } else { config.slots };
        let l2 = (0..l2_count)
            .map(|_| BtbTable::new(config.l2, TableId::new(TableUnit::Btb, 2), sm.next_u64()))
            .collect();
        BtbHierarchy { config, l0, l1, l2 }
    }

    /// The Zen 2 baseline hierarchy (single slot, shared L2).
    pub fn zen2() -> Self {
        Self::with_config(BtbHierarchyConfig::zen2(), 0x8713)
    }

    /// The configuration.
    pub fn config(&self) -> &BtbHierarchyConfig {
        &self.config
    }

    fn l2_index(&self, slot: usize) -> usize {
        if self.config.l2_shared {
            0
        } else {
            slot
        }
    }

    /// Looks up `pc` through the hierarchy for isolation slot `slot`,
    /// promoting hits toward L0 (single-slot callers pass 0).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds.
    pub fn lookup<C: TableCodec + ?Sized>(
        &mut self,
        pc: Addr,
        codec: &mut C,
        now: Cycle,
    ) -> BtbLookup {
        self.lookup_slot(pc, 0, codec, now)
    }

    /// Slot-explicit variant of [`BtbHierarchy::lookup`].
    pub fn lookup_slot<C: TableCodec + ?Sized>(
        &mut self,
        pc: Addr,
        slot: usize,
        codec: &mut C,
        now: Cycle,
    ) -> BtbLookup {
        assert!(slot < self.config.slots, "slot out of bounds");
        if let Some(content) = self.l0[slot].lookup(pc, codec, now) {
            return BtbLookup {
                level: Some(0),
                target: Some(Addr::new(content)),
                latency: self.config.latencies[0],
            };
        }
        if let Some(content) = self.l1[slot].lookup(pc, codec, now) {
            // Promote to L0 (exclusive: remove from L1), cascading evictions.
            let encoded = self.l1[slot].remove(pc, codec, now).unwrap_or(0);
            self.promote_to_l0(
                pc,
                encoded,
                TableId::new(TableUnit::Btb, 1),
                slot,
                codec,
                now,
            );
            return BtbLookup {
                level: Some(1),
                target: Some(Addr::new(content)),
                latency: self.config.latencies[1],
            };
        }
        let l2i = self.l2_index(slot);
        if let Some(content) = self.l2[l2i].lookup(pc, codec, now) {
            let encoded = self.l2[l2i].remove(pc, codec, now).unwrap_or(0);
            self.promote_to_l0(
                pc,
                encoded,
                TableId::new(TableUnit::Btb, 2),
                slot,
                codec,
                now,
            );
            return BtbLookup {
                level: Some(2),
                target: Some(Addr::new(content)),
                latency: self.config.latencies[2],
            };
        }
        BtbLookup {
            level: None,
            target: None,
            latency: self.config.latencies[2],
        }
    }

    /// Installs/updates the target for a taken branch (called on commit or
    /// misprediction repair). New entries enter at L0; evictions cascade.
    pub fn update<C: TableCodec + ?Sized>(
        &mut self,
        pc: Addr,
        target: Addr,
        codec: &mut C,
        now: Cycle,
    ) {
        self.update_slot(pc, target, 0, codec, now);
    }

    /// Slot-explicit variant of [`BtbHierarchy::update`].
    pub fn update_slot<C: TableCodec + ?Sized>(
        &mut self,
        pc: Addr,
        target: Addr,
        slot: usize,
        codec: &mut C,
        now: Cycle,
    ) {
        assert!(slot < self.config.slots, "slot out of bounds");
        // Keep the hierarchy exclusive: refresh wherever the entry lives.
        if self.l0[slot].lookup(pc, codec, now).is_some() {
            self.l0[slot].insert(pc, target.raw(), codec, now);
            return;
        }
        if self.l1[slot].lookup(pc, codec, now).is_some() {
            self.l1[slot].insert(pc, target.raw(), codec, now);
            return;
        }
        let l2i = self.l2_index(slot);
        if self.l2[l2i].lookup(pc, codec, now).is_some() {
            self.l2[l2i].insert(pc, target.raw(), codec, now);
            return;
        }
        let l0_id = TableId::new(TableUnit::Btb, 0);
        let encoded = codec.encode_content(l0_id, target.raw());
        self.promote_to_l0(pc, encoded, l0_id, slot, codec, now);
    }

    fn promote_to_l0<C: TableCodec + ?Sized>(
        &mut self,
        pc: Addr,
        encoded: u64,
        from: TableId,
        slot: usize,
        codec: &mut C,
        now: Cycle,
    ) {
        // Contents migrate decode-then-reencode so each level's codec view
        // stays consistent (levels may be keyed differently: the randomized
        // L2 vs the physically isolated L0/L1).
        let l0_id = TableId::new(TableUnit::Btb, 0);
        let raw = codec.decode_content(from, encoded);
        let reencoded = codec.encode_content(l0_id, raw);
        if let InsertOutcome::Evicted {
            victim_pc,
            victim_encoded_content,
        } = self.l0[slot].insert_encoded(pc, reencoded, codec, now)
        {
            self.demote(victim_pc, victim_encoded_content, 1, slot, codec, now);
        }
    }

    fn demote<C: TableCodec + ?Sized>(
        &mut self,
        pc: Addr,
        encoded: u64,
        to_level: u8,
        slot: usize,
        codec: &mut C,
        now: Cycle,
    ) {
        let from_id = TableId::new(TableUnit::Btb, (to_level - 1) as usize);
        let to_id = TableId::new(TableUnit::Btb, to_level as usize);
        let raw = codec.decode_content(from_id, encoded);
        let reencoded = codec.encode_content(to_id, raw);
        match to_level {
            1 => {
                if let InsertOutcome::Evicted {
                    victim_pc,
                    victim_encoded_content,
                } = self.l1[slot].insert_encoded(pc, reencoded, codec, now)
                {
                    self.demote(victim_pc, victim_encoded_content, 2, slot, codec, now);
                }
            }
            2 => {
                let l2i = self.l2_index(slot);
                // L2 evictions fall out of the hierarchy.
                let _ = self.l2[l2i].insert_encoded(pc, reencoded, codec, now);
            }
            // A demote target outside the hierarchy drops the entry (the
            // same fate as an L2 eviction) instead of aborting.
            _ => debug_assert!(false, "demote target must be level 1 or 2"),
        }
    }

    /// Flushes the physically isolated levels of one slot (context switch
    /// under replication-style mechanisms).
    pub fn flush_slot_upper(&mut self, slot: usize) {
        self.l0[slot].flush();
        self.l1[slot].flush();
        if !self.config.l2_shared {
            self.l2[slot].flush();
        }
    }

    /// Flushes everything (the Flush defense).
    pub fn flush_all(&mut self) {
        for t in self.l0.iter_mut().chain(&mut self.l1).chain(&mut self.l2) {
            t.flush();
        }
    }

    /// Occupancy of (l0, l1, l2) for `slot` (test/analysis helper).
    pub fn occupancy(&self, slot: usize) -> (usize, usize, usize) {
        (
            self.l0[slot].occupancy(),
            self.l1[slot].occupancy(),
            self.l2[self.l2_index(slot)].occupancy(),
        )
    }

    /// Total modeled storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.config.storage_bits()
    }

    /// The L2 geometry (attack harnesses size their candidate sets from it).
    pub fn l2_geometry(&self) -> &BtbConfig {
        &self.config.l2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::IdentityCodec;

    fn pc(i: u64) -> Addr {
        Addr::new(0x40_0000 + i * 4)
    }

    #[test]
    fn config_rejects_zero_sets() {
        let r = std::panic::catch_unwind(|| BtbConfig::new(0, 4, 8));
        assert!(r.is_err());
    }

    #[test]
    fn non_power_of_two_sets_index_in_range() {
        let c = BtbConfig::new(3, 4, 8);
        for i in 0..1000u64 {
            assert!(c.raw_index(Addr::new(i * 4)) < 3);
        }
    }

    #[test]
    fn scaled_config_shrinks_sets() {
        let c = BtbConfig::new(1024, 7, 12);
        assert_eq!(c.scaled(1, 4).sets, 256);
        assert_eq!(c.scaled(3, 8).sets, 384);
        assert_eq!(c.scaled(1, 2048).sets, 1);
    }

    #[test]
    fn raw_index_and_tag_partition_pc_bits() {
        let c = BtbConfig::new(64, 8, 11);
        let a = Addr::new(0b1111_0101_1010_1100);
        // index = bits [2, 8), tag = bits [8, 19)
        assert_eq!(c.raw_index(a), (a.raw() >> 2) & 63);
        assert_eq!(c.raw_tag(a), (a.raw() >> 8) & 0x7FF);
    }

    #[test]
    fn table_miss_then_hit() {
        let mut t = BtbTable::new(
            BtbConfig::new(16, 2, 12),
            TableId::new(TableUnit::Btb, 0),
            1,
        );
        let mut c = IdentityCodec::new();
        assert_eq!(t.lookup(pc(0), &mut c, 0), None);
        t.insert(pc(0), 0xABCD, &mut c, 0);
        assert_eq!(t.lookup(pc(0), &mut c, 0), Some(0xABCD));
        assert_eq!(t.stats(), (2, 1));
    }

    #[test]
    fn table_overwrite_same_pc() {
        let mut t = BtbTable::new(
            BtbConfig::new(16, 2, 12),
            TableId::new(TableUnit::Btb, 0),
            1,
        );
        let mut c = IdentityCodec::new();
        t.insert(pc(0), 1, &mut c, 0);
        t.insert(pc(0), 2, &mut c, 0);
        assert_eq!(t.lookup(pc(0), &mut c, 0), Some(2));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn table_evicts_when_set_full() {
        let mut t = BtbTable::new(BtbConfig::new(1, 2, 20), TableId::new(TableUnit::Btb, 0), 1);
        let mut c = IdentityCodec::new();
        assert_eq!(t.insert(pc(0), 0, &mut c, 0), InsertOutcome::Stored);
        assert_eq!(t.insert(pc(1), 1, &mut c, 0), InsertOutcome::Stored);
        match t.insert(pc(2), 2, &mut c, 0) {
            InsertOutcome::Evicted { victim_pc, .. } => {
                assert!(victim_pc == pc(0) || victim_pc == pc(1));
            }
            InsertOutcome::Stored => panic!("expected eviction"),
        }
        assert_eq!(t.occupancy(), 2);
    }

    #[test]
    fn table_flush_clears() {
        let mut t = BtbTable::new(
            BtbConfig::new(16, 2, 12),
            TableId::new(TableUnit::Btb, 0),
            1,
        );
        let mut c = IdentityCodec::new();
        for i in 0..10 {
            t.insert(pc(i), i, &mut c, 0);
        }
        assert!(t.occupancy() > 0);
        t.flush();
        assert_eq!(t.occupancy(), 0);
        assert_eq!(t.lookup(pc(3), &mut c, 0), None);
    }

    #[test]
    fn table_remove_returns_content() {
        let mut t = BtbTable::new(
            BtbConfig::new(16, 2, 12),
            TableId::new(TableUnit::Btb, 0),
            1,
        );
        let mut c = IdentityCodec::new();
        t.insert(pc(5), 55, &mut c, 0);
        assert_eq!(t.remove(pc(5), &mut c, 0), Some(55));
        assert_eq!(t.lookup(pc(5), &mut c, 0), None);
        assert_eq!(t.remove(pc(5), &mut c, 0), None);
    }

    #[test]
    fn hierarchy_install_hits_l0() {
        let mut h = BtbHierarchy::zen2();
        let mut c = IdentityCodec::new();
        h.update(pc(1), Addr::new(0x9000), &mut c, 0);
        let r = h.lookup(pc(1), &mut c, 1);
        assert_eq!(r.level(), Some(0));
        assert_eq!(r.target(), Some(Addr::new(0x9000)));
        assert_eq!(r.latency(), 0);
    }

    #[test]
    fn hierarchy_miss_reports_l2_latency() {
        let mut h = BtbHierarchy::zen2();
        let mut c = IdentityCodec::new();
        let r = h.lookup(pc(7), &mut c, 0);
        assert!(r.is_miss());
        assert_eq!(r.latency(), 4);
        assert_eq!(r.target(), None);
    }

    #[test]
    fn evictions_cascade_to_lower_levels() {
        let mut h = BtbHierarchy::zen2();
        let mut c = IdentityCodec::new();
        // Fill far more branches than L0+L1 capacity (16 + 512).
        for i in 0..4000u64 {
            h.update(pc(i), Addr::new(0x9000 + i), &mut c, i);
        }
        let (o0, o1, o2) = h.occupancy(0);
        assert!(o0 > 0);
        assert!(o1 > 0);
        assert!(o2 > 0, "L2 must have received cascaded victims");
        // And an early branch should still be findable somewhere (w.h.p. some
        // of the first 100 survived in L2).
        let survivors = (0..100u64)
            .filter(|&i| !h.lookup_slot(pc(i), 0, &mut c, 5000).is_miss())
            .count();
        assert!(survivors > 0, "no early branch survived anywhere");
    }

    #[test]
    fn l2_hit_promotes_back_to_l0() {
        let mut h = BtbHierarchy::zen2();
        let mut c = IdentityCodec::new();
        for i in 0..4000u64 {
            h.update(pc(i), Addr::new(0x9000 + i), &mut c, i);
        }
        // Find a branch currently hitting in L2.
        let mut probe = None;
        for i in 0..2000u64 {
            let r = h.lookup_slot(pc(i), 0, &mut c, 10_000);
            if r.level() == Some(2) {
                probe = Some((i, r.target().unwrap()));
                break;
            }
        }
        let (i, tgt) = probe.expect("expected at least one L2 resident");
        // The promotion performed by that lookup moves it to L0.
        let r2 = h.lookup_slot(pc(i), 0, &mut c, 10_001);
        assert_eq!(r2.level(), Some(0));
        assert_eq!(r2.target(), Some(tgt));
    }

    #[test]
    fn slots_are_isolated() {
        let cfg = BtbHierarchyConfig {
            slots: 2,
            ..BtbHierarchyConfig::zen2()
        };
        let mut h = BtbHierarchy::with_config(cfg, 3);
        let mut c = IdentityCodec::new();
        h.update_slot(pc(1), Addr::new(0x9000), 0, &mut c, 0);
        assert_eq!(h.lookup_slot(pc(1), 0, &mut c, 1).level(), Some(0));
        // Other slot's upper levels know nothing about it; only a shared L2
        // could ever leak, and this entry never reached L2.
        assert!(h.lookup_slot(pc(1), 1, &mut c, 1).is_miss());
    }

    #[test]
    fn flush_slot_upper_keeps_shared_l2() {
        let mut h = BtbHierarchy::zen2();
        let mut c = IdentityCodec::new();
        for i in 0..4000u64 {
            h.update(pc(i), Addr::new(0x9000 + i), &mut c, i);
        }
        let (_, _, l2_before) = h.occupancy(0);
        assert!(l2_before > 0);
        h.flush_slot_upper(0);
        let (o0, o1, l2_after) = h.occupancy(0);
        assert_eq!((o0, o1), (0, 0));
        assert_eq!(l2_after, l2_before, "shared L2 must survive a slot flush");
        h.flush_all();
        assert_eq!(h.occupancy(0), (0, 0, 0));
    }

    #[test]
    fn zen2_storage_is_about_7k_entries() {
        let cfg = BtbHierarchyConfig::zen2();
        assert_eq!(cfg.l0.entries(), 16);
        assert_eq!(cfg.l1.entries(), 512);
        assert_eq!(cfg.l2.entries(), 7168);
        // 7696 entries x 60 bits ≈ 56.4 KiB.
        let kib = cfg.storage_bits() as f64 / 8.0 / 1024.0;
        assert!((55.0..58.0).contains(&kib), "storage {kib} KiB");
    }

    #[test]
    fn partitioned_l2_is_per_slot() {
        let cfg = BtbHierarchyConfig {
            slots: 2,
            l2_shared: false,
            ..BtbHierarchyConfig::zen2()
        };
        let mut h = BtbHierarchy::with_config(cfg, 9);
        let mut c = IdentityCodec::new();
        // Push an entry all the way to slot 0's L2 by flushing uppers.
        h.update_slot(pc(1), Addr::new(0x9000), 0, &mut c, 0);
        // Demote manually: flush upper of slot 0 only removes it entirely
        // (exclusive hierarchy), so instead verify slot isolation by storage.
        assert_eq!(
            cfg.storage_bits(),
            (cfg.l0.storage_bits() + cfg.l1.storage_bits() + cfg.l2.storage_bits()) * 2
        );
    }
}
