//! Branch predictor structures for the HyBP reproduction.
//!
//! This crate implements the baseline prediction hardware the paper builds
//! on (its Figure 3): a three-level BTB hierarchy modeled after AMD Zen 2 and
//! a TAGE-SC-L direction predictor, plus a decades-old tournament predictor
//! used by the paper as a reference point for how much performance modern
//! predictors are worth (§VII-F).
//!
//! Security layering is done through the [`codec::TableCodec`] hook: every
//! table access routes its set index, tag and stored content through the
//! codec, so the `hybp` crate can interpose encryption without the predictor
//! structures knowing anything about keys. The default
//! [`codec::IdentityCodec`] makes the structures behave like conventional
//! unprotected hardware.
//!
//! # Examples
//!
//! ```
//! use bp_predictors::btb::BtbHierarchy;
//! use bp_predictors::codec::IdentityCodec;
//! use bp_common::Addr;
//!
//! let mut btb = BtbHierarchy::zen2();
//! let mut codec = IdentityCodec::new();
//! let pc = Addr::new(0x40_0000);
//! let tgt = Addr::new(0x40_1000);
//! assert!(btb.lookup(pc, &mut codec, 0).is_miss());
//! btb.update(pc, tgt, &mut codec, 0);
//! assert_eq!(btb.lookup(pc, &mut codec, 1).target(), Some(tgt));
//! ```

pub mod bimodal;
pub mod btb;
pub mod budget;
pub mod codec;
pub mod loop_pred;
pub mod ras;
pub mod sc;
pub mod tage;
pub mod tage_scl;
pub mod tournament;

use bp_common::{Addr, Cycle};

/// A direction predictor: predicts taken/not-taken for conditional branches.
///
/// Implemented by [`tage_scl::TageScL`], [`tournament::Tournament`] and
/// [`bimodal::Bimodal`]. The `codec` gives the security layer a chance to
/// transform table indices/tags/contents; `now` is the current cycle (used
/// by codecs that model in-flight key refreshes).
pub trait DirectionPredictor: std::fmt::Debug {
    /// Predicts the direction of the conditional branch at `pc`.
    fn predict(&mut self, pc: Addr, codec: &mut dyn codec::TableCodec, now: Cycle) -> bool;

    /// Trains the predictor with the resolved outcome. Must be called once
    /// per predicted branch, after `predict`, with the same `pc`.
    fn update(&mut self, pc: Addr, taken: bool, codec: &mut dyn codec::TableCodec, now: Cycle);

    /// Clears all prediction state (the Flush defense and context-switch
    /// flushes of physically isolated tables).
    fn flush(&mut self);

    /// Total modeled storage in bits (used by the hardware cost model).
    fn storage_bits(&self) -> u64;
}
