//! A classic Alpha 21264-style tournament predictor.
//!
//! The paper uses "the decades-old tournament predictor" as a yardstick:
//! TAGE-SC-L buys ≈ 5.4% performance over it in their setup (§VII-F), which
//! is why single-digit protection overheads matter. This implementation
//! provides that comparison point: a local-history predictor, a gshare-style
//! global predictor, and a chooser.

use crate::codec::{TableCodec, TableId, TableUnit};
use crate::DirectionPredictor;
use bp_common::{fast_mod, Addr, Cycle};

fn bump(c: &mut u8, taken: bool, max: u8) {
    if taken {
        *c = (*c + 1).min(max);
    } else {
        *c = c.saturating_sub(1);
    }
}

/// Tournament predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TournamentConfig {
    /// Local history table entries (power of two).
    pub local_entries: usize,
    /// Local history length in bits.
    pub local_history_bits: u32,
    /// Global/gshare predictor entries (power of two).
    pub global_entries: usize,
    /// Chooser entries (power of two).
    pub chooser_entries: usize,
}

impl TournamentConfig {
    /// An Alpha-21264-class configuration (~29 Kbit).
    pub const fn alpha_like() -> Self {
        TournamentConfig {
            local_entries: 1024,
            local_history_bits: 10,
            global_entries: 4096,
            chooser_entries: 4096,
        }
    }
}

/// The tournament predictor.
#[derive(Debug, Clone)]
pub struct Tournament {
    config: TournamentConfig,
    /// Per-branch local histories.
    local_history: Vec<u16>,
    /// Local pattern table: 3-bit counters indexed by local history.
    local_ctr: Vec<u8>,
    /// Global 2-bit counters indexed by pc ^ global history.
    global_ctr: Vec<u8>,
    /// Chooser 2-bit counters: ≥2 selects global.
    chooser: Vec<u8>,
    global_history: u64,
    id: TableId,
    last: Option<(u64, bool, bool)>,
}

impl Tournament {
    /// Creates a tournament predictor.
    ///
    /// # Panics
    ///
    /// Panics if any table size is not a power of two.
    pub fn new(config: TournamentConfig) -> Self {
        assert!(config.local_entries.is_power_of_two());
        assert!(config.global_entries.is_power_of_two());
        assert!(config.chooser_entries.is_power_of_two());
        assert!(config.local_history_bits <= 16);
        Tournament {
            local_history: vec![0; config.local_entries],
            local_ctr: vec![3; 1 << config.local_history_bits],
            global_ctr: vec![1; config.global_entries],
            chooser: vec![2; config.chooser_entries],
            global_history: 0,
            id: TableId::new(TableUnit::Tournament, 0),
            last: None,
            config,
        }
    }

    /// The Alpha-class default.
    pub fn alpha_like() -> Self {
        Tournament::new(TournamentConfig::alpha_like())
    }

    fn local_index<C: TableCodec + ?Sized>(
        &mut self,
        pc: Addr,
        codec: &mut C,
        now: Cycle,
    ) -> usize {
        let raw = pc.bits(2, 32);
        fast_mod(
            codec.transform_index(self.id, raw, pc, now),
            self.config.local_entries as u64,
        ) as usize
    }

    fn global_index<C: TableCodec + ?Sized>(
        &mut self,
        pc: Addr,
        codec: &mut C,
        now: Cycle,
    ) -> usize {
        let raw = pc.bits(2, 32) ^ self.global_history;
        fast_mod(
            codec.transform_index(self.id, raw, pc, now),
            self.config.global_entries as u64,
        ) as usize
    }

    fn chooser_index(&self) -> usize {
        fast_mod(self.global_history, self.config.chooser_entries as u64) as usize
    }

    /// Predicts the direction at `pc` (generic twin of the
    /// [`DirectionPredictor`] method, so concrete codecs inline).
    pub fn predict<C: TableCodec + ?Sized>(&mut self, pc: Addr, codec: &mut C, now: Cycle) -> bool {
        let li = self.local_index(pc, codec, now);
        let lh = self.local_history[li] as usize & ((1 << self.config.local_history_bits) - 1);
        let local_pred = self.local_ctr[lh] >= 4;
        let gi = self.global_index(pc, codec, now);
        let global_pred = self.global_ctr[gi] >= 2;
        let use_global = self.chooser[self.chooser_index()] >= 2;
        let pred = if use_global { global_pred } else { local_pred };
        self.last = Some((pc.raw(), local_pred, global_pred));
        pred
    }

    /// Trains toward `taken` (generic twin of the [`DirectionPredictor`]
    /// method).
    pub fn update<C: TableCodec + ?Sized>(
        &mut self,
        pc: Addr,
        taken: bool,
        codec: &mut C,
        now: Cycle,
    ) {
        let (local_pred, global_pred) = match self.last.take() {
            Some((saved, l, g)) if saved == pc.raw() => (l, g),
            _ => {
                let _ = self.predict(pc, codec, now);
                match self.last.take() {
                    Some((_, l, g)) => (l, g),
                    // predict() always stores lookup state; stay total and
                    // skip the update rather than aborting the simulation.
                    None => {
                        debug_assert!(false, "predict must store lookup state");
                        return;
                    }
                }
            }
        };
        // Chooser trains toward whichever component was right (when they
        // disagree).
        if local_pred != global_pred {
            let ci = self.chooser_index();
            bump(&mut self.chooser[ci], global_pred == taken, 3);
        }
        let li = self.local_index(pc, codec, now);
        let lh_mask = (1u16 << self.config.local_history_bits) - 1;
        let lh = (self.local_history[li] & lh_mask) as usize;
        bump(&mut self.local_ctr[lh], taken, 7);
        self.local_history[li] = ((self.local_history[li] << 1) | u16::from(taken)) & lh_mask;
        let gi = self.global_index(pc, codec, now);
        bump(&mut self.global_ctr[gi], taken, 3);
        self.global_history = (self.global_history << 1) | u64::from(taken);
    }
}

impl DirectionPredictor for Tournament {
    fn predict(&mut self, pc: Addr, codec: &mut dyn TableCodec, now: Cycle) -> bool {
        Tournament::predict(self, pc, codec, now)
    }

    fn update(&mut self, pc: Addr, taken: bool, codec: &mut dyn TableCodec, now: Cycle) {
        Tournament::update(self, pc, taken, codec, now)
    }

    fn flush(&mut self) {
        self.local_history.fill(0);
        self.local_ctr.fill(3);
        self.global_ctr.fill(1);
        self.chooser.fill(2);
        self.global_history = 0;
        self.last = None;
    }

    fn storage_bits(&self) -> u64 {
        let local_hist =
            self.config.local_entries as u64 * u64::from(self.config.local_history_bits);
        let local_ctr = (1u64 << self.config.local_history_bits) * 3;
        let global = self.config.global_entries as u64 * 2;
        let chooser = self.config.chooser_entries as u64 * 2;
        local_hist + local_ctr + global + chooser
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::IdentityCodec;

    fn accuracy<F: FnMut(u64) -> bool>(p: &mut Tournament, pc: u64, n: u64, mut f: F) -> f64 {
        let mut c = IdentityCodec::new();
        let mut ok = 0u64;
        for s in 0..n {
            let t = f(s);
            if p.predict(Addr::new(pc), &mut c, s) == t {
                ok += 1;
            }
            p.update(Addr::new(pc), t, &mut c, s);
        }
        ok as f64 / n as f64
    }

    #[test]
    fn learns_bias() {
        let mut p = Tournament::alpha_like();
        assert!(accuracy(&mut p, 0x100, 2000, |_| true) > 0.98);
    }

    #[test]
    fn learns_short_pattern_via_local_history() {
        let mut p = Tournament::alpha_like();
        let pattern = [true, false, false, true];
        let acc = accuracy(&mut p, 0x200, 4000, |s| pattern[(s % 4) as usize]);
        assert!(acc > 0.9, "period-4 accuracy {acc}");
    }

    #[test]
    fn tage_scl_beats_tournament_on_long_patterns() {
        // The §VII-F claim, in miniature: a long-period pattern TAGE's long
        // histories capture but the tournament's 10-bit local history can't.
        use crate::tage_scl::TageScL;
        use crate::DirectionPredictor as _;
        let mut c = IdentityCodec::new();
        let mut tour = Tournament::alpha_like();
        let mut tage = TageScL::paper_default();
        let period = 37u64;
        let (mut tour_ok, mut tage_ok, mut total) = (0u64, 0u64, 0u64);
        for s in 0..30_000u64 {
            let t = s % period < period - 1;
            let pc = Addr::new(0x300);
            if tour.predict(pc, &mut c, s) == t {
                tour_ok += 1;
            }
            tour.update(pc, t, &mut c, s);
            if tage.predict(pc, &mut c, s) == t {
                tage_ok += 1;
            }
            tage.update(pc, t, &mut c, s);
            total += 1;
        }
        let (ta, to) = (tage_ok as f64 / total as f64, tour_ok as f64 / total as f64);
        assert!(ta > to, "tage {ta} must beat tournament {to}");
    }

    #[test]
    fn flush_resets() {
        let mut p = Tournament::alpha_like();
        let _ = accuracy(&mut p, 0x400, 1000, |_| true);
        p.flush();
        assert_eq!(p.global_history, 0);
    }

    #[test]
    fn storage_is_tens_of_kilobits() {
        let p = Tournament::alpha_like();
        assert!(p.storage_bits() > 20_000 && p.storage_bits() < 60_000);
    }
}
