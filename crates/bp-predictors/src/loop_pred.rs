//! The loop predictor (the "L" of TAGE-SC-L).
//!
//! Detects branches that behave as loop exits with a constant trip count
//! (taken N−1 times, then not-taken once, repeatedly) and predicts them
//! perfectly once confident — a pattern global history predictors handle
//! poorly when N is large.

use crate::codec::{TableCodec, TableId, TableUnit};
use bp_common::{fast_mod, Addr, Cycle};

/// One loop predictor entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct LoopEntry {
    tag: u16,
    /// Learned trip count (iterations until not-taken).
    trip: u16,
    /// Current iteration counter.
    current: u16,
    /// Confidence: number of consecutive confirmed trips.
    confidence: u8,
    valid: bool,
}

/// Loop predictor: a small direct-mapped table of loop trip counters.
#[derive(Debug, Clone)]
pub struct LoopPredictor {
    entries: Vec<LoopEntry>,
    id: TableId,
    /// Confidence needed before predictions are used.
    confidence_threshold: u8,
}

/// The loop predictor's verdict for one branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopVerdict {
    /// Predicted direction.
    pub taken: bool,
    /// Whether the entry is confident enough to override TAGE.
    pub confident: bool,
}

// Named geometry (plain literals) so `budgets.toml` can verify the
// storage budget bit-for-bit via the `storage-budget` lint.

/// Entries of the default SC-L loop predictor.
pub const SCL_LOOP_ENTRIES: usize = 64;
/// Partial tag width per entry.
pub const LOOP_TAG_BITS: u32 = 10;
/// Trained trip-count width per entry.
pub const LOOP_TRIP_BITS: u32 = 16;
/// Current iteration counter width per entry.
pub const LOOP_CURRENT_BITS: u32 = 16;
/// Confidence counter width per entry.
pub const LOOP_CONF_BITS: u32 = 4;
/// Valid bit per entry.
pub const LOOP_VALID_BITS: u32 = 1;

impl LoopPredictor {
    /// Creates a loop predictor with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        LoopPredictor {
            entries: vec![LoopEntry::default(); entries],
            id: TableId::new(TableUnit::LoopPredictor, 0),
            confidence_threshold: 3,
        }
    }

    /// The default 64-entry predictor.
    pub fn default_scl() -> Self {
        LoopPredictor::new(SCL_LOOP_ENTRIES)
    }

    fn slot<C: TableCodec + ?Sized>(&self, pc: Addr, codec: &mut C, now: Cycle) -> (usize, u16) {
        let raw = pc.bits(2, 32);
        let idx = fast_mod(
            codec.transform_index(self.id, raw, pc, now),
            self.entries.len() as u64,
        ) as usize;
        let tag = (codec.transform_tag(self.id, pc.bits(2, 10), pc, now) & 0x3FF) as u16;
        (idx, tag)
    }

    /// Consults the predictor. Confident only for learned constant-trip loops.
    pub fn consult<C: TableCodec + ?Sized>(
        &mut self,
        pc: Addr,
        codec: &mut C,
        now: Cycle,
    ) -> LoopVerdict {
        let (idx, tag) = self.slot(pc, codec, now);
        let e = &self.entries[idx];
        if e.valid && e.tag == tag && e.confidence >= self.confidence_threshold {
            LoopVerdict {
                taken: e.current + 1 < e.trip,
                confident: true,
            }
        } else {
            LoopVerdict {
                taken: true,
                confident: false,
            }
        }
    }

    /// Trains with the resolved outcome.
    pub fn train<C: TableCodec + ?Sized>(
        &mut self,
        pc: Addr,
        taken: bool,
        codec: &mut C,
        now: Cycle,
    ) {
        let (idx, tag) = self.slot(pc, codec, now);
        let e = &mut self.entries[idx];
        if !e.valid || e.tag != tag {
            // (Re)allocate on a not-taken outcome: loop exits are where trip
            // counts become observable.
            if !taken {
                *e = LoopEntry {
                    tag,
                    trip: 0,
                    current: 0,
                    confidence: 0,
                    valid: true,
                };
            }
            return;
        }
        if taken {
            e.current = e.current.saturating_add(1);
            if e.trip != 0 && e.current >= e.trip {
                // Ran longer than the learned trip count: not a fixed loop.
                e.confidence = 0;
                e.trip = 0;
            }
        } else {
            let observed = e.current + 1;
            if e.trip == observed {
                e.confidence = e.confidence.saturating_add(1).min(15);
            } else {
                e.trip = observed;
                e.confidence = 0;
            }
            e.current = 0;
        }
    }

    /// Clears all loop state.
    pub fn flush(&mut self) {
        self.entries.fill(LoopEntry::default());
    }

    /// Modeled storage in bits (tag 10 + trip 16 + current 16 + conf 4 + valid 1).
    pub fn storage_bits(&self) -> u64 {
        let entry_bits = u64::from(
            LOOP_TAG_BITS + LOOP_TRIP_BITS + LOOP_CURRENT_BITS + LOOP_CONF_BITS + LOOP_VALID_BITS,
        );
        self.entries.len() as u64 * entry_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::IdentityCodec;

    /// Drives a constant-trip loop: taken `trip-1` times, then not-taken.
    fn run_loop(lp: &mut LoopPredictor, pc: Addr, trip: u16, iterations: usize) -> (usize, usize) {
        let mut c = IdentityCodec::new();
        let mut correct = 0;
        let mut confident_correct = 0;
        for _ in 0..iterations {
            for i in 0..trip {
                let taken = i + 1 < trip;
                let v = lp.consult(pc, &mut c, 0);
                if v.confident {
                    if v.taken == taken {
                        confident_correct += 1;
                        correct += 1;
                    }
                } else if taken {
                    correct += 1; // default "taken" guess
                }
                lp.train(pc, taken, &mut c, 0);
            }
        }
        (correct, confident_correct)
    }

    #[test]
    fn learns_constant_trip_loop_perfectly() {
        let mut lp = LoopPredictor::default_scl();
        let pc = Addr::new(0x100);
        // Warm up enough exits to gain confidence, then measure.
        run_loop(&mut lp, pc, 10, 6);
        let mut c = IdentityCodec::new();
        let mut mispredicts = 0;
        for _ in 0..20 {
            for i in 0..10u16 {
                let taken = i + 1 < 10;
                let v = lp.consult(pc, &mut c, 0);
                assert!(v.confident, "must be confident after warmup");
                if v.taken != taken {
                    mispredicts += 1;
                }
                lp.train(pc, taken, &mut c, 0);
            }
        }
        assert_eq!(mispredicts, 0, "constant loop must be perfect");
    }

    #[test]
    fn changing_trip_count_drops_confidence() {
        let mut lp = LoopPredictor::default_scl();
        let pc = Addr::new(0x200);
        run_loop(&mut lp, pc, 8, 6);
        let mut c = IdentityCodec::new();
        assert!(lp.consult(pc, &mut c, 0).confident);
        // Now run trips of a different length.
        run_loop(&mut lp, pc, 13, 1);
        // After a wrong exit the confidence resets; it must not be instantly
        // confident about the old count.
        let v = lp.consult(pc, &mut c, 0);
        // (may be re-learning; just assert no stale confident-wrong state)
        if v.confident {
            assert!(v.taken, "a confident prediction mid-loop must be taken");
        }
    }

    #[test]
    fn unconfident_by_default() {
        let mut lp = LoopPredictor::default_scl();
        let mut c = IdentityCodec::new();
        let v = lp.consult(Addr::new(0x300), &mut c, 0);
        assert!(!v.confident);
    }

    #[test]
    fn flush_clears_confidence() {
        let mut lp = LoopPredictor::default_scl();
        let pc = Addr::new(0x400);
        run_loop(&mut lp, pc, 6, 8);
        let mut c = IdentityCodec::new();
        assert!(lp.consult(pc, &mut c, 0).confident);
        lp.flush();
        assert!(!lp.consult(pc, &mut c, 0).confident);
    }
}
