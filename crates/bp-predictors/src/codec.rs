//! The security interposition hook for predictor tables.
//!
//! Every table access (BTB levels, TAGE base and tagged tables) routes its
//! set index, its tag, and the stored content through a [`TableCodec`]. The
//! baseline uses [`IdentityCodec`]; the `hybp` crate provides a codec that
//! implements the paper's randomization: index transformation through the
//! per-domain keys table and content XOR with the content key.
//!
//! Keeping the hook here (and key management in `bp-crypto`/`hybp`) means
//! the predictor structures stay faithful models of the underlying hardware
//! while mechanisms remain swappable.

use bp_common::{Addr, Cycle};
use std::fmt;

/// Which predictor structure a table access belongs to.
///
/// Codecs use this to decide whether a table is randomized (the big,
/// last-level structures under HyBP) or left alone (the physically isolated
/// small structures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TableUnit {
    /// A BTB level (0, 1 or 2).
    Btb,
    /// The TAGE base bimodal predictor.
    TageBase,
    /// A TAGE tagged table.
    TageTagged,
    /// The statistical corrector tables.
    StatisticalCorrector,
    /// The loop predictor table.
    LoopPredictor,
    /// Tournament predictor structures (baseline comparisons only).
    Tournament,
}

/// Identifies a concrete table: the unit plus its level/index within the
/// unit (BTB level 0..=2, TAGE tagged table 0..N, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId {
    /// The structure family.
    pub unit: TableUnit,
    /// Level within the family (e.g. BTB level, TAGE table number).
    pub level: usize,
}

impl TableId {
    /// Creates a table id.
    pub const fn new(unit: TableUnit, level: usize) -> Self {
        TableId { unit, level }
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}[{}]", self.unit, self.level)
    }
}

/// Transforms table indices, tags and contents on every access.
///
/// Implementations must be deterministic between key changes: the same
/// `(table, raw value, pc)` must map to the same output while the underlying
/// keys are unchanged, or lookups could never hit.
// Deliberately NOT `fmt::Debug`: the HyBP codec implementation owns key
// material, and a `Debug` supertrait would force it to be printable.
pub trait TableCodec {
    /// Transforms a raw set index for `table`. The result is reduced modulo
    /// the table's set count by the caller, so codecs may return any u64.
    fn transform_index(&mut self, table: TableId, raw_index: u64, pc: Addr, now: Cycle) -> u64;

    /// Transforms a raw tag for `table` before compare/store.
    fn transform_tag(&mut self, table: TableId, raw_tag: u64, pc: Addr, now: Cycle) -> u64;

    /// Encodes content before it is stored (e.g. XOR with the content key).
    fn encode_content(&mut self, table: TableId, raw: u64) -> u64;

    /// Decodes stored content after it is read. Must invert
    /// [`TableCodec::encode_content`] *under the same key*; content written
    /// under an older key decodes to garbage — which is the security
    /// property HyBP relies on.
    fn decode_content(&mut self, table: TableId, stored: u64) -> u64;
}

/// The identity codec: conventional, unprotected table access.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdentityCodec;

impl IdentityCodec {
    /// Creates the identity codec.
    pub const fn new() -> Self {
        IdentityCodec
    }
}

impl TableCodec for IdentityCodec {
    fn transform_index(&mut self, _table: TableId, raw_index: u64, _pc: Addr, _now: Cycle) -> u64 {
        raw_index
    }

    fn transform_tag(&mut self, _table: TableId, raw_tag: u64, _pc: Addr, _now: Cycle) -> u64 {
        raw_tag
    }

    fn encode_content(&mut self, _table: TableId, raw: u64) -> u64 {
        raw
    }

    fn decode_content(&mut self, _table: TableId, stored: u64) -> u64 {
        stored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_codec_passes_through() {
        let mut c = IdentityCodec::new();
        let t = TableId::new(TableUnit::Btb, 2);
        assert_eq!(c.transform_index(t, 123, Addr::new(0), 0), 123);
        assert_eq!(c.transform_tag(t, 45, Addr::new(0), 0), 45);
        assert_eq!(c.encode_content(t, 678), 678);
        assert_eq!(c.decode_content(t, 678), 678);
    }

    #[test]
    fn table_id_display() {
        let t = TableId::new(TableUnit::TageTagged, 5);
        assert_eq!(t.to_string(), "TageTagged[5]");
    }

    #[test]
    fn table_ids_hashable_and_distinct() {
        use std::collections::BTreeSet;
        let mut set = BTreeSet::new();
        set.insert(TableId::new(TableUnit::Btb, 0));
        set.insert(TableId::new(TableUnit::Btb, 1));
        set.insert(TableId::new(TableUnit::TageBase, 0));
        assert_eq!(set.len(), 3);
    }
}
