//! On-disk trace store: named streams served to the simulator.
//!
//! A replay run touches many streams (one per hardware-thread ×
//! software-slot combination, plus the kernel stream), all recorded under
//! one directory. [`TraceStore`] maps `(stream, seed)` to a decoded record
//! vector, caching decodes (SMT pairs share streams), applying optional
//! deterministic ingest faults (the adversarial harness), and aggregating
//! a [`TraceHealth`] ledger across every file the run touched so the bench
//! layer can report degradation per run, not per file read.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use bp_common::telemetry::{Observable, TelemetrySnapshot};
use bp_common::BranchRecord;
use bp_faults::bytes::ByteFaultPlan;

use crate::reader::{read_all, ReadMode};
use crate::writer::TraceWriter;
use crate::{TraceError, TraceHealth, FILE_EXTENSION};

/// One decoded trace file, shared between the threads that replay it.
#[derive(Debug)]
pub struct LoadedTrace {
    /// The recovered records, in stream order.
    pub records: Arc<Vec<BranchRecord>>,
    /// Instructions the stream covers (each record is one branch plus its
    /// `gap` non-branch instructions) — the build-time length floor checks
    /// against this.
    pub instructions: u64,
    /// The decode's damage ledger (all-zero under strict mode).
    pub health: TraceHealth,
}

/// Directory of `.bpt` streams plus the policy for reading them.
///
/// All methods take `&self`; the store is shared across simulation threads
/// behind an [`Arc`].
#[derive(Debug)]
pub struct TraceStore {
    dir: PathBuf,
    mode: ReadMode,
    ingest_faults: ByteFaultPlan,
    cache: Mutex<BTreeMap<String, Arc<LoadedTrace>>>,
    wraps: AtomicU64,
}

impl TraceStore {
    /// A store over `dir`, decoding in `mode`.
    pub fn new(dir: impl Into<PathBuf>, mode: ReadMode) -> TraceStore {
        TraceStore {
            dir: dir.into(),
            mode,
            ingest_faults: ByteFaultPlan::empty(),
            cache: Mutex::new(BTreeMap::new()),
            wraps: AtomicU64::new(0),
        }
    }

    /// Applies `plan` to every file's bytes *after* reading and *before*
    /// decoding — deterministic fault injection for the adversarial
    /// harness and the CI integrity job.
    pub fn with_ingest_faults(mut self, plan: ByteFaultPlan) -> TraceStore {
        self.ingest_faults = plan;
        self
    }

    /// The directory this store reads.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The decode mode for every load.
    pub fn mode(&self) -> ReadMode {
        self.mode
    }

    /// Canonical file name of a stream: `{stream}-{seed:016x}.bpt`. The
    /// seed is part of the name so a directory recorded at one master seed
    /// cannot silently replay under another.
    pub fn file_name(stream: &str, seed: u64) -> String {
        format!("{stream}-{seed:016x}.{FILE_EXTENSION}")
    }

    /// Absolute path of a stream's file in this store.
    pub fn path_for(&self, stream: &str, seed: u64) -> PathBuf {
        self.dir.join(TraceStore::file_name(stream, seed))
    }

    /// Records `records` as a stream file (capture-side convenience; the
    /// replay side only reads).
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] for filesystem failures, and the writer's record
    /// validation mapped the same way.
    pub fn save(
        &self,
        stream: &str,
        seed: u64,
        records: &[BranchRecord],
        records_per_chunk: usize,
    ) -> Result<crate::WriteSummary, TraceError> {
        let path = self.path_for(stream, seed);
        let io_err = |e: std::io::Error| TraceError::Io {
            path: path.display().to_string(),
            reason: e.to_string(),
        };
        std::fs::create_dir_all(&self.dir).map_err(io_err)?;
        let file = std::fs::File::create(&path).map_err(io_err)?;
        let mut w =
            TraceWriter::new(std::io::BufWriter::new(file), records_per_chunk).map_err(io_err)?;
        for r in records {
            w.push(r).map_err(io_err)?;
        }
        w.finish().map_err(io_err)
    }

    /// Loads (or returns the cached decode of) one stream.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] when the file cannot be read; any decode error
    /// under strict mode; header-level damage under lenient mode. Lenient
    /// chunk damage is *not* an error — it lands in the returned
    /// [`LoadedTrace::health`].
    pub fn load(&self, stream: &str, seed: u64) -> Result<Arc<LoadedTrace>, TraceError> {
        let name = TraceStore::file_name(stream, seed);
        let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(hit) = cache.get(&name) {
            return Ok(Arc::clone(hit));
        }
        let path = self.dir.join(&name);
        let mut bytes = std::fs::read(&path).map_err(|e| TraceError::Io {
            path: path.display().to_string(),
            reason: e.to_string(),
        })?;
        self.ingest_faults.apply(&mut bytes);
        let (records, health) = read_all(&bytes, self.mode)?;
        let instructions = records.iter().map(|r| u64::from(r.gap) + 1).sum::<u64>();
        let loaded = Arc::new(LoadedTrace {
            records: Arc::new(records),
            instructions,
            health,
        });
        cache.insert(name, Arc::clone(&loaded));
        Ok(loaded)
    }

    /// Health ledger summed over every file loaded so far, in file-name
    /// order (deterministic).
    pub fn health(&self) -> TraceHealth {
        let cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        let mut total = TraceHealth::default();
        for loaded in cache.values() {
            total.merge(&loaded.health);
        }
        total
    }

    /// Per-file ledgers for files that lost anything, in file-name order.
    pub fn damaged_files(&self) -> Vec<(String, TraceHealth)> {
        let cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        cache
            .iter()
            .filter(|(_, l)| !l.health.is_clean())
            .map(|(name, l)| (name.clone(), l.health))
            .collect()
    }

    /// Number of files loaded so far.
    pub fn files_loaded(&self) -> u64 {
        let cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        cache.len() as u64
    }

    /// Called by the replay feed each time a stream is exhausted and
    /// restarts from its beginning. A wrapped replay is not the recorded
    /// run, so wraps count as degradation.
    pub fn note_wrap(&self) {
        self.wraps.fetch_add(1, Ordering::Relaxed);
    }

    /// Stream wrap-arounds observed so far.
    pub fn wraps(&self) -> u64 {
        self.wraps.load(Ordering::Relaxed)
    }

    /// Whether any load lost data or any stream wrapped — the signal the
    /// bench layer turns into partial-tolerant reporting.
    pub fn is_degraded(&self) -> bool {
        self.wraps() > 0 || !self.health().is_clean()
    }
}

impl Observable for TraceStore {
    /// Scope `"trace_store"`: the aggregate ledger plus files loaded and
    /// wrap-arounds.
    fn snapshot(&self) -> TelemetrySnapshot {
        let h = self.health();
        TelemetrySnapshot::new("trace_store")
            .with("files", self.files_loaded())
            .with("chunks_ok", h.chunks_ok)
            .with("chunks_skipped", h.chunks_skipped)
            .with("records_ok", h.records_ok)
            .with("records_lost", h.records_lost)
            .with("torn_tail", u64::from(h.torn_tail))
            .with("wraps", self.wraps())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use bp_common::Addr;
    use bp_faults::bytes::ByteFault;

    fn temp_store(tag: &str, mode: ReadMode) -> TraceStore {
        let dir = std::env::temp_dir().join(format!("bp-trace-store-{tag}-{}", std::process::id()));
        TraceStore::new(dir, mode)
    }

    fn sample(n: u64) -> Vec<BranchRecord> {
        (0..n)
            .map(|i| {
                BranchRecord::conditional(
                    Addr::new(0x1000 + 8 * i),
                    Addr::new(0x2000 + i),
                    i % 2 == 0,
                    (i % 11) as u32,
                )
            })
            .collect()
    }

    #[test]
    fn save_load_roundtrip_and_cache() {
        let store = temp_store("roundtrip", ReadMode::Strict);
        let recs = sample(500);
        store.save("t0s0", 0x5EED, &recs, 128).unwrap();
        let a = store.load("t0s0", 0x5EED).unwrap();
        assert_eq!(*a.records, recs);
        assert_eq!(
            a.instructions,
            recs.iter().map(|r| u64::from(r.gap) + 1).sum::<u64>()
        );
        let b = store.load("t0s0", 0x5EED).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second load must hit the cache");
        assert_eq!(store.files_loaded(), 1);
        assert!(!store.is_degraded());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_file_is_a_typed_io_error() {
        let store = temp_store("missing", ReadMode::Strict);
        match store.load("nope", 7).unwrap_err() {
            TraceError::Io { path, .. } => {
                assert!(path.contains("nope-0000000000000007.bpt"), "{path}")
            }
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn ingest_faults_surface_per_mode() {
        let recs = sample(600);
        let plan = ByteFaultPlan::new(vec![ByteFault::BitFlip {
            offset: 200,
            bit: 3,
        }]);
        let strict = temp_store("ingest-strict", ReadMode::Strict);
        strict.save("s", 1, &recs, 100).unwrap();
        let err = {
            let faulted =
                TraceStore::new(strict.dir(), ReadMode::Strict).with_ingest_faults(plan.clone());
            faulted.load("s", 1).unwrap_err()
        };
        assert!(matches!(
            err,
            TraceError::ChunkCrc { .. } | TraceError::BadRecord { .. }
        ));

        let lenient = TraceStore::new(strict.dir(), ReadMode::Lenient).with_ingest_faults(plan);
        let loaded = lenient.load("s", 1).unwrap();
        assert_eq!(loaded.health.chunks_skipped, 1);
        assert_eq!(loaded.health.records_lost, 100);
        assert!(lenient.is_degraded());
        assert_eq!(
            lenient.damaged_files(),
            vec![(TraceStore::file_name("s", 1), loaded.health)]
        );
        let _ = std::fs::remove_dir_all(strict.dir());
    }

    #[test]
    fn wraps_count_as_degradation() {
        let store = temp_store("wraps", ReadMode::Strict);
        assert!(!store.is_degraded());
        store.note_wrap();
        store.note_wrap();
        assert_eq!(store.wraps(), 2);
        assert!(store.is_degraded());
        assert_eq!(store.snapshot().get("wraps"), 2);
    }

    #[test]
    fn health_aggregates_across_files() {
        let store = temp_store("aggregate", ReadMode::Strict);
        store.save("a", 1, &sample(100), 64).unwrap();
        store.save("b", 2, &sample(50), 64).unwrap();
        store.load("a", 1).unwrap();
        store.load("b", 2).unwrap();
        let h = store.health();
        assert_eq!(h.records_ok, 150);
        assert!(h.is_clean());
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
