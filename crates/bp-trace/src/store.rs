//! On-disk trace store: named streams served to the simulator.
//!
//! A replay run touches many streams (one per hardware-thread ×
//! software-slot combination, plus the kernel stream), all recorded under
//! one directory. [`TraceStore`] maps `(stream, seed)` to a decoded record
//! vector, caching decodes (SMT pairs share streams), applying optional
//! deterministic ingest faults (the adversarial harness), and aggregating
//! a [`TraceHealth`] ledger across every file the run touched so the bench
//! layer can report degradation per run, not per file read.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use bp_common::telemetry::{Observable, TelemetrySnapshot};
use bp_common::BranchRecord;
use bp_faults::bytes::ByteFaultPlan;

use crate::reader::{DecodeState, ReadMode, Step, TraceReader};
use crate::writer::TraceWriter;
use crate::{TraceError, TraceHealth, FILE_EXTENSION};

/// One verified trace file, shared between the threads that replay it.
///
/// Holds the *raw* file bytes, not decoded records: replay decodes
/// chunk-by-chunk through [`LoadedTrace::records`] cursors, so peak
/// decoded-record residency stays O(chunk) regardless of stream length.
/// The load itself runs one streaming verification pass, so decode errors
/// (strict) and the damage ledger (lenient) still surface at build time,
/// before any simulation starts.
#[derive(Debug)]
pub struct LoadedTrace {
    bytes: Arc<Vec<u8>>,
    mode: ReadMode,
    record_count: u64,
    instructions: u64,
    health: TraceHealth,
}

impl LoadedTrace {
    /// Records a replay cursor will deliver (verified at load time).
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Whether the stream delivers no records at all.
    pub fn is_empty(&self) -> bool {
        self.record_count == 0
    }

    /// Instructions the stream covers (each record is one branch plus its
    /// `gap` non-branch instructions) — the build-time length floor checks
    /// against this.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// The verification pass's damage ledger (all-zero under strict mode).
    pub fn health(&self) -> TraceHealth {
        self.health
    }

    /// A fresh streaming cursor over the stream's records, positioned at
    /// the start. Each replaying thread owns its own cursor; they share
    /// the underlying bytes.
    pub fn records(&self) -> RecordCursor {
        RecordCursor::new(Arc::clone(&self.bytes), self.mode)
    }

    /// Raw verified file bytes, shared with every cursor — the sampling
    /// pass runs its own streaming decode over them.
    pub(crate) fn raw_bytes(&self) -> &Arc<Vec<u8>> {
        &self.bytes
    }

    /// The mode the bytes were verified under (cursors decode in the same
    /// mode, so sampling must too for the window boundaries to line up).
    pub(crate) fn read_mode(&self) -> ReadMode {
        self.mode
    }
}

/// An owning, resettable streaming iterator over a loaded stream's
/// records. Decodes one chunk at a time; [`RecordCursor::peak_buffered`]
/// reports the largest decoded-record residency ever reached, which tests
/// pin to the chunk size.
///
/// The underlying bytes were already verified by [`TraceStore::load`], so
/// iteration is infallible: any residual damage in lenient mode was
/// accounted in the load-time ledger and is simply skipped again here.
#[derive(Debug)]
pub struct RecordCursor {
    bytes: Arc<Vec<u8>>,
    mode: ReadMode,
    state: Option<DecodeState>,
    current: std::vec::IntoIter<BranchRecord>,
    peak_buffered: usize,
}

impl RecordCursor {
    fn new(bytes: Arc<Vec<u8>>, mode: ReadMode) -> RecordCursor {
        // The header was validated at load; a `None` state (unreachable)
        // degrades to an empty cursor rather than panicking.
        let state = DecodeState::new(&bytes, mode).ok();
        RecordCursor {
            bytes,
            mode,
            state,
            current: Vec::new().into_iter(),
            peak_buffered: 0,
        }
    }

    /// Rewinds the cursor to the first record (`peak_buffered` persists
    /// across resets — it measures the cursor's lifetime residency).
    pub fn reset(&mut self) {
        self.state = DecodeState::new(&self.bytes, self.mode).ok();
        self.current = Vec::new().into_iter();
    }

    /// The largest number of decoded records ever resident at once.
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    /// Repositions the cursor at the chunk starting at absolute byte
    /// `offset`, then discards `skip` records, so the next call to
    /// [`Iterator::next`] yields the record `skip` positions into that
    /// chunk. Chunks encode independently (the writer resets its delta
    /// base at every flush), which is what makes a mid-file resume exact.
    ///
    /// Returns `false` — leaving the cursor fused — when `offset` does not
    /// head a valid chunk of these bytes or the stream ends before `skip`
    /// records: a stale or mismatched sampling plan must fail loudly at
    /// the call site, never replay the wrong window.
    pub fn seek(&mut self, offset: u64, skip: u64) -> bool {
        let pos = usize::try_from(offset).unwrap_or(usize::MAX);
        if !crate::reader::chunk_starts_at(&self.bytes, pos) {
            self.state = None;
            self.current = Vec::new().into_iter();
            return false;
        }
        self.state = Some(DecodeState::at_offset(pos));
        self.current = Vec::new().into_iter();
        for _ in 0..skip {
            if self.next().is_none() {
                return false;
            }
        }
        true
    }
}

impl Iterator for RecordCursor {
    type Item = BranchRecord;

    fn next(&mut self) -> Option<BranchRecord> {
        loop {
            if let Some(r) = self.current.next() {
                return Some(r);
            }
            let state = self.state.as_mut()?;
            match state.step(&self.bytes) {
                Ok(Step::Records { recs, .. }) => {
                    self.peak_buffered = self.peak_buffered.max(recs.len());
                    self.current = recs.into_iter();
                }
                Ok(Step::Meta) => {}
                // End, or damage already accounted at load time: fuse.
                Ok(Step::End) | Err(_) => {
                    self.state = None;
                    return None;
                }
            }
        }
    }
}

/// Directory of `.bpt` streams plus the policy for reading them.
///
/// All methods take `&self`; the store is shared across simulation threads
/// behind an [`Arc`].
#[derive(Debug)]
pub struct TraceStore {
    dir: PathBuf,
    mode: ReadMode,
    ingest_faults: ByteFaultPlan,
    cache: Mutex<BTreeMap<String, Arc<LoadedTrace>>>,
    wraps: AtomicU64,
}

impl TraceStore {
    /// The one real constructor; every store is built through
    /// [`crate::session::TraceSession`]'s builder, which forwards here.
    pub(crate) fn with_parts(
        dir: PathBuf,
        mode: ReadMode,
        ingest_faults: ByteFaultPlan,
    ) -> TraceStore {
        TraceStore {
            dir,
            mode,
            ingest_faults,
            cache: Mutex::new(BTreeMap::new()),
            wraps: AtomicU64::new(0),
        }
    }

    /// The directory this store reads.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The decode mode for every load.
    pub fn mode(&self) -> ReadMode {
        self.mode
    }

    /// Canonical file name of a stream: `{stream}-{seed:016x}.bpt`. The
    /// seed is part of the name so a directory recorded at one master seed
    /// cannot silently replay under another.
    pub fn file_name(stream: &str, seed: u64) -> String {
        format!("{stream}-{seed:016x}.{FILE_EXTENSION}")
    }

    /// Absolute path of a stream's file in this store.
    pub fn path_for(&self, stream: &str, seed: u64) -> PathBuf {
        self.dir.join(TraceStore::file_name(stream, seed))
    }

    /// Records `records` as a stream file (capture-side convenience; the
    /// replay side only reads).
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] for filesystem failures, and the writer's record
    /// validation mapped the same way.
    pub fn save(
        &self,
        stream: &str,
        seed: u64,
        records: &[BranchRecord],
        records_per_chunk: usize,
    ) -> Result<crate::WriteSummary, TraceError> {
        let path = self.path_for(stream, seed);
        let io_err = |e: std::io::Error| TraceError::Io {
            path: path.display().to_string(),
            reason: e.to_string(),
        };
        std::fs::create_dir_all(&self.dir).map_err(io_err)?;
        let file = std::fs::File::create(&path).map_err(io_err)?;
        let mut w =
            TraceWriter::new(std::io::BufWriter::new(file), records_per_chunk).map_err(io_err)?;
        for r in records {
            w.push(r).map_err(io_err)?;
        }
        w.finish().map_err(io_err)
    }

    /// Loads (or returns the cached decode of) one stream.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] when the file cannot be read; any decode error
    /// under strict mode; header-level damage under lenient mode. Lenient
    /// chunk damage is *not* an error — it lands in the returned
    /// [`LoadedTrace::health`].
    pub fn load(&self, stream: &str, seed: u64) -> Result<Arc<LoadedTrace>, TraceError> {
        let name = TraceStore::file_name(stream, seed);
        let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(hit) = cache.get(&name) {
            return Ok(Arc::clone(hit));
        }
        let path = self.dir.join(&name);
        let mut bytes = std::fs::read(&path).map_err(|e| TraceError::Io {
            path: path.display().to_string(),
            reason: e.to_string(),
        })?;
        self.ingest_faults.apply(&mut bytes);
        // Streaming verification pass: decodes chunk-by-chunk (O(chunk)
        // decoded-record residency) while surfacing exactly the errors an
        // eager decode would, so damage still fails the build, not the run.
        let mut reader = TraceReader::new(&bytes, self.mode)?;
        let mut record_count = 0u64;
        let mut instructions = 0u64;
        for item in &mut reader {
            let r = item?;
            record_count += 1;
            instructions += u64::from(r.gap) + 1;
        }
        let health = reader.health();
        let loaded = Arc::new(LoadedTrace {
            bytes: Arc::new(bytes),
            mode: self.mode,
            record_count,
            instructions,
            health,
        });
        cache.insert(name, Arc::clone(&loaded));
        Ok(loaded)
    }

    /// Health ledger summed over every file loaded so far, in file-name
    /// order (deterministic).
    pub fn health(&self) -> TraceHealth {
        let cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        let mut total = TraceHealth::default();
        for loaded in cache.values() {
            total.merge(&loaded.health);
        }
        total
    }

    /// Per-file ledgers for files that lost anything, sorted by file name.
    /// The sort is explicit (not an artifact of the cache's iteration
    /// order) so degradation reports stay byte-identical run to run even
    /// if the cache's container ever changes.
    pub fn damaged_files(&self) -> Vec<(String, TraceHealth)> {
        let cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out: Vec<(String, TraceHealth)> = cache
            .iter()
            .filter(|(_, l)| !l.health.is_clean())
            .map(|(name, l)| (name.clone(), l.health))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Number of files loaded so far.
    pub fn files_loaded(&self) -> u64 {
        let cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        cache.len() as u64
    }

    /// Called by the replay feed each time a stream is exhausted and
    /// restarts from its beginning. A wrapped replay is not the recorded
    /// run, so wraps count as degradation.
    pub fn note_wrap(&self) {
        self.wraps.fetch_add(1, Ordering::Relaxed);
    }

    /// Stream wrap-arounds observed so far.
    pub fn wraps(&self) -> u64 {
        self.wraps.load(Ordering::Relaxed)
    }

    /// Whether any load lost data or any stream wrapped — the signal the
    /// bench layer turns into partial-tolerant reporting.
    pub fn is_degraded(&self) -> bool {
        self.wraps() > 0 || !self.health().is_clean()
    }
}

impl Observable for TraceStore {
    /// Scope `"trace_store"`: the aggregate ledger plus files loaded and
    /// wrap-arounds.
    fn snapshot(&self) -> TelemetrySnapshot {
        let h = self.health();
        TelemetrySnapshot::new("trace_store")
            .with("files", self.files_loaded())
            .with("chunks_ok", h.chunks_ok)
            .with("chunks_skipped", h.chunks_skipped)
            .with("records_ok", h.records_ok)
            .with("records_lost", h.records_lost)
            .with("torn_tail", u64::from(h.torn_tail))
            .with("wraps", self.wraps())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::session::TraceSession;
    use bp_common::Addr;
    use bp_faults::bytes::ByteFault;

    fn temp_store(tag: &str, mode: ReadMode) -> Arc<TraceStore> {
        let dir = std::env::temp_dir().join(format!("bp-trace-store-{tag}-{}", std::process::id()));
        Arc::clone(TraceSession::open(dir).mode(mode).build().unwrap().store())
    }

    fn sample(n: u64) -> Vec<BranchRecord> {
        (0..n)
            .map(|i| {
                BranchRecord::conditional(
                    Addr::new(0x1000 + 8 * i),
                    Addr::new(0x2000 + i),
                    i % 2 == 0,
                    (i % 11) as u32,
                )
            })
            .collect()
    }

    #[test]
    fn save_load_roundtrip_and_cache() {
        let store = temp_store("roundtrip", ReadMode::Strict);
        let recs = sample(500);
        store.save("t0s0", 0x5EED, &recs, 128).unwrap();
        let a = store.load("t0s0", 0x5EED).unwrap();
        assert_eq!(a.records().collect::<Vec<_>>(), recs);
        assert_eq!(a.record_count(), 500);
        assert!(!a.is_empty());
        assert_eq!(
            a.instructions(),
            recs.iter().map(|r| u64::from(r.gap) + 1).sum::<u64>()
        );
        let b = store.load("t0s0", 0x5EED).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second load must hit the cache");
        assert_eq!(store.files_loaded(), 1);
        assert!(!store.is_degraded());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn replay_cursor_is_o_chunk_and_resettable() {
        let store = temp_store("streaming", ReadMode::Strict);
        let recs = sample(5000);
        store.save("big", 9, &recs, 64).unwrap();
        let loaded = store.load("big", 9).unwrap();
        let mut cursor = loaded.records();
        let first: Vec<_> = (&mut cursor).collect();
        assert_eq!(first, recs);
        assert!(
            cursor.peak_buffered() <= 64,
            "replay must never hold more than one chunk's records, saw {}",
            cursor.peak_buffered()
        );
        // A reset replays the identical stream (wrap-around support).
        cursor.reset();
        assert_eq!(cursor.next(), Some(recs[0]));
        let rest: Vec<_> = cursor.collect();
        assert_eq!(rest, &recs[1..]);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_file_is_a_typed_io_error() {
        let store = temp_store("missing", ReadMode::Strict);
        match store.load("nope", 7).unwrap_err() {
            TraceError::Io { path, .. } => {
                assert!(path.contains("nope-0000000000000007.bpt"), "{path}")
            }
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn ingest_faults_surface_per_mode() {
        let recs = sample(600);
        let plan = ByteFaultPlan::new(vec![ByteFault::BitFlip {
            offset: 200,
            bit: 3,
        }]);
        let strict = temp_store("ingest-strict", ReadMode::Strict);
        strict.save("s", 1, &recs, 100).unwrap();
        let err = {
            let faulted = TraceSession::open(strict.dir())
                .ingest_faults(plan.clone())
                .build()
                .unwrap();
            faulted.store().load("s", 1).unwrap_err()
        };
        assert!(matches!(
            err,
            TraceError::ChunkCrc { .. } | TraceError::BadRecord { .. }
        ));

        let lenient_session = TraceSession::open(strict.dir())
            .mode(ReadMode::Lenient)
            .ingest_faults(plan)
            .build()
            .unwrap();
        let lenient = lenient_session.store();
        let loaded = lenient.load("s", 1).unwrap();
        assert_eq!(loaded.health().chunks_skipped, 1);
        assert_eq!(loaded.health().records_lost, 100);
        assert_eq!(loaded.record_count(), 500, "intact chunks still replay");
        assert!(lenient.is_degraded());
        assert_eq!(
            lenient.damaged_files(),
            vec![(TraceStore::file_name("s", 1), loaded.health())]
        );
        let _ = std::fs::remove_dir_all(strict.dir());
    }

    #[test]
    fn wraps_count_as_degradation() {
        let store = temp_store("wraps", ReadMode::Strict);
        assert!(!store.is_degraded());
        store.note_wrap();
        store.note_wrap();
        assert_eq!(store.wraps(), 2);
        assert!(store.is_degraded());
        assert_eq!(store.snapshot().get("wraps"), 2);
    }

    #[test]
    fn health_aggregates_across_files() {
        let store = temp_store("aggregate", ReadMode::Strict);
        store.save("a", 1, &sample(100), 64).unwrap();
        store.save("b", 2, &sample(50), 64).unwrap();
        store.load("a", 1).unwrap();
        store.load("b", 2).unwrap();
        let h = store.health();
        assert_eq!(h.records_ok, 150);
        assert!(h.is_clean());
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
