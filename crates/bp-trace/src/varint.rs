//! LEB128 varints and zigzag mapping — the record encoding's primitives.
//!
//! Branch PCs cluster: within one chunk, successive records' PCs and a
//! branch's target are near each other, so signed deltas are tiny and
//! varints shrink a 21-byte fixed record to ~6 bytes. All arithmetic wraps
//! (deltas of arbitrary `u64` addresses are well-defined), and decoding is
//! total: a truncated or overlong varint is `None`, never a panic.

/// Appends `v` in unsigned LEB128 (7 bits per byte, high bit = more).
pub fn write_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads one LEB128 value at `*pos`, advancing it. `None` when the buffer
/// ends mid-varint or the encoding overflows 64 bits (an overlong varint
/// is damage, not data).
pub fn read_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos)?;
        *pos += 1;
        // The 10th byte of a 64-bit varint may only carry the top bit.
        if shift == 63 && byte > 1 {
            return None;
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Maps a signed delta to an unsigned varint-friendly value
/// (0, -1, 1, -2, … → 0, 1, 2, 3, …).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_across_the_range() {
        let cases = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &cases {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_roundtrips_signed_extremes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes stay small.
        assert!(zigzag(-3) < 8);
        assert!(zigzag(3) < 8);
    }

    #[test]
    fn truncated_and_overlong_varints_are_rejected() {
        let mut pos = 0;
        assert_eq!(read_u64(&[0x80, 0x80], &mut pos), None);
        // Eleven continuation bytes can never encode a u64.
        let overlong = [0x80u8; 10]
            .iter()
            .copied()
            .chain(std::iter::once(0x01))
            .collect::<Vec<u8>>();
        let mut pos = 0;
        assert_eq!(read_u64(&overlong, &mut pos), None);
        // A 10-byte varint whose last byte spills past bit 63 is overlong.
        let spill = [0xFFu8, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        let mut pos = 0;
        assert_eq!(read_u64(&spill, &mut pos), None);
    }

    #[test]
    fn max_u64_encodes_in_ten_bytes() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), Some(u64::MAX));
    }
}
