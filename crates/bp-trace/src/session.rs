//! `TraceSession`: the one front door to trace reading.
//!
//! The trace layer grew three entry points — `TraceStore::new` for
//! directories, `with_ingest_faults` bolted on for the adversarial
//! harness, and the free function `read_all` for in-memory bytes — which
//! meant every new reading policy (phase sampling is the third) would
//! have fanned out across all of them. [`TraceSession`] collapses the lot
//! into one builder, deliberately shaped like the simulator's
//! `SimulationBuilder`:
//!
//! ```text
//! TraceSession::open(dir)
//!     .mode(ReadMode::Lenient)
//!     .ingest_faults(plan)
//!     .sampling(spec)
//!     .build()?
//! ```
//!
//! This is the *only* way to build a store: the pre-session entry points
//! (`TraceStore::new`, `with_ingest_faults`, the free `read_all`) served
//! their one-release deprecation window and are gone; the positive
//! contract lives in `tests/trace_session_contract.rs`.

use std::path::PathBuf;
use std::sync::Arc;

use bp_common::BranchRecord;
use bp_faults::bytes::ByteFaultPlan;

use crate::reader::{decode, ReadMode};
use crate::sampling::{sample_trace, PhasePlan, SampleStats, SamplingError, SamplingSpec};
use crate::store::TraceStore;
use crate::{TraceError, TraceHealth};

/// Configures a [`TraceSession`] before it opens. Obtained from
/// [`TraceSession::open`]; every knob has the same default the old
/// constructors had, so `open(dir).build()` is `TraceStore::new(dir,
/// ReadMode::Strict)` exactly.
#[derive(Debug)]
pub struct TraceSessionBuilder {
    dir: PathBuf,
    mode: ReadMode,
    ingest_faults: ByteFaultPlan,
    sampling: Option<SamplingSpec>,
}

impl TraceSessionBuilder {
    /// Decode policy for every load (default [`ReadMode::Strict`]).
    pub fn mode(mut self, mode: ReadMode) -> TraceSessionBuilder {
        self.mode = mode;
        self
    }

    /// Applies `plan` to every file's bytes after reading and before
    /// decoding — deterministic fault injection for the adversarial
    /// harness and the CI integrity job.
    pub fn ingest_faults(mut self, plan: ByteFaultPlan) -> TraceSessionBuilder {
        self.ingest_faults = plan;
        self
    }

    /// Arms phase sampling: [`TraceSession::sample_stream`] will use this
    /// spec, and replay layers can read it back via
    /// [`TraceSession::sampling`].
    pub fn sampling(mut self, spec: SamplingSpec) -> TraceSessionBuilder {
        self.sampling = Some(spec);
        self
    }

    /// Opens the session.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] when the path exists but is not a directory —
    /// catching a file/directory mixup at build time, not at first load. A
    /// nonexistent directory is fine (the capture side creates it on
    /// save).
    pub fn build(self) -> Result<TraceSession, TraceError> {
        if self.dir.exists() && !self.dir.is_dir() {
            return Err(TraceError::Io {
                path: self.dir.display().to_string(),
                reason: "not a directory".to_string(),
            });
        }
        Ok(TraceSession {
            store: Arc::new(TraceStore::with_parts(
                self.dir,
                self.mode,
                self.ingest_faults,
            )),
            sampling: self.sampling,
        })
    }
}

/// An open trace directory plus its reading policy: the store that serves
/// streams to the simulator, and (optionally) the sampling spec replay
/// should apply. Cheap to share — the store is already behind an [`Arc`].
#[derive(Debug)]
pub struct TraceSession {
    store: Arc<TraceStore>,
    sampling: Option<SamplingSpec>,
}

impl TraceSession {
    /// Starts building a session over `dir`. Defaults: strict mode, no
    /// ingest faults, no sampling.
    pub fn open(dir: impl Into<PathBuf>) -> TraceSessionBuilder {
        TraceSessionBuilder {
            dir: dir.into(),
            mode: ReadMode::default(),
            ingest_faults: ByteFaultPlan::empty(),
            sampling: None,
        }
    }

    /// Decodes a whole in-memory trace (no directory needed, so no
    /// builder either).
    ///
    /// # Errors
    ///
    /// Strict mode: any damage, as a typed [`TraceError`]. Lenient mode:
    /// only file-header damage — everything else is absorbed into the
    /// returned [`TraceHealth`].
    pub fn decode(
        bytes: &[u8],
        mode: ReadMode,
    ) -> Result<(Vec<BranchRecord>, TraceHealth), TraceError> {
        decode(bytes, mode).map(|d| (d.records, d.health))
    }

    /// The shared store serving this session's streams.
    pub fn store(&self) -> &Arc<TraceStore> {
        &self.store
    }

    /// The sampling spec the session was opened with, if any.
    pub fn sampling(&self) -> Option<&SamplingSpec> {
        self.sampling.as_ref()
    }

    /// Loads a stream and samples it under the session's spec (or the
    /// default spec when none was configured).
    ///
    /// # Errors
    ///
    /// Load failures as [`SamplingError::Trace`]/[`SamplingError::Io`];
    /// sampling failures as themselves.
    pub fn sample_stream(
        &self,
        stream: &str,
        seed: u64,
    ) -> Result<(PhasePlan, SampleStats), SamplingError> {
        let spec = self.sampling.unwrap_or_default();
        let trace = self.store.load(stream, seed)?;
        sample_trace(&trace, &spec)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use bp_common::Addr;
    use bp_faults::bytes::ByteFault;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bp-session-{tag}-{}", std::process::id()))
    }

    fn sample_records(n: u64) -> Vec<BranchRecord> {
        (0..n)
            .map(|i| {
                BranchRecord::conditional(
                    Addr::new(0x1000 + 8 * i),
                    Addr::new(0x2000 + i),
                    i % 2 == 0,
                    (i % 11) as u32,
                )
            })
            .collect()
    }

    #[test]
    fn builder_defaults_are_strict_and_unsampled() {
        let dir = temp_dir("defaults");
        let session = TraceSession::open(&dir).build().unwrap();
        assert_eq!(session.store().mode(), ReadMode::Strict);
        assert_eq!(session.store().dir(), dir.as_path());
        assert!(session.sampling().is_none());
    }

    #[test]
    fn builder_carries_mode_faults_and_sampling() {
        let dir = temp_dir("knobs");
        let recs = sample_records(600);
        let clean = TraceSession::open(&dir).build().unwrap();
        clean.store().save("s", 1, &recs, 100).unwrap();

        let plan = ByteFaultPlan::new(vec![ByteFault::BitFlip {
            offset: 200,
            bit: 3,
        }]);
        let spec = SamplingSpec {
            k: 2,
            window: 50,
            ..SamplingSpec::default()
        };
        let session = TraceSession::open(&dir)
            .mode(ReadMode::Lenient)
            .ingest_faults(plan)
            .sampling(spec)
            .build()
            .unwrap();
        assert_eq!(session.store().mode(), ReadMode::Lenient);
        assert_eq!(session.sampling(), Some(&spec));
        let loaded = session.store().load("s", 1).unwrap();
        assert_eq!(loaded.health().chunks_skipped, 1, "faults must apply");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_file_path_is_a_build_error() {
        let dir = temp_dir("filepath");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("not-a-dir");
        std::fs::write(&file, b"x").unwrap();
        match TraceSession::open(&file).build().unwrap_err() {
            TraceError::Io { path, reason } => {
                assert!(path.contains("not-a-dir"), "{path}");
                assert_eq!(reason, "not a directory");
            }
            other => panic!("expected Io, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn decode_round_trips_a_written_trace() {
        let recs = sample_records(300);
        let bytes = crate::write_trace(&recs, 64).unwrap();
        let (a, ha) = TraceSession::decode(&bytes, ReadMode::Strict).unwrap();
        assert_eq!(a, recs);
        assert!(ha.is_clean());
    }

    #[test]
    fn sample_stream_uses_the_session_spec() {
        let dir = temp_dir("samplestream");
        let recs = sample_records(5_000);
        let session = TraceSession::open(&dir)
            .sampling(SamplingSpec {
                k: 3,
                window: 1_000,
                ..SamplingSpec::default()
            })
            .build()
            .unwrap();
        session.store().save("s", 7, &recs, 256).unwrap();
        let (plan, stats) = session.sample_stream("s", 7).unwrap();
        assert_eq!(plan.spec.k, 3);
        assert!(plan.total_windows > 0);
        assert!(stats.peak_buffered <= 256);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
