//! SimPoint-style phase sampling over `.bpt` traces.
//!
//! Long traces are dominated by repeating *phases*: stretches of execution
//! whose branch-PC mix barely changes. Replaying one representative window
//! per phase, weighted by how many windows that phase covers, estimates
//! whole-trace MPKI/IPC at a small fraction of the replay cost. This
//! module is the capture side of that bargain:
//!
//! 1. **BBV extraction** — one streaming pass over the trace (through the
//!    same incremental chunk decoder replay uses, so peak decoded-record
//!    residency stays O(chunk)) buckets each branch PC into a
//!    fixed-dimension basic-block vector per fixed-instruction window.
//!    Each window also records its *seek anchor*: the byte offset of the
//!    chunk its first record lives in plus the record's index within that
//!    chunk. Chunks encode independently (deltas reset at each flush), so
//!    a later replay can resume exactly there via [`RecordCursor::seek`].
//! 2. **Deterministic k-means** — k-means++ seeding off a [`SplitMix64`]
//!    stream, Lloyd iterations with a fixed cap, strict lowest-index tie
//!    breaking everywhere, no wall-clock and no ambient randomness: the
//!    same trace and spec produce the same [`PhasePlan`] bit for bit, on
//!    any thread count.
//! 3. **The plan sidecar** — [`PhasePlan::encode`] serializes the
//!    selections into a versioned, CRC-sealed `.bps` blob so sampling cost
//!    is paid once per trace, not once per experiment.
//!
//! The replay half (warmup, measurement, weighted recombination and the
//! error bound) lives in `bp-pipeline`; see `DESIGN.md` §6h for the
//! derivation of the bound the estimate is reported against.

use bp_common::rng::SplitMix64;

use crate::reader::{DecodeState, Step};
use crate::store::LoadedTrace;
use crate::{crc32, varint, ReadMode, TraceError};

/// Sidecar magic: the first seven bytes of every `.bps` phase plan.
pub const SIDECAR_MAGIC: [u8; 7] = *b"HYBPSPL";

/// Sidecar format version this crate writes and the only one it reads.
pub const SIDECAR_VERSION: u8 = 1;

/// Conventional file extension for phase-plan sidecars.
pub const SIDECAR_EXTENSION: &str = "bps";

/// Default number of clusters (phases).
pub const DEFAULT_K: u32 = 8;

/// Default window length in instructions.
pub const DEFAULT_WINDOW: u64 = 100_000;

/// Default BBV dimension (PC hash buckets per window).
pub const DEFAULT_DIMS: u32 = 64;

/// Default warmup prefix, in *windows*, replayed unmeasured before each
/// representative window to heat predictor state.
pub const DEFAULT_WARMUP_WINDOWS: u32 = 1;

/// Default k-means seed (arbitrary fixed constant; determinism is the
/// point, not the value).
pub const DEFAULT_SEED: u64 = 0x5EED_00BB_0000_0001;

/// Default Lloyd-iteration cap.
pub const DEFAULT_ITERS: u32 = 32;

/// How a trace is sampled: the full parameterization of BBV extraction
/// and clustering. Echoed into the sidecar so a plan can never be applied
/// under a different reading of itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingSpec {
    /// Number of clusters (phases) to find; clamped to the window count.
    pub k: u32,
    /// Window length in instructions (each window may run slightly over:
    /// windows close on the first record that reaches the target, so they
    /// stay record-aligned and exactly replayable).
    pub window: u64,
    /// BBV dimension: branch PCs hash into this many buckets.
    pub dims: u32,
    /// Unmeasured warmup prefix before each representative, in windows.
    pub warmup: u32,
    /// Seed of the k-means++ random stream.
    pub seed: u64,
    /// Lloyd-iteration cap (clustering stops earlier on convergence).
    pub iters: u32,
}

impl Default for SamplingSpec {
    fn default() -> SamplingSpec {
        SamplingSpec {
            k: DEFAULT_K,
            window: DEFAULT_WINDOW,
            dims: DEFAULT_DIMS,
            warmup: DEFAULT_WARMUP_WINDOWS,
            seed: DEFAULT_SEED,
            iters: DEFAULT_ITERS,
        }
    }
}

impl SamplingSpec {
    /// Parses a `k=8,window=100000,warmup=1` spec string through the
    /// shared strict-parse helpers ([`bp_common::parse`]). Every key is
    /// optional (defaults apply); unknown keys and malformed values are
    /// fatal, listing the valid keys — a typo must never silently sample
    /// differently.
    ///
    /// # Errors
    ///
    /// The shared `invalid {what} ...: expected ...` shapes from
    /// [`bp_common::parse`], plus range checks (`k`, `window`, `dims`,
    /// `iters` must be positive).
    pub fn parse(spec: &str) -> Result<SamplingSpec, String> {
        let mut out = SamplingSpec::default();
        let pairs = bp_common::parse::key_values(
            "sample spec",
            spec,
            &["k", "window", "dims", "warmup", "seed", "iters"],
        )?;
        for (key, v) in pairs {
            match key {
                "k" => out.k = narrow32("sample k", bp_common::parse::positive("sample k", v)?)?,
                "window" => out.window = bp_common::parse::positive("sample window", v)?,
                "dims" => {
                    out.dims =
                        narrow32("sample dims", bp_common::parse::positive("sample dims", v)?)?
                }
                "warmup" => {
                    out.warmup = narrow32(
                        "sample warmup",
                        bp_common::parse::unsigned("sample warmup", v)?,
                    )?
                }
                "seed" => out.seed = bp_common::parse::unsigned("sample seed", v)?,
                "iters" => {
                    out.iters = narrow32(
                        "sample iters",
                        bp_common::parse::positive("sample iters", v)?,
                    )?
                }
                // key_values already rejected anything else.
                _ => {}
            }
        }
        Ok(out)
    }
}

fn narrow32(what: &str, v: u64) -> Result<u32, String> {
    u32::try_from(v).map_err(|_| format!("invalid {what} '{v}': value does not fit in 32 bits"))
}

/// Why sampling or a sidecar decode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SamplingError {
    /// The underlying trace failed to decode (should not happen for bytes
    /// already verified by the store, but the type is total).
    Trace(TraceError),
    /// The trace holds no complete window — nothing to cluster. Sample a
    /// longer trace or shrink the window.
    EmptyTrace {
        /// Instructions the trace actually covers.
        instructions: u64,
        /// The window length that could not be filled once.
        window: u64,
    },
    /// The sidecar does not start with [`SIDECAR_MAGIC`].
    BadMagic,
    /// The sidecar is from a newer (or unknown) format version.
    UnsupportedVersion {
        /// Version byte found.
        found: u8,
    },
    /// The sidecar's CRC32 does not match its contents.
    Crc {
        /// CRC stored in the sidecar.
        stored: u32,
        /// CRC computed over the sidecar body.
        computed: u32,
    },
    /// The sidecar ends mid-field.
    Truncated,
    /// The sidecar decodes but its contents are inconsistent.
    Malformed(&'static str),
    /// The sidecar could not be read or written at the file level.
    Io {
        /// Path of the sidecar file.
        path: String,
        /// Operating-system error text.
        reason: String,
    },
}

impl std::fmt::Display for SamplingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SamplingError::Trace(e) => write!(f, "trace decode failed while sampling: {e}"),
            SamplingError::EmptyTrace {
                instructions,
                window,
            } => write!(
                f,
                "trace covers {instructions} instructions, fewer than one {window}-instruction window"
            ),
            SamplingError::BadMagic => write!(f, "not a phase-plan sidecar (bad magic)"),
            SamplingError::UnsupportedVersion { found } => write!(
                f,
                "unsupported sidecar version {found} (this build reads version {SIDECAR_VERSION})"
            ),
            SamplingError::Crc { stored, computed } => write!(
                f,
                "sidecar CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            SamplingError::Truncated => write!(f, "sidecar truncated mid-field"),
            SamplingError::Malformed(what) => write!(f, "malformed sidecar: {what}"),
            SamplingError::Io { path, reason } => {
                write!(f, "cannot access phase plan {path}: {reason}")
            }
        }
    }
}

impl std::error::Error for SamplingError {}

impl From<TraceError> for SamplingError {
    fn from(e: TraceError) -> SamplingError {
        SamplingError::Trace(e)
    }
}

/// One representative window chosen by clustering: everything replay needs
/// to reproduce it (where to seek, how much to warm, how much to measure)
/// and how much of the trace it stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// Index of the representative window in trace order.
    pub window_index: u64,
    /// Cluster (phase) this window represents.
    pub cluster: u32,
    /// Windows in the cluster — the selection's weight in the estimate.
    pub weight_windows: u64,
    /// Byte offset of the chunk where replay resumes (the chunk holding
    /// the first record of the warmup prefix, or of the window itself when
    /// warmup is zero or clipped at the trace start).
    pub seek_offset: u64,
    /// Records to discard after seeking, landing on that first record.
    pub seek_skip: u64,
    /// Instructions replayed unmeasured before measurement starts. Exact:
    /// warmup covers whole record-aligned windows.
    pub warmup_instructions: u64,
    /// Instructions measured for this representative window.
    pub window_instructions: u64,
}

/// The complete output of sampling one trace: the spec it was sampled
/// under, per-window cluster assignments, and the weighted selections.
/// Serializes to/from the `.bps` sidecar via [`PhasePlan::encode`] and
/// [`PhasePlan::decode`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhasePlan {
    /// The spec the plan was computed under.
    pub spec: SamplingSpec,
    /// Complete windows the trace yielded (a trailing partial window is
    /// excluded from clustering and from `total_instructions`).
    pub total_windows: u64,
    /// Instructions covered by the complete windows.
    pub total_instructions: u64,
    /// Representative windows, sorted by `window_index`.
    pub selections: Vec<Selection>,
    /// Final cluster of every complete window, in trace order.
    pub assignments: Vec<u32>,
    /// Clustering dispersion in parts-per-million: the weighted mean
    /// total-variation distance between each window's normalized BBV and
    /// its representative's, in `[0, 1e6]`. Feeds the replay error bound.
    pub dispersion_ppm: u32,
}

impl PhasePlan {
    /// Dispersion as a fraction in `[0, 1]`.
    pub fn dispersion(&self) -> f64 {
        f64::from(self.dispersion_ppm) / 1e6
    }

    /// Fraction of the trace's instructions replay actually touches
    /// (warmup plus measured windows, over all complete windows).
    pub fn coverage(&self) -> f64 {
        if self.total_instructions == 0 {
            return 0.0;
        }
        let touched: u64 = self
            .selections
            .iter()
            .map(|s| s.warmup_instructions + s.window_instructions)
            .sum();
        touched as f64 / self.total_instructions as f64
    }

    /// Serializes the plan: [`SIDECAR_MAGIC`], version byte, varint body,
    /// CRC32 (little-endian) over everything before it.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&SIDECAR_MAGIC);
        out.push(SIDECAR_VERSION);
        varint::write_u64(&mut out, u64::from(self.spec.k));
        varint::write_u64(&mut out, self.spec.window);
        varint::write_u64(&mut out, u64::from(self.spec.dims));
        varint::write_u64(&mut out, u64::from(self.spec.warmup));
        varint::write_u64(&mut out, self.spec.seed);
        varint::write_u64(&mut out, u64::from(self.spec.iters));
        varint::write_u64(&mut out, self.total_windows);
        varint::write_u64(&mut out, self.total_instructions);
        varint::write_u64(&mut out, self.selections.len() as u64);
        for s in &self.selections {
            varint::write_u64(&mut out, s.window_index);
            varint::write_u64(&mut out, u64::from(s.cluster));
            varint::write_u64(&mut out, s.weight_windows);
            varint::write_u64(&mut out, s.seek_offset);
            varint::write_u64(&mut out, s.seek_skip);
            varint::write_u64(&mut out, s.warmup_instructions);
            varint::write_u64(&mut out, s.window_instructions);
        }
        varint::write_u64(&mut out, self.assignments.len() as u64);
        for &a in &self.assignments {
            varint::write_u64(&mut out, u64::from(a));
        }
        varint::write_u64(&mut out, u64::from(self.dispersion_ppm));
        let crc = crc32::checksum(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserializes a sidecar produced by [`PhasePlan::encode`].
    ///
    /// # Errors
    ///
    /// [`SamplingError::BadMagic`] / [`SamplingError::UnsupportedVersion`]
    /// for foreign files, [`SamplingError::Crc`] for damage,
    /// [`SamplingError::Truncated`] / [`SamplingError::Malformed`] for
    /// structural problems a CRC-valid file should never have.
    pub fn decode(bytes: &[u8]) -> Result<PhasePlan, SamplingError> {
        if bytes.len() < SIDECAR_MAGIC.len() + 1 + 4 {
            return Err(SamplingError::Truncated);
        }
        if bytes[..SIDECAR_MAGIC.len()] != SIDECAR_MAGIC {
            return Err(SamplingError::BadMagic);
        }
        let body = &bytes[..bytes.len() - 4];
        let tail = &bytes[bytes.len() - 4..];
        let stored = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
        let computed = crc32::checksum(body);
        if stored != computed {
            return Err(SamplingError::Crc { stored, computed });
        }
        if bytes[SIDECAR_MAGIC.len()] != SIDECAR_VERSION {
            return Err(SamplingError::UnsupportedVersion {
                found: bytes[SIDECAR_MAGIC.len()],
            });
        }
        let mut p = SIDECAR_MAGIC.len() + 1;
        let spec = SamplingSpec {
            k: rd32(body, &mut p, "k")?,
            window: rd(body, &mut p)?,
            dims: rd32(body, &mut p, "dims")?,
            warmup: rd32(body, &mut p, "warmup")?,
            seed: rd(body, &mut p)?,
            iters: rd32(body, &mut p, "iters")?,
        };
        let total_windows = rd(body, &mut p)?;
        let total_instructions = rd(body, &mut p)?;
        let n_sel = rd(body, &mut p)?;
        // Each selection costs at least 7 bytes, so a length claiming more
        // than the remaining body is damage, not a huge allocation.
        if n_sel.saturating_mul(7) > (body.len() - p) as u64 {
            return Err(SamplingError::Malformed("selection count exceeds body"));
        }
        let mut selections = Vec::with_capacity(n_sel as usize);
        for _ in 0..n_sel {
            selections.push(Selection {
                window_index: rd(body, &mut p)?,
                cluster: rd32(body, &mut p, "selection cluster")?,
                weight_windows: rd(body, &mut p)?,
                seek_offset: rd(body, &mut p)?,
                seek_skip: rd(body, &mut p)?,
                warmup_instructions: rd(body, &mut p)?,
                window_instructions: rd(body, &mut p)?,
            });
        }
        let n_assign = rd(body, &mut p)?;
        if n_assign > (body.len() - p) as u64 {
            return Err(SamplingError::Malformed("assignment count exceeds body"));
        }
        if n_assign != total_windows {
            return Err(SamplingError::Malformed(
                "assignment count disagrees with window count",
            ));
        }
        let mut assignments = Vec::with_capacity(n_assign as usize);
        for _ in 0..n_assign {
            assignments.push(rd32(body, &mut p, "assignment")?);
        }
        let dispersion_ppm = rd32(body, &mut p, "dispersion")?;
        if p != body.len() {
            return Err(SamplingError::Malformed("trailing bytes in sidecar"));
        }
        Ok(PhasePlan {
            spec,
            total_windows,
            total_instructions,
            selections,
            assignments,
            dispersion_ppm,
        })
    }
}

fn rd(body: &[u8], p: &mut usize) -> Result<u64, SamplingError> {
    varint::read_u64(body, p).ok_or(SamplingError::Truncated)
}

fn rd32(body: &[u8], p: &mut usize, what: &'static str) -> Result<u32, SamplingError> {
    let v = rd(body, p)?;
    u32::try_from(v).map_err(|_| SamplingError::Malformed(what))
}

/// Observability of one sampling pass — not serialized, but asserted in
/// tests (the O(chunk) streaming bound) and reported by the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleStats {
    /// Largest number of decoded records resident at once during BBV
    /// extraction — must stay bounded by the chunk size.
    pub peak_buffered: usize,
    /// Instructions in the dropped trailing partial window (zero when the
    /// trace length is a multiple of the window).
    pub tail_instructions: u64,
}

/// One complete window's extraction output.
struct Window {
    bbv: Vec<u64>,
    instructions: u64,
    seek_offset: u64,
    seek_skip: u64,
}

/// Hashes a branch PC into a BBV bucket (SplitMix64 finalizer: cheap,
/// seedless, and stable across platforms).
fn bucket(pc: u64, dims: u32) -> usize {
    let mut z = pc.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % u64::from(dims)) as usize
}

/// Streams the trace once, bucketing instruction weight (each record is
/// one branch plus `gap` non-branches) into per-window BBVs. Returns the
/// complete windows plus the peak decoded-record residency and the size of
/// the dropped partial tail.
fn extract_windows(
    bytes: &[u8],
    mode: ReadMode,
    spec: &SamplingSpec,
) -> Result<(Vec<Window>, SampleStats), SamplingError> {
    let mut state = DecodeState::new(bytes, mode)?;
    let mut windows = Vec::new();
    let dims = spec.dims as usize;
    let mut cur_bbv = vec![0u64; dims];
    let mut cur_instructions = 0u64;
    let mut cur_anchor: Option<(u64, u64)> = None;
    let mut peak = 0usize;
    loop {
        match state.step(bytes)? {
            Step::Records { recs, offset } => {
                peak = peak.max(recs.len());
                for (i, r) in recs.iter().enumerate() {
                    if cur_anchor.is_none() {
                        cur_anchor = Some((offset, i as u64));
                    }
                    let weight = u64::from(r.gap) + 1;
                    cur_bbv[bucket(r.pc.raw(), spec.dims)] += weight;
                    cur_instructions += weight;
                    if cur_instructions >= spec.window {
                        let (seek_offset, seek_skip) = cur_anchor.unwrap_or((0, 0));
                        windows.push(Window {
                            bbv: std::mem::replace(&mut cur_bbv, vec![0u64; dims]),
                            instructions: cur_instructions,
                            seek_offset,
                            seek_skip,
                        });
                        cur_instructions = 0;
                        cur_anchor = None;
                    }
                }
            }
            Step::Meta => {}
            Step::End => break,
        }
    }
    let stats = SampleStats {
        peak_buffered: peak,
        tail_instructions: cur_instructions,
    };
    Ok((windows, stats))
}

/// L2 distance squared between two normalized BBVs.
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// L1 distance between two normalized BBVs.
fn dist1(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum()
}

/// Deterministic k-means: k-means++ seeding off `seed`, Lloyd iterations
/// capped at `iters`, lowest-index tie breaking throughout. Returns the
/// final per-point assignment.
fn kmeans(points: &[Vec<f64>], k_eff: usize, spec: &SamplingSpec) -> Vec<u32> {
    let n = points.len();
    let dims = spec.dims as usize;
    let mut rng = SplitMix64::new(spec.seed);
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k_eff);
    centroids.push(points[rng.next_below(n as u64) as usize].clone());
    while centroids.len() < k_eff {
        let d2: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| dist2(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        let idx = if total <= 0.0 {
            // Every point coincides with a centroid: duplicate windows.
            // Take the lowest index; the extra clusters will end up empty
            // and produce no selection.
            0
        } else {
            // Weighted pick over strictly positive distances only, so a
            // draw of exactly 0.0 can never re-pick an existing centroid.
            let r = rng.next_f64() * total;
            let mut acc = 0.0;
            let mut pick = None;
            for (i, &d) in d2.iter().enumerate() {
                if d <= 0.0 {
                    continue;
                }
                acc += d;
                pick = Some(i);
                if acc >= r {
                    break;
                }
            }
            pick.unwrap_or(0)
        };
        centroids.push(points[idx].clone());
    }
    let mut assign = vec![0u32; n];
    let reassign = |centroids: &[Vec<f64>], assign: &mut [u32]| -> bool {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            // Strict `<` keeps the lowest-index centroid on ties.
            for (c, cent) in centroids.iter().enumerate() {
                let d = dist2(p, cent);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assign[i] != best as u32 {
                assign[i] = best as u32;
                changed = true;
            }
        }
        changed
    };
    reassign(&centroids, &mut assign);
    for _ in 0..spec.iters {
        // Recompute centroids as member means; reseed empty clusters with
        // the point farthest from its current centroid (lowest index on
        // ties) so k stays effective where the data allows it.
        let mut sums = vec![vec![0.0f64; dims]; k_eff];
        let mut counts = vec![0u64; k_eff];
        for (i, p) in points.iter().enumerate() {
            let c = assign[i] as usize;
            counts[c] += 1;
            for (j, v) in p.iter().enumerate() {
                sums[c][j] += v;
            }
        }
        for c in 0..k_eff {
            if counts[c] == 0 {
                let mut far = 0usize;
                let mut far_d = -1.0;
                for (i, p) in points.iter().enumerate() {
                    let d = dist2(p, &centroids[assign[i] as usize]);
                    if d > far_d {
                        far_d = d;
                        far = i;
                    }
                }
                centroids[c] = points[far].clone();
            } else {
                for j in 0..dims {
                    centroids[c][j] = sums[c][j] / counts[c] as f64;
                }
            }
        }
        if !reassign(&centroids, &mut assign) {
            break;
        }
    }
    assign
}

/// Samples a loaded trace into a [`PhasePlan`] — see [`sample_bytes`].
///
/// # Errors
///
/// As [`sample_bytes`].
pub fn sample_trace(
    trace: &LoadedTrace,
    spec: &SamplingSpec,
) -> Result<(PhasePlan, SampleStats), SamplingError> {
    sample_bytes(trace.raw_bytes(), trace.read_mode(), spec)
}

/// Samples raw trace bytes into a [`PhasePlan`]: one streaming BBV pass,
/// deterministic clustering, one weighted representative per non-empty
/// cluster. Also returns the pass's [`SampleStats`].
///
/// # Errors
///
/// [`SamplingError::EmptyTrace`] when the trace holds no complete window;
/// [`SamplingError::Trace`] if the bytes fail to decode under `mode`.
pub fn sample_bytes(
    bytes: &[u8],
    mode: ReadMode,
    spec: &SamplingSpec,
) -> Result<(PhasePlan, SampleStats), SamplingError> {
    let (windows, stats) = extract_windows(bytes, mode, spec)?;
    if windows.is_empty() {
        return Err(SamplingError::EmptyTrace {
            instructions: stats.tail_instructions,
            window: spec.window,
        });
    }
    let n = windows.len();
    let points: Vec<Vec<f64>> = windows
        .iter()
        .map(|w| {
            let total = w.instructions.max(1) as f64;
            w.bbv.iter().map(|&b| b as f64 / total).collect()
        })
        .collect();
    let k_eff = (spec.k as usize).min(n).max(1);
    let assign = kmeans(&points, k_eff, spec);

    // Representative of each non-empty cluster: the member closest to the
    // cluster mean (lowest index on ties).
    let dims = spec.dims as usize;
    let mut sums = vec![vec![0.0f64; dims]; k_eff];
    let mut counts = vec![0u64; k_eff];
    for (i, p) in points.iter().enumerate() {
        let c = assign[i] as usize;
        counts[c] += 1;
        for (j, v) in p.iter().enumerate() {
            sums[c][j] += v;
        }
    }
    let mut reps: Vec<Option<usize>> = vec![None; k_eff];
    for c in 0..k_eff {
        if counts[c] == 0 {
            continue;
        }
        let mean: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
        let mut best = None;
        let mut best_d = f64::INFINITY;
        for (i, p) in points.iter().enumerate() {
            if assign[i] as usize != c {
                continue;
            }
            let d = dist2(p, &mean);
            if d < best_d {
                best_d = d;
                best = Some(i);
            }
        }
        reps[c] = best;
    }

    // Dispersion: weighted mean total-variation distance (L1 / 2) between
    // each window and its representative, in [0, 1].
    let mut total_l1 = 0.0;
    for (i, p) in points.iter().enumerate() {
        if let Some(r) = reps[assign[i] as usize] {
            total_l1 += dist1(p, &points[r]);
        }
    }
    let dispersion = total_l1 / (2.0 * n as f64);
    let dispersion_ppm = (dispersion * 1e6).round().clamp(0.0, 1e6) as u32;

    let mut selections = Vec::new();
    for (c, rep) in reps.iter().enumerate() {
        let Some(r) = *rep else { continue };
        let start = r.saturating_sub(spec.warmup as usize);
        let warmup_instructions: u64 = windows[start..r].iter().map(|w| w.instructions).sum();
        selections.push(Selection {
            window_index: r as u64,
            cluster: c as u32,
            weight_windows: counts[c],
            seek_offset: windows[start].seek_offset,
            seek_skip: windows[start].seek_skip,
            warmup_instructions,
            window_instructions: windows[r].instructions,
        });
    }
    selections.sort_by_key(|s| s.window_index);

    let plan = PhasePlan {
        spec: *spec,
        total_windows: n as u64,
        total_instructions: windows.iter().map(|w| w.instructions).sum(),
        selections,
        assignments: assign,
        dispersion_ppm,
    };
    Ok((plan, stats))
}

impl LoadedTrace {
    /// Samples this trace into a phase plan — see [`sample_trace`].
    ///
    /// # Errors
    ///
    /// As [`sample_trace`].
    pub fn sample(&self, spec: &SamplingSpec) -> Result<(PhasePlan, SampleStats), SamplingError> {
        sample_trace(self, spec)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::session::TraceSession;
    use crate::store::TraceStore;
    use crate::ReadMode;
    use bp_common::{Addr, BranchRecord};
    use std::sync::Arc;

    /// A trace alternating between two synthetic phases with disjoint PC
    /// sets: `phase_len` instructions of phase A, then of phase B, etc.
    fn phased_records(phases: usize, phase_len: u64) -> Vec<BranchRecord> {
        let mut out = Vec::new();
        for ph in 0..phases {
            let base = if ph % 2 == 0 {
                0x0040_0000
            } else {
                0x0080_0000
            };
            let mut inst = 0u64;
            let mut i = 0u64;
            while inst < phase_len {
                let pc = Addr::new(base + 8 * (i % 50));
                out.push(BranchRecord::conditional(
                    pc,
                    Addr::new(base + 0x1000),
                    i % 3 == 0,
                    9,
                ));
                inst += 10;
                i += 1;
            }
        }
        out
    }

    fn store_with(tag: &str, recs: &[BranchRecord], chunk: usize) -> (Arc<TraceStore>, String) {
        let dir = std::env::temp_dir().join(format!("bp-sampling-{tag}-{}", std::process::id()));
        let store = Arc::clone(
            TraceSession::open(dir)
                .mode(ReadMode::Strict)
                .build()
                .unwrap()
                .store(),
        );
        store.save("s", 1, recs, chunk).unwrap();
        (store, "s".to_string())
    }

    #[test]
    fn spec_parse_defaults_and_overrides() {
        assert_eq!(SamplingSpec::parse("").unwrap(), SamplingSpec::default());
        let s = SamplingSpec::parse("k=4,window=5000,warmup=0,seed=7").unwrap();
        assert_eq!((s.k, s.window, s.warmup, s.seed), (4, 5000, 0, 7));
        assert_eq!(s.dims, DEFAULT_DIMS);
        let e = SamplingSpec::parse("k=4,wimdow=5").unwrap_err();
        assert!(e.contains("expected one of k, window, dims"), "{e}");
        assert!(SamplingSpec::parse("k=0").is_err());
        assert!(SamplingSpec::parse("window=ten").is_err());
    }

    #[test]
    fn two_phase_trace_clusters_into_two_phases() {
        // 8 alternating phases of 40_000 instructions, window 10_000:
        // 32 windows, alternating in blocks of 4.
        let recs = phased_records(8, 40_000);
        let (store, name) = store_with("twophase", &recs, 256);
        let trace = store.load(&name, 1).unwrap();
        let spec = SamplingSpec {
            k: 2,
            window: 10_000,
            warmup: 1,
            ..SamplingSpec::default()
        };
        let (plan, stats) = trace.sample(&spec).unwrap();
        assert_eq!(plan.total_windows, 32);
        assert_eq!(plan.selections.len(), 2);
        // Perfectly separable phases: dispersion ~0, equal weights.
        assert_eq!(plan.dispersion_ppm, 0);
        assert_eq!(
            plan.selections
                .iter()
                .map(|s| s.weight_windows)
                .sum::<u64>(),
            32
        );
        for s in &plan.selections {
            assert_eq!(s.weight_windows, 16);
        }
        // Streaming bound: never more than one chunk decoded at once.
        assert!(stats.peak_buffered <= 256, "saw {}", stats.peak_buffered);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn sampling_is_deterministic_and_seed_sensitive() {
        let recs = phased_records(6, 30_000);
        let (store, name) = store_with("determinism", &recs, 128);
        let trace = store.load(&name, 1).unwrap();
        let spec = SamplingSpec {
            k: 3,
            window: 5_000,
            ..SamplingSpec::default()
        };
        let (a, _) = trace.sample(&spec).unwrap();
        let (b, _) = trace.sample(&spec).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.encode(), b.encode(), "sidecar must be byte-identical");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn sidecar_roundtrips_and_rejects_damage() {
        let recs = phased_records(4, 20_000);
        let (store, name) = store_with("sidecar", &recs, 64);
        let trace = store.load(&name, 1).unwrap();
        let (plan, _) = trace
            .sample(&SamplingSpec {
                k: 2,
                window: 8_000,
                ..SamplingSpec::default()
            })
            .unwrap();
        let bytes = plan.encode();
        assert_eq!(PhasePlan::decode(&bytes).unwrap(), plan);

        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(matches!(
            PhasePlan::decode(&flipped).unwrap_err(),
            SamplingError::Crc { .. }
        ));

        let mut magic = bytes.clone();
        magic[0] ^= 0xFF;
        assert_eq!(
            PhasePlan::decode(&magic).unwrap_err(),
            SamplingError::BadMagic
        );

        assert_eq!(
            PhasePlan::decode(&bytes[..6]).unwrap_err(),
            SamplingError::Truncated
        );

        let mut future = bytes.clone();
        future[7] = SIDECAR_VERSION + 1;
        let crc = crc32::checksum(&future[..future.len() - 4]);
        let n = future.len();
        future[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            PhasePlan::decode(&future).unwrap_err(),
            SamplingError::UnsupportedVersion { .. }
        ));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn selections_seek_back_to_their_exact_windows() {
        let recs = phased_records(4, 25_000);
        let (store, name) = store_with("seek", &recs, 100);
        let trace = store.load(&name, 1).unwrap();
        let spec = SamplingSpec {
            k: 2,
            window: 10_000,
            warmup: 1,
            ..SamplingSpec::default()
        };
        let (plan, _) = trace.sample(&spec).unwrap();
        // Eagerly compute the record index where each window starts, the
        // same way the extractor closes windows (record-aligned).
        let mut starts = vec![0usize];
        let mut inst = 0u64;
        for (i, r) in recs.iter().enumerate() {
            inst += u64::from(r.gap) + 1;
            if inst >= spec.window {
                starts.push(i + 1);
                inst = 0;
            }
        }
        // A seeked cursor must deliver the identical records the eager
        // stream holds at the warmup start, for warmup + window.
        for s in &plan.selections {
            let start_window = (s.window_index as usize).saturating_sub(spec.warmup as usize);
            let mut eager_pos = starts[start_window];
            let mut cursor = trace.records();
            assert!(
                cursor.seek(s.seek_offset, s.seek_skip),
                "seek must land for {s:?}"
            );
            let mut seen = 0u64;
            while seen < s.warmup_instructions + s.window_instructions {
                let r = cursor.next().expect("cursor ended early");
                assert_eq!(r, recs[eager_pos], "divergence at record {eager_pos}");
                seen += u64::from(r.gap) + 1;
                eager_pos += 1;
            }
        }
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn short_trace_is_an_empty_trace_error() {
        let recs = phased_records(1, 500);
        let (store, name) = store_with("short", &recs, 64);
        let trace = store.load(&name, 1).unwrap();
        let err = trace
            .sample(&SamplingSpec {
                window: 1_000_000,
                ..SamplingSpec::default()
            })
            .unwrap_err();
        assert!(matches!(err, SamplingError::EmptyTrace { .. }), "{err}");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn coverage_reflects_warmup_and_windows() {
        let recs = phased_records(6, 30_000);
        let (store, name) = store_with("coverage", &recs, 128);
        let trace = store.load(&name, 1).unwrap();
        let (plan, _) = trace
            .sample(&SamplingSpec {
                k: 2,
                window: 6_000,
                warmup: 1,
                ..SamplingSpec::default()
            })
            .unwrap();
        let cov = plan.coverage();
        assert!(cov > 0.0 && cov < 1.0, "coverage {cov}");
        // 2 selections × (warmup + window) ≈ 4 windows of 30.
        assert!(cov < 0.2, "expected small coverage, got {cov}");
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
