//! CRC32 (IEEE 802.3, reflected) — std-only, table-driven.
//!
//! The workspace builds fully offline, so no checksum crate; the classic
//! byte-at-a-time table implementation is plenty for trace I/O (the reader
//! touches each byte once more than `memcpy` would).

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC32 state, for checksumming discontiguous parts (chunk
/// header fields + payload) without concatenating them.
#[derive(Debug, Clone, Copy)]
pub struct Hasher {
    state: u32,
}

impl Hasher {
    /// A fresh hasher.
    pub fn new() -> Hasher {
        Hasher { state: 0xFFFF_FFFF }
    }

    /// Folds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The final checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

/// One-shot checksum of a contiguous buffer.
pub fn checksum(data: &[u8]) -> u32 {
    let mut h = Hasher::new();
    h.update(data);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // The canonical CRC-32/ISO-HDLC check input.
        assert_eq!(checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(checksum(b""), 0);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..=255).collect();
        let mut h = Hasher::new();
        h.update(&data[..100]);
        h.update(&data[100..]);
        assert_eq!(h.finish(), checksum(&data));
    }

    #[test]
    fn single_bit_damage_changes_the_checksum() {
        let mut data = vec![0xA5u8; 64];
        let clean = checksum(&data);
        data[40] ^= 0x10;
        assert_ne!(checksum(&data), clean);
    }
}
