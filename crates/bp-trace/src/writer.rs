//! Streaming `.bpt` writer.
//!
//! Records are buffered per chunk and flushed with a CRC32-sealed header;
//! [`TraceWriter::finish`] closes the file with a trailer chunk carrying
//! whole-file totals, which is what lets a reader distinguish "short trace"
//! from "truncated trace". Delta state resets at every chunk boundary so
//! chunks decode independently (the lenient reader's resync depends on it).

use std::io::{self, Write};

use bp_common::{BranchKind, BranchRecord};

use crate::crc32::Hasher;
use crate::varint;
use crate::{CHUNK_MAGIC, FILE_MAGIC, FORMAT_VERSION};

/// Encodes a branch kind into the tag byte's low three bits.
pub(crate) fn kind_code(k: BranchKind) -> u8 {
    match k {
        BranchKind::Conditional => 0,
        BranchKind::Direct => 1,
        BranchKind::Indirect => 2,
        BranchKind::Call => 3,
        BranchKind::Return => 4,
    }
}

/// Decodes the tag byte's low three bits back into a kind.
pub(crate) fn kind_from_code(c: u8) -> Option<BranchKind> {
    match c {
        0 => Some(BranchKind::Conditional),
        1 => Some(BranchKind::Direct),
        2 => Some(BranchKind::Indirect),
        3 => Some(BranchKind::Call),
        4 => Some(BranchKind::Return),
        _ => None,
    }
}

/// Appends one record to a chunk payload, delta-encoded against `prev_pc`.
pub(crate) fn encode_record(payload: &mut Vec<u8>, prev_pc: &mut u64, r: &BranchRecord) {
    let tag = kind_code(r.kind) | (u8::from(r.taken) << 3);
    payload.push(tag);
    let pc = r.pc.raw();
    varint::write_u64(payload, varint::zigzag(pc.wrapping_sub(*prev_pc) as i64));
    varint::write_u64(
        payload,
        varint::zigzag(r.target.raw().wrapping_sub(pc) as i64),
    );
    varint::write_u64(payload, u64::from(r.gap));
    *prev_pc = pc;
}

/// What [`TraceWriter::finish`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteSummary {
    /// Records written.
    pub records: u64,
    /// Data chunks written (the trailer is not counted).
    pub chunks: u64,
    /// Total bytes written, header and trailer included.
    pub bytes: u64,
}

/// Streaming writer of the `.bpt` format.
///
/// Dropping a writer without calling [`finish`](TraceWriter::finish)
/// leaves a trailer-less file — exactly the torn tail the reader's
/// `torn_tail` flag reports.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    records_per_chunk: usize,
    payload: Vec<u8>,
    prev_pc: u64,
    count_in_chunk: u32,
    seq: u32,
    total_records: u64,
    bytes_written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace: writes the file header immediately.
    /// `records_per_chunk` is clamped to at least 1
    /// ([`crate::DEFAULT_CHUNK_RECORDS`] is the conventional value).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the header write.
    pub fn new(mut out: W, records_per_chunk: usize) -> io::Result<TraceWriter<W>> {
        let mut header = Vec::with_capacity(crate::FILE_HEADER_LEN);
        header.extend_from_slice(&FILE_MAGIC);
        header.push(FORMAT_VERSION);
        header.extend_from_slice(&0u32.to_le_bytes()); // flags (reserved)
        header.extend_from_slice(&crate::crc32::checksum(&header).to_le_bytes());
        out.write_all(&header)?;
        Ok(TraceWriter {
            out,
            records_per_chunk: records_per_chunk.max(1),
            payload: Vec::new(),
            prev_pc: 0,
            count_in_chunk: 0,
            seq: 0,
            total_records: 0,
            bytes_written: header.len() as u64,
        })
    }

    /// Appends one record, flushing a chunk when full.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for a record no reader would accept (a not-taken
    /// unconditional branch — the writer refuses to produce a file that
    /// cannot round-trip); otherwise propagates I/O errors.
    pub fn push(&mut self, r: &BranchRecord) -> io::Result<()> {
        if !r.taken && r.kind != BranchKind::Conditional {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "unconditional branches must be taken",
            ));
        }
        encode_record(&mut self.payload, &mut self.prev_pc, r);
        self.count_in_chunk += 1;
        self.total_records += 1;
        if self.count_in_chunk as usize >= self.records_per_chunk {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Writes the buffered records as one chunk (no-op when empty).
    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.count_in_chunk == 0 {
            return Ok(());
        }
        let count = self.count_in_chunk;
        let seq = self.seq;
        let payload = std::mem::take(&mut self.payload);
        self.write_chunk(seq, count, &payload)?;
        self.seq += 1;
        self.count_in_chunk = 0;
        self.prev_pc = 0;
        Ok(())
    }

    /// Emits one raw chunk: header fields, CRC over fields + payload,
    /// payload.
    fn write_chunk(&mut self, seq: u32, count: u32, payload: &[u8]) -> io::Result<()> {
        let mut fields = [0u8; 12];
        fields[0..4].copy_from_slice(&seq.to_le_bytes());
        fields[4..8].copy_from_slice(&count.to_le_bytes());
        fields[8..12].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        let mut h = Hasher::new();
        h.update(&fields);
        h.update(payload);
        self.out.write_all(&CHUNK_MAGIC)?;
        self.out.write_all(&fields)?;
        self.out.write_all(&h.finish().to_le_bytes())?;
        self.out.write_all(payload)?;
        self.bytes_written += (crate::CHUNK_HEADER_LEN + payload.len()) as u64;
        Ok(())
    }

    /// Flushes the last partial chunk, writes the trailer (a chunk with
    /// record count 0 whose payload is the varint-encoded whole-file
    /// totals), and flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the file must be considered torn if this
    /// fails.
    pub fn finish(mut self) -> io::Result<WriteSummary> {
        self.flush_chunk()?;
        let mut totals = Vec::new();
        varint::write_u64(&mut totals, self.total_records);
        varint::write_u64(&mut totals, u64::from(self.seq));
        let seq = self.seq;
        let payload = std::mem::take(&mut totals);
        self.write_chunk(seq, 0, &payload)?;
        self.out.flush()?;
        Ok(WriteSummary {
            records: self.total_records,
            chunks: u64::from(self.seq),
            bytes: self.bytes_written,
        })
    }
}

/// Writes a whole record slice to an in-memory trace (tests and tools).
///
/// # Errors
///
/// Propagates [`TraceWriter::push`]'s record validation; plain I/O cannot
/// fail on a `Vec`.
pub fn write_trace(records: &[BranchRecord], records_per_chunk: usize) -> io::Result<Vec<u8>> {
    let mut out = Vec::new();
    let mut w = TraceWriter::new(&mut out, records_per_chunk)?;
    for r in records {
        w.push(r)?;
    }
    w.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_common::Addr;

    #[test]
    fn header_and_trailer_frame_every_file() {
        let bytes = write_trace(&[], 16).unwrap();
        assert_eq!(&bytes[..7], &FILE_MAGIC);
        assert_eq!(bytes[7], FORMAT_VERSION);
        // Header + one trailer chunk with a 2-byte totals payload.
        assert_eq!(
            bytes.len(),
            crate::FILE_HEADER_LEN + crate::CHUNK_HEADER_LEN + 2
        );
        assert_eq!(&bytes[16..20], &CHUNK_MAGIC);
    }

    #[test]
    fn refuses_unroundtrippable_records() {
        let mut out = Vec::new();
        let mut w = TraceWriter::new(&mut out, 4).unwrap();
        let bad = BranchRecord {
            pc: Addr::new(0x10),
            kind: BranchKind::Direct,
            target: Addr::new(0x20),
            taken: false,
            gap: 0,
        };
        assert_eq!(
            w.push(&bad).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
    }

    #[test]
    fn summary_counts_match_the_layout() {
        let r = BranchRecord::conditional(Addr::new(0x4000), Addr::new(0x4010), true, 3);
        let records = vec![r; 10];
        let mut out = Vec::new();
        let mut w = TraceWriter::new(&mut out, 4).unwrap();
        for rec in &records {
            w.push(rec).unwrap();
        }
        let s = w.finish().unwrap();
        assert_eq!(s.records, 10);
        assert_eq!(s.chunks, 3); // 4 + 4 + 2
        assert_eq!(s.bytes, out.len() as u64);
    }
}
