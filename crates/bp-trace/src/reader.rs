//! Corruption-tolerant `.bpt` reader.
//!
//! Both modes share one chunk parser; they differ only in what happens at
//! damage:
//!
//! * [`ReadMode::Strict`] returns the first [`TraceError`], naming the
//!   chunk ordinal and byte offset, and additionally cross-checks sequence
//!   numbers and the trailer's whole-file totals. An intact file decodes to
//!   exactly what was written; anything else is a typed refusal.
//! * [`ReadMode::Lenient`] *resynchronizes*: on any chunk-level damage it
//!   scans forward for the next [`CHUNK_MAGIC`](crate::CHUNK_MAGIC) that
//!   heads a fully CRC-valid chunk, counts one skipped region in
//!   [`TraceHealth`], and continues. Duplicate and stray chunks (botched
//!   copies) are dropped by sequence-number bookkeeping. Only file-header
//!   damage is fatal in lenient mode: a file whose version byte cannot be
//!   trusted must not be guessed at.
//!
//! Resync never misfires on payload bytes that happen to spell `CHNK`: a
//! candidate only ends the damaged region if its entire chunk validates, so
//! false anchors are skipped *within* the same damaged region (they do not
//! inflate `chunks_skipped`).

use bp_common::{Addr, BranchRecord};

use crate::crc32::Hasher;
use crate::varint;
use crate::writer::kind_from_code;
use crate::{TraceError, TraceHealth, CHUNK_HEADER_LEN, CHUNK_MAGIC, FILE_HEADER_LEN};

/// How the reader treats damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadMode {
    /// First damage is a typed error naming chunk and offset.
    #[default]
    Strict,
    /// Skip to the next intact chunk; account losses in [`TraceHealth`].
    Lenient,
}

impl ReadMode {
    /// Parses a `--trace-mode` value.
    ///
    /// # Errors
    ///
    /// Lists the valid values; a typo must never silently pick a mode.
    pub fn parse(v: &str) -> Result<ReadMode, String> {
        match v {
            "strict" => Ok(ReadMode::Strict),
            "lenient" => Ok(ReadMode::Lenient),
            other => Err(format!(
                "invalid trace mode '{other}': valid values are strict, lenient"
            )),
        }
    }

    /// The value [`ReadMode::parse`] accepts for this mode.
    pub fn name(self) -> &'static str {
        match self {
            ReadMode::Strict => "strict",
            ReadMode::Lenient => "lenient",
        }
    }
}

/// One parsed chunk.
enum Chunk {
    Data {
        seq: u32,
        records: Vec<BranchRecord>,
        size: usize,
    },
    Trailer {
        seq: u32,
        total_records: u64,
        total_chunks: u64,
        size: usize,
    },
}

/// Validates the 16-byte file header. Fatal in both modes.
fn parse_file_header(bytes: &[u8]) -> Result<(), TraceError> {
    if bytes.len() < FILE_HEADER_LEN {
        return Err(TraceError::Truncated {
            offset: bytes.len() as u64,
            what: "file header",
        });
    }
    if bytes[..7] != crate::FILE_MAGIC {
        return Err(TraceError::BadFileMagic);
    }
    let stored = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    let computed = crate::crc32::checksum(&bytes[..12]);
    if stored != computed {
        return Err(TraceError::HeaderCrc { stored, computed });
    }
    // Version is checked after the CRC: a flipped version byte is damage
    // (HeaderCrc), a *valid* higher version is genuinely from the future.
    if bytes[7] != crate::FORMAT_VERSION {
        return Err(TraceError::UnsupportedVersion { found: bytes[7] });
    }
    Ok(())
}

fn le32(bytes: &[u8], pos: usize) -> u32 {
    // Callers bound-check; a short slice here would be a logic error, so
    // degrade to 0 rather than panic.
    match bytes.get(pos..pos + 4) {
        Some(b) => u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
        None => 0,
    }
}

/// Parses the chunk starting at `pos`. `ordinal` is the chunk's 0-based
/// position-count, used only for error naming.
fn parse_chunk(bytes: &[u8], pos: usize, ordinal: u32) -> Result<Chunk, TraceError> {
    if bytes.len() - pos < CHUNK_HEADER_LEN {
        return Err(TraceError::Truncated {
            offset: pos as u64,
            what: "chunk header",
        });
    }
    if bytes[pos..pos + 4] != CHUNK_MAGIC {
        return Err(TraceError::BadChunkMagic {
            chunk: ordinal,
            offset: pos as u64,
        });
    }
    let seq = le32(bytes, pos + 4);
    let count = le32(bytes, pos + 8);
    let payload_len = le32(bytes, pos + 12) as usize;
    let stored = le32(bytes, pos + 16);
    if bytes.len() - pos - CHUNK_HEADER_LEN < payload_len {
        return Err(TraceError::Truncated {
            offset: pos as u64,
            what: "chunk payload",
        });
    }
    let payload = &bytes[pos + CHUNK_HEADER_LEN..pos + CHUNK_HEADER_LEN + payload_len];
    let mut h = Hasher::new();
    h.update(&bytes[pos + 4..pos + 16]);
    h.update(payload);
    let computed = h.finish();
    if stored != computed {
        return Err(TraceError::ChunkCrc {
            chunk: ordinal,
            offset: pos as u64,
            stored,
            computed,
        });
    }
    let size = CHUNK_HEADER_LEN + payload_len;
    let payload_base = (pos + CHUNK_HEADER_LEN) as u64;
    if count == 0 {
        let mut p = 0usize;
        let total_records = varint::read_u64(payload, &mut p);
        let total_chunks = varint::read_u64(payload, &mut p);
        return match (total_records, total_chunks) {
            (Some(r), Some(c)) if p == payload.len() => Ok(Chunk::Trailer {
                seq,
                total_records: r,
                total_chunks: c,
                size,
            }),
            _ => Err(TraceError::BadRecord {
                chunk: ordinal,
                offset: payload_base,
                reason: "malformed trailer payload",
            }),
        };
    }
    let mut records = Vec::with_capacity(count as usize);
    let mut p = 0usize;
    let mut prev_pc = 0u64;
    for _ in 0..count {
        let rec_off = payload_base + p as u64;
        let bad = |reason: &'static str| TraceError::BadRecord {
            chunk: ordinal,
            offset: rec_off,
            reason,
        };
        let &tag = payload.get(p).ok_or_else(|| bad("record truncated"))?;
        p += 1;
        if tag & !0x0F != 0 {
            return Err(bad("reserved tag bits set"));
        }
        let kind = kind_from_code(tag & 0x07).ok_or_else(|| bad("unknown branch kind"))?;
        let taken = tag & 0x08 != 0;
        if !taken && !kind.is_conditional() {
            return Err(bad("unconditional branch encoded as not taken"));
        }
        let dpc = varint::read_u64(payload, &mut p).ok_or_else(|| bad("bad pc delta"))?;
        let dtarget = varint::read_u64(payload, &mut p).ok_or_else(|| bad("bad target delta"))?;
        let gap = varint::read_u64(payload, &mut p).ok_or_else(|| bad("bad gap"))?;
        let gap = u32::try_from(gap).map_err(|_| bad("gap exceeds 32 bits"))?;
        let pc = prev_pc.wrapping_add(varint::unzigzag(dpc) as u64);
        let target = pc.wrapping_add(varint::unzigzag(dtarget) as u64);
        prev_pc = pc;
        records.push(BranchRecord {
            pc: Addr::new(pc),
            kind,
            target: Addr::new(target),
            taken,
            gap,
        });
    }
    if p != payload.len() {
        return Err(TraceError::BadRecord {
            chunk: ordinal,
            offset: payload_base + p as u64,
            reason: "trailing bytes in chunk payload",
        });
    }
    Ok(Chunk::Data { seq, records, size })
}

/// Scans forward from `from` for the next offset heading a fully valid
/// chunk. False anchors (payload bytes spelling the magic, or a damaged
/// real chunk) are skipped without ending the scan.
fn find_next_valid_chunk(bytes: &[u8], mut from: usize) -> Option<usize> {
    while from + CHUNK_HEADER_LEN <= bytes.len() {
        match bytes[from..]
            .windows(CHUNK_MAGIC.len())
            .position(|w| w == CHUNK_MAGIC)
        {
            Some(rel) => {
                let q = from + rel;
                if parse_chunk(bytes, q, 0).is_ok() {
                    return Some(q);
                }
                from = q + 1;
            }
            None => return None,
        }
    }
    None
}

/// A fully decoded trace plus its damage ledger.
#[derive(Debug, Clone, PartialEq)]
struct Decoded {
    records: Vec<BranchRecord>,
    health: TraceHealth,
}

/// Shared decode loop. In strict mode any `Err` short-circuits; in lenient
/// mode errors after the file header are converted into resyncs.
fn decode(bytes: &[u8], mode: ReadMode) -> Result<Decoded, TraceError> {
    parse_file_header(bytes)?;
    let strict = mode == ReadMode::Strict;
    let mut pos = FILE_HEADER_LEN;
    let mut ordinal: u32 = 0;
    let mut records = Vec::new();
    let mut health = TraceHealth::default();
    let mut seen_seqs = std::collections::BTreeSet::new();
    let mut trailer: Option<(u64, u64)> = None;
    let mut ended_in_damage = false;
    while pos < bytes.len() {
        match parse_chunk(bytes, pos, ordinal) {
            Ok(Chunk::Data {
                seq,
                records: recs,
                size,
            }) => {
                if strict {
                    if trailer.is_some() {
                        return Err(TraceError::TrailingData { offset: pos as u64 });
                    }
                    if seq != health.chunks_ok as u32 {
                        return Err(TraceError::BadSequence {
                            chunk: ordinal,
                            offset: pos as u64,
                            expected: health.chunks_ok as u32,
                            found: seq,
                        });
                    }
                }
                if trailer.is_some() || !seen_seqs.insert(seq) {
                    // A stray or duplicated chunk (botched copy): its
                    // records were already delivered once.
                    health.chunks_skipped += 1;
                } else {
                    health.chunks_ok += 1;
                    health.records_ok += recs.len() as u64;
                    records.extend(recs);
                }
                ordinal += 1;
                pos += size;
            }
            Ok(Chunk::Trailer {
                seq,
                total_records,
                total_chunks,
                size,
            }) => {
                if strict {
                    if trailer.is_some() {
                        return Err(TraceError::TrailingData { offset: pos as u64 });
                    }
                    if seq != health.chunks_ok as u32 {
                        return Err(TraceError::BadSequence {
                            chunk: ordinal,
                            offset: pos as u64,
                            expected: health.chunks_ok as u32,
                            found: seq,
                        });
                    }
                }
                if trailer.is_none() {
                    trailer = Some((total_records, total_chunks));
                } else {
                    health.chunks_skipped += 1;
                }
                ordinal += 1;
                pos += size;
            }
            Err(e) => {
                if strict {
                    return Err(e);
                }
                health.chunks_skipped += 1;
                ordinal += 1;
                match find_next_valid_chunk(bytes, pos + 1) {
                    Some(q) => pos = q,
                    None => {
                        ended_in_damage = true;
                        break;
                    }
                }
            }
        }
    }
    if strict {
        return match trailer {
            None => Err(TraceError::Truncated {
                offset: bytes.len() as u64,
                what: "trailer chunk",
            }),
            Some((total_records, total_chunks)) => {
                if total_records != health.records_ok || total_chunks != health.chunks_ok {
                    Err(TraceError::TrailerMismatch {
                        expected_records: total_records,
                        found_records: health.records_ok,
                        expected_chunks: total_chunks,
                        found_chunks: health.chunks_ok,
                    })
                } else {
                    Ok(Decoded { records, health })
                }
            }
        };
    }
    match trailer {
        Some((total_records, _)) => {
            health.records_lost = total_records.saturating_sub(health.records_ok);
            health.torn_tail = ended_in_damage;
        }
        None => {
            // Without the trailer the loss past the last intact chunk is
            // unknowable: flag it rather than guess a number.
            health.torn_tail = true;
        }
    }
    Ok(Decoded { records, health })
}

/// Decodes a whole in-memory trace.
///
/// # Errors
///
/// Strict mode: any damage, as a typed [`TraceError`]. Lenient mode: only
/// file-header damage ([`TraceError::BadFileMagic`],
/// [`TraceError::HeaderCrc`], [`TraceError::UnsupportedVersion`], or a
/// file shorter than its header) — everything else is absorbed into the
/// returned [`TraceHealth`].
pub fn read_all(
    bytes: &[u8],
    mode: ReadMode,
) -> Result<(Vec<BranchRecord>, TraceHealth), TraceError> {
    decode(bytes, mode).map(|d| (d.records, d.health))
}

/// Streaming reader: an iterator over records.
///
/// The decode itself is eager (the corpus sizes this repo replays fit in
/// memory, and resync needs random access anyway); the iterator interface
/// is what the replay feed consumes, and keeps callers independent of that
/// choice. In strict mode the first damage is yielded once as `Err` and
/// the iterator then fuses.
#[derive(Debug)]
pub struct TraceReader {
    records: std::vec::IntoIter<BranchRecord>,
    pending_err: Option<TraceError>,
    health: TraceHealth,
}

impl TraceReader {
    /// Decodes `bytes` in `mode`.
    ///
    /// # Errors
    ///
    /// File-header damage is returned immediately in both modes (there is
    /// nothing to iterate). Strict-mode chunk damage is deferred: the
    /// records before the damage iterate first, then the error.
    pub fn new(bytes: &[u8], mode: ReadMode) -> Result<TraceReader, TraceError> {
        parse_file_header(bytes)?;
        match decode(bytes, mode) {
            Ok(d) => Ok(TraceReader {
                records: d.records.into_iter(),
                pending_err: None,
                health: d.health,
            }),
            Err(e) => Ok(TraceReader {
                records: Vec::new().into_iter(),
                pending_err: Some(e),
                health: TraceHealth::default(),
            }),
        }
    }

    /// The damage ledger (all-zero in strict mode, which errors instead).
    pub fn health(&self) -> TraceHealth {
        self.health
    }
}

impl Iterator for TraceReader {
    type Item = Result<BranchRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.records.next() {
            Some(r) => Some(Ok(r)),
            None => self.pending_err.take().map(Err),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::writer::write_trace;
    use bp_common::BranchKind;

    fn sample(n: u64) -> Vec<BranchRecord> {
        (0..n)
            .map(|i| {
                let pc = Addr::new(0x0040_0000 + 4 * i);
                match i % 4 {
                    0 => BranchRecord::conditional(
                        pc,
                        Addr::new(0x0040_1000 + i),
                        i % 3 == 0,
                        (i % 19) as u32,
                    ),
                    1 => BranchRecord::unconditional(
                        pc,
                        BranchKind::Direct,
                        Addr::new(0x0042_0000),
                        2,
                    ),
                    2 => {
                        BranchRecord::unconditional(pc, BranchKind::Call, Addr::new(0x0050_0000), 5)
                    }
                    _ => BranchRecord::unconditional(
                        pc,
                        BranchKind::Return,
                        Addr::new(0x0040_0004),
                        0,
                    ),
                }
            })
            .collect()
    }

    #[test]
    fn roundtrip_both_modes() {
        let recs = sample(1000);
        for chunk in [1usize, 7, 64, 333, 1024, 4096] {
            let bytes = write_trace(&recs, chunk).unwrap();
            for mode in [ReadMode::Strict, ReadMode::Lenient] {
                let (back, health) = read_all(&bytes, mode).unwrap();
                assert_eq!(back, recs, "chunk size {chunk}, mode {}", mode.name());
                assert!(health.is_clean());
                assert_eq!(health.records_ok, 1000);
            }
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        let bytes = write_trace(&[], 64).unwrap();
        let (recs, health) = read_all(&bytes, ReadMode::Strict).unwrap();
        assert!(recs.is_empty());
        assert!(health.is_clean());
        assert_eq!(health.chunks_ok, 0);
    }

    #[test]
    fn unknown_future_version_is_rejected_in_both_modes() {
        let mut bytes = write_trace(&sample(10), 4).unwrap();
        bytes[7] = crate::FORMAT_VERSION + 1;
        // Re-seal the header so the version (not the CRC) is what trips.
        let crc = crate::crc32::checksum(&bytes[..12]);
        bytes[12..16].copy_from_slice(&crc.to_le_bytes());
        for mode in [ReadMode::Strict, ReadMode::Lenient] {
            assert_eq!(
                read_all(&bytes, mode).unwrap_err(),
                TraceError::UnsupportedVersion {
                    found: crate::FORMAT_VERSION + 1
                }
            );
        }
    }

    #[test]
    fn header_damage_is_fatal_in_both_modes() {
        let clean = write_trace(&sample(10), 4).unwrap();
        for mode in [ReadMode::Strict, ReadMode::Lenient] {
            let mut magic = clean.clone();
            magic[0] ^= 0xFF;
            assert_eq!(
                read_all(&magic, mode).unwrap_err(),
                TraceError::BadFileMagic
            );
            let mut flags = clean.clone();
            flags[9] ^= 0x01;
            assert!(matches!(
                read_all(&flags, mode).unwrap_err(),
                TraceError::HeaderCrc { .. }
            ));
            assert!(matches!(
                read_all(&clean[..10], mode).unwrap_err(),
                TraceError::Truncated {
                    what: "file header",
                    ..
                }
            ));
        }
    }

    #[test]
    fn strict_names_the_damaged_chunk_and_offset() {
        let recs = sample(300);
        let mut bytes = write_trace(&recs, 100).unwrap();
        // Flip a payload byte inside the second chunk. Chunk 0 starts at 16.
        let c0_payload = u32::from_le_bytes(bytes[28..32].try_into().unwrap()) as usize;
        let c1_start = 16 + CHUNK_HEADER_LEN + c0_payload;
        bytes[c1_start + CHUNK_HEADER_LEN + 10] ^= 0x40;
        match read_all(&bytes, ReadMode::Strict).unwrap_err() {
            TraceError::ChunkCrc { chunk, offset, .. } => {
                assert_eq!(chunk, 1);
                assert_eq!(offset, c1_start as u64);
            }
            other => panic!("expected ChunkCrc, got {other:?}"),
        }
    }

    #[test]
    fn lenient_resyncs_past_a_flipped_bit() {
        let recs = sample(300);
        let mut bytes = write_trace(&recs, 100).unwrap();
        let c0_payload = u32::from_le_bytes(bytes[28..32].try_into().unwrap()) as usize;
        let c1_start = 16 + CHUNK_HEADER_LEN + c0_payload;
        bytes[c1_start + CHUNK_HEADER_LEN + 10] ^= 0x40;
        let (back, health) = read_all(&bytes, ReadMode::Lenient).unwrap();
        // Chunks 0 and 2 survive; chunk 1's 100 records are lost.
        assert_eq!(back.len(), 200);
        assert_eq!(&back[..100], &recs[..100]);
        assert_eq!(&back[100..], &recs[200..]);
        assert_eq!(health.chunks_ok, 2);
        assert_eq!(health.chunks_skipped, 1);
        assert_eq!(health.records_lost, 100);
        assert!(!health.torn_tail);
    }

    #[test]
    fn truncation_is_typed_in_strict_and_torn_in_lenient() {
        let recs = sample(250);
        let bytes = write_trace(&recs, 100).unwrap();
        let cut = &bytes[..bytes.len() - 30];
        assert!(matches!(
            read_all(cut, ReadMode::Strict).unwrap_err(),
            TraceError::Truncated { .. }
        ));
        let (back, health) = read_all(cut, ReadMode::Lenient).unwrap();
        // The cut removes the trailer and bites into the last data chunk:
        // its 50 records are gone, and without the trailer the loss count
        // is unknowable — only `torn_tail` can report it.
        assert_eq!(back.len(), 200);
        assert_eq!(health.chunks_skipped, 1);
        assert!(health.torn_tail);
        assert_eq!(health.records_lost, 0);

        // A cut inside the trailer alone keeps every record but still
        // leaves the file unable to prove itself complete.
        let trailer_cut = &bytes[..bytes.len() - 10];
        let (back, health) = read_all(trailer_cut, ReadMode::Lenient).unwrap();
        assert_eq!(back.len(), 250);
        assert!(health.torn_tail);
        assert_eq!(health.records_lost, 0);
    }

    #[test]
    fn duplicate_chunk_is_dropped_by_sequence_accounting() {
        let recs = sample(200);
        let mut bytes = write_trace(&recs, 100).unwrap();
        // Duplicate chunk 0 right after itself.
        let c0_payload = u32::from_le_bytes(bytes[28..32].try_into().unwrap()) as usize;
        let c0: Vec<u8> = bytes[16..16 + CHUNK_HEADER_LEN + c0_payload].to_vec();
        bytes.splice(16 + c0.len()..16 + c0.len(), c0);
        assert!(matches!(
            read_all(&bytes, ReadMode::Strict).unwrap_err(),
            TraceError::BadSequence { .. }
        ));
        let (back, health) = read_all(&bytes, ReadMode::Lenient).unwrap();
        assert_eq!(back, recs);
        assert_eq!(health.chunks_skipped, 1);
        assert_eq!(health.records_lost, 0);
        assert!(!health.torn_tail);
    }

    #[test]
    fn damaged_trailer_is_a_torn_tail_not_a_loss() {
        let recs = sample(150);
        let mut bytes = write_trace(&recs, 100).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x01; // inside the trailer payload
        let (back, health) = read_all(&bytes, ReadMode::Lenient).unwrap();
        assert_eq!(back, recs);
        assert_eq!(health.chunks_skipped, 1);
        assert!(health.torn_tail);
        assert_eq!(health.records_lost, 0);
    }

    #[test]
    fn strict_reader_iterates_then_yields_the_error() {
        let recs = sample(200);
        let mut bytes = write_trace(&recs, 100).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        let mut reader = TraceReader::new(&bytes, ReadMode::Strict).unwrap();
        let mut ok = 0;
        let mut errs = 0;
        for item in &mut reader {
            match item {
                Ok(_) => ok += 1,
                Err(TraceError::ChunkCrc { chunk: 2, .. }) => errs += 1,
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        // Strict surfaces the damage without delivering a partial stream.
        assert_eq!((ok, errs), (0, 1));
        assert_eq!(reader.next(), None, "fused after the error");
    }

    #[test]
    fn lenient_reader_streams_with_health() {
        let recs = sample(200);
        let bytes = write_trace(&recs, 64).unwrap();
        let reader = TraceReader::new(&bytes, ReadMode::Lenient).unwrap();
        assert!(reader.health().is_clean());
        let back: Vec<BranchRecord> = reader.map(|r| r.unwrap()).collect();
        assert_eq!(back, recs);
    }

    #[test]
    fn garbage_between_chunks_is_one_skipped_region() {
        let recs = sample(200);
        let mut bytes = write_trace(&recs, 100).unwrap();
        let c0_payload = u32::from_le_bytes(bytes[28..32].try_into().unwrap()) as usize;
        let c1_start = 16 + CHUNK_HEADER_LEN + c0_payload;
        // Splice garbage that even contains a false chunk magic.
        let mut garbage = b"xxxxCHNKyyyy".to_vec();
        garbage.extend_from_slice(&[0xEE; 40]);
        bytes.splice(c1_start..c1_start, garbage);
        let (back, health) = read_all(&bytes, ReadMode::Lenient).unwrap();
        assert_eq!(back, recs);
        assert_eq!(
            health.chunks_skipped, 1,
            "false anchors must not double-count"
        );
        assert_eq!(health.records_lost, 0);
    }
}
