//! Corruption-tolerant `.bpt` reader.
//!
//! Both modes share one chunk parser; they differ only in what happens at
//! damage:
//!
//! * [`ReadMode::Strict`] returns the first [`TraceError`], naming the
//!   chunk ordinal and byte offset, and additionally cross-checks sequence
//!   numbers and the trailer's whole-file totals. An intact file decodes to
//!   exactly what was written; anything else is a typed refusal.
//! * [`ReadMode::Lenient`] *resynchronizes*: on any chunk-level damage it
//!   scans forward for the next [`CHUNK_MAGIC`](crate::CHUNK_MAGIC) that
//!   heads a fully CRC-valid chunk, counts one skipped region in
//!   [`TraceHealth`], and continues. Duplicate and stray chunks (botched
//!   copies) are dropped by sequence-number bookkeeping. Only file-header
//!   damage is fatal in lenient mode: a file whose version byte cannot be
//!   trusted must not be guessed at.
//!
//! Resync never misfires on payload bytes that happen to spell `CHNK`: a
//! candidate only ends the damaged region if its entire chunk validates, so
//! false anchors are skipped *within* the same damaged region (they do not
//! inflate `chunks_skipped`).

use bp_common::{Addr, BranchRecord};

use crate::crc32::Hasher;
use crate::varint;
use crate::writer::kind_from_code;
use crate::{TraceError, TraceHealth, CHUNK_HEADER_LEN, CHUNK_MAGIC, FILE_HEADER_LEN};

/// How the reader treats damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadMode {
    /// First damage is a typed error naming chunk and offset.
    #[default]
    Strict,
    /// Skip to the next intact chunk; account losses in [`TraceHealth`].
    Lenient,
}

impl ReadMode {
    /// Parses a `--trace-mode` value through the shared strict-parse
    /// helper ([`bp_common::parse::one_of`]).
    ///
    /// # Errors
    ///
    /// Lists the valid values; a typo must never silently pick a mode.
    pub fn parse(v: &str) -> Result<ReadMode, String> {
        bp_common::parse::one_of(
            "trace mode",
            v,
            &[("strict", ReadMode::Strict), ("lenient", ReadMode::Lenient)],
        )
    }

    /// The value [`ReadMode::parse`] accepts for this mode.
    pub fn name(self) -> &'static str {
        match self {
            ReadMode::Strict => "strict",
            ReadMode::Lenient => "lenient",
        }
    }
}

/// One parsed chunk.
enum Chunk {
    Data {
        seq: u32,
        records: Vec<BranchRecord>,
        size: usize,
    },
    Trailer {
        seq: u32,
        total_records: u64,
        total_chunks: u64,
        size: usize,
    },
}

/// Validates the 16-byte file header. Fatal in both modes.
fn parse_file_header(bytes: &[u8]) -> Result<(), TraceError> {
    if bytes.len() < FILE_HEADER_LEN {
        return Err(TraceError::Truncated {
            offset: bytes.len() as u64,
            what: "file header",
        });
    }
    if bytes[..7] != crate::FILE_MAGIC {
        return Err(TraceError::BadFileMagic);
    }
    let stored = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    let computed = crate::crc32::checksum(&bytes[..12]);
    if stored != computed {
        return Err(TraceError::HeaderCrc { stored, computed });
    }
    // Version is checked after the CRC: a flipped version byte is damage
    // (HeaderCrc), a *valid* higher version is genuinely from the future.
    if bytes[7] != crate::FORMAT_VERSION {
        return Err(TraceError::UnsupportedVersion { found: bytes[7] });
    }
    Ok(())
}

fn le32(bytes: &[u8], pos: usize) -> u32 {
    // Callers bound-check; a short slice here would be a logic error, so
    // degrade to 0 rather than panic.
    match bytes.get(pos..pos + 4) {
        Some(b) => u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
        None => 0,
    }
}

/// Parses the chunk starting at `pos`. `ordinal` is the chunk's 0-based
/// position-count, used only for error naming.
fn parse_chunk(bytes: &[u8], pos: usize, ordinal: u32) -> Result<Chunk, TraceError> {
    if bytes.len() - pos < CHUNK_HEADER_LEN {
        return Err(TraceError::Truncated {
            offset: pos as u64,
            what: "chunk header",
        });
    }
    if bytes[pos..pos + 4] != CHUNK_MAGIC {
        return Err(TraceError::BadChunkMagic {
            chunk: ordinal,
            offset: pos as u64,
        });
    }
    let seq = le32(bytes, pos + 4);
    let count = le32(bytes, pos + 8);
    let payload_len = le32(bytes, pos + 12) as usize;
    let stored = le32(bytes, pos + 16);
    if bytes.len() - pos - CHUNK_HEADER_LEN < payload_len {
        return Err(TraceError::Truncated {
            offset: pos as u64,
            what: "chunk payload",
        });
    }
    let payload = &bytes[pos + CHUNK_HEADER_LEN..pos + CHUNK_HEADER_LEN + payload_len];
    let mut h = Hasher::new();
    h.update(&bytes[pos + 4..pos + 16]);
    h.update(payload);
    let computed = h.finish();
    if stored != computed {
        return Err(TraceError::ChunkCrc {
            chunk: ordinal,
            offset: pos as u64,
            stored,
            computed,
        });
    }
    let size = CHUNK_HEADER_LEN + payload_len;
    let payload_base = (pos + CHUNK_HEADER_LEN) as u64;
    if count == 0 {
        let mut p = 0usize;
        let total_records = varint::read_u64(payload, &mut p);
        let total_chunks = varint::read_u64(payload, &mut p);
        return match (total_records, total_chunks) {
            (Some(r), Some(c)) if p == payload.len() => Ok(Chunk::Trailer {
                seq,
                total_records: r,
                total_chunks: c,
                size,
            }),
            _ => Err(TraceError::BadRecord {
                chunk: ordinal,
                offset: payload_base,
                reason: "malformed trailer payload",
            }),
        };
    }
    let mut records = Vec::with_capacity(count as usize);
    let mut p = 0usize;
    let mut prev_pc = 0u64;
    for _ in 0..count {
        let rec_off = payload_base + p as u64;
        let bad = |reason: &'static str| TraceError::BadRecord {
            chunk: ordinal,
            offset: rec_off,
            reason,
        };
        let &tag = payload.get(p).ok_or_else(|| bad("record truncated"))?;
        p += 1;
        if tag & !0x0F != 0 {
            return Err(bad("reserved tag bits set"));
        }
        let kind = kind_from_code(tag & 0x07).ok_or_else(|| bad("unknown branch kind"))?;
        let taken = tag & 0x08 != 0;
        if !taken && !kind.is_conditional() {
            return Err(bad("unconditional branch encoded as not taken"));
        }
        let dpc = varint::read_u64(payload, &mut p).ok_or_else(|| bad("bad pc delta"))?;
        let dtarget = varint::read_u64(payload, &mut p).ok_or_else(|| bad("bad target delta"))?;
        let gap = varint::read_u64(payload, &mut p).ok_or_else(|| bad("bad gap"))?;
        let gap = u32::try_from(gap).map_err(|_| bad("gap exceeds 32 bits"))?;
        let pc = prev_pc.wrapping_add(varint::unzigzag(dpc) as u64);
        let target = pc.wrapping_add(varint::unzigzag(dtarget) as u64);
        prev_pc = pc;
        records.push(BranchRecord {
            pc: Addr::new(pc),
            kind,
            target: Addr::new(target),
            taken,
            gap,
        });
    }
    if p != payload.len() {
        return Err(TraceError::BadRecord {
            chunk: ordinal,
            offset: payload_base + p as u64,
            reason: "trailing bytes in chunk payload",
        });
    }
    Ok(Chunk::Data { seq, records, size })
}

/// Scans forward from `from` for the next offset heading a fully valid
/// chunk. False anchors (payload bytes spelling the magic, or a damaged
/// real chunk) are skipped without ending the scan.
fn find_next_valid_chunk(bytes: &[u8], mut from: usize) -> Option<usize> {
    while from + CHUNK_HEADER_LEN <= bytes.len() {
        match bytes[from..]
            .windows(CHUNK_MAGIC.len())
            .position(|w| w == CHUNK_MAGIC)
        {
            Some(rel) => {
                let q = from + rel;
                if parse_chunk(bytes, q, 0).is_ok() {
                    return Some(q);
                }
                from = q + 1;
            }
            None => return None,
        }
    }
    None
}

/// Whether `pos` heads a fully valid chunk of `bytes` — the precondition
/// for seeking a decode there (the sampling plan stores chunk offsets; a
/// stale or corrupted plan must fail the seek, not decode garbage).
pub(crate) fn chunk_starts_at(bytes: &[u8], pos: usize) -> bool {
    pos >= FILE_HEADER_LEN
        && pos < bytes.len()
        && bytes.len() - pos >= CHUNK_HEADER_LEN
        && parse_chunk(bytes, pos, 0).is_ok()
}

/// What one advance of the incremental decoder contributed.
pub(crate) enum Step {
    /// An intact, first-delivery data chunk's records, in stream order.
    /// `offset` is the absolute byte offset of the chunk's start — the
    /// seek anchor phase sampling records for each window (chunks encode
    /// independently, so a later decode can resume exactly here).
    Records {
        recs: Vec<BranchRecord>,
        offset: u64,
    },
    /// A chunk was consumed without new records (trailer, duplicate/stray
    /// chunk, or a lenient resync) — call [`DecodeState::step`] again.
    Meta,
    /// End of the byte stream; the state's health ledger is now final.
    End,
}

/// Resumable decode cursor: all the loop state of a whole-file decode,
/// minus the record accumulator. Callers choose whether records are
/// collected eagerly ([`read_all`]) or handed out chunk-by-chunk
/// ([`TraceReader`], the store's replay cursor) — the streaming side never
/// holds more than one chunk's decoded records at a time, which is what
/// bounds replay memory to O(chunk) over the raw (undecoded) file bytes.
#[derive(Debug, Clone)]
pub(crate) struct DecodeState {
    pos: usize,
    ordinal: u32,
    health: TraceHealth,
    seen_seqs: std::collections::BTreeSet<u32>,
    trailer: Option<(u64, u64)>,
    ended_in_damage: bool,
    strict: bool,
    finished: bool,
}

impl DecodeState {
    /// Validates the file header (fatal in both modes) and positions the
    /// cursor at the first chunk.
    pub(crate) fn new(bytes: &[u8], mode: ReadMode) -> Result<DecodeState, TraceError> {
        parse_file_header(bytes)?;
        Ok(DecodeState {
            pos: FILE_HEADER_LEN,
            ordinal: 0,
            health: TraceHealth::default(),
            seen_seqs: std::collections::BTreeSet::new(),
            trailer: None,
            ended_in_damage: false,
            strict: mode == ReadMode::Strict,
            finished: false,
        })
    }

    /// Positions a decode cursor directly at byte `pos`, which the caller
    /// must have proven heads a valid chunk ([`chunk_starts_at`]) of a
    /// file whose header was already validated at load time. Always
    /// lenient and sequence-agnostic: a mid-file resume sees arbitrary
    /// sequence numbers, so strict's "seq equals chunks seen" cross-check
    /// cannot apply. Used by the sampled-replay seek path.
    pub(crate) fn at_offset(pos: usize) -> DecodeState {
        DecodeState {
            pos,
            ordinal: 0,
            health: TraceHealth::default(),
            seen_seqs: std::collections::BTreeSet::new(),
            trailer: None,
            ended_in_damage: false,
            strict: false,
            finished: false,
        }
    }

    /// The damage ledger accumulated so far. Complete only after
    /// [`DecodeState::step`] has returned [`Step::End`] (the lenient loss
    /// accounting needs the trailer).
    pub(crate) fn health(&self) -> TraceHealth {
        self.health
    }

    /// Advances past one chunk of `bytes`, which must be the same slice on
    /// every call. In strict mode any damage is returned once as `Err` and
    /// the state finishes; in lenient mode damage becomes a resync and
    /// lands in the health ledger. A finished state keeps reporting
    /// [`Step::End`].
    pub(crate) fn step(&mut self, bytes: &[u8]) -> Result<Step, TraceError> {
        if self.finished {
            return Ok(Step::End);
        }
        if self.pos >= bytes.len() {
            return self.finish(bytes);
        }
        match parse_chunk(bytes, self.pos, self.ordinal) {
            Ok(Chunk::Data {
                seq,
                records: recs,
                size,
            }) => {
                if self.strict {
                    if self.trailer.is_some() {
                        self.finished = true;
                        return Err(TraceError::TrailingData {
                            offset: self.pos as u64,
                        });
                    }
                    if seq != self.health.chunks_ok as u32 {
                        self.finished = true;
                        return Err(TraceError::BadSequence {
                            chunk: self.ordinal,
                            offset: self.pos as u64,
                            expected: self.health.chunks_ok as u32,
                            found: seq,
                        });
                    }
                }
                self.ordinal += 1;
                let offset = self.pos as u64;
                self.pos += size;
                if self.trailer.is_some() || !self.seen_seqs.insert(seq) {
                    // A stray or duplicated chunk (botched copy): its
                    // records were already delivered once.
                    self.health.chunks_skipped += 1;
                    Ok(Step::Meta)
                } else {
                    self.health.chunks_ok += 1;
                    self.health.records_ok += recs.len() as u64;
                    Ok(Step::Records { recs, offset })
                }
            }
            Ok(Chunk::Trailer {
                seq,
                total_records,
                total_chunks,
                size,
            }) => {
                if self.strict {
                    if self.trailer.is_some() {
                        self.finished = true;
                        return Err(TraceError::TrailingData {
                            offset: self.pos as u64,
                        });
                    }
                    if seq != self.health.chunks_ok as u32 {
                        self.finished = true;
                        return Err(TraceError::BadSequence {
                            chunk: self.ordinal,
                            offset: self.pos as u64,
                            expected: self.health.chunks_ok as u32,
                            found: seq,
                        });
                    }
                }
                if self.trailer.is_none() {
                    self.trailer = Some((total_records, total_chunks));
                } else {
                    self.health.chunks_skipped += 1;
                }
                self.ordinal += 1;
                self.pos += size;
                Ok(Step::Meta)
            }
            Err(e) => {
                if self.strict {
                    self.finished = true;
                    return Err(e);
                }
                self.health.chunks_skipped += 1;
                self.ordinal += 1;
                match find_next_valid_chunk(bytes, self.pos + 1) {
                    Some(q) => {
                        self.pos = q;
                        Ok(Step::Meta)
                    }
                    None => {
                        self.ended_in_damage = true;
                        self.finish(bytes)
                    }
                }
            }
        }
    }

    /// End-of-stream bookkeeping: strict totals cross-check, lenient loss
    /// accounting against the trailer.
    fn finish(&mut self, bytes: &[u8]) -> Result<Step, TraceError> {
        self.finished = true;
        if self.strict {
            return match self.trailer {
                None => Err(TraceError::Truncated {
                    offset: bytes.len() as u64,
                    what: "trailer chunk",
                }),
                Some((total_records, total_chunks)) => {
                    if total_records != self.health.records_ok
                        || total_chunks != self.health.chunks_ok
                    {
                        Err(TraceError::TrailerMismatch {
                            expected_records: total_records,
                            found_records: self.health.records_ok,
                            expected_chunks: total_chunks,
                            found_chunks: self.health.chunks_ok,
                        })
                    } else {
                        Ok(Step::End)
                    }
                }
            };
        }
        match self.trailer {
            Some((total_records, _)) => {
                self.health.records_lost = total_records.saturating_sub(self.health.records_ok);
                self.health.torn_tail = self.ended_in_damage;
            }
            None => {
                // Without the trailer the loss past the last intact chunk is
                // unknowable: flag it rather than guess a number.
                self.health.torn_tail = true;
            }
        }
        Ok(Step::End)
    }
}

/// A fully decoded trace plus its damage ledger.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Decoded {
    pub(crate) records: Vec<BranchRecord>,
    pub(crate) health: TraceHealth,
}

/// Eager decode: drives [`DecodeState`] to the end, collecting every
/// delivered chunk. In strict mode any `Err` short-circuits; in lenient
/// mode errors after the file header are converted into resyncs.
/// Surfaced to callers as `TraceSession::decode`.
pub(crate) fn decode(bytes: &[u8], mode: ReadMode) -> Result<Decoded, TraceError> {
    let mut state = DecodeState::new(bytes, mode)?;
    let mut records = Vec::new();
    loop {
        match state.step(bytes)? {
            Step::Records { recs, .. } => records.extend(recs),
            Step::Meta => {}
            Step::End => break,
        }
    }
    Ok(Decoded {
        records,
        health: state.health(),
    })
}

/// Streaming reader: an iterator over records that decodes one chunk at a
/// time, so peak decoded-record residency is bounded by the chunk size no
/// matter how large the file is (the raw bytes stay borrowed, not copied —
/// resync needs random access to them).
///
/// In strict mode the records before the first damage iterate first, then
/// the damage is yielded once as `Err` and the iterator fuses.
#[derive(Debug)]
pub struct TraceReader<'a> {
    bytes: &'a [u8],
    state: DecodeState,
    current: std::vec::IntoIter<BranchRecord>,
    peak_buffered: usize,
    fused: bool,
}

impl<'a> TraceReader<'a> {
    /// Positions a streaming decode over `bytes` in `mode`.
    ///
    /// # Errors
    ///
    /// File-header damage is returned immediately in both modes (there is
    /// nothing to iterate). Chunk-level damage is deferred to iteration.
    pub fn new(bytes: &'a [u8], mode: ReadMode) -> Result<TraceReader<'a>, TraceError> {
        Ok(TraceReader {
            bytes,
            state: DecodeState::new(bytes, mode)?,
            current: Vec::new().into_iter(),
            peak_buffered: 0,
            fused: false,
        })
    }

    /// The damage ledger accumulated so far; complete once iteration ends.
    /// (Strict mode errors instead of accounting, so its ledger only ever
    /// shows the intact prefix.)
    pub fn health(&self) -> TraceHealth {
        self.state.health()
    }

    /// The largest number of decoded records ever resident in the reader at
    /// once — the O(chunk) streaming bound, asserted in tests.
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }
}

impl Iterator for TraceReader<'_> {
    type Item = Result<BranchRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(r) = self.current.next() {
                return Some(Ok(r));
            }
            if self.fused {
                return None;
            }
            match self.state.step(self.bytes) {
                Ok(Step::Records { recs, .. }) => {
                    self.peak_buffered = self.peak_buffered.max(recs.len());
                    self.current = recs.into_iter();
                }
                Ok(Step::Meta) => {}
                Ok(Step::End) => {
                    self.fused = true;
                    return None;
                }
                Err(e) => {
                    self.fused = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::writer::write_trace;
    use bp_common::BranchKind;

    /// Test-local decode entry pairing records with health, the shape most
    /// assertions want.
    fn read_all(
        bytes: &[u8],
        mode: ReadMode,
    ) -> Result<(Vec<BranchRecord>, TraceHealth), TraceError> {
        decode(bytes, mode).map(|d| (d.records, d.health))
    }

    fn sample(n: u64) -> Vec<BranchRecord> {
        (0..n)
            .map(|i| {
                let pc = Addr::new(0x0040_0000 + 4 * i);
                match i % 4 {
                    0 => BranchRecord::conditional(
                        pc,
                        Addr::new(0x0040_1000 + i),
                        i % 3 == 0,
                        (i % 19) as u32,
                    ),
                    1 => BranchRecord::unconditional(
                        pc,
                        BranchKind::Direct,
                        Addr::new(0x0042_0000),
                        2,
                    ),
                    2 => {
                        BranchRecord::unconditional(pc, BranchKind::Call, Addr::new(0x0050_0000), 5)
                    }
                    _ => BranchRecord::unconditional(
                        pc,
                        BranchKind::Return,
                        Addr::new(0x0040_0004),
                        0,
                    ),
                }
            })
            .collect()
    }

    #[test]
    fn roundtrip_both_modes() {
        let recs = sample(1000);
        for chunk in [1usize, 7, 64, 333, 1024, 4096] {
            let bytes = write_trace(&recs, chunk).unwrap();
            for mode in [ReadMode::Strict, ReadMode::Lenient] {
                let (back, health) = read_all(&bytes, mode).unwrap();
                assert_eq!(back, recs, "chunk size {chunk}, mode {}", mode.name());
                assert!(health.is_clean());
                assert_eq!(health.records_ok, 1000);
            }
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        let bytes = write_trace(&[], 64).unwrap();
        let (recs, health) = read_all(&bytes, ReadMode::Strict).unwrap();
        assert!(recs.is_empty());
        assert!(health.is_clean());
        assert_eq!(health.chunks_ok, 0);
    }

    #[test]
    fn unknown_future_version_is_rejected_in_both_modes() {
        let mut bytes = write_trace(&sample(10), 4).unwrap();
        bytes[7] = crate::FORMAT_VERSION + 1;
        // Re-seal the header so the version (not the CRC) is what trips.
        let crc = crate::crc32::checksum(&bytes[..12]);
        bytes[12..16].copy_from_slice(&crc.to_le_bytes());
        for mode in [ReadMode::Strict, ReadMode::Lenient] {
            assert_eq!(
                read_all(&bytes, mode).unwrap_err(),
                TraceError::UnsupportedVersion {
                    found: crate::FORMAT_VERSION + 1
                }
            );
        }
    }

    #[test]
    fn header_damage_is_fatal_in_both_modes() {
        let clean = write_trace(&sample(10), 4).unwrap();
        for mode in [ReadMode::Strict, ReadMode::Lenient] {
            let mut magic = clean.clone();
            magic[0] ^= 0xFF;
            assert_eq!(
                read_all(&magic, mode).unwrap_err(),
                TraceError::BadFileMagic
            );
            let mut flags = clean.clone();
            flags[9] ^= 0x01;
            assert!(matches!(
                read_all(&flags, mode).unwrap_err(),
                TraceError::HeaderCrc { .. }
            ));
            assert!(matches!(
                read_all(&clean[..10], mode).unwrap_err(),
                TraceError::Truncated {
                    what: "file header",
                    ..
                }
            ));
        }
    }

    #[test]
    fn strict_names_the_damaged_chunk_and_offset() {
        let recs = sample(300);
        let mut bytes = write_trace(&recs, 100).unwrap();
        // Flip a payload byte inside the second chunk. Chunk 0 starts at 16.
        let c0_payload = u32::from_le_bytes(bytes[28..32].try_into().unwrap()) as usize;
        let c1_start = 16 + CHUNK_HEADER_LEN + c0_payload;
        bytes[c1_start + CHUNK_HEADER_LEN + 10] ^= 0x40;
        match read_all(&bytes, ReadMode::Strict).unwrap_err() {
            TraceError::ChunkCrc { chunk, offset, .. } => {
                assert_eq!(chunk, 1);
                assert_eq!(offset, c1_start as u64);
            }
            other => panic!("expected ChunkCrc, got {other:?}"),
        }
    }

    #[test]
    fn lenient_resyncs_past_a_flipped_bit() {
        let recs = sample(300);
        let mut bytes = write_trace(&recs, 100).unwrap();
        let c0_payload = u32::from_le_bytes(bytes[28..32].try_into().unwrap()) as usize;
        let c1_start = 16 + CHUNK_HEADER_LEN + c0_payload;
        bytes[c1_start + CHUNK_HEADER_LEN + 10] ^= 0x40;
        let (back, health) = read_all(&bytes, ReadMode::Lenient).unwrap();
        // Chunks 0 and 2 survive; chunk 1's 100 records are lost.
        assert_eq!(back.len(), 200);
        assert_eq!(&back[..100], &recs[..100]);
        assert_eq!(&back[100..], &recs[200..]);
        assert_eq!(health.chunks_ok, 2);
        assert_eq!(health.chunks_skipped, 1);
        assert_eq!(health.records_lost, 100);
        assert!(!health.torn_tail);
    }

    #[test]
    fn truncation_is_typed_in_strict_and_torn_in_lenient() {
        let recs = sample(250);
        let bytes = write_trace(&recs, 100).unwrap();
        let cut = &bytes[..bytes.len() - 30];
        assert!(matches!(
            read_all(cut, ReadMode::Strict).unwrap_err(),
            TraceError::Truncated { .. }
        ));
        let (back, health) = read_all(cut, ReadMode::Lenient).unwrap();
        // The cut removes the trailer and bites into the last data chunk:
        // its 50 records are gone, and without the trailer the loss count
        // is unknowable — only `torn_tail` can report it.
        assert_eq!(back.len(), 200);
        assert_eq!(health.chunks_skipped, 1);
        assert!(health.torn_tail);
        assert_eq!(health.records_lost, 0);

        // A cut inside the trailer alone keeps every record but still
        // leaves the file unable to prove itself complete.
        let trailer_cut = &bytes[..bytes.len() - 10];
        let (back, health) = read_all(trailer_cut, ReadMode::Lenient).unwrap();
        assert_eq!(back.len(), 250);
        assert!(health.torn_tail);
        assert_eq!(health.records_lost, 0);
    }

    #[test]
    fn duplicate_chunk_is_dropped_by_sequence_accounting() {
        let recs = sample(200);
        let mut bytes = write_trace(&recs, 100).unwrap();
        // Duplicate chunk 0 right after itself.
        let c0_payload = u32::from_le_bytes(bytes[28..32].try_into().unwrap()) as usize;
        let c0: Vec<u8> = bytes[16..16 + CHUNK_HEADER_LEN + c0_payload].to_vec();
        bytes.splice(16 + c0.len()..16 + c0.len(), c0);
        assert!(matches!(
            read_all(&bytes, ReadMode::Strict).unwrap_err(),
            TraceError::BadSequence { .. }
        ));
        let (back, health) = read_all(&bytes, ReadMode::Lenient).unwrap();
        assert_eq!(back, recs);
        assert_eq!(health.chunks_skipped, 1);
        assert_eq!(health.records_lost, 0);
        assert!(!health.torn_tail);
    }

    #[test]
    fn damaged_trailer_is_a_torn_tail_not_a_loss() {
        let recs = sample(150);
        let mut bytes = write_trace(&recs, 100).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x01; // inside the trailer payload
        let (back, health) = read_all(&bytes, ReadMode::Lenient).unwrap();
        assert_eq!(back, recs);
        assert_eq!(health.chunks_skipped, 1);
        assert!(health.torn_tail);
        assert_eq!(health.records_lost, 0);
    }

    #[test]
    fn strict_reader_iterates_then_yields_the_error() {
        let recs = sample(200);
        let mut bytes = write_trace(&recs, 100).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        let mut reader = TraceReader::new(&bytes, ReadMode::Strict).unwrap();
        let mut ok = 0;
        let mut errs = 0;
        for item in &mut reader {
            match item {
                Ok(_) => ok += 1,
                Err(TraceError::ChunkCrc { chunk: 2, .. }) => errs += 1,
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        // Streaming strict: the intact prefix is delivered first (the
        // damage is in the trailer, so both data chunks arrive), then the
        // damage surfaces exactly once.
        assert_eq!((ok, errs), (200, 1));
        assert_eq!(reader.next(), None, "fused after the error");
    }

    #[test]
    fn strict_reader_stops_at_first_damaged_data_chunk() {
        let recs = sample(300);
        let mut bytes = write_trace(&recs, 100).unwrap();
        let c0_payload = u32::from_le_bytes(bytes[28..32].try_into().unwrap()) as usize;
        let c1_start = 16 + CHUNK_HEADER_LEN + c0_payload;
        bytes[c1_start + CHUNK_HEADER_LEN + 10] ^= 0x40;
        let mut reader = TraceReader::new(&bytes, ReadMode::Strict).unwrap();
        let prefix: Vec<BranchRecord> = (&mut reader).map_while(|item| item.ok()).collect();
        assert_eq!(prefix, &recs[..100], "chunk 0 streams before the damage");
        assert_eq!(reader.next(), None, "fused after the deferred error");
    }

    #[test]
    fn lenient_reader_streams_with_health() {
        let recs = sample(200);
        let bytes = write_trace(&recs, 64).unwrap();
        let mut reader = TraceReader::new(&bytes, ReadMode::Lenient).unwrap();
        assert!(reader.health().is_clean());
        let back: Vec<BranchRecord> = (&mut reader).map(|r| r.unwrap()).collect();
        assert_eq!(back, recs);
        assert_eq!(reader.health().records_ok, 200, "ledger final at end");
    }

    #[test]
    fn streaming_reader_buffers_at_most_one_chunk() {
        // 10_000 records in 64-record chunks: an eager decode would hold
        // all 10_000 at once; the streaming reader must never hold more
        // than one chunk's worth.
        let recs = sample(10_000);
        let bytes = write_trace(&recs, 64).unwrap();
        for mode in [ReadMode::Strict, ReadMode::Lenient] {
            let mut reader = TraceReader::new(&bytes, mode).unwrap();
            let mut count = 0u64;
            for item in &mut reader {
                assert!(item.is_ok());
                count += 1;
            }
            assert_eq!(count, 10_000);
            assert!(
                reader.peak_buffered() <= 64,
                "decoded-record residency must be O(chunk), saw {}",
                reader.peak_buffered()
            );
        }
    }

    #[test]
    fn garbage_between_chunks_is_one_skipped_region() {
        let recs = sample(200);
        let mut bytes = write_trace(&recs, 100).unwrap();
        let c0_payload = u32::from_le_bytes(bytes[28..32].try_into().unwrap()) as usize;
        let c1_start = 16 + CHUNK_HEADER_LEN + c0_payload;
        // Splice garbage that even contains a false chunk magic.
        let mut garbage = b"xxxxCHNKyyyy".to_vec();
        garbage.extend_from_slice(&[0xEE; 40]);
        bytes.splice(c1_start..c1_start, garbage);
        let (back, health) = read_all(&bytes, ReadMode::Lenient).unwrap();
        assert_eq!(back, recs);
        assert_eq!(
            health.chunks_skipped, 1,
            "false anchors must not double-count"
        );
        assert_eq!(health.records_lost, 0);
    }
}
