//! Versioned, chunked, checksummed binary branch traces.
//!
//! ROADMAP item #1 needs experiments driven by *captured* branch streams
//! rather than synthetic generators (STBPU and CIBPU are both evaluated on
//! traces). A trace that powers every future experiment must be robust
//! before it is fast: a multi-gigabyte file with one flipped bit must never
//! panic the harness, never silently corrupt a CSV, and never force a full
//! re-capture. This crate is that hardened layer:
//!
//! * [`TraceWriter`] streams [`BranchRecord`]s into the `.bpt` wire format:
//!   a 16-byte file header, then fixed-layout chunks of varint
//!   delta-encoded records, each chunk carrying a magic, sequence number,
//!   record count and CRC32, closed by a trailer chunk with whole-file
//!   totals (see `DESIGN.md` §"Trace format" for the byte layout).
//! * [`TraceReader`] decodes in one of two [`ReadMode`]s. **Strict** stops
//!   at the first damage with a typed [`TraceError`] naming the exact chunk
//!   and byte offset. **Lenient** resynchronizes to the next intact chunk
//!   and keeps a [`TraceHealth`] ledger of what was lost — a degraded trace
//!   yields a degraded (never wrong, never crashing) replay.
//! * [`TraceSession`] is the one front door to reading: a builder
//!   (mirroring the simulator's `SimulationBuilder`) that opens a stream
//!   directory with a decode mode, optional deterministic ingest faults,
//!   and an optional [`SamplingSpec`]. Its [`TraceStore`] serves decoded
//!   streams to the simulator by `(stream name, seed)`, caching decodes
//!   and aggregating health across every file a run touched.
//! * [`sampling`] turns long traces into [`PhasePlan`]s: a streaming BBV
//!   pass plus deterministic k-means pick a few representative windows
//!   whose weighted replay estimates whole-trace MPKI/IPC at a fraction
//!   of the cost (see `DESIGN.md` §6h).
//!
//! Chunks encode their records independently (deltas reset at each chunk
//! boundary), which is what makes lenient resync sound — any intact chunk
//! decodes without context from its damaged neighbours — and what makes
//! sampled replay's mid-file seeks exact.
//!
//! The corruption tolerance is machine-checked against the deterministic
//! byte faults of [`bp_faults::bytes`] — see `tests/adversarial.rs`.
//!
//! # Examples
//!
//! ```
//! use bp_common::{Addr, BranchRecord};
//! use bp_trace::{ReadMode, TraceSession, TraceWriter};
//!
//! let mut out = Vec::new();
//! let mut w = TraceWriter::new(&mut out, 64).expect("header write");
//! for i in 0..1000u64 {
//!     let r = BranchRecord::conditional(Addr::new(0x4000 + 4 * i), Addr::new(0x5000), i % 3 == 0, 7);
//!     w.push(&r).expect("record write");
//! }
//! w.finish().expect("trailer write");
//! let (records, health) = TraceSession::decode(&out, ReadMode::Strict).expect("intact trace");
//! assert_eq!(records.len(), 1000);
//! assert!(health.is_clean());
//! ```

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
#![deny(missing_docs)]

use std::fmt;

use bp_common::telemetry::{Observable, TelemetrySnapshot};

pub mod crc32;
pub mod reader;
pub mod sampling;
pub mod session;
pub mod store;
pub mod varint;
pub mod writer;

pub use reader::{ReadMode, TraceReader};
pub use sampling::{
    sample_bytes, sample_trace, PhasePlan, SampleStats, SamplingError, SamplingSpec, Selection,
};
pub use session::{TraceSession, TraceSessionBuilder};
pub use store::{LoadedTrace, RecordCursor, TraceStore};
pub use writer::{write_trace, TraceWriter, WriteSummary};

/// File magic: the first seven bytes of every `.bpt` trace.
pub const FILE_MAGIC: [u8; 7] = *b"HYBPTRC";

/// Format version this crate writes and the only one it reads. Files with
/// a higher version are from the future and are rejected, not guessed at.
pub const FORMAT_VERSION: u8 = 1;

/// Chunk magic: the resync anchor lenient mode scans for.
pub const CHUNK_MAGIC: [u8; 4] = *b"CHNK";

/// File header size: magic (7) + version (1) + flags (4) + CRC32 (4).
pub const FILE_HEADER_LEN: usize = 16;

/// Chunk header size: magic (4) + seq (4) + record count (4) +
/// payload length (4) + CRC32 (4).
pub const CHUNK_HEADER_LEN: usize = 20;

/// Default records per chunk: small enough that one damaged chunk loses a
/// negligible slice of a run, large enough that header overhead is noise.
pub const DEFAULT_CHUNK_RECORDS: usize = 4096;

/// Conventional file extension for binary traces.
pub const FILE_EXTENSION: &str = "bpt";

/// Typed decode failure, naming where the damage is.
///
/// `chunk` fields count data/trailer chunks by *file position* (0-based
/// ordinal), not by the stored sequence number — a corrupted sequence field
/// must not be able to misname the damage. `offset` fields are absolute
/// byte offsets into the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The file does not start with [`FILE_MAGIC`] — not a trace at all.
    BadFileMagic,
    /// The file is from a newer (or unknown) format version.
    UnsupportedVersion {
        /// Version byte found in the header.
        found: u8,
    },
    /// The file header's CRC32 does not match its contents.
    HeaderCrc {
        /// CRC stored in the header.
        stored: u32,
        /// CRC computed over the header bytes.
        computed: u32,
    },
    /// The file ends where `what` was expected (clean truncation).
    Truncated {
        /// Absolute byte offset of the end of usable data.
        offset: u64,
        /// What should have been there.
        what: &'static str,
    },
    /// A chunk boundary does not carry [`CHUNK_MAGIC`].
    BadChunkMagic {
        /// Ordinal of the chunk (by file position).
        chunk: u32,
        /// Absolute byte offset of the expected chunk start.
        offset: u64,
    },
    /// A chunk's CRC32 does not match its header fields + payload.
    ChunkCrc {
        /// Ordinal of the chunk (by file position).
        chunk: u32,
        /// Absolute byte offset of the chunk start.
        offset: u64,
        /// CRC stored in the chunk header.
        stored: u32,
        /// CRC computed over the chunk.
        computed: u32,
    },
    /// A chunk carries an unexpected sequence number (strict mode only:
    /// lenient mode accounts duplicates and gaps in [`TraceHealth`]).
    BadSequence {
        /// Ordinal of the chunk (by file position).
        chunk: u32,
        /// Absolute byte offset of the chunk start.
        offset: u64,
        /// Sequence number required here.
        expected: u32,
        /// Sequence number found.
        found: u32,
    },
    /// A CRC-valid chunk payload failed record decoding — writer-side
    /// damage the checksum cannot catch.
    BadRecord {
        /// Ordinal of the chunk (by file position).
        chunk: u32,
        /// Absolute byte offset where decoding failed.
        offset: u64,
        /// What was malformed.
        reason: &'static str,
    },
    /// The trailer's whole-file totals disagree with what was decoded.
    TrailerMismatch {
        /// Records the trailer claims the file holds.
        expected_records: u64,
        /// Records actually decoded.
        found_records: u64,
        /// Data chunks the trailer claims the file holds.
        expected_chunks: u64,
        /// Data chunks actually decoded.
        found_chunks: u64,
    },
    /// Bytes follow the trailer chunk (strict mode only).
    TrailingData {
        /// Absolute byte offset of the stray data.
        offset: u64,
    },
    /// The file could not be read at all (store level).
    Io {
        /// Path of the unreadable file.
        path: String,
        /// Operating-system error text.
        reason: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadFileMagic => write!(f, "not a branch trace (bad file magic)"),
            TraceError::UnsupportedVersion { found } => write!(
                f,
                "unsupported trace format version {found} (this build reads version {FORMAT_VERSION})"
            ),
            TraceError::HeaderCrc { stored, computed } => write!(
                f,
                "file header CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            TraceError::Truncated { offset, what } => {
                write!(f, "truncated at offset {offset}: expected {what}")
            }
            TraceError::BadChunkMagic { chunk, offset } => {
                write!(f, "bad magic for chunk {chunk} at offset {offset}")
            }
            TraceError::ChunkCrc {
                chunk,
                offset,
                stored,
                computed,
            } => write!(
                f,
                "CRC mismatch in chunk {chunk} at offset {offset} \
                 (stored {stored:#010x}, computed {computed:#010x})"
            ),
            TraceError::BadSequence {
                chunk,
                offset,
                expected,
                found,
            } => write!(
                f,
                "bad sequence number in chunk {chunk} at offset {offset} \
                 (expected {expected}, found {found})"
            ),
            TraceError::BadRecord {
                chunk,
                offset,
                reason,
            } => write!(
                f,
                "malformed record in chunk {chunk} at offset {offset}: {reason}"
            ),
            TraceError::TrailerMismatch {
                expected_records,
                found_records,
                expected_chunks,
                found_chunks,
            } => write!(
                f,
                "trailer totals mismatch: trailer claims {expected_records} records in \
                 {expected_chunks} chunks, decoded {found_records} records in {found_chunks} chunks"
            ),
            TraceError::TrailingData { offset } => {
                write!(f, "trailing data after trailer chunk at offset {offset}")
            }
            TraceError::Io { path, reason } => write!(f, "cannot read trace {path}: {reason}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Damage ledger of one lenient decode (all-zero for an intact trace).
///
/// `records_lost` is exact when the trailer chunk survived (whole-file
/// totals minus what decoded); when the trailer itself was lost the loss is
/// unknowable and stays 0, flagged by `torn_tail` instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceHealth {
    /// Data chunks that decoded intact.
    pub chunks_ok: u64,
    /// Damaged regions skipped by resync, plus duplicate or stray chunks
    /// dropped by sequence-number accounting.
    pub chunks_skipped: u64,
    /// Records recovered.
    pub records_ok: u64,
    /// Records lost to skipped chunks (exact iff the trailer survived).
    pub records_lost: u64,
    /// The file did not end with a valid trailer chunk — an interrupted
    /// write or damaged tail; losses past the last intact chunk are
    /// unknowable.
    pub torn_tail: bool,
}

impl TraceHealth {
    /// Whether the decode recovered everything: no skips, no losses, a
    /// clean trailer.
    pub fn is_clean(&self) -> bool {
        self.chunks_skipped == 0 && self.records_lost == 0 && !self.torn_tail
    }

    /// Folds another decode's ledger into this one (store-level
    /// aggregation across files).
    pub fn merge(&mut self, other: &TraceHealth) {
        self.chunks_ok += other.chunks_ok;
        self.chunks_skipped += other.chunks_skipped;
        self.records_ok += other.records_ok;
        self.records_lost += other.records_lost;
        self.torn_tail |= other.torn_tail;
    }
}

impl fmt::Display for TraceHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chunks_ok={} chunks_skipped={} records_ok={} records_lost={} torn_tail={}",
            self.chunks_ok, self.chunks_skipped, self.records_ok, self.records_lost, self.torn_tail
        )
    }
}

impl Observable for TraceHealth {
    /// Scope `"trace"`: the ledger as plain counters (`torn_tail` as 0/1).
    fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::new("trace")
            .with("chunks_ok", self.chunks_ok)
            .with("chunks_skipped", self.chunks_skipped)
            .with("records_ok", self.records_ok)
            .with("records_lost", self.records_lost)
            .with("torn_tail", u64::from(self.torn_tail))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_display_and_cleanliness() {
        let mut h = TraceHealth::default();
        assert!(h.is_clean());
        h.chunks_ok = 3;
        h.records_ok = 12;
        assert!(h.is_clean());
        h.chunks_skipped = 1;
        h.records_lost = 4;
        assert!(!h.is_clean());
        assert_eq!(
            h.to_string(),
            "chunks_ok=3 chunks_skipped=1 records_ok=12 records_lost=4 torn_tail=false"
        );
    }

    #[test]
    fn health_merges_counters_and_flags() {
        let mut a = TraceHealth {
            chunks_ok: 1,
            records_ok: 5,
            ..TraceHealth::default()
        };
        let b = TraceHealth {
            chunks_ok: 2,
            chunks_skipped: 1,
            records_ok: 7,
            records_lost: 3,
            torn_tail: true,
        };
        a.merge(&b);
        assert_eq!(a.chunks_ok, 3);
        assert_eq!(a.chunks_skipped, 1);
        assert_eq!(a.records_ok, 12);
        assert_eq!(a.records_lost, 3);
        assert!(a.torn_tail);
    }

    #[test]
    fn health_snapshot_is_observable() {
        let h = TraceHealth {
            chunks_ok: 2,
            chunks_skipped: 1,
            records_ok: 9,
            records_lost: 4,
            torn_tail: true,
        };
        let s = h.snapshot();
        assert_eq!(s.scope, "trace");
        assert_eq!(s.get("chunks_ok"), 2);
        assert_eq!(s.get("records_lost"), 4);
        assert_eq!(s.get("torn_tail"), 1);
    }

    #[test]
    fn errors_name_chunk_and_offset() {
        let e = TraceError::ChunkCrc {
            chunk: 3,
            offset: 1234,
            stored: 1,
            computed: 2,
        };
        let s = e.to_string();
        assert!(s.contains("chunk 3"), "{s}");
        assert!(s.contains("offset 1234"), "{s}");
        let t = TraceError::Truncated {
            offset: 99,
            what: "chunk header",
        }
        .to_string();
        assert!(t.contains("offset 99"), "{t}");
        assert!(t.contains("chunk header"), "{t}");
    }
}
