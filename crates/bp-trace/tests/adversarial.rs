//! Adversarial decode harness: seeded byte faults against the `.bpt`
//! reader.
//!
//! Hermetic and std-only: synthetic records, in-memory traces, the
//! deterministic fault vocabulary of `bp_faults::bytes`. For every seed the
//! invariants are:
//!
//! 1. decoding never panics, in either mode;
//! 2. lenient mode returns `Ok` unless the *file header* was hit (the one
//!    damage class resync cannot absorb), and its `TraceHealth` books
//!    balance;
//! 3. strict mode returning `Ok` implies the decode equals the original
//!    record stream bit-for-bit;
//! 4. decoding is a pure function of the bytes: two decodes agree.

use bp_common::rng::SplitMix64;
use bp_common::{Addr, BranchKind, BranchRecord};
use bp_faults::bytes::ByteFaultPlan;
use bp_trace::{write_trace, ReadMode, TraceError, TraceHealth, TraceSession, FILE_HEADER_LEN};

/// Local alias for the session decode entry point, keeping the invariant
/// assertions below focused on the decode semantics rather than the API.
fn read_all(bytes: &[u8], mode: ReadMode) -> Result<(Vec<BranchRecord>, TraceHealth), TraceError> {
    TraceSession::decode(bytes, mode)
}

/// Deterministic, profile-flavoured synthetic stream.
fn synthetic_records(seed: u64, n: u64) -> Vec<BranchRecord> {
    let mut rng = SplitMix64::new(seed ^ 0xAD5E_ED01);
    let mut pc = 0x0040_0000u64;
    (0..n)
        .map(|_| {
            pc = pc.wrapping_add(4 * (1 + rng.next_below(64)));
            let kind = match rng.next_below(10) {
                0 => BranchKind::Indirect,
                1 => BranchKind::Call,
                2 => BranchKind::Return,
                3 => BranchKind::Direct,
                _ => BranchKind::Conditional,
            };
            let target = pc
                .wrapping_add(rng.next_u64() % 0x1_0000)
                .wrapping_sub(0x8000);
            let taken = !kind.is_conditional() || rng.next_below(2) == 0;
            let gap = rng.next_below(24) as u32;
            BranchRecord {
                pc: Addr::new(pc),
                kind,
                target: Addr::new(target),
                taken,
                gap,
            }
        })
        .collect()
}

/// Whether an `Err` from lenient mode is one of the file-header classes —
/// the only damage lenient mode is allowed to refuse.
fn is_header_class(e: &TraceError) -> bool {
    matches!(
        e,
        TraceError::BadFileMagic
            | TraceError::UnsupportedVersion { .. }
            | TraceError::HeaderCrc { .. }
    ) || matches!(e, TraceError::Truncated { what, .. } if *what == "file header")
}

/// `sub` appears within `sup` in order (chunk drops remove contiguous
/// runs, so survivors must be an ordered subsequence of the original).
fn is_subsequence(sub: &[BranchRecord], sup: &[BranchRecord]) -> bool {
    let mut it = sup.iter();
    sub.iter().all(|r| it.any(|s| s == r))
}

#[test]
fn seeded_faults_never_panic_and_health_books_balance() {
    let chunk_sizes = [1usize, 5, 64, 512];
    for seed in 0u64..150 {
        let n = 200 + (seed % 7) * 300;
        let records = synthetic_records(seed, n);
        let chunk = chunk_sizes[(seed % chunk_sizes.len() as u64) as usize];
        let clean = write_trace(&records, chunk).expect("write");

        let mut bytes = clean.clone();
        let plan = ByteFaultPlan::seeded(seed, bytes.len() as u64);
        let landed = plan.apply(&mut bytes);
        let header_hit =
            bytes.len() < FILE_HEADER_LEN || bytes[..FILE_HEADER_LEN] != clean[..FILE_HEADER_LEN];

        // Strict: Ok implies bit-identical recovery.
        let strict = read_all(&bytes, ReadMode::Strict);
        if let Ok((recs, health)) = &strict {
            assert_eq!(recs, &records, "seed {seed}: strict Ok must mean intact");
            assert!(health.is_clean(), "seed {seed}");
        }
        if landed == 0 {
            assert!(
                strict.is_ok(),
                "seed {seed}: no fault landed yet strict failed"
            );
        }

        // Lenient: absorbs everything below the file header.
        match read_all(&bytes, ReadMode::Lenient) {
            Ok((recs, health)) => {
                assert_eq!(
                    recs.len() as u64,
                    health.records_ok,
                    "seed {seed}: delivered records must match the ledger"
                );
                if !health.torn_tail {
                    assert_eq!(
                        health.records_ok + health.records_lost,
                        records.len() as u64,
                        "seed {seed}: with a surviving trailer the books must balance"
                    );
                }
                assert!(
                    is_subsequence(&recs, &records),
                    "seed {seed}: lenient must never invent or reorder records"
                );
                if landed > 0 && !header_hit {
                    // Damage below the header must be visible in the ledger
                    // or have been fully out of decoded range (e.g. a
                    // duplicate dropped by sequence accounting still counts
                    // as skipped).
                    assert!(
                        !health.is_clean() || recs == records,
                        "seed {seed}: damage vanished without a trace"
                    );
                }
            }
            Err(e) => {
                assert!(
                    is_header_class(&e),
                    "seed {seed}: lenient refused non-header damage: {e}"
                );
                assert!(
                    header_hit,
                    "seed {seed}: header error without header damage: {e}"
                );
            }
        }

        // Purity: decoding the same bytes twice agrees exactly.
        for mode in [ReadMode::Strict, ReadMode::Lenient] {
            assert_eq!(
                read_all(&bytes, mode),
                read_all(&bytes, mode),
                "seed {seed}: decode must be a pure function of the bytes"
            );
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    for seed in 0u64..100 {
        let mut rng = SplitMix64::new(seed ^ 0x6A5B_A6E5);
        let len = rng.next_below(4096) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = read_all(&bytes, ReadMode::Strict);
        let _ = read_all(&bytes, ReadMode::Lenient);
    }
}

#[test]
fn garbage_with_a_valid_header_never_panics() {
    // Worst case for resync: a trustworthy header followed by noise that
    // is full of false `CHNK` anchors.
    for seed in 0u64..50 {
        let mut rng = SplitMix64::new(seed ^ 0x11EA_DE55);
        let mut bytes = write_trace(&[], 64).expect("write");
        bytes.truncate(FILE_HEADER_LEN);
        for _ in 0..rng.next_below(2048) {
            if rng.next_below(8) == 0 {
                bytes.extend_from_slice(b"CHNK");
            } else {
                bytes.push(rng.next_u64() as u8);
            }
        }
        assert!(read_all(&bytes, ReadMode::Strict).is_err());
        let (recs, health) = read_all(&bytes, ReadMode::Lenient).expect("lenient survives noise");
        assert!(recs.is_empty());
        if bytes.len() > FILE_HEADER_LEN {
            assert!(health.torn_tail || health.chunks_skipped > 0);
        }
    }
}
