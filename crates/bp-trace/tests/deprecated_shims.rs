//! Coverage for the deprecated pre-`TraceSession` entry points.
//!
//! `TraceStore::new`, `TraceStore::with_ingest_faults`, and `read_all`
//! are kept as thin shims for one release. These tests pin the contract:
//! the shims must behave byte-for-byte like the session front door, so
//! downstream code can migrate at its own pace without behaviour drift.
#![allow(deprecated)]

use std::sync::Arc;

use bp_common::{Addr, BranchKind, BranchRecord};
use bp_faults::bytes::ByteFaultPlan;
use bp_trace::{read_all, write_trace, ReadMode, TraceSession, TraceStore};

fn records(n: u64) -> Vec<BranchRecord> {
    (0..n)
        .map(|i| BranchRecord {
            pc: Addr::new(0x40_0000 + i * 4),
            kind: BranchKind::Conditional,
            target: Addr::new(0x41_0000 + i * 8),
            taken: i % 3 != 0,
            gap: (i % 17) as u32,
        })
        .collect()
}

#[test]
fn read_all_shim_matches_session_decode() {
    let recs = records(257);
    let bytes = write_trace(&recs, 64).expect("write");
    for mode in [ReadMode::Strict, ReadMode::Lenient] {
        assert_eq!(
            read_all(&bytes, mode),
            TraceSession::decode(&bytes, mode),
            "shim and session decode must agree ({} mode)",
            mode.name()
        );
    }
}

#[test]
fn store_constructor_shims_match_session_builder() {
    let dir = std::env::temp_dir().join(format!("hybp-shim-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let recs = records(500);
    let old = TraceStore::new(&dir, ReadMode::Strict);
    old.save("stream-a", 7, &recs, 64).expect("save");

    let new = Arc::clone(
        TraceSession::open(&dir)
            .mode(ReadMode::Strict)
            .build()
            .expect("session opens")
            .store(),
    );
    let via_old = old.load("stream-a", 7).expect("old path loads");
    let via_new = new.load("stream-a", 7).expect("new path loads");
    assert_eq!(
        via_old.records().collect::<Vec<_>>(),
        via_new.records().collect::<Vec<_>>(),
        "both constructors must see the same stream"
    );

    // The fault-injecting shim must match the builder's ingest_faults.
    let plan = ByteFaultPlan::parse("bitflip@64@1").expect("plan");
    let faulty_old = TraceStore::new(&dir, ReadMode::Lenient).with_ingest_faults(plan.clone());
    let faulty_new = Arc::clone(
        TraceSession::open(&dir)
            .mode(ReadMode::Lenient)
            .ingest_faults(plan)
            .build()
            .expect("session opens")
            .store(),
    );
    let old_result = faulty_old
        .load("stream-a", 7)
        .map(|t| t.records().collect::<Vec<_>>());
    let new_result = faulty_new
        .load("stream-a", 7)
        .map(|t| t.records().collect::<Vec<_>>());
    match (old_result, new_result) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "faulted loads must agree"),
        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
        (a, b) => panic!("shim diverged from builder: {a:?} vs {b:?}"),
    }

    let _ = std::fs::remove_dir_all(&dir);
}
