//! Positive contract tests for the `TraceSession` front door.
//!
//! `TraceSession` is the only way to build a trace store (the pre-session
//! constructors finished their deprecation window and are gone). These
//! tests state the contract in its own terms: what the builder defaults
//! to, which knobs it carries into the store, how decode behaves per
//! mode, and that injected ingest faults actually reach the decode path.

use std::sync::Arc;

use bp_common::{Addr, BranchKind, BranchRecord};
use bp_faults::bytes::ByteFaultPlan;
use bp_trace::{write_trace, ReadMode, TraceSession};

fn records(n: u64) -> Vec<BranchRecord> {
    (0..n)
        .map(|i| BranchRecord {
            pc: Addr::new(0x40_0000 + i * 4),
            kind: BranchKind::Conditional,
            target: Addr::new(0x41_0000 + i * 8),
            taken: i % 3 != 0,
            gap: (i % 17) as u32,
        })
        .collect()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hybp-session-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn builder_defaults_to_strict_no_faults_no_sampling() {
    let dir = temp_dir("defaults");
    let session = TraceSession::open(&dir).build().expect("session opens");
    assert_eq!(session.store().mode(), ReadMode::Strict);
    assert_eq!(session.store().dir(), dir.as_path());
    assert!(session.sampling().is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn session_store_round_trips_saved_streams() {
    let dir = temp_dir("roundtrip");
    let recs = records(500);
    let session = TraceSession::open(&dir).build().expect("session opens");
    session
        .store()
        .save("stream-a", 7, &recs, 64)
        .expect("save");

    // A second session over the same directory sees the same stream.
    let reopened = Arc::clone(
        TraceSession::open(&dir)
            .mode(ReadMode::Strict)
            .build()
            .expect("session reopens")
            .store(),
    );
    let loaded = reopened.load("stream-a", 7).expect("load");
    assert_eq!(loaded.records().collect::<Vec<_>>(), recs);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn decode_round_trips_and_modes_agree_on_clean_bytes() {
    let recs = records(257);
    let bytes = write_trace(&recs, 64).expect("write");
    for mode in [ReadMode::Strict, ReadMode::Lenient] {
        let (decoded, health) = TraceSession::decode(&bytes, mode).expect("decode");
        assert_eq!(decoded, recs, "{} mode round trip", mode.name());
        assert!(health.is_clean(), "{} mode health", mode.name());
    }
}

#[test]
fn ingest_faults_reach_the_decode_path() {
    let dir = temp_dir("faults");
    let recs = records(500);
    TraceSession::open(&dir)
        .build()
        .expect("session opens")
        .store()
        .save("stream-a", 7, &recs, 64)
        .expect("save");

    let plan = ByteFaultPlan::parse("bitflip@64@1").expect("plan");
    // Strict mode must surface the damage as an error; a clean session
    // over the same bytes must still load — the fault is injected at
    // ingest, not persisted.
    let faulty = Arc::clone(
        TraceSession::open(&dir)
            .mode(ReadMode::Strict)
            .ingest_faults(plan)
            .build()
            .expect("session opens")
            .store(),
    );
    assert!(
        faulty.load("stream-a", 7).is_err(),
        "strict mode must reject the injected bit flip"
    );
    let clean = Arc::clone(
        TraceSession::open(&dir)
            .build()
            .expect("session opens")
            .store(),
    );
    let loaded = clean.load("stream-a", 7).expect("clean load");
    assert_eq!(loaded.records().collect::<Vec<_>>(), recs);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lenient_sessions_absorb_ingest_faults_into_health() {
    let dir = temp_dir("lenient");
    let recs = records(500);
    TraceSession::open(&dir)
        .build()
        .expect("session opens")
        .store()
        .save("stream-a", 7, &recs, 64)
        .expect("save");

    let plan = ByteFaultPlan::parse("bitflip@64@1").expect("plan");
    let session = TraceSession::open(&dir)
        .mode(ReadMode::Lenient)
        .ingest_faults(plan)
        .build()
        .expect("session opens");
    // Lenient mode keeps loading; the store either resyncs past the
    // damaged chunk (fewer records) or the flip landed somewhere benign.
    let loaded = session.store().load("stream-a", 7).expect("lenient load");
    assert!(loaded.records().count() <= recs.len());
    let _ = std::fs::remove_dir_all(&dir);
}
