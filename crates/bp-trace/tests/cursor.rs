//! `RecordCursor` contract tests: O(chunk) buffering, reset semantics,
//! and deterministic damage reporting, at chunk sizes chosen to straddle
//! chunk boundaries.

use std::path::PathBuf;
use std::sync::Arc;

use bp_common::{Addr, BranchKind, BranchRecord};
use bp_faults::bytes::ByteFault;
use bp_trace::{write_trace, ReadMode, TraceSession, TraceStore};

/// Chunk sizes that never divide the record count evenly (plus the
/// degenerate single-record case), so the last chunk is always partial.
const CHUNK_SIZES: [usize; 4] = [1, 7, 64, 333];

fn records(n: u64) -> Vec<BranchRecord> {
    (0..n)
        .map(|i| {
            let kind = if i % 11 == 0 {
                BranchKind::Indirect
            } else {
                BranchKind::Conditional
            };
            BranchRecord {
                pc: Addr::new(0x40_0000 + (i % 513) * 4),
                kind,
                target: Addr::new(0x48_0000 + (i % 257) * 16),
                taken: !kind.is_conditional() || i % 3 != 0,
                gap: (i % 29) as u32,
            }
        })
        .collect()
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hybp-cursor-{tag}-{}", std::process::id()))
}

fn open_store(dir: &PathBuf, mode: ReadMode) -> Arc<TraceStore> {
    Arc::clone(
        TraceSession::open(dir)
            .mode(mode)
            .build()
            .expect("session opens")
            .store(),
    )
}

#[test]
fn cursor_buffers_at_most_one_chunk_and_resets_exactly() {
    let recs = records(1000);
    let dir = tmp_dir("reset");
    let _ = std::fs::remove_dir_all(&dir);
    let store = open_store(&dir, ReadMode::Strict);
    for (i, &chunk) in CHUNK_SIZES.iter().enumerate() {
        let name = format!("stream-{chunk}");
        store
            .save(&name, i as u64, &recs, chunk)
            .expect("stream saved");
        let loaded = store.load(&name, i as u64).expect("stream loads");
        let mut cursor = loaded.records();

        // First pass: bit-identical, never holding more than one chunk of
        // decoded records (the streaming-replay memory invariant).
        let first: Vec<BranchRecord> = cursor.by_ref().collect();
        assert_eq!(first, recs, "chunk {chunk}: cursor must replay exactly");
        assert!(
            cursor.peak_buffered() <= chunk,
            "chunk {chunk}: peak residency {} exceeds one chunk",
            cursor.peak_buffered()
        );
        let peak_after_first = cursor.peak_buffered();

        // A fused cursor stays fused until reset.
        assert_eq!(cursor.next(), None, "chunk {chunk}: exhausted means None");

        // Reset: the replay repeats bit-identically, and peak_buffered
        // persists (lifetime residency, not per-pass).
        cursor.reset();
        let second: Vec<BranchRecord> = cursor.by_ref().collect();
        assert_eq!(second, recs, "chunk {chunk}: reset must replay exactly");
        assert_eq!(
            cursor.peak_buffered(),
            peak_after_first,
            "chunk {chunk}: same-size passes must not move the peak"
        );

        // Reset mid-stream: a partial first read must not corrupt the
        // boundary bookkeeping of the next full pass.
        cursor.reset();
        let partial: Vec<BranchRecord> = cursor.by_ref().take(chunk + chunk / 2 + 1).collect();
        assert_eq!(partial, recs[..partial.len()]);
        cursor.reset();
        let third: Vec<BranchRecord> = cursor.by_ref().collect();
        assert_eq!(
            third, recs,
            "chunk {chunk}: reset after a partial read must start over"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seek_to_non_boundary_fuses_and_reset_recovers() {
    let recs = records(700);
    let bytes = write_trace(&recs, 64).expect("write");
    let dir = tmp_dir("seekfuse");
    let _ = std::fs::remove_dir_all(&dir);
    let store = open_store(&dir, ReadMode::Strict);
    store.save("s", 1, &recs, 64).expect("stream saved");
    let loaded = store.load("s", 1).expect("stream loads");
    let mut cursor = loaded.records();
    // Mid-payload is never a chunk boundary.
    assert!(!cursor.seek(bytes.len() as u64 / 2 + 1, 0));
    assert_eq!(
        cursor.next(),
        None,
        "a failed seek must leave the cursor fused"
    );
    cursor.reset();
    let back: Vec<BranchRecord> = cursor.collect();
    assert_eq!(back, recs, "reset must recover a fused cursor");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn damaged_files_reports_sorted_by_name() {
    // Save in deliberately non-alphabetical order, damage every stream,
    // and load in reverse order: the report must still come out sorted.
    let recs = records(2000);
    let dir = tmp_dir("damaged");
    let _ = std::fs::remove_dir_all(&dir);
    let names = ["zeta", "alpha", "mid"];
    {
        let store = open_store(&dir, ReadMode::Lenient);
        for (i, name) in names.iter().enumerate() {
            store.save(name, i as u64, &recs, 64).expect("stream saved");
        }
    }
    for (i, name) in names.iter().enumerate() {
        let path = dir.join(TraceStore::file_name(name, i as u64));
        let mut bytes = std::fs::read(&path).expect("stream readable");
        assert!(
            ByteFault::parse("bitflip@4096@3")
                .expect("valid fault")
                .apply(&mut bytes),
            "fault must land inside {name}"
        );
        std::fs::write(&path, &bytes).expect("corrupted stream written");
    }
    let store = open_store(&dir, ReadMode::Lenient);
    for (i, name) in names.iter().enumerate().rev() {
        let loaded = store.load(name, i as u64).expect("lenient load completes");
        assert!(!loaded.health().is_clean(), "{name} must be damaged");
    }
    let damaged = store.damaged_files();
    assert_eq!(damaged.len(), names.len(), "every stream was damaged");
    let reported: Vec<&str> = damaged.iter().map(|(n, _)| n.as_str()).collect();
    let mut sorted = reported.clone();
    sorted.sort_unstable();
    assert_eq!(
        reported, sorted,
        "damaged_files must be deterministically sorted by name"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
