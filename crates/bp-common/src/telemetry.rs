//! Unified observation layer: counters, span timing, and structured events.
//!
//! Every layer of the reproduction produces observations — BTB hit levels,
//! code-book refresh windows, pipeline stall attribution, cache health,
//! pool throughput — but until this module they surfaced through four
//! differently-shaped accessor APIs. This module provides the common
//! vocabulary:
//!
//! * [`TelemetryEvent`] — one structured occurrence on the simulation's
//!   *virtual cycle* clock (a [`Span`](EventKind::Span) covering a cycle
//!   interval, or a point [`Mark`](EventKind::Mark) carrying a value).
//!   Events order by **content**, cycle first, so a globally sorted event
//!   stream is identical no matter which worker produced which event in
//!   what wall-clock order — the property the byte-identical JSONL export
//!   rests on.
//! * [`Telemetry`] — a cheap, cloneable handle to an event sink. The
//!   disabled handle is a `None` and every emission path is an inlined
//!   early return: no allocation, no locking, no formatting. A bench guard
//!   (`benches/telemetry_overhead.rs` in the bench crate) pins this.
//! * [`Histogram`] — power-of-two bucketed value distribution for cheap
//!   latency/size summaries.
//! * [`TelemetrySnapshot`] and the [`Observable`] trait — the single
//!   end-of-run aggregate surface. Anything that used to expose bespoke
//!   `stats()`-style accessors now answers `snapshot()` with named
//!   counters in a deterministic (sorted) order.
//! * [`jsonl_line`] / [`parse_jsonl_line`] — the stable on-disk event
//!   schema and its strict validator.
//!
//! # Examples
//!
//! ```
//! use bp_common::telemetry::{EventKind, Telemetry};
//!
//! let sink = Telemetry::ring(1024);
//! sink.span(200, "keys", "refresh", 200, 463, 1);
//! sink.mark(500, "sim", "ctx_switches", 3, 0);
//! let mut events = sink.drain();
//! events.sort_unstable();
//! assert_eq!(events.len(), 2);
//! assert!(matches!(events[0].kind, EventKind::Span { end: 463, .. }));
//!
//! let disabled = Telemetry::disabled();
//! disabled.mark(1, "sim", "ignored", 1, 0); // no-op, no allocation
//! assert!(!disabled.is_enabled());
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::Cycle;

/// What a [`TelemetryEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// An interval on the virtual cycle clock: `[start, end)` in the
    /// emitter's own timing convention (documented per emitter).
    Span {
        /// First cycle of the interval.
        start: Cycle,
        /// Cycle the interval completes.
        end: Cycle,
        /// Emitter-defined lane (isolation slot, hardware thread, ...).
        slot: u64,
    },
    /// A point observation carrying one value.
    Mark {
        /// The observed value.
        value: u64,
        /// Emitter-defined lane (isolation slot, hardware thread, ...).
        slot: u64,
    },
}

/// One structured observation on the virtual cycle clock.
///
/// Field order matters: the derived [`Ord`] compares `cycle` first, then
/// scope, name and kind, so sorting a collection of events yields a
/// deterministic stream regardless of emission or collection order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TelemetryEvent {
    /// Virtual cycle the event is anchored to (for spans: the start).
    pub cycle: Cycle,
    /// Emitting subsystem: `"keys"`, `"sim"`, `"bpu"`, `"bench"`, ...
    pub scope: &'static str,
    /// Event name within the scope: `"refresh"`, `"ctx_switch_stall"`, ...
    pub name: &'static str,
    /// Payload.
    pub kind: EventKind,
}

impl TelemetryEvent {
    /// The span interval `[start, end)`, if this event is a span.
    pub fn span_bounds(&self) -> Option<(Cycle, Cycle)> {
        match self.kind {
            EventKind::Span { start, end, .. } => Some((start, end)),
            EventKind::Mark { .. } => None,
        }
    }

    /// Cycles this event's span shares with `[start, end)`; 0 for marks.
    pub fn span_overlap(&self, start: Cycle, end: Cycle) -> Cycle {
        match self.span_bounds() {
            Some((s, e)) => e.min(end).saturating_sub(s.max(start)),
            None => 0,
        }
    }
}

/// Shared state behind an enabled [`Telemetry`] handle.
#[derive(Debug)]
struct SinkInner {
    capacity: usize,
    events: Mutex<Vec<TelemetryEvent>>,
    dropped: AtomicU64,
}

/// A cheap, cloneable handle to an event sink.
///
/// Clones share the same buffer, so one sink can be handed to every layer
/// of a simulation and drained once at the end. The disabled handle makes
/// every emission an inlined early return.
#[derive(Debug, Clone, Default)]
pub struct Telemetry(Option<Arc<SinkInner>>);

impl Telemetry {
    /// The no-op sink: every emission returns immediately.
    pub const fn disabled() -> Telemetry {
        Telemetry(None)
    }

    /// An in-memory sink bounded at `capacity` events. Once full, further
    /// events are counted in [`Telemetry::dropped`] instead of stored, so
    /// a hot emitter cannot exhaust memory. Zero is clamped to one.
    pub fn ring(capacity: usize) -> Telemetry {
        Telemetry(Some(Arc::new(SinkInner {
            capacity: capacity.max(1),
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        })))
    }

    /// Whether emissions are recorded. The disabled fast path is the
    /// zero-overhead contract: callers may emit unconditionally.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one event (or drops it when the ring is full).
    #[inline]
    pub fn emit(&self, event: TelemetryEvent) {
        let Some(inner) = &self.0 else { return };
        // A panicking emitter cannot leave the Vec mid-mutation (push and
        // take are atomic w.r.t. unwinds), so a poisoned lock's data is
        // still sound: keep observing rather than propagating the panic.
        let mut events = inner
            .events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if events.len() < inner.capacity {
            events.push(event);
        } else {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Emits a [`EventKind::Span`] anchored at `cycle`.
    #[inline]
    pub fn span(
        &self,
        cycle: Cycle,
        scope: &'static str,
        name: &'static str,
        start: Cycle,
        end: Cycle,
        slot: u64,
    ) {
        if self.0.is_none() {
            return;
        }
        self.emit(TelemetryEvent {
            cycle,
            scope,
            name,
            kind: EventKind::Span { start, end, slot },
        });
    }

    /// Emits a [`EventKind::Mark`] anchored at `cycle`.
    #[inline]
    pub fn mark(
        &self,
        cycle: Cycle,
        scope: &'static str,
        name: &'static str,
        value: u64,
        slot: u64,
    ) {
        if self.0.is_none() {
            return;
        }
        self.emit(TelemetryEvent {
            cycle,
            scope,
            name,
            kind: EventKind::Mark { value, slot },
        });
    }

    /// Removes and returns every buffered event, in emission order.
    pub fn drain(&self) -> Vec<TelemetryEvent> {
        match &self.0 {
            Some(inner) => std::mem::take(
                &mut *inner
                    .events
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            ),
            None => Vec::new(),
        }
    }

    /// Events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        match &self.0 {
            Some(inner) => inner.dropped.load(Ordering::Relaxed),
            None => 0,
        }
    }
}

/// A power-of-two bucketed histogram of `u64` observations.
///
/// Bucket `i` counts values whose bit length is `i` (bucket 0: value 0,
/// bucket 1: value 1, bucket 2: values 2–3, ...), which summarizes
/// latencies and sizes spanning many orders of magnitude in fixed space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[(64 - value.leading_zeros()) as usize] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of recorded observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Count in the bucket for values of bit length `bits` (0..=64).
    pub fn bucket(&self, bits: usize) -> u64 {
        self.buckets[bits]
    }

    /// Smallest upper bound `2^k` such that at least `q` (in `0.0..=1.0`)
    /// of the observations are `< 2^k`; `None` when empty.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let threshold = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (bits, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= threshold {
                return Some(if bits >= 64 { u64::MAX } else { 1u64 << bits });
            }
        }
        Some(u64::MAX)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A last-value gauge that also remembers its peak — the shape shard
/// health reporting needs (current queue depth vs. worst queue depth) in
/// two words of state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Gauge {
    current: u64,
    peak: u64,
    samples: u64,
}

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge {
            current: 0,
            peak: 0,
            samples: 0,
        }
    }

    /// Records the gauge's new value.
    #[inline]
    pub fn set(&mut self, value: u64) {
        self.current = value;
        self.peak = self.peak.max(value);
        self.samples += 1;
    }

    /// The most recently recorded value.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// The largest value ever recorded.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// How many times the gauge was set.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// Coarse component health, ordered worst-last so [`Readiness::worst`] is
/// a plain max.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Health {
    /// Serving normally.
    #[default]
    Ready,
    /// Serving, but in a degraded regime (e.g. stale-key mode).
    Degraded,
    /// Not serving; requests routed here are shed.
    Failed,
}

impl Health {
    /// Stable lower-case name, used in reports and journals.
    pub fn name(self) -> &'static str {
        match self {
            Health::Ready => "ready",
            Health::Degraded => "degraded",
            Health::Failed => "failed",
        }
    }
}

impl fmt::Display for Health {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A point-in-time readiness report over a set of components (shards,
/// stores, ...): per-component health in index order plus the aggregate
/// verdict a load balancer or suite driver would act on.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Readiness {
    components: Vec<Health>,
}

impl Readiness {
    /// A report over `components` healths, in component-index order.
    pub fn new(components: Vec<Health>) -> Readiness {
        Readiness { components }
    }

    /// Per-component health, in index order.
    pub fn components(&self) -> &[Health] {
        &self.components
    }

    /// The worst health across components ([`Health::Ready`] when empty).
    pub fn worst(&self) -> Health {
        self.components.iter().copied().max().unwrap_or_default()
    }

    /// Whether every component is fully ready.
    pub fn is_ready(&self) -> bool {
        self.worst() == Health::Ready
    }

    /// How many components report `health`.
    pub fn count(&self, health: Health) -> u64 {
        self.components.iter().filter(|&&h| h == health).count() as u64
    }
}

impl Observable for Readiness {
    /// Scope `"readiness"`: component totals per health plus the aggregate.
    fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::new("readiness")
            .with("components", self.components.len() as u64)
            .with("ready", self.count(Health::Ready))
            .with("degraded", self.count(Health::Degraded))
            .with("failed", self.count(Health::Failed))
            .with("is_ready", u64::from(self.is_ready()))
    }
}

/// Named end-of-run counters from one subsystem, in deterministic order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetrySnapshot {
    /// The subsystem the counters describe (matches event scopes).
    pub scope: &'static str,
    /// Counter name → value, sorted by name (BTreeMap).
    pub counters: BTreeMap<&'static str, u64>,
}

impl TelemetrySnapshot {
    /// An empty snapshot for `scope`.
    pub fn new(scope: &'static str) -> TelemetrySnapshot {
        TelemetrySnapshot {
            scope,
            counters: BTreeMap::new(),
        }
    }

    /// Sets one counter, returning `self` for chaining.
    pub fn with(mut self, name: &'static str, value: u64) -> TelemetrySnapshot {
        self.counters.insert(name, value);
        self
    }

    /// Reads one counter (0 when absent).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// The unified observation surface: anything that accumulates counters
/// answers with a [`TelemetrySnapshot`].
///
/// This replaces the previous per-type accessor sprawl (`stats()`,
/// `codec_stats()`, `btb_occupancy()`, `CacheStats`-returning methods, ...)
/// with one shape that reports, aggregates and serializes uniformly.
pub trait Observable {
    /// The current counter values. Must be cheap and side-effect free.
    fn snapshot(&self) -> TelemetrySnapshot;
}

/// Renders one event as its canonical JSONL line (no trailing newline).
///
/// The schema is stable and strict — see [`parse_jsonl_line`] for the
/// validating reader:
///
/// ```text
/// {"cycle":N,"scope":"s","name":"n","kind":"span","start":N,"end":N,"slot":N}
/// {"cycle":N,"scope":"s","name":"n","kind":"mark","value":N,"slot":N}
/// ```
///
/// Scopes and names are `&'static str` identifiers chosen by emitters; they
/// must stay within `[A-Za-z0-9_.-]` so no JSON escaping is ever needed
/// (enforced here by a debug assertion and by the strict parser).
pub fn jsonl_line(event: &TelemetryEvent) -> String {
    debug_assert!(
        ident_ok(event.scope),
        "scope {:?} not a plain identifier",
        event.scope
    );
    debug_assert!(
        ident_ok(event.name),
        "name {:?} not a plain identifier",
        event.name
    );
    let mut line = String::with_capacity(96);
    let _ = write!(
        line,
        "{{\"cycle\":{},\"scope\":\"{}\",\"name\":\"{}\",",
        event.cycle, event.scope, event.name
    );
    match event.kind {
        EventKind::Span { start, end, slot } => {
            let _ = write!(
                line,
                "\"kind\":\"span\",\"start\":{start},\"end\":{end},\"slot\":{slot}}}"
            );
        }
        EventKind::Mark { value, slot } => {
            let _ = write!(
                line,
                "\"kind\":\"mark\",\"value\":{value},\"slot\":{slot}}}"
            );
        }
    }
    line
}

/// A parsed, owned JSONL event (scope/name owned because arbitrary files
/// cannot yield `&'static str`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedEvent {
    /// See [`TelemetryEvent::cycle`].
    pub cycle: Cycle,
    /// See [`TelemetryEvent::scope`].
    pub scope: String,
    /// See [`TelemetryEvent::name`].
    pub name: String,
    /// See [`TelemetryEvent::kind`].
    pub kind: EventKind,
}

/// Strictly parses one line produced by [`jsonl_line`].
///
/// This is a schema validator, not a general JSON reader: field order,
/// spelling and quoting must match the writer exactly, so any drift
/// between writer and documented schema fails loudly in tests and in
/// `bench_all`'s export validation.
pub fn parse_jsonl_line(line: &str) -> Result<ParsedEvent, String> {
    let mut rest = line
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .ok_or_else(|| format!("not a JSON object: {line:?}"))?;
    let cycle = take_num_field(&mut rest, "cycle", false)?;
    let scope = take_str_field(&mut rest, "scope", true)?;
    let name = take_str_field(&mut rest, "name", true)?;
    let kind_tag = take_str_field(&mut rest, "kind", true)?;
    let kind = match kind_tag.as_str() {
        "span" => {
            let start = take_num_field(&mut rest, "start", true)?;
            let end = take_num_field(&mut rest, "end", true)?;
            let slot = take_num_field(&mut rest, "slot", true)?;
            EventKind::Span { start, end, slot }
        }
        "mark" => {
            let value = take_num_field(&mut rest, "value", true)?;
            let slot = take_num_field(&mut rest, "slot", true)?;
            EventKind::Mark { value, slot }
        }
        other => return Err(format!("unknown event kind {other:?}")),
    };
    if !rest.is_empty() {
        return Err(format!("trailing content {rest:?}"));
    }
    Ok(ParsedEvent {
        cycle,
        scope,
        name,
        kind,
    })
}

fn ident_ok(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.' || b == b'-')
}

fn take_prefix(rest: &mut &str, prefix: &str, what: &str) -> Result<(), String> {
    *rest = rest
        .strip_prefix(prefix)
        .ok_or_else(|| format!("expected {what} at {rest:?}"))?;
    Ok(())
}

fn take_num_field(rest: &mut &str, field: &str, comma_first: bool) -> Result<u64, String> {
    if comma_first {
        take_prefix(rest, ",", "','")?;
    }
    take_prefix(rest, &format!("\"{field}\":"), &format!("field {field:?}"))?;
    let digits = rest.len() - rest.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    let (num, tail) = rest.split_at(digits);
    let value = num
        .parse::<u64>()
        .map_err(|e| format!("field {field:?}: {e}"))?;
    *rest = tail;
    Ok(value)
}

fn take_str_field(rest: &mut &str, field: &str, comma_first: bool) -> Result<String, String> {
    if comma_first {
        take_prefix(rest, ",", "','")?;
    }
    take_prefix(
        rest,
        &format!("\"{field}\":\""),
        &format!("field {field:?}"),
    )?;
    let end = rest
        .find('"')
        .ok_or_else(|| format!("unterminated string for field {field:?}"))?;
    let (value, tail) = rest.split_at(end);
    if !ident_ok(value) {
        return Err(format!(
            "field {field:?} value {value:?} is not a plain identifier"
        ));
    }
    *rest = &tail[1..];
    Ok(value.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(cycle: Cycle, scope: &'static str, start: Cycle, end: Cycle) -> TelemetryEvent {
        TelemetryEvent {
            cycle,
            scope,
            name: "t",
            kind: EventKind::Span {
                start,
                end,
                slot: 0,
            },
        }
    }

    #[test]
    fn gauge_tracks_current_and_peak() {
        let mut g = Gauge::new();
        assert_eq!((g.current(), g.peak(), g.samples()), (0, 0, 0));
        g.set(7);
        g.set(3);
        assert_eq!((g.current(), g.peak(), g.samples()), (3, 7, 2));
        g.set(9);
        assert_eq!((g.current(), g.peak(), g.samples()), (9, 9, 3));
    }

    #[test]
    fn health_orders_worst_last() {
        assert!(Health::Ready < Health::Degraded);
        assert!(Health::Degraded < Health::Failed);
        assert_eq!(Health::Degraded.name(), "degraded");
        assert_eq!(Health::Failed.to_string(), "failed");
    }

    #[test]
    fn readiness_aggregates_worst_component() {
        let empty = Readiness::default();
        assert!(empty.is_ready());
        assert_eq!(empty.worst(), Health::Ready);

        let r = Readiness::new(vec![Health::Ready, Health::Degraded, Health::Ready]);
        assert_eq!(r.worst(), Health::Degraded);
        assert!(!r.is_ready());
        assert_eq!(r.count(Health::Ready), 2);

        let snap = r.snapshot();
        assert_eq!(snap.scope, "readiness");
        assert_eq!(snap.get("components"), 3);
        assert_eq!(snap.get("degraded"), 1);
        assert_eq!(snap.get("failed"), 0);
        assert_eq!(snap.get("is_ready"), 0);

        let failed = Readiness::new(vec![Health::Failed, Health::Degraded]);
        assert_eq!(failed.worst(), Health::Failed);
    }

    #[test]
    fn disabled_sink_is_inert() {
        let t = Telemetry::disabled();
        t.mark(1, "a", "b", 2, 3);
        t.span(1, "a", "b", 1, 2, 0);
        assert!(!t.is_enabled());
        assert!(t.drain().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Telemetry::ring(8);
        let u = t.clone();
        t.mark(1, "a", "x", 1, 0);
        u.mark(2, "a", "y", 2, 0);
        let events = t.drain();
        assert_eq!(events.len(), 2);
        assert!(u.drain().is_empty(), "drain empties the shared buffer");
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let t = Telemetry::ring(2);
        for i in 0..5 {
            t.mark(i, "a", "x", i, 0);
        }
        assert_eq!(t.drain().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn events_sort_by_cycle_then_content() {
        let mut events = [
            span(50, "sim", 50, 60),
            span(10, "sim", 10, 20),
            span(10, "keys", 10, 20),
            TelemetryEvent {
                cycle: 10,
                scope: "keys",
                name: "t",
                kind: EventKind::Mark { value: 1, slot: 0 },
            },
        ];
        events.sort_unstable();
        assert_eq!(events[0].cycle, 10);
        assert_eq!(events[0].scope, "keys");
        assert_eq!(events.last().unwrap().cycle, 50);
        // Same cycle+scope+name: Span sorts before Mark (enum order).
        assert!(matches!(events[0].kind, EventKind::Span { .. }));
        assert!(matches!(events[1].kind, EventKind::Mark { .. }));
    }

    #[test]
    fn span_overlap_arithmetic() {
        let s = span(100, "keys", 100, 200);
        assert_eq!(s.span_overlap(150, 250), 50);
        assert_eq!(s.span_overlap(0, 100), 0);
        assert_eq!(s.span_overlap(200, 300), 0);
        assert_eq!(s.span_overlap(0, 1000), 100);
        let m = TelemetryEvent {
            cycle: 1,
            scope: "a",
            name: "b",
            kind: EventKind::Mark { value: 9, slot: 0 },
        };
        assert_eq!(m.span_overlap(0, 1000), 0);
    }

    #[test]
    fn jsonl_roundtrips_both_kinds() {
        let events = [
            span(263, "keys", 263, 526),
            TelemetryEvent {
                cycle: 42,
                scope: "bench",
                name: "points",
                kind: EventKind::Mark { value: 14, slot: 2 },
            },
        ];
        for e in events {
            let line = jsonl_line(&e);
            let parsed = parse_jsonl_line(&line).expect("own output parses");
            assert_eq!(parsed.cycle, e.cycle);
            assert_eq!(parsed.scope, e.scope);
            assert_eq!(parsed.name, e.name);
            assert_eq!(parsed.kind, e.kind);
        }
    }

    #[test]
    fn jsonl_lines_match_documented_schema() {
        assert_eq!(
            jsonl_line(&span(263, "keys", 263, 526)),
            "{\"cycle\":263,\"scope\":\"keys\",\"name\":\"t\",\"kind\":\"span\",\
             \"start\":263,\"end\":526,\"slot\":0}"
        );
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "",
            "{}",
            "{\"cycle\":1}",
            "{\"cycle\":1,\"scope\":\"a\",\"name\":\"b\",\"kind\":\"span\",\"start\":1,\"end\":2,\"slot\":0} ",
            "{\"cycle\":1,\"scope\":\"a\",\"name\":\"b\",\"kind\":\"blip\",\"value\":1,\"slot\":0}",
            "{\"cycle\":1,\"scope\":\"a b\",\"name\":\"b\",\"kind\":\"mark\",\"value\":1,\"slot\":0}",
            "{\"cycle\":-1,\"scope\":\"a\",\"name\":\"b\",\"kind\":\"mark\",\"value\":1,\"slot\":0}",
            "{\"cycle\":1,\"scope\":\"a\",\"name\":\"b\",\"kind\":\"mark\",\"value\":1,\"slot\":0,\"x\":1}",
        ] {
            assert!(parse_jsonl_line(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.bucket(0), 1); // 0
        assert_eq!(h.bucket(1), 1); // 1
        assert_eq!(h.bucket(2), 2); // 2, 3
        assert_eq!(h.bucket(3), 1); // 4
        assert_eq!(h.bucket(10), 1); // 1000
        assert_eq!(h.bucket(64), 1); // u64::MAX
        assert_eq!(h.sum(), u64::MAX, "sum saturates");
        assert!(h.mean().is_some());
        assert_eq!(Histogram::new().mean(), None);
    }

    #[test]
    fn histogram_quantile_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(3);
        }
        h.record(1 << 20);
        assert_eq!(h.quantile_bound(0.5), Some(4));
        assert_eq!(h.quantile_bound(1.0), Some(1 << 21));
        assert_eq!(Histogram::new().quantile_bound(0.5), None);
    }

    #[test]
    fn snapshot_counters_are_sorted_and_defaulted() {
        let s = TelemetrySnapshot::new("bpu")
            .with("z_last", 3)
            .with("a_first", 1);
        let names: Vec<_> = s.counters.keys().copied().collect();
        assert_eq!(names, vec!["a_first", "z_last"]);
        assert_eq!(s.get("a_first"), 1);
        assert_eq!(s.get("missing"), 0);
    }
}
