//! A tiny deterministic property-check harness.
//!
//! The workspace must build and test with zero network access, so it cannot
//! depend on an external property-testing crate. This module provides the
//! small subset the test suites need: run a closure over many
//! pseudo-randomly generated cases, deterministically from a fixed seed, and
//! report the failing case's seed on panic so it can be replayed in
//! isolation.
//!
//! Unlike a full property-testing framework there is no shrinking; cases are
//! small by construction instead.
//!
//! # Examples
//!
//! ```
//! use bp_common::check::Checker;
//!
//! Checker::new("addition commutes").run(|g| {
//!     let (a, b) = (g.u64(), g.u64());
//!     assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//! });
//! ```
//!
//! To replay a single failing case, set `BP_CHECK_SEED` to the seed printed
//! in the failure message; the harness then runs only that case.

use crate::rng::SplitMix64;

/// Default number of cases per property.
pub const DEFAULT_CASES: u64 = 64;

/// Runs a property over many deterministic pseudo-random cases.
#[derive(Debug)]
pub struct Checker {
    name: &'static str,
    cases: u64,
    seed: u64,
}

/// Per-case value generator handed to the property closure.
#[derive(Debug)]
pub struct Gen {
    rng: SplitMix64,
}

impl Gen {
    /// A generator seeded for one case.
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: SplitMix64::new(seed),
        }
    }

    /// A uniform 64-bit value.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A uniform value in `[lo, hi)`. Empty ranges yield `lo`.
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.rng.next_below(hi - lo)
    }

    /// A uniform `usize` in `[lo, hi)`. Empty ranges yield `lo`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.in_range(lo as u64, hi as u64) as usize
    }

    /// A uniform `u32` in `[lo, hi)`. Empty ranges yield `lo`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.in_range(u64::from(lo), u64::from(hi)) as u32
    }

    /// A fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.rng.next_f64() * (hi - lo)
    }

    /// A vector of `len` values drawn by `f`.
    pub fn vec<T>(&mut self, len: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        (0..len).map(|_| f(self)).collect()
    }

    /// One element of a non-empty slice, by copy.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        assert!(!options.is_empty(), "pick needs at least one option");
        options[self.usize_in(0, options.len())]
    }
}

/// Prints replay instructions if the case panics (i.e. if the guard is
/// dropped while still armed).
struct FailureReport {
    name: &'static str,
    case: u64,
    seed: u64,
    armed: bool,
}

impl Drop for FailureReport {
    fn drop(&mut self) {
        if self.armed {
            eprintln!(
                "property '{}' failed at case {} (seed {:#x}); \
                 replay with BP_CHECK_SEED={:#x}",
                self.name, self.case, self.seed, self.seed
            );
        }
    }
}

impl Checker {
    /// A checker with [`DEFAULT_CASES`] cases and a seed derived from the
    /// property name (so distinct properties explore distinct cases).
    pub fn new(name: &'static str) -> Self {
        let seed = name.bytes().fold(0xBADC_0FFE_E0DD_F00Du64, |acc, b| {
            acc.rotate_left(8) ^ u64::from(b) ^ acc.wrapping_mul(31)
        });
        Checker {
            name,
            cases: DEFAULT_CASES,
            seed,
        }
    }

    /// Overrides the number of cases.
    pub fn cases(mut self, cases: u64) -> Self {
        self.cases = cases.max(1);
        self
    }

    /// Runs the property over all cases. If `BP_CHECK_SEED` is set, runs only
    /// that one case (replay mode).
    ///
    /// # Panics
    ///
    /// Propagates the property's panic, after printing the failing case's
    /// seed to stderr.
    pub fn run(self, mut property: impl FnMut(&mut Gen)) {
        if let Some(seed) = replay_seed() {
            let mut report = FailureReport {
                name: self.name,
                case: 0,
                seed,
                armed: true,
            };
            property(&mut Gen::from_seed(seed));
            report.armed = false;
            return;
        }
        let mut seeder = SplitMix64::new(self.seed);
        for case in 0..self.cases {
            let case_seed = seeder.next_u64();
            let mut report = FailureReport {
                name: self.name,
                case,
                seed: case_seed,
                armed: true,
            };
            property(&mut Gen::from_seed(case_seed));
            report.armed = false;
        }
    }
}

#[allow(clippy::disallowed_methods)] // waived in bp-lint with the reason below
fn replay_seed() -> Option<u64> {
    // bp-lint: allow(determinism-env) reason="BP_CHECK_SEED is an explicit operator replay knob; unset in normal runs, and the chosen seed is echoed into the failure report"
    let raw = std::env::var("BP_CHECK_SEED").ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    parsed.ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        Checker::new("det").cases(5).run(|g| first.push(g.u64()));
        let mut second = Vec::new();
        Checker::new("det").cases(5).run(|g| second.push(g.u64()));
        assert_eq!(first, second);
        assert_eq!(first.len(), 5);
    }

    #[test]
    fn distinct_names_give_distinct_streams() {
        let mut a = Vec::new();
        Checker::new("stream-a").cases(3).run(|g| a.push(g.u64()));
        let mut b = Vec::new();
        Checker::new("stream-b").cases(3).run(|g| b.push(g.u64()));
        assert_ne!(a, b);
    }

    #[test]
    fn ranges_are_respected() {
        Checker::new("ranges").cases(200).run(|g| {
            let v = g.in_range(10, 20);
            assert!((10..20).contains(&v));
            let u = g.usize_in(3, 4);
            assert_eq!(u, 3);
            assert_eq!(g.in_range(7, 7), 7, "empty range yields lo");
            let f = g.f64_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let p = g.pick(&[1, 2, 3]);
            assert!((1..=3).contains(&p));
        });
    }

    #[test]
    fn vec_has_requested_length() {
        Checker::new("vec-len").cases(10).run(|g| {
            let len = g.usize_in(0, 17);
            let v = g.vec(len, Gen::bool);
            assert_eq!(v.len(), len);
        });
    }
}
