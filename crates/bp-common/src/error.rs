//! Typed configuration errors shared across the workspace.
//!
//! Every public constructor that derives state from a configuration value
//! returns `Result<_, ConfigError>` instead of panicking: a service core
//! must reject bad input, not die on it. The variants carry static strings
//! so that error construction never allocates on a hot path.
//!
//! # Examples
//!
//! ```
//! use bp_common::error::ConfigError;
//!
//! let e = ConfigError::zero("keys table entries");
//! assert_eq!(e.to_string(), "keys table entries must be non-zero");
//! ```

use std::error::Error;
use std::fmt;

/// A rejected configuration value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A count or width that must be positive was zero.
    Zero {
        /// What was zero.
        what: &'static str,
    },
    /// A value exceeded its supported maximum.
    TooLarge {
        /// What was too large.
        what: &'static str,
        /// The offending value.
        value: u64,
        /// The largest supported value.
        max: u64,
    },
    /// Two configuration values contradict each other.
    Inconsistent {
        /// What is inconsistent.
        what: &'static str,
        /// The constraint that was violated.
        why: &'static str,
    },
}

impl ConfigError {
    /// Shorthand for [`ConfigError::Zero`].
    pub const fn zero(what: &'static str) -> Self {
        ConfigError::Zero { what }
    }

    /// Shorthand for [`ConfigError::TooLarge`].
    pub const fn too_large(what: &'static str, value: u64, max: u64) -> Self {
        ConfigError::TooLarge { what, value, max }
    }

    /// Shorthand for [`ConfigError::Inconsistent`].
    pub const fn inconsistent(what: &'static str, why: &'static str) -> Self {
        ConfigError::Inconsistent { what, why }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Zero { what } => write!(f, "{what} must be non-zero"),
            ConfigError::TooLarge { what, value, max } => {
                write!(f, "{what} is {value}, which exceeds the maximum of {max}")
            }
            ConfigError::Inconsistent { what, why } => write!(f, "{what} is inconsistent: {why}"),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_field() {
        assert_eq!(
            ConfigError::too_large("extra storage", 5000, 1000).to_string(),
            "extra storage is 5000, which exceeds the maximum of 1000"
        );
        assert_eq!(
            ConfigError::inconsistent("keys table", "word_bits >= key_bits").to_string(),
            "keys table is inconsistent: word_bits >= key_bits"
        );
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn Error> = Box::new(ConfigError::zero("slots"));
        assert!(e.to_string().contains("slots"));
    }
}
