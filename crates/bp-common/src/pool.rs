//! A scoped worker pool with a deterministic, order-preserving `par_map`,
//! plus a supervised variant that survives panicking items.
//!
//! The experiment grid (mechanism × benchmark × scale) is embarrassingly
//! parallel, but every aggregation step in the bench layer must stay
//! bit-identical to a serial run so that reproduction verdicts do not
//! depend on the machine's core count. [`Pool::par_map`] therefore
//! guarantees that the output vector is in *input order* regardless of
//! which worker computed which element or in what order workers finished;
//! the only thing parallelism may change is wall-clock time.
//!
//! [`Pool::try_par_map`] adds *fail-soft* semantics on top: each item runs
//! under [`std::panic::catch_unwind`], failures are returned as typed
//! [`TaskFailure`] values in their input slots instead of unwinding the
//! whole sweep, transient failures are retried on a deterministic
//! [`RetryPolicy`] schedule, and a poison flag stops workers from claiming
//! new items once a fatal failure has been observed in
//! [`FailMode::FailFast`] mode. Both maps share the poison flag: a panic
//! inside `par_map` likewise stops the remaining workers from *starting*
//! items that are doomed to be discarded.
//!
//! The pool is std-only ([`std::thread::scope`] plus an atomic work
//! index) — the workspace builds fully offline and takes no external
//! dependencies for this.
//!
//! # Examples
//!
//! ```
//! use bp_common::pool::Pool;
//!
//! let pool = Pool::new(4);
//! let squares = pool.par_map(&[1u64, 2, 3, 4, 5], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```
//!
//! Fail-soft supervision:
//!
//! ```
//! use bp_common::pool::{FailMode, Pool, RetryPolicy, TaskError};
//!
//! let pool = Pool::new(2);
//! let out = pool.try_par_map(
//!     &[1u64, 2, 3],
//!     FailMode::FailSoft,
//!     &RetryPolicy::none(),
//!     |_i, &x, _attempt| {
//!         if x == 2 {
//!             Err(TaskError::fatal("unlucky item"))
//!         } else {
//!             Ok(x * 10)
//!         }
//!     },
//! );
//! assert_eq!(out[0].as_ref().ok(), Some(&10));
//! assert!(out[1].is_err());
//! assert_eq!(out[2].as_ref().ok(), Some(&30));
//! ```

#![allow(clippy::disallowed_types)] // Instant, waived file-wide in bp-lint below

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
// bp-lint: allow-file(determinism-time) reason="pool wall-clock spans feed the diagnostic speed table only; simulated results never read them"
use std::time::Instant;

use crate::rng::SplitMix64;
use crate::telemetry::{Observable, TelemetrySnapshot};

/// A typed, retry-aware task error for [`Pool::try_par_map`].
///
/// `transient` failures (cache I/O hiccups, injected disturbances that are
/// expected to clear) are retry-eligible under the sweep's [`RetryPolicy`];
/// fatal ones are recorded immediately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// Human-readable description of what failed.
    pub message: String,
    /// Whether the failure is worth retrying.
    pub transient: bool,
}

impl TaskError {
    /// A retry-eligible failure.
    pub fn transient(message: impl Into<String>) -> TaskError {
        TaskError {
            message: message.into(),
            transient: true,
        }
    }

    /// A failure that no retry will fix.
    pub fn fatal(message: impl Into<String>) -> TaskError {
        TaskError {
            message: message.into(),
            transient: false,
        }
    }
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({})",
            self.message,
            if self.transient { "transient" } else { "fatal" }
        )
    }
}

/// Why one sweep item produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The task panicked; the payload is rendered to a string.
    Panic(String),
    /// The task returned a typed error.
    Error(TaskError),
    /// The item was never attempted: an earlier fatal failure poisoned the
    /// pool in [`FailMode::FailFast`] mode before this item was claimed.
    Skipped,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Panic(msg) => write!(f, "panicked: {msg}"),
            FailureKind::Error(e) => write!(f, "error: {e}"),
            FailureKind::Skipped => write!(f, "skipped: pool poisoned by an earlier failure"),
        }
    }
}

/// A failed sweep item: which one, how hard we tried, and why it failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskFailure {
    /// Input-order index of the failed item.
    pub index: usize,
    /// Attempts made (0 when the item was never attempted).
    pub attempts: u32,
    /// The terminal failure.
    pub kind: FailureKind,
}

impl fmt::Display for TaskFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "item {} failed after {} attempt(s): {}",
            self.index, self.attempts, self.kind
        )
    }
}

/// What a fatal item failure does to the rest of a supervised sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailMode {
    /// Poison the pool: items not yet claimed are returned as
    /// [`FailureKind::Skipped`] instead of being started.
    FailFast,
    /// Drain every item regardless of earlier failures; each failure is
    /// confined to its own slot.
    FailSoft,
}

/// Deterministic retry schedule for transient task failures.
///
/// Backoff delays are derived from [`SplitMix64`] seeded by `(seed, item
/// index, attempt)` — no wall-clock randomness anywhere — so two runs of
/// the same sweep retry at bit-identical delays and the retried
/// computations themselves stay reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total tries per item (≥ 1; 1 means "no retries").
    pub max_attempts: u32,
    /// Upper bound of the first retry's backoff, in milliseconds; later
    /// retries double the bound. Zero disables sleeping entirely.
    pub base_backoff_ms: u64,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
    /// Whether panics (not just transient typed errors) are retried.
    /// Useful when the panic source is an injected disturbance that is
    /// expected to clear; pointless for deterministic logic errors.
    pub retry_panics: bool,
}

impl RetryPolicy {
    /// No retries: every failure is terminal on the first attempt.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
            seed: 0,
            retry_panics: false,
        }
    }

    /// The standard experiment-harness policy: up to three tries with a
    /// small deterministic backoff, panics retried.
    pub fn standard(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 2,
            seed,
            retry_panics: true,
        }
    }

    /// Backoff before retry number `attempt` (the attempt *about* to run,
    /// 2-based) of item `index`, in milliseconds. Deterministic in
    /// `(seed, index, attempt)`.
    pub fn backoff_ms(&self, index: usize, attempt: u32) -> u64 {
        if self.base_backoff_ms == 0 {
            return 0;
        }
        let exp = attempt.saturating_sub(2).min(6);
        let cap = self.base_backoff_ms << exp;
        let mut rng = SplitMix64::new(
            self.seed
                ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ u64::from(attempt).wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        // Uniform in [cap/2, cap]: bounded above, never zero-collapsed.
        cap / 2 + rng.next_below(cap / 2 + 1)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Lifetime counters a pool accumulates across every map it runs.
///
/// Wall-clock figures are *observability only*: they appear in the pool's
/// [`TelemetrySnapshot`] but never in the deterministic event stream, so
/// they cannot perturb reproduction verdicts.
#[derive(Debug, Default)]
struct PoolCounters {
    /// Task executions (each retry attempt counts as one execution).
    tasks: AtomicU64,
    /// Executions beyond an item's first attempt.
    retries: AtomicU64,
    /// Executions that ended in a caught panic.
    panics: AtomicU64,
    /// Total wall time spent inside task closures, in nanoseconds.
    task_nanos: AtomicU64,
}

impl PoolCounters {
    fn record(&self, attempt: u32, panicked: bool, elapsed_nanos: u64) {
        self.tasks.fetch_add(1, Ordering::Relaxed);
        if attempt > 1 {
            self.retries.fetch_add(1, Ordering::Relaxed);
        }
        if panicked {
            self.panics.fetch_add(1, Ordering::Relaxed);
        }
        self.task_nanos.fetch_add(elapsed_nanos, Ordering::Relaxed);
    }
}

/// Outcome of supervising one item to completion (successes carry their
/// result; failures are terminal after the policy's retries).
fn supervise_item<T, R, F>(
    index: usize,
    item: &T,
    retry: &RetryPolicy,
    counters: &PoolCounters,
    f: &F,
) -> Result<R, TaskFailure>
where
    F: Fn(usize, &T, u32) -> Result<R, TaskError>,
{
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| f(index, item, attempt)));
        counters.record(
            attempt,
            outcome.is_err(),
            started.elapsed().as_nanos() as u64,
        );
        match outcome {
            Ok(Ok(r)) => return Ok(r),
            Ok(Err(e)) => {
                if e.transient && attempt < retry.max_attempts {
                    backoff_sleep(retry, index, attempt + 1);
                    continue;
                }
                return Err(TaskFailure {
                    index,
                    attempts: attempt,
                    kind: FailureKind::Error(e),
                });
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                if retry.retry_panics && attempt < retry.max_attempts {
                    backoff_sleep(retry, index, attempt + 1);
                    continue;
                }
                return Err(TaskFailure {
                    index,
                    attempts: attempt,
                    kind: FailureKind::Panic(msg),
                });
            }
        }
    }
}

// Retry backoff is the one place the workspace intentionally blocks a
// worker thread: it runs only after a task already failed, far from any
// answer hot path.
#[allow(clippy::disallowed_methods)]
fn backoff_sleep(retry: &RetryPolicy, index: usize, attempt: u32) {
    let ms = retry.backoff_ms(index, attempt);
    if ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// Renders a panic payload the way the default hook would.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A fixed-width worker pool. Cheap to construct: threads are scoped per
/// [`Pool::par_map`] call, not kept alive between calls, so a `Pool` is
/// really a validated thread count, the mapping machinery, and a shared
/// set of lifetime counters (clones share the counters, like the rest of
/// the telemetry layer's handles).
#[derive(Debug, Clone)]
pub struct Pool {
    threads: usize,
    counters: Arc<PoolCounters>,
}

impl Pool {
    /// A pool running `threads` workers. Zero is clamped to one: a pool
    /// that cannot make progress is never what the caller meant.
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
            counters: Arc::new(PoolCounters::default()),
        }
    }

    /// A serial pool (one worker, runs inline on the calling thread).
    pub fn serial() -> Pool {
        Pool::new(1)
    }

    /// A pool sized to the machine: [`std::thread::available_parallelism`],
    /// falling back to one worker when the capacity cannot be queried.
    pub fn machine_sized() -> Pool {
        Pool::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` on the pool's workers and returns the results
    /// **in input order**.
    ///
    /// Work is distributed dynamically (each worker grabs the next
    /// unclaimed index), so uneven item costs cannot stall the pool, and
    /// the result vector is assembled by index, so the output is
    /// bit-identical to `items.iter().map(f).collect()` for any worker
    /// count. With one worker (or fewer than two items) the map runs
    /// inline on the calling thread — no threads are spawned.
    ///
    /// # Panics
    ///
    /// Panics if `f` panics on any item (the panic is propagated to the
    /// caller once all workers have been joined). The first panic poisons
    /// the pool: other workers finish the item they are on but claim no
    /// further items, so a doomed sweep stops burning cores on results
    /// that are about to be discarded.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if self.threads == 1 || items.len() < 2 {
            return items
                .iter()
                .map(|item| {
                    let started = Instant::now();
                    let r = f(item);
                    self.counters
                        .record(1, false, started.elapsed().as_nanos() as u64);
                    r
                })
                .collect();
        }
        let next = AtomicUsize::new(0);
        let poisoned = AtomicBool::new(false);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(items.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| loop {
                        if poisoned.load(Ordering::Acquire) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        // Set the poison flag at panic time (not join time)
                        // so sibling workers stop claiming immediately, then
                        // re-raise with the original payload for the join
                        // below to propagate.
                        let started = Instant::now();
                        let outcome = catch_unwind(AssertUnwindSafe(|| f(&items[i])));
                        self.counters.record(
                            1,
                            outcome.is_err(),
                            started.elapsed().as_nanos() as u64,
                        );
                        let r = match outcome {
                            Ok(r) => r,
                            Err(payload) => {
                                poisoned.store(true, Ordering::Release);
                                std::panic::resume_unwind(payload);
                            }
                        };
                        // Worker panics resume before results are read, so
                        // even a poisoned slot's data is sound to overwrite.
                        *slots[i]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(r);
                    })
                })
                .collect();
            // Join explicitly so a worker panic surfaces with its original
            // payload (the scope's implicit join would replace it with the
            // generic "a scoped thread panicked").
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    // bp-lint: allow(panic-freedom) reason="Some by construction: the explicit joins above resume any worker panic before results are read, so every claimed slot was filled"
                    .expect("worker filled every claimed slot")
            })
            .collect()
    }

    /// Supervised, fail-soft variant of [`Pool::par_map`].
    ///
    /// Every item runs under [`std::panic::catch_unwind`]; `f` receives
    /// `(input index, item, attempt)` with `attempt` starting at 1, and
    /// returns `Ok(R)` or a typed [`TaskError`]. Transient errors (and,
    /// when the policy says so, panics) are retried up to
    /// `retry.max_attempts` times with the policy's deterministic backoff.
    /// The output vector is order-preserving and always `items.len()`
    /// long: slot `i` holds either item `i`'s result or its
    /// [`TaskFailure`].
    ///
    /// In [`FailMode::FailFast`] the first terminal failure poisons the
    /// pool: workers finish the items they already claimed, and every item
    /// not yet claimed is returned as [`FailureKind::Skipped`] without
    /// running. In [`FailMode::FailSoft`] all items are drained no matter
    /// how many fail.
    ///
    /// Never panics (short of a poisoned internal mutex, which a panic
    /// inside `f` cannot cause — `f` runs outside the slot locks).
    pub fn try_par_map<T, R, F>(
        &self,
        items: &[T],
        mode: FailMode,
        retry: &RetryPolicy,
        f: F,
    ) -> Vec<Result<R, TaskFailure>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T, u32) -> Result<R, TaskError> + Sync,
    {
        let poisoned = AtomicBool::new(false);
        if self.threads == 1 || items.len() < 2 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    if mode == FailMode::FailFast && poisoned.load(Ordering::Acquire) {
                        return Err(TaskFailure {
                            index: i,
                            attempts: 0,
                            kind: FailureKind::Skipped,
                        });
                    }
                    let r = supervise_item(i, item, retry, &self.counters, &f);
                    if r.is_err() {
                        poisoned.store(true, Ordering::Release);
                    }
                    r
                })
                .collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<R, TaskFailure>>>> =
            items.iter().map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(items.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if mode == FailMode::FailFast && poisoned.load(Ordering::Acquire) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = supervise_item(i, &items[i], retry, &self.counters, &f);
                    if r.is_err() {
                        poisoned.store(true, Ordering::Release);
                    }
                    if let Ok(mut slot) = slots[i].lock() {
                        *slot = Some(r);
                    }
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| match slot.into_inner() {
                Ok(Some(r)) => r,
                // Unclaimed (poison cut the claim loop short) or a worker
                // died between claim and store: the item never completed.
                _ => Err(TaskFailure {
                    index: i,
                    attempts: 0,
                    kind: FailureKind::Skipped,
                }),
            })
            .collect()
    }

    /// Like [`Pool::par_map`] but over an index range; convenient when the
    /// "items" are cheap to describe by position.
    pub fn par_map_indices<R, F>(&self, count: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let indices: Vec<usize> = (0..count).collect();
        self.par_map(&indices, |&i| f(i))
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::machine_sized()
    }
}

impl Observable for Pool {
    /// Lifetime work counters across every map this pool (and its clones)
    /// has run. `task_nanos` is wall time inside task closures — useful
    /// for spotting skew, meaningless for reproduction verdicts.
    fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::new("pool")
            .with("threads", self.threads as u64)
            .with("tasks", self.counters.tasks.load(Ordering::Relaxed))
            .with("retries", self.counters.retries.load(Ordering::Relaxed))
            .with("panics", self.counters.panics.load(Ordering::Relaxed))
            .with(
                "task_nanos",
                self.counters.task_nanos.load(Ordering::Relaxed),
            )
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests stage uneven timing with sleeps
mod tests {
    use super::*;

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::serial().threads(), 1);
    }

    #[test]
    fn machine_sized_is_positive() {
        assert!(Pool::machine_sized().threads() >= 1);
    }

    #[test]
    fn par_map_preserves_order_for_any_worker_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x.wrapping_mul(0x9E37)).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = Pool::new(threads).par_map(&items, |x| x.wrapping_mul(0x9E37));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single_inputs() {
        let pool = Pool::new(8);
        assert_eq!(pool.par_map(&[] as &[u8], |&b| b), Vec::<u8>::new());
        assert_eq!(pool.par_map(&[7u8], |&b| b + 1), vec![8]);
    }

    #[test]
    fn par_map_indices_matches_serial() {
        let pool = Pool::new(4);
        let got = pool.par_map_indices(10, |i| i * i);
        assert_eq!(got, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_still_lands_in_order() {
        // Early items sleep longest, so a naive push-as-you-finish scheme
        // would reverse them.
        let pool = Pool::new(4);
        let got = pool.par_map_indices(8, |i| {
            std::thread::sleep(std::time::Duration::from_millis((8 - i) as u64));
            i
        });
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        Pool::new(2).par_map_indices(4, |i| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn par_map_poison_stops_new_claims_after_panic() {
        // Regression: before the poison flag, workers kept claiming (and
        // computing) items long after a sibling had already panicked. With
        // 2 workers over 64 items where item 0 panics immediately and all
        // others sleep, only the items claimed before the poison landed can
        // ever start — nowhere near all 64.
        let started = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            Pool::new(2).par_map_indices(64, |i| {
                started.fetch_add(1, Ordering::SeqCst);
                if i == 0 {
                    panic!("fatal item");
                }
                std::thread::sleep(std::time::Duration::from_millis(30));
                i
            })
        }));
        assert!(result.is_err(), "the panic must still propagate");
        let started = started.load(Ordering::SeqCst);
        assert!(
            started <= 4,
            "{started} items started after a fatal failure; poison flag not honored"
        );
    }

    #[test]
    fn try_par_map_fail_soft_drains_everything() {
        for threads in [1, 4] {
            let out = Pool::new(threads).try_par_map(
                &(0..20u64).collect::<Vec<_>>(),
                FailMode::FailSoft,
                &RetryPolicy::none(),
                |_i, &x, _attempt| {
                    if x % 5 == 3 {
                        Err(TaskError::fatal(format!("bad point {x}")))
                    } else {
                        Ok(x * 2)
                    }
                },
            );
            assert_eq!(out.len(), 20);
            for (i, r) in out.iter().enumerate() {
                if i % 5 == 3 {
                    let f = r.as_ref().unwrap_err();
                    assert_eq!(f.index, i);
                    assert_eq!(f.attempts, 1);
                    assert!(matches!(&f.kind, FailureKind::Error(e) if !e.transient));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u64 * 2, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn try_par_map_fail_fast_skips_unclaimed_items() {
        // Serial path: deterministic — everything after the fatal item is
        // skipped without running.
        let ran = AtomicUsize::new(0);
        let out = Pool::serial().try_par_map(
            &(0..10u64).collect::<Vec<_>>(),
            FailMode::FailFast,
            &RetryPolicy::none(),
            |_i, &x, _attempt| {
                ran.fetch_add(1, Ordering::SeqCst);
                if x == 2 {
                    Err(TaskError::fatal("fatal"))
                } else {
                    Ok(x)
                }
            },
        );
        assert_eq!(ran.load(Ordering::SeqCst), 3);
        assert!(out[0].is_ok() && out[1].is_ok());
        assert!(matches!(
            out[2].as_ref().unwrap_err().kind,
            FailureKind::Error(_)
        ));
        for r in &out[3..] {
            assert_eq!(r.as_ref().unwrap_err().kind, FailureKind::Skipped);
        }
    }

    #[test]
    fn try_par_map_catches_panics_in_their_slot() {
        let out = Pool::new(3).try_par_map(
            &(0..8u64).collect::<Vec<_>>(),
            FailMode::FailSoft,
            &RetryPolicy::none(),
            |_i, &x, _attempt| {
                if x == 5 {
                    panic!("point {x} exploded");
                }
                Ok::<u64, TaskError>(x)
            },
        );
        assert_eq!(out.iter().filter(|r| r.is_err()).count(), 1);
        let f = out[5].as_ref().unwrap_err();
        assert_eq!(f.index, 5);
        assert!(matches!(&f.kind, FailureKind::Panic(m) if m.contains("point 5 exploded")));
    }

    #[test]
    fn transient_errors_are_retried_to_success() {
        let calls = AtomicUsize::new(0);
        let out = Pool::serial().try_par_map(
            &[7u64],
            FailMode::FailSoft,
            &RetryPolicy {
                max_attempts: 3,
                base_backoff_ms: 0,
                seed: 1,
                retry_panics: false,
            },
            |_i, &x, attempt| {
                calls.fetch_add(1, Ordering::SeqCst);
                if attempt < 3 {
                    Err(TaskError::transient("not yet"))
                } else {
                    Ok(x)
                }
            },
        );
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(*out[0].as_ref().unwrap(), 7);
    }

    #[test]
    fn exhausted_retries_report_attempt_count() {
        let out = Pool::serial().try_par_map(
            &[1u64],
            FailMode::FailSoft,
            &RetryPolicy {
                max_attempts: 3,
                base_backoff_ms: 0,
                seed: 1,
                retry_panics: true,
            },
            |_i, _x, _attempt| Err::<u64, _>(TaskError::transient("always down")),
        );
        let f = out[0].as_ref().unwrap_err();
        assert_eq!(f.attempts, 3);
        assert!(matches!(&f.kind, FailureKind::Error(e) if e.transient));
    }

    #[test]
    fn fatal_errors_are_not_retried() {
        let calls = AtomicUsize::new(0);
        let _ = Pool::serial().try_par_map(
            &[1u64],
            FailMode::FailSoft,
            &RetryPolicy::standard(9),
            |_i, _x, _attempt| {
                calls.fetch_add(1, Ordering::SeqCst);
                Err::<u64, _>(TaskError::fatal("no point retrying"))
            },
        );
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let p = RetryPolicy::standard(42);
        let q = RetryPolicy::standard(42);
        for index in [0usize, 3, 17] {
            for attempt in 2..6u32 {
                let a = p.backoff_ms(index, attempt);
                let b = q.backoff_ms(index, attempt);
                assert_eq!(a, b, "schedule must replay bit-identically");
                let cap = p.base_backoff_ms << attempt.saturating_sub(2).min(6);
                assert!(
                    a >= cap / 2 && a <= cap,
                    "backoff {a} outside [{}, {cap}]",
                    cap / 2
                );
            }
        }
        assert_eq!(RetryPolicy::none().backoff_ms(5, 2), 0);
    }

    #[test]
    fn try_par_map_matches_par_map_on_clean_sweeps() {
        let items: Vec<u64> = (0..33).collect();
        let plain = Pool::new(4).par_map(&items, |&x| x.wrapping_mul(0x51_7C));
        let supervised = Pool::new(4).try_par_map(
            &items,
            FailMode::FailFast,
            &RetryPolicy::none(),
            |_i, &x, _attempt| Ok::<u64, TaskError>(x.wrapping_mul(0x51_7C)),
        );
        let supervised: Vec<u64> = supervised.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(plain, supervised);
    }

    #[test]
    fn snapshot_counts_tasks_retries_and_panics() {
        let pool = Pool::new(2);
        let _ = pool.par_map_indices(5, |i| i);
        let _ = pool.try_par_map(
            &[1u64, 2],
            FailMode::FailSoft,
            &RetryPolicy {
                max_attempts: 2,
                base_backoff_ms: 0,
                seed: 0,
                retry_panics: true,
            },
            |_i, &x, attempt| {
                if x == 2 && attempt == 1 {
                    panic!("first attempt dies");
                }
                Ok::<u64, TaskError>(x)
            },
        );
        let snap = pool.snapshot();
        assert_eq!(snap.scope, "pool");
        assert_eq!(snap.get("threads"), 2);
        // 5 plain items + item 1 (one attempt) + item 2 (two attempts).
        assert_eq!(snap.get("tasks"), 8);
        assert_eq!(snap.get("retries"), 1);
        assert_eq!(snap.get("panics"), 1);
        // Clones share counters.
        assert_eq!(pool.clone().snapshot().get("tasks"), 8);
    }

    #[test]
    fn worker_panic_during_pool_shutdown_joins_cleanly() {
        // Shutdown ordering: a worker panicking while the map (and with it
        // the pool's thread scope) is tearing down must never deadlock the
        // explicit joins or abort the process. The panic payload must come
        // back verbatim, the poison flag must have cut further claims, and
        // the pool must remain fully usable afterwards — the scoped
        // workers are provably gone, so dropping the pool is a no-op.
        let pool = Pool::new(4);
        let started = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(&items, |&i| {
                started.fetch_add(1, Ordering::SeqCst);
                if i == 0 {
                    panic!("teardown panic");
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
                i
            })
        }));
        let payload = result.expect_err("the worker panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert_eq!(
            msg, "teardown panic",
            "original payload must survive the explicit joins"
        );
        let started = started.load(Ordering::SeqCst);
        assert!(
            started < items.len(),
            "{started}/{} items started: poison flag did not stop claims during shutdown",
            items.len()
        );
        assert_eq!(pool.snapshot().get("panics"), 1);
        // Clean join: every scoped worker is gone, so the same pool value
        // runs a fresh map correctly and then drops without hanging.
        let again = pool.par_map(&items, |&i| i * 2);
        assert_eq!(again, items.iter().map(|&i| i * 2).collect::<Vec<_>>());
        drop(pool);
    }
}
