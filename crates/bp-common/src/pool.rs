//! A scoped worker pool with a deterministic, order-preserving `par_map`.
//!
//! The experiment grid (mechanism × benchmark × scale) is embarrassingly
//! parallel, but every aggregation step in the bench layer must stay
//! bit-identical to a serial run so that reproduction verdicts do not
//! depend on the machine's core count. [`Pool::par_map`] therefore
//! guarantees that the output vector is in *input order* regardless of
//! which worker computed which element or in what order workers finished;
//! the only thing parallelism may change is wall-clock time.
//!
//! The pool is std-only ([`std::thread::scope`] plus an atomic work
//! index) — the workspace builds fully offline and takes no external
//! dependencies for this.
//!
//! # Examples
//!
//! ```
//! use bp_common::pool::Pool;
//!
//! let pool = Pool::new(4);
//! let squares = pool.par_map(&[1u64, 2, 3, 4, 5], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-width worker pool. Cheap to construct: threads are scoped per
/// [`Pool::par_map`] call, not kept alive between calls, so a `Pool` is
/// really just a validated thread count plus the mapping machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool running `threads` workers. Zero is clamped to one: a pool
    /// that cannot make progress is never what the caller meant.
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// A serial pool (one worker, runs inline on the calling thread).
    pub fn serial() -> Pool {
        Pool::new(1)
    }

    /// A pool sized to the machine: [`std::thread::available_parallelism`],
    /// falling back to one worker when the capacity cannot be queried.
    pub fn machine_sized() -> Pool {
        Pool::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` on the pool's workers and returns the results
    /// **in input order**.
    ///
    /// Work is distributed dynamically (each worker grabs the next
    /// unclaimed index), so uneven item costs cannot stall the pool, and
    /// the result vector is assembled by index, so the output is
    /// bit-identical to `items.iter().map(f).collect()` for any worker
    /// count. With one worker (or fewer than two items) the map runs
    /// inline on the calling thread — no threads are spawned.
    ///
    /// # Panics
    ///
    /// Panics if `f` panics on any item (the panic is propagated to the
    /// caller once all workers have been joined).
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if self.threads == 1 || items.len() < 2 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(items.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let r = f(&items[i]);
                        *slots[i].lock().expect("result slot poisoned") = Some(r);
                    })
                })
                .collect();
            // Join explicitly so a worker panic surfaces with its original
            // payload (the scope's implicit join would replace it with the
            // generic "a scoped thread panicked").
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker filled every claimed slot")
            })
            .collect()
    }

    /// Like [`Pool::par_map`] but over an index range; convenient when the
    /// "items" are cheap to describe by position.
    pub fn par_map_indices<R, F>(&self, count: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let indices: Vec<usize> = (0..count).collect();
        self.par_map(&indices, |&i| f(i))
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::machine_sized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::serial().threads(), 1);
    }

    #[test]
    fn machine_sized_is_positive() {
        assert!(Pool::machine_sized().threads() >= 1);
    }

    #[test]
    fn par_map_preserves_order_for_any_worker_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x.wrapping_mul(0x9E37)).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = Pool::new(threads).par_map(&items, |x| x.wrapping_mul(0x9E37));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single_inputs() {
        let pool = Pool::new(8);
        assert_eq!(pool.par_map(&[] as &[u8], |&b| b), Vec::<u8>::new());
        assert_eq!(pool.par_map(&[7u8], |&b| b + 1), vec![8]);
    }

    #[test]
    fn par_map_indices_matches_serial() {
        let pool = Pool::new(4);
        let got = pool.par_map_indices(10, |i| i * i);
        assert_eq!(got, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_still_lands_in_order() {
        // Early items sleep longest, so a naive push-as-you-finish scheme
        // would reverse them.
        let pool = Pool::new(4);
        let got = pool.par_map_indices(8, |i| {
            std::thread::sleep(std::time::Duration::from_millis((8 - i) as u64));
            i
        });
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        Pool::new(2).par_map_indices(4, |i| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }
}
