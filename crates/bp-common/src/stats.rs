//! Statistics helpers used by the evaluation harnesses.
//!
//! The paper reports IPC throughput (sum of per-thread IPCs), Hmean fairness
//! (harmonic mean of per-thread speedups relative to solo execution), and
//! averaged degradations across benchmarks. These helpers implement those
//! metrics plus the usual descriptive statistics.

/// Arithmetic mean of a slice. Returns `None` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(bp_common::stats::mean(&[1.0, 2.0, 3.0]), Some(2.0));
/// assert_eq!(bp_common::stats::mean(&[]), None);
/// ```
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Geometric mean. Returns `None` if the slice is empty or any value is
/// non-positive.
pub fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    Some((log_sum / xs.len() as f64).exp())
}

/// Harmonic mean. Returns `None` if the slice is empty or any value is
/// non-positive.
///
/// This is the *Hmean* fairness metric of Luo et al. when applied to
/// per-thread IPC speedups.
pub fn harmonic_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let inv_sum: f64 = xs.iter().map(|x| 1.0 / x).sum();
    Some(xs.len() as f64 / inv_sum)
}

/// Sample standard deviation (n-1 denominator). `None` if fewer than 2 samples.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    Some(var.sqrt())
}

/// Relative change of `value` versus `baseline`, as a signed fraction.
///
/// Positive means `value` is *larger*. A performance *degradation* of
/// mechanism `m` vs baseline IPC is `-relative_change(ipc_m, ipc_base)`.
///
/// # Panics
///
/// Panics if `baseline` is zero.
pub fn relative_change(value: f64, baseline: f64) -> f64 {
    assert!(baseline != 0.0, "baseline must be non-zero");
    (value - baseline) / baseline
}

/// Formats a fraction as a percentage with one decimal, e.g. `0.051 -> "5.1%"`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// The Hmean fairness metric for an SMT run.
///
/// `smt_ipc[i]` is thread *i*'s IPC when co-running; `solo_ipc[i]` is its IPC
/// when running alone on the same core. Returns the harmonic mean of the
/// per-thread speedups `smt/solo`, or `None` on empty/mismatched input or a
/// non-positive solo IPC.
pub fn hmean_fairness(smt_ipc: &[f64], solo_ipc: &[f64]) -> Option<f64> {
    if smt_ipc.len() != solo_ipc.len() || smt_ipc.is_empty() {
        return None;
    }
    let speedups: Vec<f64> = smt_ipc
        .iter()
        .zip(solo_ipc)
        .map(|(&s, &b)| if b > 0.0 { s / b } else { -1.0 })
        .collect();
    harmonic_mean(&speedups)
}

/// Online mean/variance accumulator (Welford) used by long simulations that
/// cannot buffer every sample.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the samples, `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Sample variance, `None` if fewer than 2 samples.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Minimum sample, `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum sample, `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// A mean with a normal-approximation confidence interval, for reporting
/// noisy simulation measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the interval (± this value).
    pub half_width: f64,
}

impl ConfidenceInterval {
    /// 95% confidence interval of the mean of `xs` (normal approximation,
    /// z = 1.96). Returns `None` with fewer than 2 samples.
    pub fn from_samples(xs: &[f64]) -> Option<ConfidenceInterval> {
        let m = mean(xs)?;
        let sd = stddev(xs)?;
        Some(ConfidenceInterval {
            mean: m,
            half_width: 1.96 * sd / (xs.len() as f64).sqrt(),
        })
    }

    /// Whether `value` falls inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.half_width
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.half_width)
    }
}

/// Binomial coefficient `C(n, k)` computed in floating point (the blind
/// contention formula of the paper, Eq. 1, needs `C(1140, i)`-scale values
/// which overflow u128 but are fine in f64 up to its exponent range).
pub fn binomial_f64(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 0.0f64; // log-space accumulation for range safety
    for i in 0..k {
        acc += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    acc.exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn geomean_basic() {
        let g = geomean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[1.0, 0.0]), None);
        assert_eq!(geomean(&[]), None);
    }

    #[test]
    fn harmonic_mean_basic() {
        let h = harmonic_mean(&[1.0, 0.5]).unwrap();
        assert!((h - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[1.0, -1.0]), None);
    }

    #[test]
    fn harmonic_le_geo_le_arith() {
        let xs = [0.7, 1.3, 2.9, 0.4];
        let h = harmonic_mean(&xs).unwrap();
        let g = geomean(&xs).unwrap();
        let a = mean(&xs).unwrap();
        assert!(h <= g + 1e-12);
        assert!(g <= a + 1e-12);
    }

    #[test]
    fn relative_change_signs() {
        assert!((relative_change(0.95, 1.0) + 0.05).abs() < 1e-12);
        assert!((relative_change(1.10, 1.0) - 0.10).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn relative_change_zero_baseline_panics() {
        relative_change(1.0, 0.0);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.051), "5.1%");
        assert_eq!(pct(0.005), "0.5%");
    }

    #[test]
    fn hmean_fairness_perfect_is_one() {
        let f = hmean_fairness(&[1.0, 2.0], &[1.0, 2.0]).unwrap();
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hmean_fairness_punishes_imbalance() {
        // Same total throughput, one balanced, one starving a thread.
        let balanced = hmean_fairness(&[0.5, 1.0], &[1.0, 2.0]).unwrap();
        let unfair = hmean_fairness(&[0.9, 0.2], &[1.0, 2.0]).unwrap();
        assert!(balanced > unfair);
    }

    #[test]
    fn hmean_fairness_rejects_mismatch() {
        assert_eq!(hmean_fairness(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(hmean_fairness(&[], &[]), None);
    }

    #[test]
    fn accumulator_matches_batch() {
        let xs = [1.0, 2.5, -3.0, 0.25, 9.0];
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.add(x);
        }
        assert_eq!(acc.count(), 5);
        assert!((acc.mean().unwrap() - mean(&xs).unwrap()).abs() < 1e-12);
        let sd = stddev(&xs).unwrap();
        assert!((acc.variance().unwrap().sqrt() - sd).abs() < 1e-12);
        assert_eq!(acc.min(), Some(-3.0));
        assert_eq!(acc.max(), Some(9.0));
    }

    #[test]
    fn confidence_interval_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ci = ConfidenceInterval::from_samples(&xs).unwrap();
        assert!((ci.mean - 3.0).abs() < 1e-12);
        assert!(ci.half_width > 0.0);
        assert!(ci.contains(3.0));
        assert!(!ci.contains(100.0));
        assert_eq!(ConfidenceInterval::from_samples(&[1.0]), None);
    }

    #[test]
    fn confidence_interval_shrinks_with_samples() {
        let small: Vec<f64> = (0..10).map(|i| (i % 3) as f64).collect();
        let large: Vec<f64> = (0..1000).map(|i| (i % 3) as f64).collect();
        let a = ConfidenceInterval::from_samples(&small).unwrap();
        let b = ConfidenceInterval::from_samples(&large).unwrap();
        assert!(b.half_width < a.half_width);
    }

    #[test]
    fn binomial_small_values_exact() {
        assert!((binomial_f64(5, 2) - 10.0).abs() < 1e-9);
        assert!((binomial_f64(10, 0) - 1.0).abs() < 1e-12);
        assert!((binomial_f64(10, 10) - 1.0).abs() < 1e-12);
        assert_eq!(binomial_f64(3, 5), 0.0);
    }

    #[test]
    fn binomial_large_values_finite() {
        let c = binomial_f64(1140, 7);
        assert!(c.is_finite() && c > 1e15);
    }
}
