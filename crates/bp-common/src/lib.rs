//! Shared foundation types for the HyBP secure branch predictor reproduction.
//!
//! This crate holds everything the other crates in the workspace agree on:
//!
//! * strongly typed identifiers for the security-relevant execution context
//!   ([`HwThreadId`], [`Asid`], [`Privilege`], [`SecurityDomain`]),
//! * branch-stream vocabulary ([`Addr`], [`BranchKind`], [`BranchRecord`]),
//! * deterministic, seedable PRNGs used by every simulation component
//!   ([`rng::SplitMix64`], [`rng::Xoshiro256StarStar`]),
//! * branch-history registers ([`history::GlobalHistory`], [`history::PathHistory`]),
//! * statistics helpers ([`stats`]),
//! * typed configuration errors ([`error::ConfigError`]),
//! * strict CLI value parsing with one shared error shape ([`parse`]),
//! * a deterministic, dependency-free property-check harness ([`check`]),
//! * a scoped worker pool with an order-preserving `par_map`
//!   ([`pool::Pool`]),
//! * the unified observation layer ([`telemetry`]): structured events on
//!   the virtual cycle clock, the zero-overhead-when-disabled
//!   [`telemetry::Telemetry`] sink handle, and the [`telemetry::Observable`]
//!   snapshot trait every instrumented subsystem implements.
//!
//! # Examples
//!
//! ```
//! use bp_common::{Addr, Privilege, SecurityDomain, HwThreadId, Asid};
//!
//! let dom = SecurityDomain::new(HwThreadId::new(0), Asid::new(42), Privilege::User);
//! assert_eq!(dom.privilege(), Privilege::User);
//! let pc = Addr::new(0x4000_1234);
//! assert_eq!(pc.bits(2, 10), (0x4000_1234u64 >> 2) & 0x3ff);
//! ```

pub mod check;
pub mod error;
pub mod history;
pub mod parse;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod telemetry;

pub use error::ConfigError;
pub use telemetry::{Observable, Telemetry, TelemetryEvent, TelemetrySnapshot};

use std::fmt;

/// `x % m`, taking the mask fast path when `m` is a power of two.
///
/// Every predictor table in the model has a power-of-two geometry, so the
/// hot paths fold indices with an AND instead of a hardware divide; the
/// modulo fallback keeps the function total (and exact) for any `m`.
/// Returns 0 for `m == 0` rather than dividing by zero — table sizes are
/// validated non-zero at construction, so that case is a caller bug that
/// should still not abort a simulation.
#[inline]
#[must_use]
pub fn fast_mod(x: u64, m: u64) -> u64 {
    if m.is_power_of_two() {
        x & (m - 1)
    } else if m == 0 {
        0
    } else {
        x % m
    }
}

/// [`fast_mod`] over `usize` operands (slot and vector-length folding).
#[inline]
#[must_use]
pub fn fast_mod_usize(x: usize, m: usize) -> usize {
    fast_mod(x as u64, m as u64) as usize
}

/// A 64-bit instruction or data address.
///
/// Newtype so that raw integers, set indices and addresses cannot be mixed up
/// accidentally (C-NEWTYPE).
///
/// # Examples
///
/// ```
/// use bp_common::Addr;
/// let a = Addr::new(0xdead_beef);
/// assert_eq!(a.raw(), 0xdead_beef);
/// assert_eq!(a.bits(4, 8), 0xee);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from its raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Extracts `count` bits starting at bit `lo` (little-endian bit order).
    ///
    /// # Panics
    ///
    /// Panics if `count` is 0 or greater than 64.
    pub const fn bits(self, lo: u32, count: u32) -> u64 {
        assert!(count > 0 && count <= 64);
        let shifted = self.0 >> lo;
        if count == 64 {
            shifted
        } else {
            shifted & ((1u64 << count) - 1)
        }
    }

    /// Returns the address advanced by `delta` bytes, wrapping on overflow.
    pub const fn wrapping_add(self, delta: u64) -> Self {
        Addr(self.0.wrapping_add(delta))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

/// Identifier of a *hardware* SMT thread (0 or 1 on the modeled SMT-2 core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct HwThreadId(u8);

impl HwThreadId {
    /// Creates a hardware thread id.
    pub const fn new(id: u8) -> Self {
        HwThreadId(id)
    }

    /// Returns the raw id.
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// Returns the id as a usize index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HwThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hwt{}", self.0)
    }
}

/// Address-space identifier of a *software* thread/process.
///
/// Used together with the VMID and a hardware random value to derive the index
/// seed of the randomized keys table (paper §V-C1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asid(u16);

impl Asid {
    /// Creates an ASID.
    pub const fn new(id: u16) -> Self {
        Asid(id)
    }

    /// Returns the raw id.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asid{}", self.0)
    }
}

/// Virtual-machine identifier (part of the index-seed derivation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vmid(u16);

impl Vmid {
    /// Creates a VMID.
    pub const fn new(id: u16) -> Self {
        Vmid(id)
    }

    /// Returns the raw id.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

/// Processor privilege level.
///
/// HyBP physically isolates predictor state per `(hardware thread, privilege)`
/// combination, so privilege is part of the [`SecurityDomain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Privilege {
    /// User mode (ring 3 / U-mode).
    #[default]
    User,
    /// Kernel mode (ring 0 / S-mode).
    Kernel,
}

impl Privilege {
    /// All privilege levels, in a stable order.
    pub const ALL: [Privilege; 2] = [Privilege::User, Privilege::Kernel];

    /// Returns a dense index (User = 0, Kernel = 1).
    pub const fn index(self) -> usize {
        match self {
            Privilege::User => 0,
            Privilege::Kernel => 1,
        }
    }
}

impl fmt::Display for Privilege {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Privilege::User => f.write_str("user"),
            Privilege::Kernel => f.write_str("kernel"),
        }
    }
}

/// The security context a branch executes in.
///
/// The paper's protection granularity: physical isolation replicates tables per
/// `(hardware thread, privilege)`, and randomization keys are selected per
/// software thread (`Asid`) and privilege. This struct carries all three.
///
/// # Examples
///
/// ```
/// use bp_common::{SecurityDomain, HwThreadId, Asid, Privilege};
/// let d = SecurityDomain::new(HwThreadId::new(1), Asid::new(7), Privilege::Kernel);
/// assert_eq!(d.isolation_slot(), 3); // hw thread 1, kernel
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SecurityDomain {
    hw_thread: HwThreadId,
    asid: Asid,
    privilege: Privilege,
}

impl SecurityDomain {
    /// Creates a security domain.
    pub const fn new(hw_thread: HwThreadId, asid: Asid, privilege: Privilege) -> Self {
        SecurityDomain {
            hw_thread,
            asid,
            privilege,
        }
    }

    /// The hardware thread this domain runs on.
    pub const fn hw_thread(self) -> HwThreadId {
        self.hw_thread
    }

    /// The software address-space id.
    pub const fn asid(self) -> Asid {
        self.asid
    }

    /// The privilege level.
    pub const fn privilege(self) -> Privilege {
        self.privilege
    }

    /// Returns the same domain with a different privilege level.
    pub const fn with_privilege(self, privilege: Privilege) -> Self {
        SecurityDomain { privilege, ..self }
    }

    /// Returns the same domain with a different software thread.
    pub const fn with_asid(self, asid: Asid) -> Self {
        SecurityDomain { asid, ..self }
    }

    /// Dense index over `(hardware thread, privilege)` used to select a
    /// physically isolated table replica. For an SMT-`n` core there are
    /// `2 * n` slots.
    pub const fn isolation_slot(self) -> usize {
        self.hw_thread.index() * 2 + self.privilege.index()
    }

    /// Number of isolation slots for a core with `n_hw_threads` SMT threads.
    pub const fn slot_count(n_hw_threads: usize) -> usize {
        n_hw_threads * 2
    }
}

impl fmt::Display for SecurityDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.hw_thread, self.asid, self.privilege)
    }
}

/// The kind of a control-flow instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional direct branch.
    Conditional,
    /// Unconditional direct branch/jump.
    Direct,
    /// Indirect jump through a register (target varies).
    Indirect,
    /// Direct call (pushes a return address).
    Call,
    /// Return (pops a return address).
    Return,
}

impl BranchKind {
    /// Whether the branch has a direction to predict (only conditionals do).
    pub const fn is_conditional(self) -> bool {
        matches!(self, BranchKind::Conditional)
    }

    /// Whether the branch needs the BTB to supply a target at fetch time.
    ///
    /// All taken control transfers do; conditionals only when taken.
    pub const fn needs_target(self) -> bool {
        true
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::Conditional => "cond",
            BranchKind::Direct => "direct",
            BranchKind::Indirect => "indirect",
            BranchKind::Call => "call",
            BranchKind::Return => "return",
        };
        f.write_str(s)
    }
}

/// One dynamic branch instance in an instruction stream.
///
/// The workload generators emit these; the pipeline feeds them to the branch
/// prediction unit and charges cycles for mispredictions and BTB misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchRecord {
    /// PC of the branch instruction.
    pub pc: Addr,
    /// Kind of control transfer.
    pub kind: BranchKind,
    /// Actual target if taken.
    pub target: Addr,
    /// Actual direction (always `true` for unconditional kinds).
    pub taken: bool,
    /// Number of non-branch instructions preceding this branch since the
    /// previous branch (used by the pipeline to account fetch bandwidth).
    pub gap: u32,
}

impl BranchRecord {
    /// Creates a conditional branch record.
    pub fn conditional(pc: Addr, target: Addr, taken: bool, gap: u32) -> Self {
        BranchRecord {
            pc,
            kind: BranchKind::Conditional,
            target,
            taken,
            gap,
        }
    }

    /// Creates an always-taken control transfer of the given kind.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`BranchKind::Conditional`]; use
    /// [`BranchRecord::conditional`] for those.
    pub fn unconditional(pc: Addr, kind: BranchKind, target: Addr, gap: u32) -> Self {
        assert!(
            !kind.is_conditional(),
            "use BranchRecord::conditional for conditional branches"
        );
        BranchRecord {
            pc,
            kind,
            target,
            taken: true,
            gap,
        }
    }
}

/// A cycle count. Plain alias: arithmetic on cycles is pervasive in the
/// pipeline model and a newtype would add noise without catching real bugs.
pub type Cycle = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_bit_extraction() {
        let a = Addr::new(0b1111_0000_1010);
        assert_eq!(a.bits(0, 4), 0b1010);
        assert_eq!(a.bits(4, 4), 0b0000);
        assert_eq!(a.bits(8, 4), 0b1111);
        assert_eq!(a.bits(0, 64), 0b1111_0000_1010);
    }

    #[test]
    fn addr_display_is_hex() {
        assert_eq!(Addr::new(0xff).to_string(), "0xff");
    }

    #[test]
    fn addr_roundtrip_u64() {
        let a = Addr::from(12345u64);
        assert_eq!(u64::from(a), 12345);
    }

    #[test]
    fn isolation_slots_are_dense_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for t in 0..2u8 {
            for p in Privilege::ALL {
                let d = SecurityDomain::new(HwThreadId::new(t), Asid::new(0), p);
                assert!(seen.insert(d.isolation_slot()));
                assert!(d.isolation_slot() < SecurityDomain::slot_count(2));
            }
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn domain_with_privilege_changes_only_privilege() {
        let d = SecurityDomain::new(HwThreadId::new(1), Asid::new(9), Privilege::User);
        let k = d.with_privilege(Privilege::Kernel);
        assert_eq!(k.hw_thread(), d.hw_thread());
        assert_eq!(k.asid(), d.asid());
        assert_eq!(k.privilege(), Privilege::Kernel);
    }

    #[test]
    fn branch_kind_conditional_detection() {
        assert!(BranchKind::Conditional.is_conditional());
        assert!(!BranchKind::Indirect.is_conditional());
        assert!(!BranchKind::Return.is_conditional());
    }

    #[test]
    #[should_panic(expected = "conditional")]
    fn unconditional_record_rejects_conditional_kind() {
        let _ = BranchRecord::unconditional(Addr::new(0), BranchKind::Conditional, Addr::new(4), 0);
    }

    #[test]
    fn unconditional_records_are_taken() {
        let r = BranchRecord::unconditional(Addr::new(0x10), BranchKind::Call, Addr::new(0x40), 3);
        assert!(r.taken);
        assert_eq!(r.gap, 3);
    }
}
