//! Strict CLI value parsing, shared by every flag that takes an
//! enumerated or numeric value.
//!
//! Every experiment binary promises that a typo is a fatal usage error —
//! `--scale ful` must never silently run at a different scale, and
//! `--trace-mode striict` must never silently pick a decode policy. That
//! promise is only worth something if every flag enforces it the same
//! way, so this module is the single place the error shape lives:
//!
//! * [`one_of`] — enumerated values: `invalid {what} '{v}': expected one
//!   of a, b, c`.
//! * [`positive`] / [`unsigned`] — integer values: `invalid {what} '{v}':
//!   expected a positive integer` (or `a non-negative integer`).
//! * [`key_values`] — `k=v,k=v` option specs (the `--sample` grammar),
//!   where an unknown key or malformed pair is fatal with the valid keys
//!   listed.
//!
//! `Scale::parse`, `ReadMode::parse`, `--threads`, and the `--sample`
//! spec all route through here, so their error messages stay textually
//! consistent and the tests can pin one shape.

/// Parses an enumerated value against `choices` (name → value pairs).
///
/// # Errors
///
/// `invalid {what} '{v}': expected one of {names}` when `v` matches no
/// choice — the valid names are always listed, in the order given.
pub fn one_of<T: Copy>(what: &str, v: &str, choices: &[(&str, T)]) -> Result<T, String> {
    for (name, value) in choices {
        if *name == v {
            return Ok(*value);
        }
    }
    let names: Vec<&str> = choices.iter().map(|(n, _)| *n).collect();
    Err(format!(
        "invalid {what} '{v}': expected one of {}",
        names.join(", ")
    ))
}

/// Parses a strictly positive integer (`>= 1`).
///
/// # Errors
///
/// `invalid {what} '{v}': expected a positive integer` for anything that
/// does not parse or parses to zero.
pub fn positive(what: &str, v: &str) -> Result<u64, String> {
    match v.parse::<u64>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("invalid {what} '{v}': expected a positive integer")),
    }
}

/// Parses a non-negative integer (`>= 0`).
///
/// # Errors
///
/// `invalid {what} '{v}': expected a non-negative integer` for anything
/// that does not parse as an unsigned integer.
pub fn unsigned(what: &str, v: &str) -> Result<u64, String> {
    v.parse::<u64>()
        .map_err(|_| format!("invalid {what} '{v}': expected a non-negative integer"))
}

/// Splits a `key=value,key=value` spec into pairs, validating each key
/// against `keys`. Empty segments are skipped, so trailing commas are
/// harmless; whitespace around segments is trimmed.
///
/// # Errors
///
/// A segment without `=` is `malformed {what} segment '{seg}': expected
/// key=value`; an unknown key lists the valid ones (same shape as
/// [`one_of`]).
pub fn key_values<'a>(
    what: &str,
    spec: &'a str,
    keys: &[&str],
) -> Result<Vec<(&'a str, &'a str)>, String> {
    let mut out = Vec::new();
    for seg in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let Some((k, v)) = seg.split_once('=') else {
            return Err(format!(
                "malformed {what} segment '{seg}': expected key=value"
            ));
        };
        let (k, v) = (k.trim(), v.trim());
        if !keys.contains(&k) {
            return Err(format!(
                "invalid {what} key '{k}': expected one of {}",
                keys.join(", ")
            ));
        }
        out.push((k, v));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_of_accepts_each_choice_and_lists_them_on_error() {
        let choices = [("quick", 1u8), ("default", 2), ("full", 3)];
        assert_eq!(one_of("scale", "quick", &choices), Ok(1));
        assert_eq!(one_of("scale", "full", &choices), Ok(3));
        let e = one_of("scale", "ful", &choices).unwrap_err();
        assert_eq!(
            e,
            "invalid scale 'ful': expected one of quick, default, full"
        );
    }

    #[test]
    fn positive_rejects_zero_and_garbage() {
        assert_eq!(positive("thread count", "8"), Ok(8));
        for bad in ["0", "-2", "two", "1.5", ""] {
            let e = positive("thread count", bad).unwrap_err();
            assert!(e.contains("expected a positive integer"), "{e}");
            assert!(e.contains(bad), "{e}");
        }
    }

    #[test]
    fn unsigned_accepts_zero() {
        assert_eq!(unsigned("warmup", "0"), Ok(0));
        assert!(unsigned("warmup", "-1").is_err());
        assert!(unsigned("warmup", "x").is_err());
    }

    #[test]
    fn key_values_validates_keys_and_shape() {
        let pairs = key_values("sample spec", "k=4, window=100", &["k", "window"]).unwrap();
        assert_eq!(pairs, vec![("k", "4"), ("window", "100")]);
        assert_eq!(
            key_values("sample spec", "", &["k"]).unwrap(),
            Vec::<(&str, &str)>::new()
        );
        let e = key_values("sample spec", "k=4,dims=2", &["k", "window"]).unwrap_err();
        assert_eq!(
            e,
            "invalid sample spec key 'dims': expected one of k, window"
        );
        let e = key_values("sample spec", "k", &["k"]).unwrap_err();
        assert!(e.contains("expected key=value"), "{e}");
    }
}
