//! Branch-history registers used by direction predictors.
//!
//! TAGE folds very long global histories (hundreds of bits) into short table
//! indices; [`GlobalHistory`] stores the raw history and [`FoldedHistory`]
//! maintains the incrementally folded value exactly as hardware would (one XOR
//! of the inserted bit, one XOR of the evicted bit, one rotate per update).

/// A long global branch-direction history (up to [`GlobalHistory::CAPACITY`] bits).
///
/// Bit 0 is the most recent outcome.
///
/// # Examples
///
/// ```
/// use bp_common::history::GlobalHistory;
/// let mut h = GlobalHistory::new();
/// h.push(true);
/// h.push(false);
/// assert_eq!(h.bit(0), false); // most recent
/// assert_eq!(h.bit(1), true);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalHistory {
    words: [u64; Self::WORDS],
}

impl GlobalHistory {
    const WORDS: usize = 16;
    /// Maximum number of history bits retained.
    pub const CAPACITY: usize = Self::WORDS * 64;

    /// Creates an empty (all-zero) history.
    pub const fn new() -> Self {
        GlobalHistory {
            words: [0; Self::WORDS],
        }
    }

    /// Shifts in a new outcome as the most recent bit.
    #[inline]
    pub fn push(&mut self, taken: bool) {
        let mut carry = taken as u64;
        for w in self.words.iter_mut() {
            let out = *w >> 63;
            *w = (*w << 1) | carry;
            carry = out;
        }
    }

    /// Returns history bit `i` (0 = most recent).
    ///
    /// # Panics
    ///
    /// Panics if `i >= CAPACITY`.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < Self::CAPACITY);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Returns the `n` most recent bits as a u64 (`n <= 64`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or greater than 64.
    #[inline]
    pub fn low_bits(&self, n: usize) -> u64 {
        assert!(n > 0 && n <= 64);
        if n == 64 {
            self.words[0]
        } else {
            self.words[0] & ((1u64 << n) - 1)
        }
    }

    /// Clears all history (e.g., on a predictor flush).
    pub fn clear(&mut self) {
        self.words = [0; Self::WORDS];
    }
}

impl Default for GlobalHistory {
    fn default() -> Self {
        GlobalHistory::new()
    }
}

/// Incrementally folded history, as used by TAGE for index/tag computation.
///
/// Maintains `fold(history[0..length])` into `width` bits such that each
/// [`FoldedHistory::update`] costs O(1), mirroring the hardware circular shift
/// register implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldedHistory {
    value: u64,
    length: usize,
    width: usize,
    /// Position of the outgoing (evicted) bit inside the folded register.
    out_point: usize,
}

impl FoldedHistory {
    /// Creates a folded register over `length` history bits folded to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or > 32, or `length` exceeds
    /// [`GlobalHistory::CAPACITY`].
    pub fn new(length: usize, width: usize) -> Self {
        assert!(width > 0 && width <= 32, "fold width out of range");
        assert!(length <= GlobalHistory::CAPACITY, "length exceeds capacity");
        FoldedHistory {
            value: 0,
            length,
            width,
            out_point: length % width,
        }
    }

    /// Folded value (fits in `width` bits).
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The folded width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The history length covered.
    pub fn length(&self) -> usize {
        self.length
    }

    /// Updates the fold after `history` already received the new bit.
    ///
    /// `history` must be the [`GlobalHistory`] *after* pushing the newest
    /// outcome; the evicted bit is read at `length` (the bit that just slid
    /// out of the folded window).
    #[inline]
    pub fn update(&mut self, history: &GlobalHistory) {
        if self.length == 0 {
            return;
        }
        let inserted = history.bit(0) as u64;
        let evicted = if self.length < GlobalHistory::CAPACITY {
            history.bit(self.length) as u64
        } else {
            0
        };
        // Rotate left by one inside `width`, inject new bit, eject old bit.
        self.value = (self.value << 1) | inserted;
        self.value ^= evicted << self.out_point;
        self.value ^= (self.value >> self.width) & 1;
        self.value &= (1u64 << self.width) - 1;
    }

    /// Recomputes the fold from scratch (used by tests and after flushes).
    pub fn rebuild(&mut self, history: &GlobalHistory) {
        self.value = 0;
        if self.length == 0 {
            return;
        }
        // Invariant maintained by `update`: XOR of each in-window history bit
        // placed at position (j mod width), j = 0 for the most recent bit.
        let mut acc = 0u64;
        for j in 0..self.length {
            if history.bit(j) {
                acc ^= 1u64 << (j % self.width);
            }
        }
        self.value = acc;
    }

    /// Clears the folded value.
    pub fn clear(&mut self) {
        self.value = 0;
    }
}

/// A path history register: low bits of recent branch PCs, used to decorrelate
/// TAGE indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PathHistory {
    value: u64,
}

impl PathHistory {
    /// Creates an empty path history.
    pub const fn new() -> Self {
        PathHistory { value: 0 }
    }

    /// Shifts in one address bit of a just-executed branch.
    pub fn push(&mut self, pc_bit: bool) {
        self.value = (self.value << 1) | pc_bit as u64;
    }

    /// Returns the `n` most recent path bits (`n <= 64`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or greater than 64.
    pub fn low_bits(&self, n: usize) -> u64 {
        assert!(n > 0 && n <= 64);
        if n == 64 {
            self.value
        } else {
            self.value & ((1u64 << n) - 1)
        }
    }

    /// Clears the path history.
    pub fn clear(&mut self) {
        self.value = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn push_shifts_history() {
        let mut h = GlobalHistory::new();
        h.push(true);
        h.push(true);
        h.push(false);
        assert!(!h.bit(0));
        assert!(h.bit(1));
        assert!(h.bit(2));
        assert!(!h.bit(3));
        assert_eq!(h.low_bits(3), 0b110);
    }

    #[test]
    fn push_carries_across_words() {
        let mut h = GlobalHistory::new();
        h.push(true);
        for _ in 0..64 {
            h.push(false);
        }
        assert!(h.bit(64), "bit must have carried into the second word");
    }

    #[test]
    fn clear_resets_everything() {
        let mut h = GlobalHistory::new();
        for _ in 0..100 {
            h.push(true);
        }
        h.clear();
        for i in 0..GlobalHistory::CAPACITY {
            assert!(!h.bit(i));
        }
    }

    #[test]
    fn incremental_fold_matches_rebuild() {
        let mut rng = SplitMix64::new(42);
        for (length, width) in [(8usize, 8usize), (13, 11), (27, 12), (130, 12), (640, 10)] {
            let mut h = GlobalHistory::new();
            let mut inc = FoldedHistory::new(length, width);
            let mut reference = FoldedHistory::new(length, width);
            for step in 0..2000 {
                h.push(rng.next_u64() & 1 == 1);
                inc.update(&h);
                reference.rebuild(&h);
                assert_eq!(
                    inc.value(),
                    reference.value(),
                    "mismatch at step {step} for length {length} width {width}"
                );
            }
        }
    }

    #[test]
    fn fold_fits_in_width() {
        let mut rng = SplitMix64::new(1);
        let mut h = GlobalHistory::new();
        let mut f = FoldedHistory::new(100, 9);
        for _ in 0..1000 {
            h.push(rng.next_u64() & 1 == 1);
            f.update(&h);
            assert!(f.value() < (1 << 9));
        }
    }

    #[test]
    fn zero_length_fold_stays_zero() {
        let mut h = GlobalHistory::new();
        let mut f = FoldedHistory::new(0, 8);
        h.push(true);
        f.update(&h);
        assert_eq!(f.value(), 0);
    }

    #[test]
    fn path_history_tracks_bits() {
        let mut p = PathHistory::new();
        p.push(true);
        p.push(false);
        p.push(true);
        assert_eq!(p.low_bits(3), 0b101);
        p.clear();
        assert_eq!(p.low_bits(8), 0);
    }
}
