//! Deterministic, seedable pseudo-random number generators.
//!
//! Every stochastic component in the workspace (workload generation, random
//! replacement, key generation for *modeling* purposes, Monte Carlo attack
//! trials) draws from these generators so that simulations are exactly
//! reproducible from a seed. The cryptographic strength of the *modeled*
//! ciphers lives in `bp-crypto`; these PRNGs are for simulation determinism
//! only.
//!
//! # Examples
//!
//! ```
//! use bp_common::rng::SplitMix64;
//! let mut a = SplitMix64::new(7);
//! let mut b = SplitMix64::new(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// SplitMix64: tiny, fast, statistically solid 64-bit generator.
///
/// Used directly for lightweight decisions (replacement, tie-breaking) and to
/// seed [`Xoshiro256StarStar`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0x5EED_5EED_5EED_5EED)
    }
}

/// xoshiro256**: the workhorse generator for bulk simulation randomness.
///
/// # Examples
///
/// ```
/// use bp_common::rng::Xoshiro256StarStar;
/// let mut r = Xoshiro256StarStar::seeded(42);
/// let v = r.next_below(10);
/// assert!(v < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator with full 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (the generator would be stuck).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "state must not be all zeros");
        Xoshiro256StarStar { s }
    }

    /// Creates a generator by expanding a 64-bit seed with SplitMix64
    /// (the construction recommended by the xoshiro authors).
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Samples an index from a discrete distribution given by `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must not be empty");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Samples a geometric-ish gap: returns a value in `[1, max]` with mean
    /// approximately `mean` (used for inter-branch instruction gaps).
    ///
    /// # Panics
    ///
    /// Panics if `mean < 1.0` or `max` is zero.
    pub fn gap(&mut self, mean: f64, max: u32) -> u32 {
        assert!(mean >= 1.0, "mean gap must be at least 1");
        assert!(max > 0, "max must be positive");
        let p = 1.0 / mean;
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        let g = (u.ln() / (1.0 - p).max(f64::MIN_POSITIVE).ln()).ceil();
        (g as u32).clamp(1, max)
    }
}

impl Default for Xoshiro256StarStar {
    fn default() -> Self {
        Xoshiro256StarStar::seeded(0xC0FF_EE11_D00D_F00D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_first_output() {
        // Reference output of SplitMix64 with seed 0 (widely published).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Xoshiro256StarStar::seeded(1);
        for bound in [1u64, 2, 3, 7, 100, 1024] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xoshiro256StarStar::seeded(9);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut r = Xoshiro256StarStar::seeded(7);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.next_below(8) as usize] += 1;
        }
        let expected = n as f64 / 8.0;
        for &c in &counts {
            assert!(
                (c as f64 - expected).abs() < expected * 0.05,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut r = Xoshiro256StarStar::seeded(3);
        let mut hits = [0u32; 3];
        for _ in 0..30_000 {
            hits[r.weighted_index(&[1.0, 8.0, 1.0])] += 1;
        }
        assert!(hits[1] > hits[0] * 4);
        assert!(hits[1] > hits[2] * 4);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256StarStar::seeded(11);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn gap_mean_is_close() {
        let mut r = Xoshiro256StarStar::seeded(5);
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| r.gap(6.0, 64) as u64).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 6.0).abs() < 0.5, "mean gap {mean}");
    }

    #[test]
    #[should_panic(expected = "all zeros")]
    fn zero_state_rejected() {
        let _ = Xoshiro256StarStar::from_state([0; 4]);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(2);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.1));
        }
    }
}
