//! Property-based tests for the foundation types.

use bp_common::history::{FoldedHistory, GlobalHistory};
use bp_common::rng::{SplitMix64, Xoshiro256StarStar};
use bp_common::stats;
use bp_common::Addr;
use proptest::prelude::*;

proptest! {
    /// Bit extraction matches the shift-and-mask definition for every
    /// address and in-range (lo, count).
    #[test]
    fn addr_bits_matches_definition(raw in any::<u64>(), lo in 0u32..60, count in 1u32..32) {
        let a = Addr::new(raw);
        let expect = (raw >> lo) & ((1u64 << count) - 1);
        prop_assert_eq!(a.bits(lo, count), expect);
    }

    /// The incrementally folded history always equals the from-scratch fold,
    /// for arbitrary outcome streams and fold geometries.
    #[test]
    fn folded_history_incremental_equals_rebuild(
        outcomes in proptest::collection::vec(any::<bool>(), 1..400),
        length in 1usize..300,
        width in 1usize..24,
    ) {
        let mut h = GlobalHistory::new();
        let mut inc = FoldedHistory::new(length, width);
        let mut reference = FoldedHistory::new(length, width);
        for &o in &outcomes {
            h.push(o);
            inc.update(&h);
            reference.rebuild(&h);
            prop_assert_eq!(inc.value(), reference.value());
            prop_assert!(inc.value() < (1u64 << width));
        }
    }

    /// Pushing N outcomes leaves exactly those outcomes in the low N bits.
    #[test]
    fn global_history_preserves_recent_bits(outcomes in proptest::collection::vec(any::<bool>(), 1..64)) {
        let mut h = GlobalHistory::new();
        for &o in &outcomes {
            h.push(o);
        }
        for (age, &o) in outcomes.iter().rev().enumerate() {
            prop_assert_eq!(h.bit(age), o);
        }
    }

    /// next_below never violates its bound, for any seed and bound.
    #[test]
    fn rng_bound_respected(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut a = SplitMix64::new(seed);
        let mut b = Xoshiro256StarStar::seeded(seed);
        for _ in 0..50 {
            prop_assert!(a.next_below(bound) < bound);
            prop_assert!(b.next_below(bound) < bound);
        }
    }

    /// Mean inequalities hold for any positive sample set.
    #[test]
    fn mean_inequalities(xs in proptest::collection::vec(0.001f64..1000.0, 1..40)) {
        let h = stats::harmonic_mean(&xs).unwrap();
        let g = stats::geomean(&xs).unwrap();
        let a = stats::mean(&xs).unwrap();
        prop_assert!(h <= g * (1.0 + 1e-9));
        prop_assert!(g <= a * (1.0 + 1e-9));
    }

    /// The online accumulator agrees with batch statistics.
    #[test]
    fn accumulator_matches_batch(xs in proptest::collection::vec(-1e6f64..1e6, 2..50)) {
        let mut acc = stats::Accumulator::new();
        for &x in &xs {
            acc.add(x);
        }
        let m = stats::mean(&xs).unwrap();
        prop_assert!((acc.mean().unwrap() - m).abs() < 1e-6 * (1.0 + m.abs()));
        let sd = stats::stddev(&xs).unwrap();
        let asd = acc.variance().unwrap().sqrt();
        prop_assert!((asd - sd).abs() < 1e-6 * (1.0 + sd));
    }
}
