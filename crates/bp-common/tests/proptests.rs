//! Property-based tests for the foundation types, on the in-repo
//! deterministic harness (`bp_common::check`).

use bp_common::check::{Checker, Gen};
use bp_common::history::{FoldedHistory, GlobalHistory};
use bp_common::rng::{SplitMix64, Xoshiro256StarStar};
use bp_common::stats;
use bp_common::Addr;

/// Bit extraction matches the shift-and-mask definition for every address
/// and in-range (lo, count).
#[test]
fn addr_bits_matches_definition() {
    Checker::new("addr_bits_matches_definition")
        .cases(256)
        .run(|g| {
            let raw = g.u64();
            let lo = g.u32_in(0, 60);
            let count = g.u32_in(1, 32);
            let a = Addr::new(raw);
            let expect = (raw >> lo) & ((1u64 << count) - 1);
            assert_eq!(a.bits(lo, count), expect);
        });
}

/// The incrementally folded history always equals the from-scratch fold,
/// for arbitrary outcome streams and fold geometries.
#[test]
fn folded_history_incremental_equals_rebuild() {
    Checker::new("folded_history_incremental_equals_rebuild").run(|g| {
        let outcomes = {
            let len = g.usize_in(1, 400);
            g.vec(len, Gen::bool)
        };
        let length = g.usize_in(1, 300);
        let width = g.usize_in(1, 24);
        let mut h = GlobalHistory::new();
        let mut inc = FoldedHistory::new(length, width);
        let mut reference = FoldedHistory::new(length, width);
        for &o in &outcomes {
            h.push(o);
            inc.update(&h);
            reference.rebuild(&h);
            assert_eq!(inc.value(), reference.value());
            assert!(inc.value() < (1u64 << width));
        }
    });
}

/// Pushing N outcomes leaves exactly those outcomes in the low N bits.
#[test]
fn global_history_preserves_recent_bits() {
    Checker::new("global_history_preserves_recent_bits")
        .cases(128)
        .run(|g| {
            let len = g.usize_in(1, 64);
            let outcomes = g.vec(len, Gen::bool);
            let mut h = GlobalHistory::new();
            for &o in &outcomes {
                h.push(o);
            }
            for (age, &o) in outcomes.iter().rev().enumerate() {
                assert_eq!(h.bit(age), o);
            }
        });
}

/// next_below never violates its bound, for any seed and bound.
#[test]
fn rng_bound_respected() {
    Checker::new("rng_bound_respected").cases(128).run(|g| {
        let seed = g.u64();
        let bound = g.in_range(1, 1_000_000);
        let mut a = SplitMix64::new(seed);
        let mut b = Xoshiro256StarStar::seeded(seed);
        for _ in 0..50 {
            assert!(a.next_below(bound) < bound);
            assert!(b.next_below(bound) < bound);
        }
    });
}

/// Mean inequalities hold for any positive sample set.
#[test]
fn mean_inequalities() {
    Checker::new("mean_inequalities").cases(256).run(|g| {
        let len = g.usize_in(1, 40);
        let xs = g.vec(len, |g| g.f64_in(0.001, 1000.0));
        let h = stats::harmonic_mean(&xs).unwrap();
        let gm = stats::geomean(&xs).unwrap();
        let a = stats::mean(&xs).unwrap();
        assert!(h <= gm * (1.0 + 1e-9));
        assert!(gm <= a * (1.0 + 1e-9));
    });
}

/// The online accumulator agrees with batch statistics.
#[test]
fn accumulator_matches_batch() {
    Checker::new("accumulator_matches_batch")
        .cases(256)
        .run(|g| {
            let len = g.usize_in(2, 50);
            let xs = g.vec(len, |g| g.f64_in(-1e6, 1e6));
            let mut acc = stats::Accumulator::new();
            for &x in &xs {
                acc.add(x);
            }
            let m = stats::mean(&xs).unwrap();
            assert!((acc.mean().unwrap() - m).abs() < 1e-6 * (1.0 + m.abs()));
            let sd = stats::stddev(&xs).unwrap();
            let asd = acc.variance().unwrap().sqrt();
            assert!((asd - sd).abs() < 1e-6 * (1.0 + sd));
        });
}
