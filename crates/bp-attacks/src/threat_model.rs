//! The paper's threat-model classification (Table II).
//!
//! Attacks are classified by type (reuse-based vs contention-based) and by
//! the relationship between attacker and victim execution contexts. HyBP
//! targets every combination except same-thread/same-privilege (Spectre V1
//! style), which the paper argues is not a branch predictor isolation
//! problem (§IV).

use std::fmt;

/// Attack family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackType {
    /// Entries set by one party are directly consumed by the other
    /// (BranchScope, Spectre V2, Bluethunder).
    ReuseBased,
    /// The attacker senses evictions caused by the victim (Jump over ASLR).
    ContentionBased,
}

impl fmt::Display for AttackType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AttackType::ReuseBased => "Reuse-based",
            AttackType::ContentionBased => "Contention-based",
        })
    }
}

/// Attacker/victim context relationship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Same software thread, same privilege (e.g. Spectre V1, trojans).
    SameThreadSamePrivilege,
    /// Same thread across a privilege boundary (e.g. Bluethunder on SGX).
    SameThreadCrossPrivilege,
    /// Different threads at the same privilege (SMT co-residency).
    CrossThreadSamePrivilege,
    /// Different threads across privileges.
    CrossThreadCrossPrivilege,
}

impl Scenario {
    /// All scenarios, Table II column order.
    pub const ALL: [Scenario; 4] = [
        Scenario::SameThreadSamePrivilege,
        Scenario::SameThreadCrossPrivilege,
        Scenario::CrossThreadSamePrivilege,
        Scenario::CrossThreadCrossPrivilege,
    ];
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Scenario::SameThreadSamePrivilege => "Same-thread/Same-priv",
            Scenario::SameThreadCrossPrivilege => "Same-thread/Cross-priv",
            Scenario::CrossThreadSamePrivilege => "Cross-thread/Same-priv",
            Scenario::CrossThreadCrossPrivilege => "Cross-thread/Cross-priv",
        })
    }
}

/// Whether a scenario is in HyBP's threat model (Table II check marks).
pub fn in_scope(_attack: AttackType, scenario: Scenario) -> bool {
    // Both attack families: every scenario except same-thread/same-priv.
    scenario != Scenario::SameThreadSamePrivilege
}

/// Renders Table II as text rows.
pub fn table_ii() -> Vec<String> {
    let mut rows = Vec::new();
    for attack in [AttackType::ReuseBased, AttackType::ContentionBased] {
        let marks: Vec<&str> = Scenario::ALL
            .iter()
            .map(|&s| if in_scope(attack, s) { "✓" } else { "○" })
            .collect();
        rows.push(format!(
            "{:<18} {:>22} {:>22} {:>22} {:>22}",
            attack.to_string(),
            marks[0],
            marks[1],
            marks[2],
            marks[3]
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_thread_same_priv_is_out_of_scope() {
        assert!(!in_scope(
            AttackType::ReuseBased,
            Scenario::SameThreadSamePrivilege
        ));
        assert!(!in_scope(
            AttackType::ContentionBased,
            Scenario::SameThreadSamePrivilege
        ));
    }

    #[test]
    fn all_other_scenarios_are_in_scope() {
        for s in [
            Scenario::SameThreadCrossPrivilege,
            Scenario::CrossThreadSamePrivilege,
            Scenario::CrossThreadCrossPrivilege,
        ] {
            assert!(in_scope(AttackType::ReuseBased, s), "{s}");
            assert!(in_scope(AttackType::ContentionBased, s), "{s}");
        }
    }

    #[test]
    fn table_renders_two_rows() {
        let t = table_ii();
        assert_eq!(t.len(), 2);
        assert!(t[0].contains("Reuse"));
        assert!(t[1].contains("Contention"));
    }
}
