//! Blind-contention analysis (paper §VI-A2, Equation 1).
//!
//! An attacker who cannot build eviction sets may randomly select lines and
//! hope to contend with the victim's target branch. Equation (1) gives the
//! probability that `n` attacker instructions produce exactly one *valid*
//! (self-conflict-free) collision on the victim's set:
//!
//! ```text
//! P = Σ_{i=1..W} C(n,i) (1/S)^i (1-1/S)^(n-i) · (W!/(W-i)!)/W^i · i/W
//! ```
//!
//! The paper reports the optimum P ≈ 12% at n = 1140 for S = 1024, W = 7,
//! giving an expected `n/P` ≈ 2¹³·² accesses per probe, and a further
//! `L0·L1` filtering factor under HyBP pushing one round beyond 2²⁸.

/// Evaluates Equation (1): probability of a valid conflict with the victim's
/// target set when the attacker uses `n` uniformly mapped instructions on a
/// BTB with `sets` sets and `ways` ways.
///
/// # Panics
///
/// Panics if `sets` or `ways` is zero.
pub fn valid_conflict_probability(n: u64, sets: u64, ways: u64) -> f64 {
    assert!(sets > 0 && ways > 0, "geometry must be positive");
    let s = sets as f64;
    let w = ways as f64;
    let p = 1.0 / s;
    let mut total = 0.0;
    for i in 1..=ways.min(n) {
        let i_f = i as f64;
        // C(n, i) p^i (1-p)^(n-i), computed in log space for large n.
        let log_binom = log_binomial(n, i);
        let log_term = log_binom + i_f * p.ln() + (n - i) as f64 * (1.0 - p).ln();
        let occupancy: f64 = (0..i).map(|k| (w - k as f64) / w).product();
        total += log_term.exp() * occupancy * (i_f / w);
    }
    total
}

fn log_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let k = k.min(n - k);
    (0..k)
        .map(|i| ((n - i) as f64).ln() - ((i + 1) as f64).ln())
        .sum()
}

/// Searches for the `n` maximizing Equation (1).
///
/// Returns `(n_opt, p_max)`.
pub fn optimal_n(sets: u64, ways: u64) -> (u64, f64) {
    let mut best = (1u64, 0.0f64);
    // P(n) is unimodal; scan a generous range around W·S.
    let hi = sets * (ways + 4);
    let mut n = 1;
    while n <= hi {
        let p = valid_conflict_probability(n, sets, ways);
        if p > best.1 {
            best = (n, p);
        }
        n += (sets / 128).max(1);
    }
    // Refine around the coarse optimum.
    let lo = best.0.saturating_sub(sets / 64);
    for n in lo..best.0 + sets / 64 {
        let p = valid_conflict_probability(n, sets, ways);
        if p > best.1 {
            best = (n, p);
        }
    }
    best
}

/// Expected accesses for one blind-contention probe: `n / P`.
pub fn expected_accesses_per_probe(n: u64, sets: u64, ways: u64) -> f64 {
    n as f64 / valid_conflict_probability(n, sets, ways)
}

/// Expected accesses per probe under HyBP's hybrid protection: the target
/// branch is only visible in the shared L2 at the rate the isolated upper
/// levels let it through, multiplying the cost by `l0_entries · l1_entries`
/// in the paper's §VI-A2 accounting.
pub fn expected_accesses_hybrid(
    n: u64,
    sets: u64,
    ways: u64,
    l0_entries: u64,
    l1_entries: u64,
) -> f64 {
    expected_accesses_per_probe(n, sets, ways) * (l0_entries * l1_entries) as f64
}

/// Success probability of extracting a full `bits`-bit secret where each bit
/// requires an independent successful probe round with probability
/// `p_round`.
pub fn multi_bit_success(p_round: f64, bits: u32) -> f64 {
    p_round.powi(bits as i32)
}

/// Monte Carlo validation of Equation (1): simulate `trials` random
/// placements and count valid conflicts.
pub fn monte_carlo_conflict_probability(
    n: u64,
    sets: u64,
    ways: u64,
    trials: u32,
    seed: u64,
) -> f64 {
    let mut rng = bp_common::rng::Xoshiro256StarStar::seeded(seed);
    let mut hits = 0u32;
    for _ in 0..trials {
        // Victim set is 0 wlog. Count attacker lines landing in it.
        let mut in_set = 0u64;
        for _ in 0..n {
            if rng.next_below(sets) == 0 {
                in_set += 1;
            }
        }
        if in_set == 0 || in_set > ways {
            continue; // no contact, or guaranteed self-conflict
        }
        // Probability that i lines fall into distinct ways without
        // self-conflict and one of them collides with the victim's way.
        let w = ways as f64;
        let mut occupancy = 1.0;
        for k in 0..in_set {
            occupancy *= (w - k as f64) / w;
        }
        let p_valid = occupancy * in_set as f64 / w;
        if rng.chance(p_valid) {
            hits += 1;
        }
    }
    f64::from(hits) / f64::from(trials)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_value_p_of_1140_is_about_12_percent() {
        // §VI-A2 reports P ≈ 12% at n = 1140 for S = 1024, W = 7; the
        // printed Equation (1) evaluates to ≈ 12.7% there. (Its literal
        // maximum sits slightly higher at larger n; see EXPERIMENTS.md.)
        let p = valid_conflict_probability(1140, 1024, 7);
        assert!((0.10..=0.14).contains(&p), "P(1140) = {p}, expected ≈ 12%");
        let (_, p_max) = optimal_n(1024, 7);
        assert!(p_max >= p, "search must find at least the paper's point");
    }

    #[test]
    fn paper_hybrid_cost_is_protected_scale() {
        // n·L0·L1/P at the paper's operating point is ≈ 2^26.2 — orders of
        // magnitude beyond a Linux time slice (2^24 cycles), which is the
        // security requirement of §VI-C. The paper quotes ≥ 2^28 for a full
        // round; our Equation-(1)-literal value is recorded in
        // EXPERIMENTS.md.
        let cost = expected_accesses_hybrid(1140, 1024, 7, 16, 512);
        assert!(
            cost >= (1u64 << 26) as f64,
            "hybrid blind contention cost {cost:.3e} must be ≥ 2^26"
        );
        assert!(cost > (1u64 << 24) as f64 * 3.0, "beyond a time slice");
    }

    #[test]
    fn probability_is_a_probability() {
        for n in [1u64, 10, 100, 1000, 10_000] {
            let p = valid_conflict_probability(n, 1024, 7);
            assert!((0.0..=1.0).contains(&p), "P({n}) = {p}");
        }
    }

    #[test]
    fn too_many_lines_self_conflict() {
        // With n >> W·S nearly every set overflows: valid single-conflict
        // probability collapses.
        let p_good = valid_conflict_probability(1140, 1024, 7);
        let p_flooded = valid_conflict_probability(40_000, 1024, 7);
        assert!(p_flooded < p_good / 4.0);
    }

    #[test]
    fn monte_carlo_agrees_with_formula() {
        let n = 1140;
        let analytic = valid_conflict_probability(n, 1024, 7);
        let sim = monte_carlo_conflict_probability(n, 1024, 7, 4_000, 9);
        assert!(
            (analytic - sim).abs() < 0.02,
            "analytic {analytic} vs monte carlo {sim}"
        );
    }

    #[test]
    fn multi_bit_secret_is_nearly_impossible() {
        // §VI-A2: stealing a 32-bit key by blind contention succeeds with
        // probability below one in a million.
        let (_, p) = optimal_n(1024, 7);
        assert!(multi_bit_success(p, 32) < 1e-6);
    }

    #[test]
    fn smaller_tables_are_easier_targets() {
        let (_, p_small) = optimal_n(64, 4);
        let (_, p_big) = optimal_n(1024, 7);
        assert!(p_small >= p_big * 0.9, "small {p_small} vs big {p_big}");
    }
}
