//! Jump-over-ASLR-style set inference (§VI-A2, "Contention based attacks").
//!
//! The classic attack (Evtyushkin et al., MICRO 2016): the attacker fills
//! BTB sets with its own branches, lets the victim run one taken branch, and
//! observes *which* of its sets suffered an eviction. On an unprotected BTB
//! the evicted set index equals the victim branch's PC bits — leaking
//! address-space-layout information. Under HyBP the attacker and victim use
//! uncorrelated keyed index mappings (and the victim's branch usually never
//! reaches the shared level at all), so the observed set carries no
//! information about the address.
//!
//! The experiment quantifies this as an *inference accuracy*: across trials
//! with the victim branch placed at a random raw set, how often does the
//! attacker's observation recover that set?

use bp_common::rng::Xoshiro256StarStar;
use bp_common::Addr;
use hybp::Mechanism;

use crate::env::AttackEnv;

/// Result of a set-inference campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceResult {
    /// Trials run.
    pub trials: u32,
    /// Trials where the attacker recovered the victim's raw set index.
    pub correct: u32,
    /// Trials where any eviction signal was observed at all.
    pub signal: u32,
}

impl InferenceResult {
    /// Fraction of trials recovering the correct set.
    pub fn accuracy(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            f64::from(self.correct) / f64::from(self.trials)
        }
    }

    /// Fraction of trials with any observable signal.
    pub fn signal_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            f64::from(self.signal) / f64::from(self.trials)
        }
    }
}

/// Attacker probe line `j` for raw set `s` (distinct tags per way).
fn probe_line(s: u64, j: u64) -> Addr {
    Addr::new(0x5500_0000 + (j << 14) + (s << 2))
}

/// Runs the set-inference attack over `trials` random victim placements,
/// monitoring `monitored_sets` raw sets with `ways`-deep priming.
///
/// Per trial: prime the monitored sets, wash them into the shared level,
/// have the victim execute a burst of its (secret-placed) branch plus enough
/// of its own code to push it down, then probe and report the set with the
/// most misses.
pub fn set_inference(
    mechanism: Mechanism,
    trials: u32,
    monitored_sets: u64,
    seed: u64,
) -> InferenceResult {
    let mut rng = Xoshiro256StarStar::seeded(seed ^ 0x1A5B);
    let mut result = InferenceResult {
        trials,
        correct: 0,
        signal: 0,
    };
    for t in 0..trials {
        let mut env = AttackEnv::new(mechanism, seed ^ (u64::from(t) << 16));
        let (_sets, ways) = env.l2_geometry();
        let ways = ways as u64;
        // The secret: which monitored raw set the victim's branch occupies.
        let secret = rng.next_below(monitored_sets);
        let victim_pc = Addr::new(0x00A0_0000 + (secret << 2));
        let victim_tgt = Addr::new(0x00B0_0000);

        // Prime: two passes over every monitored set, then wash with filler
        // (sets 512.. are off-limits to the probes).
        for _ in 0..2 {
            for s in 0..monitored_sets {
                for j in 0..ways {
                    env.attacker_access(probe_line(s, j));
                }
            }
        }
        for k in 0..700u64 {
            let set = 512 + (k % 448);
            env.attacker_access(Addr::new(0x7C00_0000 + ((k / 448) << 14) + (set << 2)));
        }

        // Victim: executes its secret branch repeatedly amid enough of its
        // own code to wash it into the shared level.
        for k in 0..700u64 {
            let g = Addr::new(0x00C0_0000 + ((k % 256 + 256) << 2) + ((k / 256) << 14));
            env.victim_branch(g, g.wrapping_add(0x40));
            if k % 37 == 11 && k < 480 {
                env.victim_branch(victim_pc, victim_tgt);
            }
        }

        // Probe: count misses per monitored set.
        let mut best = (0u64, 0u32);
        let mut any = 0u32;
        for s in 0..monitored_sets {
            let mut misses = 0u32;
            for j in 0..ways {
                if env.attacker_access(probe_line(s, j)).slow {
                    misses += 1;
                }
            }
            any += misses;
            if misses > best.1 {
                best = (s, misses);
            }
        }
        if any > 0 {
            result.signal += 1;
            if best.1 > 0 && best.0 == secret {
                result.correct += 1;
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_leaks_the_set_index() {
        let r = set_inference(Mechanism::Baseline, 10, 16, 3);
        assert!(
            r.accuracy() > 0.5,
            "baseline set inference accuracy {} (signal {})",
            r.accuracy(),
            r.signal_rate()
        );
    }

    #[test]
    fn hybp_breaks_the_inference() {
        let r = set_inference(Mechanism::hybp_default(), 10, 16, 4);
        // With uncorrelated keyed mappings, recovering the right set out of
        // 16 should be near chance (≤ ~1/16 plus noise).
        assert!(
            r.accuracy() < 0.3,
            "HyBP set inference accuracy {} should collapse",
            r.accuracy()
        );
    }

    #[test]
    fn partition_removes_the_signal_entirely() {
        // With per-thread tables there is no shared level to contend in.
        let r = set_inference(Mechanism::Partition, 6, 16, 5);
        assert!(
            r.accuracy() < 0.2,
            "partition set inference accuracy {}",
            r.accuracy()
        );
    }
}
