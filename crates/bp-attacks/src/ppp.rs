//! Algorithm 1: PPP-style eviction-set construction against the
//! hierarchical BTB (paper §VI-A2).
//!
//! The attacker prepares `S` candidate subsets of `W` lines sharing a raw
//! set index, prunes subsets with self-conflicts, then binary-searches for
//! the subset that contends with the victim's target branch `x` — deciding
//! each step from the *expectation* of misprediction-count differences
//! between victim runs with and without `x` (Algorithm 1 lines 9/11).
//!
//! Against HyBP two effects drive the cost up, exactly as the paper argues:
//! the attacker's own lines reach the shared L2 only after being washed
//! through its private L0/L1 (filler accesses), and the victim's `x` is
//! only *sometimes* present in L2 at all (the `m` filtering factor), making
//! the differential signal faint. The run-level success probability and the
//! per-run access count yield the extrapolated cost the paper quotes
//! (≈ 1% success ⇒ ≈ 2²⁷ accesses).

use bp_common::Addr;

use crate::env::AttackEnv;

/// Algorithm 1 parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PppParams {
    /// How many raw-index subsets to build (≤ sets; sampling keeps runs
    /// laptop-sized — the per-access cost scales linearly).
    pub subsets: usize,
    /// Expectation samples per binary-search test.
    pub repeats: u32,
    /// Victim gadget size in branches (washes `x` toward L2).
    pub gadget_branches: usize,
    /// Attacker filler accesses that wash its primes out of L0/L1.
    pub filler_lines: usize,
    /// Mean miss-difference needed to follow a binary-search half.
    pub decision_threshold: f64,
}

impl PppParams {
    /// Laptop-scale defaults.
    pub fn default_scaled() -> Self {
        PppParams {
            subsets: 64,
            repeats: 4,
            gadget_branches: 700,
            filler_lines: 700,
            decision_threshold: 0.12,
        }
    }

    /// Small geometry for unit tests.
    pub fn quick() -> Self {
        PppParams {
            subsets: 8,
            repeats: 12,
            gadget_branches: 650,
            filler_lines: 650,
            decision_threshold: 0.12,
        }
    }
}

/// Result of one Algorithm 1 run.
#[derive(Debug, Clone, PartialEq)]
pub struct PppRun {
    /// The candidate eviction set the algorithm settled on, if any.
    pub found: Option<Vec<Addr>>,
    /// BPU accesses spent in this run.
    pub accesses: u64,
    /// Ground-truth verification: how many of the found lines map to the
    /// victim target's physical L2 set (all `ways` ⇒ a genuine set).
    pub matching_lines: usize,
    /// Whether the run counts as a full success.
    pub genuine: bool,
}

/// Aggregated campaign statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PppCampaign {
    /// Runs attempted.
    pub runs: u32,
    /// Genuine successes.
    pub successes: u32,
    /// Total accesses across runs.
    pub total_accesses: u64,
}

impl PppCampaign {
    /// Per-run success probability.
    pub fn success_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            f64::from(self.successes) / f64::from(self.runs)
        }
    }

    /// Extrapolated accesses to one expected success (`accesses/run ÷ p`).
    pub fn expected_accesses_to_success(&self) -> f64 {
        let per_run = self.total_accesses as f64 / f64::from(self.runs.max(1));
        let p = self.success_rate();
        if p == 0.0 {
            f64::INFINITY
        } else {
            per_run / p
        }
    }
}

/// Attacker line `(subset i, way j)`: raw L2 index = `i`, distinct tags.
fn line(i: usize, j: usize) -> Addr {
    Addr::new(0x6000_0000 + ((j as u64) << 14) + ((i as u64) << 2))
}

/// Filler lines live in raw sets 512..960, away from the candidate
/// subsets' raw sets, so that on the unprotected baseline they do not create
/// false conflicts (under randomization the keys mix everything anyway —
/// that noise is part of the attack's cost).
fn filler_line(k: usize) -> Addr {
    let set = 512 + (k as u64 % 448);
    let tag = k as u64 / 448;
    Addr::new(0x7800_0000 + (tag << 14) + (set << 2))
}

/// Victim gadget lines use raw L2 sets 256..511: they exercise every L1 set
/// (washing the target branch down to the shared L2) without directly
/// contending with the attacker's candidate sets — contention noise there
/// would drown the differential signal the attack measures.
fn gadget_branch(k: usize) -> Addr {
    let set = 256 + (k as u64 % 256);
    let tag = k as u64 / 256;
    Addr::new(0x0090_0000 + (tag << 14) + (set << 2))
}

/// The victim's secret target branch.
pub fn victim_target_pc() -> Addr {
    Addr::new(0x0094_8010)
}

/// Primes every line of `subsets` and washes them through the attacker's
/// upper levels with filler.
fn prime(env: &mut AttackEnv, subsets: &[usize], ways: usize, filler: usize) {
    // Two passes help the probe lines converge to L2 residency despite
    // random replacement; the filler then washes them out of the attacker's
    // private upper levels into the shared L2 where contention with the
    // victim is observable.
    for _ in 0..2 {
        for &i in subsets {
            for j in 0..ways {
                env.attacker_access(line(i, j));
            }
        }
    }
    for k in 0..filler {
        env.attacker_access(filler_line(k));
    }
}

/// Probes every line of `subsets`, returning the number of misses.
fn probe(env: &mut AttackEnv, subsets: &[usize], ways: usize) -> u32 {
    let mut misses = 0;
    for &i in subsets {
        for j in 0..ways {
            if env.attacker_access(line(i, j)).slow {
                misses += 1;
            }
        }
    }
    misses
}

/// The victim executes its gadget (and optionally the target branch `x`).
fn victim_run(env: &mut AttackEnv, gadget_branches: usize, include_x: bool) {
    let x = victim_target_pc();
    let last_x = gadget_branches.saturating_sub(220);
    for k in 0..gadget_branches {
        env.victim_branch(gadget_branch(k), gadget_branch(k).wrapping_add(0x40));
        // The target branch executes a few times, early enough that the
        // remaining gadget traffic washes it down into the shared L2.
        if include_x && k % 41 == 17 && k < last_x {
            env.victim_branch(x, Addr::new(0x00A0_0000));
        }
    }
}

/// `test(G, g)` of Algorithm 1: primes the subsets in `group`, lets the
/// victim run, re-probes, and returns the miss count.
fn test(
    env: &mut AttackEnv,
    group: &[usize],
    ways: usize,
    params: &PppParams,
    include_x: bool,
) -> u32 {
    prime(env, group, ways, params.filler_lines);
    victim_run(env, params.gadget_branches, include_x);
    probe(env, group, ways)
}

/// Public debug wrapper around the internal expectation statistic.
pub fn expectation_difference_debug(
    env: &mut AttackEnv,
    group: &[usize],
    ways: usize,
    params: &PppParams,
) -> f64 {
    expectation_difference(env, group, ways, params)
}

/// Mean miss-difference between victim-with-x and victim-without-x over
/// `repeats` samples (the expectation in lines 9/11).
fn expectation_difference(
    env: &mut AttackEnv,
    group: &[usize],
    ways: usize,
    params: &PppParams,
) -> f64 {
    // Smaller groups carry the same absolute signal over less aggregate
    // noise floor but fewer contributing lines; spend proportionally more
    // repeats as the search narrows (cheaper per test, too).
    let scale = (params.subsets / group.len().max(1)).clamp(1, 4) as u32;
    let repeats = params.repeats * scale;
    let mut with_x = 0u32;
    let mut without_x = 0u32;
    for _ in 0..repeats {
        with_x += test(env, group, ways, params, true);
        without_x += test(env, group, ways, params, false);
    }
    (f64::from(with_x) - f64::from(without_x)) / f64::from(repeats)
}

/// Debug variant reporting the post-prune collection size.
pub fn run_algorithm1_debug(env: &mut AttackEnv, params: &PppParams) -> (usize, PppRun) {
    // Duplicated prune to observe intermediate state without polluting the
    // main path; kept in sync with `run_algorithm1`.
    let mut probe_env_subsets: Vec<usize> = (0..params.subsets).collect();
    let (_s, ways) = env.l2_geometry();
    prime(env, &probe_env_subsets, ways, params.filler_lines);
    probe_env_subsets.retain(|&i| {
        let mut misses = 0;
        for j in 0..ways {
            if env.attacker_access(line(i, j)).slow {
                misses += 1;
            }
        }
        misses <= 1
    });
    let n = probe_env_subsets.len();
    let run = run_algorithm1(env, params);
    (n, run)
}

/// Runs Algorithm 1 once. The victim's target branch is
/// [`victim_target_pc`]; ground truth is checked through the evaluation
/// oracle after the search concludes.
pub fn run_algorithm1(env: &mut AttackEnv, params: &PppParams) -> PppRun {
    let start = env.accesses();
    let (_sets, ways) = env.l2_geometry();

    // Step 1: candidate collection C = subsets 0..subsets.
    let mut collection: Vec<usize> = (0..params.subsets).collect();

    // Step 2: eliminate self-conflicting subsets — prime everything, then
    // probe each subset; subsets with internal misses conflict with the
    // rest of C (lines 2-6).
    prime(env, &collection, ways, params.filler_lines);
    collection.retain(|&i| {
        let mut misses = 0;
        for j in 0..ways {
            if env.attacker_access(line(i, j)).slow {
                misses += 1;
            }
        }
        // Random replacement makes single evictions noisy; only subsets
        // with a clear self-conflict signal are discarded.
        misses <= 1
    });
    if collection.is_empty() {
        return PppRun {
            found: None,
            accesses: env.accesses() - start,
            matching_lines: 0,
            genuine: false,
        };
    }

    // Step 3: binary search (lines 7-16).
    while collection.len() > 1 {
        let mid = collection.len() / 2;
        let (g1, g2) = collection.split_at(mid);
        let g1v = g1.to_vec();
        let g2v = g2.to_vec();
        // The decision statistic is the *contrast* |E(test with x) −
        // E(test without x)|: a resident-or-absent target line perturbs the
        // set's observable behaviour in either direction depending on which
        // arm inherits it; groups unrelated to x show no contrast at all.
        if expectation_difference(env, &g1v, ways, params).abs() > params.decision_threshold {
            collection = g1v;
        } else if expectation_difference(env, &g2v, ways, params).abs() > params.decision_threshold
        {
            collection = g2v;
        } else {
            return PppRun {
                found: None,
                accesses: env.accesses() - start,
                matching_lines: 0,
                genuine: false,
            };
        }
    }
    let subset = collection[0];
    let found: Vec<Addr> = (0..ways).map(|j| line(subset, j)).collect();

    // Ground-truth verification (evaluation only).
    let x_set = env.victim_l2_set(victim_target_pc());
    let matching = found
        .iter()
        .filter(|&&pc| env.attacker_l2_set(pc) == x_set)
        .count();
    let genuine = matching == ways;
    PppRun {
        found: Some(found),
        accesses: env.accesses() - start,
        matching_lines: matching,
        genuine,
    }
}

/// Runs a campaign of `runs` Algorithm 1 attempts, re-keying the victim
/// between attempts (fresh contexts, as across context switches).
pub fn campaign(
    mechanism: hybp::Mechanism,
    params: &PppParams,
    runs: u32,
    seed: u64,
) -> PppCampaign {
    let mut successes = 0;
    let mut total_accesses = 0;
    for r in 0..runs {
        let mut env = AttackEnv::new(mechanism, seed ^ u64::from(r) << 8);
        let out = run_algorithm1(&mut env, params);
        if out.genuine {
            successes += 1;
        }
        total_accesses += out.accesses;
    }
    PppCampaign {
        runs,
        successes,
        total_accesses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybp::Mechanism;

    #[test]
    fn baseline_algorithm_finds_the_target_set() {
        // Without randomization the victim target's raw set is its physical
        // set; when it is covered by the sampled subsets, the search should
        // converge on it with decent probability.
        let mut params = PppParams::quick();
        // Cover the victim's raw set: bits [2,12) of 0x948010 = 0x004.
        params.subsets = 16;
        let c = campaign(Mechanism::Baseline, &params, 6, 11);
        // Even unprotected, the exclusive BTB hierarchy's random replacement
        // makes the differential noisy; a scaled-down campaign lands a
        // genuine eviction set in a fraction of runs (the bench binary runs
        // the full campaign and reports the extrapolated cost).
        assert!(
            c.successes >= 1,
            "baseline PPP should sometimes succeed: {}/{} (cost {:.0})",
            c.successes,
            c.runs,
            c.expected_accesses_to_success()
        );
    }

    #[test]
    fn hybp_collapses_success_rate() {
        let params = PppParams::quick();
        let c = campaign(Mechanism::hybp_default(), &params, 6, 13);
        assert!(
            c.successes <= 1,
            "HyBP PPP success must be rare: {}/{}",
            c.successes,
            c.runs
        );
    }

    #[test]
    fn run_reports_access_count() {
        let mut env = AttackEnv::new(Mechanism::Baseline, 17);
        let out = run_algorithm1(&mut env, &PppParams::quick());
        assert!(out.accesses > 1_000, "accesses {}", out.accesses);
    }

    #[test]
    fn campaign_extrapolation_math() {
        let c = PppCampaign {
            runs: 100,
            successes: 1,
            total_accesses: 100 * 1_000_000,
        };
        assert!((c.success_rate() - 0.01).abs() < 1e-12);
        assert!((c.expected_accesses_to_success() - 1e8).abs() < 1.0);
    }
}
