//! Security-margin analysis (paper §VI-C): is the key-change policy fast
//! enough that no analyzed attack completes within one key epoch?
//!
//! The paper's argument: the cheapest analyzed attack against the hybrid
//! design needs ≈ 2²⁷ BPU accesses, while keys change at least every context
//! switch (a 2²⁴-cycle Linux time slice at 4 GHz) *and* every
//! `renewal_threshold` accesses. This module assembles the attack-cost
//! inventory and checks the policy against it, including the paper's
//! multi-target degradation (16 simultaneously attacked branches cut the
//! cost to ≈ 2²⁴).

use crate::{blind, gem, pht_analysis};

/// Cost (in BPU accesses) of each analyzed attack family against the
/// hybrid-protected predictor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackCostInventory {
    /// PPP-style eviction-set construction (§VI-A2): extrapolated accesses.
    pub ppp_accesses: f64,
    /// Blind contention, one target branch (Equation 1 with L0·L1 filter).
    pub blind_accesses: f64,
    /// PHT reuse Prime+Probe (Equation 2).
    pub pht_accesses: f64,
    /// Re-key bound if randomization had no upper-level filter (GEM, §III-C)
    /// — the counterfactual showing why the hybrid matters.
    pub unfiltered_gem_accesses: f64,
}

impl AttackCostInventory {
    /// The paper's configuration: S = 1024, W = 7, L0 = 16, L1 = 512,
    /// TAGE (I = 13, T = 12, C = 2, U = 1), PPP at the measured ≈ 1%
    /// success with ≈ 2²⁰-access runs ⇒ ≈ 2²⁷.
    pub fn paper_default() -> Self {
        AttackCostInventory {
            ppp_accesses: (1u64 << 27) as f64,
            blind_accesses: blind::expected_accesses_hybrid(1140, 1024, 7, 16, 512),
            pht_accesses: pht_analysis::PhtAttackParams::paper().accesses_per_probe(),
            unfiltered_gem_accesses: gem::rekey_interval_estimate(7 * 1024) as f64,
        }
    }

    /// The cheapest attack against the *hybrid* design (the filter applies,
    /// so the GEM counterfactual is excluded).
    pub fn cheapest_hybrid_attack(&self) -> f64 {
        self.ppp_accesses
            .min(self.blind_accesses)
            .min(self.pht_accesses)
    }

    /// Attack cost when the adversary targets `n` victim branches at once
    /// (§VI-C: cost shrinks roughly linearly; 16 targets ≈ 2²⁴).
    pub fn multi_target_cost(&self, n_targets: u32) -> f64 {
        self.cheapest_hybrid_attack() / f64::from(n_targets.max(1))
    }
}

/// A key-change policy: keys change at context switches and at an access
/// counter threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyChangePolicy {
    /// Maximum accesses between renewals (the dedicated counter, §VI-C).
    pub access_threshold: u64,
    /// Context-switch interval in cycles.
    pub time_slice_cycles: u64,
    /// Upper bound on BPU accesses per cycle (the paper's worst case: 1).
    pub accesses_per_cycle: f64,
}

impl KeyChangePolicy {
    /// The paper's policy: 2²⁷ counter threshold, 2²⁴-cycle slice, one
    /// access per cycle worst case.
    pub fn paper_default() -> Self {
        KeyChangePolicy {
            access_threshold: 1 << 27,
            time_slice_cycles: 1 << 24,
            accesses_per_cycle: 1.0,
        }
    }

    /// Accesses an attacker can make within one key epoch: the counter cap
    /// or the slice cap, whichever binds first.
    pub fn max_accesses_per_epoch(&self) -> f64 {
        (self.access_threshold as f64).min(self.time_slice_cycles as f64 * self.accesses_per_cycle)
    }

    /// Whether no analyzed attack fits in a key epoch.
    pub fn is_secure_against(&self, inventory: &AttackCostInventory) -> bool {
        inventory.cheapest_hybrid_attack() > self.max_accesses_per_epoch()
    }

    /// The largest simultaneous-target count the policy still covers
    /// (§VI-C: 16 for the paper's numbers).
    pub fn max_covered_targets(&self, inventory: &AttackCostInventory) -> u32 {
        let budget = self.max_accesses_per_epoch();
        let mut n = 1u32;
        while inventory.multi_target_cost(n + 1) > budget && n < 1 << 16 {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_policy_is_secure() {
        let inv = AttackCostInventory::paper_default();
        let pol = KeyChangePolicy::paper_default();
        assert!(pol.is_secure_against(&inv));
    }

    #[test]
    fn cheapest_attack_is_well_above_time_slice() {
        let inv = AttackCostInventory::paper_default();
        // ≈ 2^26+ against a 2^24 slice.
        assert!(inv.cheapest_hybrid_attack() > (1u64 << 25) as f64);
    }

    #[test]
    fn without_the_filter_rekeying_would_be_constant() {
        // The §III-C counterfactual: randomization-only must re-key every
        // ≈ 2^16 accesses — over a hundred times per time slice.
        let inv = AttackCostInventory::paper_default();
        let pol = KeyChangePolicy::paper_default();
        let rekeys_per_slice =
            pol.time_slice_cycles as f64 * pol.accesses_per_cycle / inv.unfiltered_gem_accesses;
        assert!(
            rekeys_per_slice > 100.0,
            "unfiltered randomization re-keys {rekeys_per_slice:.0}x per slice"
        );
    }

    #[test]
    fn multi_target_coverage_is_around_sixteen() {
        // §VI-C: 16 simultaneously attacked branches bring the cost near the
        // slice budget.
        let inv = AttackCostInventory::paper_default();
        let pol = KeyChangePolicy::paper_default();
        let n = pol.max_covered_targets(&inv);
        assert!(
            (2..=64).contains(&n),
            "covered targets {n} should be a small number (paper: ~16)"
        );
    }

    #[test]
    fn slower_attacker_helps_the_defender() {
        let inv = AttackCostInventory::paper_default();
        let fast = KeyChangePolicy::paper_default();
        let slow = KeyChangePolicy {
            accesses_per_cycle: 0.25,
            ..fast
        };
        assert!(slow.max_covered_targets(&inv) >= fast.max_covered_targets(&inv));
    }
}
