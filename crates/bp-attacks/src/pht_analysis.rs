//! PHT reuse-attack cost analysis (paper §VI-B, Equation 2).
//!
//! With index and content encoding on the TAGE tagged tables, a Prime+Probe
//! on a direction predictor entry requires enumerating the encoded index and
//! tag space while defeating counter and useful-bit state:
//!
//! ```text
//! accesses = 2^(I+T) · (2^C + 2^U + 1)
//! ```
//!
//! where `I` = log2(entries per tag table), `T` = tag bits, `C` = counter
//! bits, `U` = useful bits. The paper's instantiation (I = 13, T = 12,
//! C = 2, U = 1) gives ≈ 2²⁸ accesses per effective Prime+Probe.

/// Parameters of Equation (2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhtAttackParams {
    /// log2 of entries per tagged table.
    pub index_bits: u32,
    /// Partial tag width.
    pub tag_bits: u32,
    /// Prediction counter width.
    pub ctr_bits: u32,
    /// Useful counter width.
    pub useful_bits: u32,
}

impl PhtAttackParams {
    /// The paper's instantiation: I = 13, T = 12, C = 2, U = 1.
    pub const fn paper() -> Self {
        PhtAttackParams {
            index_bits: 13,
            tag_bits: 12,
            ctr_bits: 2,
            useful_bits: 1,
        }
    }

    /// Parameters matching this reproduction's TAGE geometry (2K-entry
    /// tables, 11-bit tags on the long-history tables).
    pub const fn repro_default() -> Self {
        PhtAttackParams {
            index_bits: 11,
            tag_bits: 11,
            ctr_bits: 3,
            useful_bits: 1,
        }
    }

    /// Equation (2): expected accesses for one effective Prime+Probe.
    pub fn accesses_per_probe(&self) -> f64 {
        let space = 2f64.powi((self.index_bits + self.tag_bits) as i32);
        let state = 2f64.powi(self.ctr_bits as i32) + 2f64.powi(self.useful_bits as i32) + 1.0;
        space * state
    }

    /// log2 of [`PhtAttackParams::accesses_per_probe`].
    pub fn log2_accesses(&self) -> f64 {
        self.accesses_per_probe().log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_value_is_about_2_28() {
        let p = PhtAttackParams::paper();
        let log2 = p.log2_accesses();
        // 2^25 · 7 = 2^27.8
        assert!(
            (27.0..=28.5).contains(&log2),
            "paper Eq. 2 gives 2^{log2:.2}, expected ≈ 2^28"
        );
    }

    #[test]
    fn cost_exceeds_linux_time_slice_budget() {
        // §VI-C: the default Linux slice is ≈ 2^24 cycles at 4 GHz; even at
        // one access per cycle the PHT attack cannot finish within it.
        let p = PhtAttackParams::paper();
        assert!(p.accesses_per_probe() > (1u64 << 24) as f64);
    }

    #[test]
    fn wider_tags_raise_cost_exponentially() {
        let narrow = PhtAttackParams {
            tag_bits: 8,
            ..PhtAttackParams::paper()
        };
        let wide = PhtAttackParams::paper();
        let ratio = wide.accesses_per_probe() / narrow.accesses_per_probe();
        assert!((ratio - 16.0).abs() < 1e-9, "4 extra tag bits = 16x");
    }

    #[test]
    fn repro_geometry_is_same_order() {
        let log2 = PhtAttackParams::repro_default().log2_accesses();
        assert!((24.0..=29.0).contains(&log2));
    }
}
