//! The attacker/victim co-residency harness.
//!
//! Two hardware threads share one [`SecureBpu`]: thread 0 is the attacker,
//! thread 1 the victim (matching the paper's SMT threat model; the same
//! harness also serves cross-privilege attacks by switching the victim's
//! privilege). The attacker only observes what real attacks observe —
//! whether its own branches hit or missed (timing) and whether the victim
//! mispredicted (via a Flush+Reload-style side channel the paper's PoC
//! uses) — never raw table state.

use bp_common::{Addr, Asid, BranchKind, BranchRecord, Cycle, HwThreadId, Privilege};
use hybp::{Mechanism, SecureBpu};

/// Attacker/victim pair sharing one branch prediction unit.
// No `Debug`: owns the [`SecureBpu`] and with it the key material; a
// printable attack environment would leak exactly what the harness says
// the attacker never sees (secret-hygiene).
pub struct AttackEnv {
    bpu: SecureBpu,
    now: Cycle,
    accesses: u64,
    attacker: HwThreadId,
    victim: HwThreadId,
    /// Attacker and victim time-share one hardware thread (the paper's
    /// FPGA PoC topology) instead of running on SMT siblings.
    single_core: bool,
    active_is_attacker: bool,
}

/// A branch access outcome the attacker can time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// The access suffered a BTB miss / target misprediction (slow path).
    pub slow: bool,
    /// BTB level that served it, if any.
    pub level: Option<u8>,
}

impl AttackEnv {
    /// Creates the SMT co-residency environment: attacker on hardware
    /// thread 0 (ASID 100), victim on hardware thread 1 (ASID 200), running
    /// concurrently.
    pub fn new(mechanism: Mechanism, seed: u64) -> Self {
        // bp-lint: allow(panic-freedom) reason="attack points run under supervised sweeps: an invalid mechanism is a programming error surfaced as a recorded point failure, not an input"
        let mut bpu = SecureBpu::new(mechanism, 2, seed).expect("attack env mechanisms are valid");
        let attacker = HwThreadId::new(0);
        let victim = HwThreadId::new(1);
        bpu.on_context_switch(attacker, Asid::new(100), 0);
        bpu.on_context_switch(victim, Asid::new(200), 0);
        AttackEnv {
            bpu,
            now: 10_000,
            accesses: 0,
            attacker,
            victim,
            single_core: false,
            active_is_attacker: true,
        }
    }

    /// Creates the single-core environment (the paper's FPGA PoC setup):
    /// attacker and victim are separate processes *time-sharing one
    /// hardware thread*; every control transfer between them is an OS
    /// context switch the protection mechanisms react to.
    pub fn new_single_core(mechanism: Mechanism, seed: u64) -> Self {
        let hw = HwThreadId::new(0);
        // bp-lint: allow(panic-freedom) reason="attack points run under supervised sweeps: an invalid mechanism is a programming error surfaced as a recorded point failure, not an input"
        let mut bpu = SecureBpu::new(mechanism, 2, seed).expect("attack env mechanisms are valid");
        bpu.on_context_switch(hw, Asid::new(100), 0);
        AttackEnv {
            bpu,
            now: 10_000,
            accesses: 0,
            attacker: hw,
            victim: hw,
            single_core: true,
            active_is_attacker: true,
        }
    }

    fn ensure_active(&mut self, attacker: bool) {
        if self.single_core && self.active_is_attacker != attacker {
            self.active_is_attacker = attacker;
            self.now += 500;
            let asid = if attacker {
                Asid::new(100)
            } else {
                Asid::new(200)
            };
            self.bpu.on_context_switch(self.attacker, asid, self.now);
            // Let any background key refresh complete before the process
            // runs (conservative for the attacker).
            self.now += 2_000;
        }
    }

    /// Total BPU accesses performed so far (the paper's attack cost metric).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// The underlying BPU (inspection in tests).
    pub fn bpu(&self) -> &SecureBpu {
        &self.bpu
    }

    /// Current modeled cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The attacker executes a taken direct branch `pc -> pc + 0x100`,
    /// observing its timing. This is the priming/probing primitive.
    pub fn attacker_access(&mut self, pc: Addr) -> Timing {
        self.ensure_active(true);
        self.step();
        let rec = BranchRecord::unconditional(pc, BranchKind::Direct, pc.wrapping_add(0x100), 1);
        let o = self.bpu.process_branch(self.attacker, &rec, self.now);
        Timing {
            slow: o.target_mispredict || o.btb_level.is_none(),
            level: o.btb_level,
        }
    }

    /// The attacker executes a conditional branch with chosen outcome
    /// (training primitive for direction-predictor attacks).
    pub fn attacker_cond(&mut self, pc: Addr, taken: bool) -> bool {
        self.ensure_active(true);
        self.step();
        let rec = BranchRecord::conditional(pc, pc.wrapping_add(0x80), taken, 1);
        let o = self.bpu.process_branch(self.attacker, &rec, self.now);
        o.direction_mispredict
    }

    /// The victim executes a taken direct branch to its real target.
    /// The attacker cannot call this at will in reality; the harness models
    /// the victim running its own code (e.g. triggered via a service
    /// request, as in SGX-Step-style single-stepping).
    pub fn victim_branch(&mut self, pc: Addr, target: Addr) -> Timing {
        self.ensure_active(false);
        self.step();
        let rec = BranchRecord::unconditional(pc, BranchKind::Direct, target, 1);
        let o = self.bpu.process_branch(self.victim, &rec, self.now);
        Timing {
            slow: o.target_mispredict || o.btb_level.is_none(),
            level: o.btb_level,
        }
    }

    /// The victim executes a conditional branch; returns whether it
    /// mispredicted (the observable the paper's PoC extracts through a
    /// cache side channel).
    pub fn victim_cond(&mut self, pc: Addr, taken: bool) -> bool {
        self.ensure_active(false);
        self.step();
        let rec = BranchRecord::conditional(pc, pc.wrapping_add(0x80), taken, 1);
        let o = self.bpu.process_branch(self.victim, &rec, self.now);
        o.direction_mispredict
    }

    /// Switches the victim's privilege level (cross-privilege scenarios).
    pub fn victim_privilege(&mut self, privilege: Privilege) {
        self.step();
        self.bpu
            .on_privilege_change(self.victim, privilege, self.now);
    }

    /// Context switch on the victim thread (forces key changes under HyBP).
    pub fn victim_context_switch(&mut self, asid: Asid) {
        self.step();
        self.bpu.on_context_switch(self.victim, asid, self.now);
        // Let any key-table refresh complete (conservative for the attacker).
        self.now += 2_000;
    }

    /// Ground-truth oracle (evaluation only): the physical L2 set `pc` maps
    /// to under the *attacker's* current keys.
    pub fn attacker_l2_set(&mut self, pc: Addr) -> u64 {
        let now = self.now;
        self.bpu.debug_l2_set(self.attacker, pc, now)
    }

    /// Ground-truth oracle (evaluation only): the physical L2 set `pc` maps
    /// to under the *victim's* current keys.
    pub fn victim_l2_set(&mut self, pc: Addr) -> u64 {
        let now = self.now;
        self.bpu.debug_l2_set(self.victim, pc, now)
    }

    /// The shared L2 geometry `(sets, ways)`.
    pub fn l2_geometry(&self) -> (usize, usize) {
        self.bpu.l2_geometry()
    }

    fn step(&mut self) {
        self.now += 8;
        self.accesses += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attacker_misses_then_hits() {
        let mut env = AttackEnv::new(Mechanism::Baseline, 1);
        let pc = Addr::new(0x5000);
        assert!(env.attacker_access(pc).slow, "first touch must miss");
        assert!(!env.attacker_access(pc).slow, "second touch must hit");
        assert_eq!(env.accesses(), 2);
    }

    #[test]
    fn baseline_shares_btb_across_threads() {
        let mut env = AttackEnv::new(Mechanism::Baseline, 2);
        let pc = Addr::new(0x6000);
        // Victim executes its branch; on the shared baseline the attacker
        // hits in the shared structures only after the entry reaches a level
        // it can see — for the baseline all levels are shared.
        env.victim_branch(pc, Addr::new(0x6100));
        let t = env.attacker_access(pc);
        // Attacker hits victim's entry, but sees victim's target — observable
        // sharing either way: no miss.
        assert!(!t.slow, "baseline must share BTB entries");
    }

    #[test]
    fn hybp_upper_levels_are_invisible_cross_thread() {
        let mut env = AttackEnv::new(Mechanism::hybp_default(), 3);
        let pc = Addr::new(0x7000);
        env.victim_branch(pc, Addr::new(0x7100));
        let t = env.attacker_access(pc);
        assert!(
            t.slow,
            "victim's entry lives in its isolated L0 and keyed L2 space"
        );
    }

    #[test]
    fn victim_cond_trains_direction() {
        let mut env = AttackEnv::new(Mechanism::Baseline, 4);
        let pc = Addr::new(0x8000);
        for _ in 0..8 {
            env.victim_cond(pc, true);
        }
        assert!(!env.victim_cond(pc, true), "trained branch predicts taken");
    }
}
