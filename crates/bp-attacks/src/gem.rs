//! The Group-Elimination Method for eviction-set construction (§III-C).
//!
//! GEM (Qureshi, ISCA 2019) reduces a large pool of `L` conflicting lines to
//! a minimal eviction set in `O(L)` accesses by discarding one group at a
//! time and re-testing. The paper uses it to argue that randomization alone
//! (without the hybrid's filtering) must re-key roughly every 2¹⁶ accesses
//! on a 7K-entry BTB.

use bp_common::Addr;

use crate::env::{AttackEnv, Timing};

/// Result of a GEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GemResult {
    /// The reduced eviction set (empty when the run failed).
    pub eviction_set: Vec<Addr>,
    /// Total BPU accesses spent.
    pub accesses: u64,
}

/// Tests whether accessing `lines` evicts `target` from the BTB hierarchy:
/// install the target, touch every line, re-access the target and observe
/// the timing.
fn evicts(env: &mut AttackEnv, target: Addr, lines: &[Addr]) -> bool {
    env.attacker_access(target); // install (or refresh)
    for &l in lines {
        env.attacker_access(l);
    }
    let Timing { slow, .. } = env.attacker_access(target);
    slow
}

/// Runs GEM: reduce `candidates` (which collectively evict `target`) to at
/// most `ways + slack` lines. Random replacement makes single tests noisy,
/// so each elimination is confirmed over `confirmations` trials.
///
/// Returns `None` if the candidate pool does not evict the target to begin
/// with.
pub fn group_eliminate(
    env: &mut AttackEnv,
    target: Addr,
    mut candidates: Vec<Addr>,
    ways: usize,
    confirmations: u32,
) -> Option<GemResult> {
    let start = env.accesses();
    if !evicts(env, target, &candidates) {
        return None;
    }
    let groups = ways + 1;
    let mut stuck = 0;
    while candidates.len() > ways + 1 && stuck < groups * 2 {
        let group_size = candidates.len().div_ceil(groups).max(1);
        let mut removed_any = false;
        let mut g = 0;
        while g * group_size < candidates.len() {
            let lo = g * group_size;
            let hi = (lo + group_size).min(candidates.len());
            // Test whether the rest still evicts the target.
            let rest: Vec<Addr> = candidates[..lo]
                .iter()
                .chain(&candidates[hi..])
                .copied()
                .collect();
            let still = (0..confirmations).all(|_| evicts(env, target, &rest));
            if still {
                candidates = rest;
                removed_any = true;
                // Group indices shift; restart scanning this round.
                break;
            }
            g += 1;
        }
        if !removed_any {
            stuck += 1;
        } else {
            stuck = 0;
        }
    }
    Some(GemResult {
        eviction_set: candidates,
        accesses: env.accesses() - start,
    })
}

/// The §III-C estimate: eviction-set construction on a `btb_entries` BTB
/// takes on the order of the candidate pool size times a small constant —
/// about 2¹⁶ accesses for a 7K-entry BTB — so a randomization-only defense
/// must re-key at that rate.
pub fn rekey_interval_estimate(btb_entries: u64) -> u64 {
    // O(L) with L ≈ a small multiple of the table size; the paper quotes
    // 2^16 for 7K entries, i.e. ≈ 9.3 accesses per entry.
    btb_entries * 9
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybp::Mechanism;

    /// Candidate lines that all map to the same raw L2 set (1024 sets, so
    /// the raw index bits are pc[2..12]).
    fn same_set_lines(set: u64, count: usize) -> Vec<Addr> {
        (0..count as u64)
            .map(|j| Addr::new(0x4000_0000 + (j << 13) + (set << 2)))
            .collect()
    }

    #[test]
    fn gem_reduces_candidates_on_baseline() {
        let mut env = AttackEnv::new(Mechanism::Baseline, 7);
        let set = 0x155;
        let target = Addr::new(0x5000_0000 + (set << 2));
        // 40 same-set lines: plenty to evict a 7-way set through the
        // exclusive hierarchy. A minimal *hierarchy* eviction set must
        // overflow the upper-level column too (L0 4 + L1 8 ways above the
        // 7-way L2 set), so the reduction floor is ≈ 19 lines.
        let candidates = same_set_lines(set, 40);
        let r = group_eliminate(&mut env, target, candidates, 19, 2)
            .expect("candidate pool must evict the target");
        assert!(
            r.eviction_set.len() <= 26,
            "GEM should shrink the pool substantially, got {}",
            r.eviction_set.len()
        );
        // The reduced set still works: random replacement makes a single
        // trial probabilistic, so confirm over several.
        let still = (0..6)
            .filter(|_| evicts(&mut env, target, &r.eviction_set))
            .count();
        assert!(still >= 1, "reduced set must still evict sometimes");
    }

    #[test]
    fn gem_cost_is_linear_in_pool_size() {
        let set = 0x2A;
        let target = Addr::new(0x5100_0000 + (set << 2));
        let mut costs = Vec::new();
        for &l in &[30usize, 60] {
            let mut env = AttackEnv::new(Mechanism::Baseline, 8);
            let r = group_eliminate(&mut env, target, same_set_lines(set, l), 19, 2)
                .expect("pool must evict");
            costs.push(r.accesses as f64 / l as f64);
        }
        // Accesses per candidate should not explode with pool size
        // (the O(L) property, within noise).
        assert!(
            costs[1] < costs[0] * 4.0,
            "per-line cost grew superlinearly: {costs:?}"
        );
    }

    #[test]
    fn non_conflicting_pool_is_rejected() {
        let mut env = AttackEnv::new(Mechanism::Baseline, 9);
        let target = Addr::new(0x5200_0000);
        // Lines in a *different* set cannot evict the target.
        let candidates = same_set_lines(0x3FF, 30);
        // Target set is bits[2..12] of its own pc = 0 here.
        assert!(group_eliminate(&mut env, target, candidates, 19, 2).is_none());
    }

    #[test]
    fn rekey_estimate_matches_paper_magnitude() {
        // 7K-entry BTB → ≈ 2^16 accesses.
        let est = rekey_interval_estimate(7 * 1024);
        let log2 = (est as f64).log2();
        assert!((15.5..=16.5).contains(&log2), "estimate 2^{log2:.2}");
    }
}
