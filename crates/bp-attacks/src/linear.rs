//! Cryptanalysis of linear index ciphers (§III-A).
//!
//! Purnal et al. and Bodduna et al. showed that CEASER's LLBC is GF(2)-
//! affine, so an attacker can recover the full index mapping from a handful
//! of chosen queries and then *compute* eviction sets instead of searching
//! for them — "the complexity of finding an eviction set is the same as
//! when there is no randomization present". This module implements that
//! break generically against any [`TweakableBlockCipher`] and proves (by
//! verification) that it works on [`bp_crypto::Llbc`]/[`bp_crypto::XorCipher`] and fails on
//! QARMA/PRINCE.

use bp_crypto::TweakableBlockCipher;

/// A recovered affine model `E(x) = A·x ⊕ b` over GF(2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineModel {
    /// Column `i` is `E(eᵢ) ⊕ E(0)`.
    cols: [u64; 64],
    /// `b = E(0)`.
    b: u64,
}

impl AffineModel {
    /// Predicts `E(x)` from the model.
    pub fn predict(&self, x: u64) -> u64 {
        let mut acc = self.b;
        for (i, &col) in self.cols.iter().enumerate() {
            if (x >> i) & 1 == 1 {
                acc ^= col;
            }
        }
        acc
    }

    /// Solves `A·x = y ⊕ b` for `x` by Gaussian elimination over GF(2):
    /// the attacker computing which *plaintext* index maps to a chosen
    /// *physical* set. Returns `None` if `A` is singular and `y` is outside
    /// its image.
    pub fn preimage(&self, y: u64) -> Option<u64> {
        // Build the augmented system: columns of A as a 64x64 bit-matrix.
        // We eliminate on rows; represent each row of A as a u64 whose bit j
        // is A[row][j] = bit `row` of cols[j].
        let mut rows = [0u64; 64];
        for (j, &col) in self.cols.iter().enumerate() {
            for (row, r) in rows.iter_mut().enumerate() {
                *r |= ((col >> row) & 1) << j;
            }
        }
        let mut rhs = [0u8; 64];
        let target = y ^ self.b;
        for (row, v) in rhs.iter_mut().enumerate() {
            *v = ((target >> row) & 1) as u8;
        }
        // Forward elimination with partial pivoting.
        let mut pivot_of_col = [usize::MAX; 64];
        let mut next_row = 0usize;
        for (col, pivot) in pivot_of_col.iter_mut().enumerate() {
            let Some(p) = (next_row..64).find(|&r| (rows[r] >> col) & 1 == 1) else {
                continue;
            };
            rows.swap(next_row, p);
            rhs.swap(next_row, p);
            for r in 0..64 {
                if r != next_row && (rows[r] >> col) & 1 == 1 {
                    rows[r] ^= rows[next_row];
                    rhs[r] ^= rhs[next_row];
                }
            }
            *pivot = next_row;
            next_row += 1;
        }
        // Inconsistent rows ⇒ no preimage.
        for r in next_row..64 {
            if rows[r] == 0 && rhs[r] == 1 {
                return None;
            }
        }
        let mut x = 0u64;
        for (col, &p) in pivot_of_col.iter().enumerate() {
            if p != usize::MAX && rhs[p] == 1 {
                x |= 1 << col;
            }
        }
        Some(x)
    }
}

/// Attempts the linear break: queries `E(0)` and `E(eᵢ)` (65 chosen
/// queries), builds the affine model, and verifies it on `verify_samples`
/// random inputs. Returns the model only if it predicts perfectly —
/// which happens exactly when the cipher is affine.
pub fn break_affine(
    cipher: &dyn TweakableBlockCipher,
    tweak: u64,
    verify_samples: u32,
    seed: u64,
) -> Option<AffineModel> {
    let b = cipher.encrypt(0, tweak);
    let mut cols = [0u64; 64];
    for (i, col) in cols.iter_mut().enumerate() {
        *col = cipher.encrypt(1u64 << i, tweak) ^ b;
    }
    let model = AffineModel { cols, b };
    let mut rng = bp_common::rng::Xoshiro256StarStar::seeded(seed);
    for _ in 0..verify_samples {
        let x = rng.next_u64();
        if model.predict(x) != cipher.encrypt(x, tweak) {
            return None;
        }
    }
    Some(model)
}

/// Computes a full eviction set for physical set `target_set` of a
/// `sets`-set table whose index is `E(raw_index) mod sets`, using a
/// recovered affine model: the attacker simply enumerates raw indices and
/// keeps those mapping to the target — no probing needed.
pub fn computed_eviction_set(
    model: &AffineModel,
    target_set: u64,
    sets: u64,
    count: usize,
) -> Vec<u64> {
    let mut out = Vec::with_capacity(count);
    let mut raw = 0u64;
    while out.len() < count && raw < sets * (count as u64 + 4) * 4 {
        if model.predict(raw) % sets == target_set {
            out.push(raw);
        }
        raw += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_crypto::{Llbc, Prince, Qarma64, XorCipher};

    #[test]
    fn llbc_is_broken() {
        let c = Llbc::from_seed(11);
        let model = break_affine(&c, 0xAA, 200, 1).expect("LLBC must be affine");
        // The model predicts unseen queries.
        assert_eq!(
            model.predict(0x1234_5678_9ABC),
            c.encrypt(0x1234_5678_9ABC, 0xAA)
        );
    }

    #[test]
    fn xor_is_broken() {
        let c = XorCipher::new(0xDEAD);
        assert!(break_affine(&c, 5, 100, 2).is_some());
    }

    #[test]
    fn qarma_and_prince_resist() {
        assert!(break_affine(&Qarma64::from_seed(3), 7, 50, 3).is_none());
        assert!(break_affine(&Prince::from_seed(4), 7, 50, 4).is_none());
    }

    #[test]
    fn preimage_inverts_the_map() {
        let c = Llbc::from_seed(21);
        let model = break_affine(&c, 1, 100, 5).unwrap();
        for y in [0u64, 1, 0xFFFF, 0x1234_5678] {
            let x = model.preimage(y).expect("LLBC diffusion is invertible");
            assert_eq!(model.predict(x), y);
            assert_eq!(c.encrypt(x, 1), y);
        }
    }

    #[test]
    fn eviction_set_computed_without_probing() {
        // The §III-A conclusion: with a linear cipher, eviction sets cost
        // only the 65 model-building queries plus arithmetic.
        let c = Llbc::from_seed(31);
        let model = break_affine(&c, 9, 100, 6).unwrap();
        let sets = 1024u64;
        // Target the physical set of a known victim line: attacks aim at a
        // concrete victim mapping, which is reachable by construction (the
        // affine map restricted to small raw indices need not cover every
        // set value).
        let target = model.predict(0x2345) % sets;
        let ev = computed_eviction_set(&model, target, sets, 8);
        assert_eq!(ev.len(), 8);
        for &raw in &ev {
            assert_eq!(
                c.encrypt(raw, 9) % sets,
                target,
                "computed line must map to target"
            );
        }
    }
}
