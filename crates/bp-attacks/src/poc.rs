//! The §VI-D proof-of-concept attacks: malicious training of BTB and PHT.
//!
//! The paper runs 10 000 iterations on a RISC-V FPGA prototype; an iteration
//! counts as a successful attack when the victim branch follows the
//! attacker-trained direction/target more than 90 times out of 100. On the
//! unprotected baseline the training accuracy is 96.5% (BTB) and 97.2%
//! (PHT); under the hybrid protection it collapses below 1%.
//!
//! Here the same protocol runs against the simulated BPU. The victim
//! "following the trained direction" is observed through the victim's
//! misprediction on a branch whose architectural outcome opposes the
//! training — exactly the signal the paper extracts via Flush+Reload.

use bp_common::Addr;
use hybp::Mechanism;

use crate::env::AttackEnv;

/// Where attacker and victim run relative to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoResidency {
    /// Concurrent SMT siblings (cross-thread attacks; Flush cannot help).
    Smt,
    /// Separate processes time-sharing one hardware thread with context
    /// switches between them (the paper's FPGA PoC topology; switch-driven
    /// mechanisms get to act).
    SingleCore,
}

fn make_env(mechanism: Mechanism, topo: CoResidency, seed: u64) -> AttackEnv {
    match topo {
        CoResidency::Smt => AttackEnv::new(mechanism, seed),
        CoResidency::SingleCore => AttackEnv::new_single_core(mechanism, seed),
    }
}

/// Outcome of a PoC campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PocResult {
    /// Iterations run.
    pub iterations: u32,
    /// Iterations counted as successful (> `success_threshold` trained
    /// outcomes out of `rounds_per_iteration`).
    pub successes: u32,
    /// Total trained-direction rounds across all iterations.
    pub trained_rounds: u64,
    /// Total rounds across all iterations.
    pub total_rounds: u64,
}

impl PocResult {
    /// Fraction of iterations that met the ≥90/100 criterion.
    pub fn success_rate(&self) -> f64 {
        if self.iterations == 0 {
            return 0.0;
        }
        f64::from(self.successes) / f64::from(self.iterations)
    }

    /// Fraction of individual rounds that followed the training (the
    /// paper's "accuracy of training").
    pub fn training_accuracy(&self) -> f64 {
        if self.total_rounds == 0 {
            return 0.0;
        }
        self.trained_rounds as f64 / self.total_rounds as f64
    }
}

/// Protocol parameters (paper defaults: 10 000 iterations of 100 rounds,
/// ≥90 to count as success).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PocParams {
    /// Number of iterations.
    pub iterations: u32,
    /// Victim executions per iteration.
    pub rounds_per_iteration: u32,
    /// Trained rounds needed for a successful iteration.
    pub success_threshold: u32,
    /// Attacker training executions before each victim round.
    pub trainings_per_round: u32,
}

impl PocParams {
    /// The paper's protocol.
    pub const fn paper() -> Self {
        PocParams {
            iterations: 10_000,
            rounds_per_iteration: 100,
            success_threshold: 90,
            trainings_per_round: 8,
        }
    }

    /// A scaled-down protocol for unit tests.
    pub const fn quick() -> Self {
        PocParams {
            iterations: 60,
            rounds_per_iteration: 50,
            success_threshold: 45,
            trainings_per_round: 8,
        }
    }
}

/// PHT malicious training: the attacker trains the shared direction
/// predictor at the victim branch's address toward *taken*. The victim's
/// branch is secret-dependent — its architectural outcome is a fresh random
/// bit each execution, so the predictor cannot learn it and the only
/// persistent per-PC signal is whatever the attacker planted. A round
/// "follows the training" when the victim's *prediction* was taken
/// (reconstructed from the misprediction signal and the known outcome).
pub fn pht_training(mechanism: Mechanism, params: PocParams, seed: u64) -> PocResult {
    pht_training_topo(mechanism, CoResidency::Smt, params, seed)
}

/// [`pht_training`] with an explicit co-residency topology.
pub fn pht_training_topo(
    mechanism: Mechanism,
    topo: CoResidency,
    params: PocParams,
    seed: u64,
) -> PocResult {
    let mut env = make_env(mechanism, topo, seed);
    // Data-dependent noise in both parties' surrounding code.
    let mut secret = bp_common::rng::Xoshiro256StarStar::seeded(seed ^ 0x5EC2E7);
    let victim_pc = Addr::new(0x0040_1230);
    let mut result = PocResult {
        iterations: params.iterations,
        successes: 0,
        trained_rounds: 0,
        total_rounds: 0,
    };
    for _ in 0..params.iterations {
        let mut trained = 0u32;
        for _ in 0..params.rounds_per_iteration {
            // History-spraying training (as Spectre-V2-style attacks do):
            // every training shot executes behind fresh noise branches so
            // the plants spread across the short-history contexts the
            // victim will hit; the victim runs its own noisy prologue, so
            // TAGE's long-history tables never see a repeatable context.
            // The shot count varies per round: a fixed count would make the
            // whole protocol a constant-trip loop that the baseline's own
            // loop predictor learns (and thereby accidentally defends).
            let shots = params.trainings_per_round / 2
                + (secret.next_below(u64::from(params.trainings_per_round)) as u32);
            for _ in 0..shots {
                for k in 0..2u64 {
                    env.attacker_cond(Addr::new(0x0060_0000 + k * 16), secret.chance(0.5));
                }
                env.attacker_cond(victim_pc, true);
            }
            for k in 0..6u64 {
                env.victim_cond(Addr::new(0x0040_0100 + k * 16), secret.chance(0.5));
            }
            // The victim's branch architecturally resolves not-taken; a
            // misprediction therefore means the fetched direction was the
            // attacker's trained "taken".
            let mispredicted = env.victim_cond(victim_pc, false);
            if mispredicted {
                trained += 1;
                result.trained_rounds += 1;
            }
            result.total_rounds += 1;
        }
        if trained >= params.success_threshold {
            result.successes += 1;
        }
    }
    result
}

/// BTB malicious training: the attacker plants its own target for the
/// victim branch's address; a round follows the training when the victim
/// fetches the planted target (observable as a target misprediction, since
/// the victim's architectural target differs).
pub fn btb_training(mechanism: Mechanism, params: PocParams, seed: u64) -> PocResult {
    btb_training_topo(mechanism, CoResidency::Smt, params, seed)
}

/// [`btb_training`] with an explicit co-residency topology.
pub fn btb_training_topo(
    mechanism: Mechanism,
    topo: CoResidency,
    params: PocParams,
    seed: u64,
) -> PocResult {
    let mut env = make_env(mechanism, topo, seed);
    let victim_pc = Addr::new(0x0040_5670);
    let victim_target = Addr::new(0x0041_0000);
    let mut result = PocResult {
        iterations: params.iterations,
        successes: 0,
        trained_rounds: 0,
        total_rounds: 0,
    };
    for _ in 0..params.iterations {
        let mut trained = 0u32;
        for _ in 0..params.rounds_per_iteration {
            for _ in 0..params.trainings_per_round {
                // The attacker's access installs target = pc + 0x100, which
                // differs from the victim's real target.
                env.attacker_access(victim_pc);
            }
            // The victim executes its branch. Following the training means
            // fetch *hit* an entry and steered to a wrong (planted/garbled)
            // target — a plain BTB miss is not a hijack, just a cold fetch.
            let t = env.victim_branch(victim_pc, victim_target);
            if t.slow && t.level.is_some() {
                trained += 1;
                result.trained_rounds += 1;
            }
            result.total_rounds += 1;
        }
        if trained >= params.success_threshold {
            result.successes += 1;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_pht_training_succeeds() {
        // Note: our baseline is a full TAGE-SC-L, whose statistical
        // corrector partially resists cross-thread training; the paper's
        // FPGA platform ran a plain TAGE. The mechanism comparison (high
        // accuracy here vs collapse under HyBP) is the reproduced result;
        // see EXPERIMENTS.md.
        let r = pht_training_topo(
            Mechanism::Baseline,
            CoResidency::SingleCore,
            PocParams::quick(),
            1,
        );
        assert!(
            r.training_accuracy() > 0.7,
            "baseline PHT training accuracy {} (iteration success {})",
            r.training_accuracy(),
            r.success_rate()
        );
    }

    #[test]
    fn hybp_pht_training_fails() {
        let r = pht_training(Mechanism::hybp_default(), PocParams::quick(), 2);
        assert!(
            r.success_rate() < 0.05 && r.training_accuracy() < 0.05,
            "HyBP PHT training must collapse (success {}, accuracy {})",
            r.success_rate(),
            r.training_accuracy()
        );
    }

    #[test]
    fn baseline_btb_training_succeeds_single_core() {
        let r = btb_training_topo(
            Mechanism::Baseline,
            CoResidency::SingleCore,
            PocParams::quick(),
            3,
        );
        assert!(
            r.success_rate() > 0.9,
            "baseline BTB training success {}",
            r.success_rate()
        );
    }

    #[test]
    fn hybp_btb_training_fails() {
        let r = btb_training(Mechanism::hybp_default(), PocParams::quick(), 4);
        // The victim's first round misses cold (counted as "slow"), but the
        // ≥90% criterion cannot be met without actual attacker influence.
        assert!(
            r.success_rate() < 0.05,
            "HyBP BTB training success {} must collapse",
            r.success_rate()
        );
    }

    #[test]
    fn partition_blocks_cross_thread_training() {
        let r = pht_training(Mechanism::Partition, PocParams::quick(), 5);
        assert!(r.success_rate() < 0.05, "partition isolates threads");
    }

    #[test]
    fn flush_does_not_block_smt_training() {
        // Flush only acts at switches; concurrent SMT threads still share
        // the predictor — the paper's Table III "No Protection" entry.
        // Under concurrent SMT, Flush's state survives (it only acts at
        // switches): the shared tables stay trainable, unlike under the
        // isolating mechanisms. With banked per-thread histories the signal
        // is structural rather than total, so compare against HyBP.
        let flush = pht_training(Mechanism::Flush, PocParams::quick(), 6);
        let hybp = pht_training(Mechanism::hybp_default(), PocParams::quick(), 6);
        assert!(
            flush.training_accuracy() > hybp.training_accuracy() + 0.08,
            "flush SMT {} must leak clearly more than HyBP {}",
            flush.training_accuracy(),
            hybp.training_accuracy()
        );
    }

    #[test]
    fn flush_defends_single_core_training() {
        // The paper's Table III single-threaded row: Flush DOES defend when
        // the parties time-share (every switch wipes the training).
        let r = pht_training_topo(
            Mechanism::Flush,
            CoResidency::SingleCore,
            PocParams::quick(),
            8,
        );
        assert!(
            r.training_accuracy() < 0.1,
            "single-core flush training accuracy {}",
            r.training_accuracy()
        );
    }

    #[test]
    fn hybp_defends_single_core_training() {
        let r = pht_training_topo(
            Mechanism::hybp_default(),
            CoResidency::SingleCore,
            PocParams::quick(),
            9,
        );
        assert!(r.training_accuracy() < 0.1);
        let b = btb_training_topo(
            Mechanism::hybp_default(),
            CoResidency::SingleCore,
            PocParams::quick(),
            10,
        );
        assert!(b.training_accuracy() < 0.1);
    }
}
