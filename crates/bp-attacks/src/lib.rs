//! Attack algorithms and security analysis for the HyBP reproduction.
//!
//! Implements everything the paper's security evaluation (§III, §VI) uses:
//!
//! * [`mod@env`] — the attacker/victim harness: two SMT threads sharing one
//!   [`hybp::SecureBpu`], with the attacker observing only architectural
//!   signals (misses/mispredictions), exactly like a timing side channel;
//! * [`ppp`] — Algorithm 1: PPP-style eviction-set construction against the
//!   hierarchical BTB (prepare → prune self-conflicts → binary search);
//! * [`gem`] — the Group-Elimination Method on an unprotected BTB (the
//!   §III-C argument that a key change is needed every ≈ 2¹⁶ accesses);
//! * [`blind`] — the blind-contention analysis: exact evaluation of Eq. (1),
//!   the optimum `n`, and the L0·L1 filtering factor (§VI-A2);
//! * [`contention`] — Jump-over-ASLR-style set inference: address-bit
//!   leakage through observed evictions, defeated by keyed indexing;
//! * [`pht_analysis`] — Eq. (2): the PHT reuse-attack access count;
//! * [`poc`] — the §VI-D proof-of-concept: malicious training of BTB and PHT,
//!   10 000 iterations, ≥90/100 threshold;
//! * [`analysis`] — the §VI-C security-margin check: attack-cost inventory
//!   versus the key-change policy;
//! * [`threat_model`] — the typed Table II matrix;
//! * [`linear`] — the cryptanalytic break of linear index ciphers (LLBC/XOR)
//!   showing eviction-set construction degenerates to the unprotected case.

pub mod analysis;
pub mod blind;
pub mod contention;
pub mod env;
pub mod gem;
pub mod linear;
pub mod pht_analysis;
pub mod poc;
pub mod ppp;
pub mod threat_model;

pub use env::AttackEnv;
