use bp_attacks::AttackEnv;
use bp_common::Addr;
use hybp::Mechanism;
fn main() {
    let mut env = AttackEnv::new(Mechanism::Baseline, 1);
    let v = Addr::new(0x0040_1230);
    for round in 0..10 {
        for _ in 0..8 {
            env.attacker_cond(v, true);
        }
        let mp = env.victim_cond(v, false);
        println!("round {round}: victim mispredicted (followed training) = {mp}");
    }
}
