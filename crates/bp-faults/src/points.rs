//! Harness-level point faults: named sweep points that must fail.
//!
//! The fault classes in the crate root disturb the *simulated hardware*;
//! this module disturbs the *experiment runner itself*, so the supervised
//! sweep executor ("stale keys cost accuracy, never correctness" for the
//! harness: a lost point costs coverage, never the suite) can be exercised
//! end-to-end. A [`PointFaultPlan`] names sweep points by `(sweep label,
//! input index)` and prescribes how each must fail:
//!
//! * `panic@<sweep>@<index>` — the point panics on every attempt,
//! * `error@<sweep>@<index>` — the point returns a fatal typed error,
//! * `transient@<sweep>@<index>@<k>` — the point fails transiently on its
//!   first `k` attempts and succeeds afterwards (exercises the retry
//!   policy's recovery path).
//!
//! The spec also accepts the I/O fault classes of [`crate::bytes`]
//! (`bitflip@<offset>[@<bit>]`, `truncate@<offset>`, `torn@<offset>`,
//! `dup@<offset>@<len>`): those entries do not target sweep points but are
//! collected into the plan's [`io_plan`](PointFaultPlan::io_plan), which
//! trace-replaying harnesses apply to every artifact they ingest.
//!
//! A third family targets the *service phase* of a long-running prediction
//! engine (`bp-serve`): entries name a shard and a per-shard request
//! ordinal instead of a sweep point, and are collected into
//! [`serve_faults`](PointFaultPlan::serve_faults):
//!
//! * `shard-panic@<shard>@<request>` — the shard panics at the dequeue of
//!   its `<request>`-th request (0-based), before any predictor state is
//!   touched, so the supervisor's restart path is exercised with an exact
//!   lost-request accounting;
//! * `refresh-stall@<shard>@<request>` — the shard's next key-table
//!   refresh after its `<request>`-th request is dropped (the QARMA
//!   rewrite never lands), driving the stale-key degraded mode;
//! * `queue-overload@<shard>@<request>` — the shard's `<request>`-th
//!   request is shed as if a burst had overflowed the bounded queue.
//!
//! Plans are parsed from a comma-separated spec string, conventionally the
//! `HYBP_FAULT_POINTS` environment variable, and are fully deterministic:
//! the disposition of `(sweep, index, attempt)` is a pure function of the
//! plan.
//!
//! # Examples
//!
//! ```
//! use bp_faults::points::{PointDisposition, PointFaultPlan};
//!
//! let plan = PointFaultPlan::parse("panic@fig5:benches@3,transient@table6:grid@1@2")
//!     .expect("valid spec");
//! assert_eq!(plan.disposition("fig5:benches", 3, 1), PointDisposition::Panic);
//! assert_eq!(
//!     plan.disposition("table6:grid", 1, 2),
//!     PointDisposition::TransientError
//! );
//! assert_eq!(plan.disposition("table6:grid", 1, 3), PointDisposition::Proceed);
//! assert_eq!(plan.disposition("fig5:benches", 4, 1), PointDisposition::Proceed);
//! ```

/// Environment variable holding the standard point-fault spec.
pub const ENV_VAR: &str = "HYBP_FAULT_POINTS";

/// How a targeted sweep point must fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointFaultKind {
    /// Panic on every attempt.
    Panic,
    /// Return a fatal (non-retryable) typed error on every attempt.
    FatalError,
    /// Fail transiently on the first `fail_attempts` attempts, then
    /// succeed.
    Transient {
        /// Attempts that fail before the point recovers.
        fail_attempts: u32,
    },
}

/// One targeted sweep point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointFault {
    /// Sweep label the experiment passes to the supervised executor
    /// (e.g. `"fig5:benches"`).
    pub sweep: String,
    /// Input-order index of the point within that sweep.
    pub index: usize,
    /// Failure mode.
    pub kind: PointFaultKind,
}

/// How a targeted service-phase request must be disturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeFaultKind {
    /// The shard panics at the dequeue of the targeted request.
    ShardPanic,
    /// The shard's next key-table refresh is dropped (stale-key window).
    RefreshStall,
    /// The targeted request is shed as a queue overload.
    QueueOverload,
}

impl ServeFaultKind {
    /// The spec keyword for this kind.
    pub fn name(self) -> &'static str {
        match self {
            ServeFaultKind::ShardPanic => "shard-panic",
            ServeFaultKind::RefreshStall => "refresh-stall",
            ServeFaultKind::QueueOverload => "queue-overload",
        }
    }
}

/// One targeted service-phase request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeFault {
    /// Disturbance to inject.
    pub kind: ServeFaultKind,
    /// Shard index within the serving engine.
    pub shard: usize,
    /// 0-based ordinal of the request within that shard's dequeue order.
    pub request: u64,
}

/// What the harness should do with one attempt of one sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PointDisposition {
    /// Run the point normally.
    #[default]
    Proceed,
    /// Panic in place of running the point.
    Panic,
    /// Fail with a fatal typed error.
    FatalError,
    /// Fail with a transient (retry-eligible) typed error.
    TransientError,
}

/// A deterministic schedule of harness point faults, plus any I/O faults
/// the same spec carried.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PointFaultPlan {
    entries: Vec<PointFault>,
    io_faults: Vec<crate::bytes::ByteFault>,
    serve_faults: Vec<ServeFault>,
}

impl PointFaultPlan {
    /// A plan injecting nothing.
    pub fn empty() -> PointFaultPlan {
        PointFaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.io_faults.is_empty() && self.serve_faults.is_empty()
    }

    /// The targeted points.
    pub fn entries(&self) -> &[PointFault] {
        &self.entries
    }

    /// The I/O faults the spec carried, in spec order.
    pub fn io_faults(&self) -> &[crate::bytes::ByteFault] {
        &self.io_faults
    }

    /// The I/O faults as an applicable [`ByteFaultPlan`](crate::bytes::ByteFaultPlan).
    pub fn io_plan(&self) -> crate::bytes::ByteFaultPlan {
        crate::bytes::ByteFaultPlan::new(self.io_faults.clone())
    }

    /// The service-phase faults the spec carried, in spec order.
    pub fn serve_faults(&self) -> &[ServeFault] {
        &self.serve_faults
    }

    /// The service-phase fault armed for shard `shard`'s `request`-th
    /// dequeue of the given `kind`, if any. Pure: depends only on the plan
    /// and the arguments.
    pub fn serve_fault_at(
        &self,
        kind: ServeFaultKind,
        shard: usize,
        request: u64,
    ) -> Option<ServeFault> {
        self.serve_faults
            .iter()
            .find(|f| f.kind == kind && f.shard == shard && f.request == request)
            .copied()
    }

    /// The service-phase faults targeting one shard, in plan order.
    pub fn for_shard(&self, shard: usize) -> impl Iterator<Item = &ServeFault> + '_ {
        self.serve_faults.iter().filter(move |f| f.shard == shard)
    }

    /// Parses a comma-separated spec. Fields within an entry are separated
    /// by `@` (sweep labels themselves may contain `:` but not `@` or
    /// `,`). An empty spec is the empty plan.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed entry and the accepted
    /// forms; a typo must never silently inject nothing.
    pub fn parse(spec: &str) -> Result<PointFaultPlan, String> {
        let mut entries = Vec::new();
        let mut io_faults = Vec::new();
        let mut serve_faults = Vec::new();
        for raw in spec.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let fields: Vec<&str> = raw.split('@').collect();
            if matches!(
                fields.first(),
                Some(&"bitflip") | Some(&"truncate") | Some(&"torn") | Some(&"dup")
            ) {
                io_faults.push(crate::bytes::ByteFault::parse(raw)?);
                continue;
            }
            if let Some(kind) = match fields.first() {
                Some(&"shard-panic") => Some(ServeFaultKind::ShardPanic),
                Some(&"refresh-stall") => Some(ServeFaultKind::RefreshStall),
                Some(&"queue-overload") => Some(ServeFaultKind::QueueOverload),
                _ => None,
            } {
                let [_, shard, request] = fields.as_slice() else {
                    return Err(format!(
                        "invalid service fault '{raw}': expected {}@<shard>@<request>",
                        kind.name()
                    ));
                };
                serve_faults.push(ServeFault {
                    kind,
                    shard: shard.parse::<usize>().map_err(|_| {
                        format!("invalid shard index '{shard}' in service fault '{raw}'")
                    })?,
                    request: request.parse::<u64>().map_err(|_| {
                        format!("invalid request ordinal '{request}' in service fault '{raw}'")
                    })?,
                });
                continue;
            }
            let fault = match fields.as_slice() {
                ["panic", sweep, index] => PointFault {
                    sweep: (*sweep).to_string(),
                    index: parse_index(raw, index)?,
                    kind: PointFaultKind::Panic,
                },
                ["error", sweep, index] => PointFault {
                    sweep: (*sweep).to_string(),
                    index: parse_index(raw, index)?,
                    kind: PointFaultKind::FatalError,
                },
                ["transient", sweep, index, attempts] => PointFault {
                    sweep: (*sweep).to_string(),
                    index: parse_index(raw, index)?,
                    kind: PointFaultKind::Transient {
                        fail_attempts: attempts.parse::<u32>().map_err(|_| {
                            format!("invalid attempt count '{attempts}' in point fault '{raw}'")
                        })?,
                    },
                },
                _ => {
                    return Err(format!(
                        "invalid point fault '{raw}': expected panic@<sweep>@<index>, \
                         error@<sweep>@<index>, transient@<sweep>@<index>@<attempts>, \
                         an I/O fault (bitflip@<offset>[@<bit>], truncate@<offset>, \
                         torn@<offset>, dup@<offset>@<len>), or a service fault \
                         (shard-panic@<shard>@<request>, refresh-stall@<shard>@<request>, \
                         queue-overload@<shard>@<request>)"
                    ))
                }
            };
            if fault.sweep.is_empty() {
                return Err(format!("empty sweep label in point fault '{raw}'"));
            }
            entries.push(fault);
        }
        Ok(PointFaultPlan {
            entries,
            io_faults,
            serve_faults,
        })
    }

    /// Parses the plan from [`ENV_VAR`]; an unset variable is the empty
    /// plan.
    ///
    /// # Errors
    ///
    /// Propagates [`PointFaultPlan::parse`] errors, prefixed with the
    /// variable name.
    #[allow(clippy::disallowed_methods)] // waived in bp-lint with the reason below
    pub fn from_env() -> Result<PointFaultPlan, String> {
        // bp-lint: allow(determinism-env) reason="the fault plan env var is an explicit operator injection knob; clean runs leave it unset and get the empty plan"
        match std::env::var(ENV_VAR) {
            Ok(spec) => PointFaultPlan::parse(&spec).map_err(|e| format!("{ENV_VAR}: {e}")),
            Err(_) => Ok(PointFaultPlan::empty()),
        }
    }

    /// Disposition of attempt `attempt` (1-based) of point `index` of the
    /// sweep labelled `sweep`. Pure: depends only on the plan and the
    /// arguments.
    pub fn disposition(&self, sweep: &str, index: usize, attempt: u32) -> PointDisposition {
        for e in &self.entries {
            if e.sweep == sweep && e.index == index {
                return match e.kind {
                    PointFaultKind::Panic => PointDisposition::Panic,
                    PointFaultKind::FatalError => PointDisposition::FatalError,
                    PointFaultKind::Transient { fail_attempts } => {
                        if attempt <= fail_attempts {
                            PointDisposition::TransientError
                        } else {
                            PointDisposition::Proceed
                        }
                    }
                };
            }
        }
        PointDisposition::Proceed
    }

    /// The faults targeting one sweep, in plan order.
    pub fn for_sweep<'a>(&'a self, sweep: &'a str) -> impl Iterator<Item = &'a PointFault> + 'a {
        self.entries.iter().filter(move |e| e.sweep == sweep)
    }
}

fn parse_index(entry: &str, index: &str) -> Result<usize, String> {
    index
        .parse::<usize>()
        .map_err(|_| format!("invalid point index '{index}' in point fault '{entry}'"))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn empty_specs_inject_nothing() {
        for spec in ["", "  ", ",", " , "] {
            let plan = PointFaultPlan::parse(spec).unwrap();
            assert!(plan.is_empty(), "{spec:?}");
            assert_eq!(plan.disposition("any", 0, 1), PointDisposition::Proceed);
        }
    }

    #[test]
    fn parses_every_kind() {
        let plan = PointFaultPlan::parse("panic@a:b@0, error@c@12 ,transient@d:e:f@3@2").unwrap();
        assert_eq!(plan.entries().len(), 3);
        assert_eq!(plan.disposition("a:b", 0, 1), PointDisposition::Panic);
        assert_eq!(plan.disposition("a:b", 0, 7), PointDisposition::Panic);
        assert_eq!(plan.disposition("c", 12, 1), PointDisposition::FatalError);
        assert_eq!(
            plan.disposition("d:e:f", 3, 1),
            PointDisposition::TransientError
        );
        assert_eq!(
            plan.disposition("d:e:f", 3, 2),
            PointDisposition::TransientError
        );
        assert_eq!(plan.disposition("d:e:f", 3, 3), PointDisposition::Proceed);
    }

    #[test]
    fn untargeted_points_proceed() {
        let plan = PointFaultPlan::parse("panic@s@4").unwrap();
        assert_eq!(plan.disposition("s", 3, 1), PointDisposition::Proceed);
        assert_eq!(plan.disposition("other", 4, 1), PointDisposition::Proceed);
    }

    #[test]
    fn rejects_malformed_entries() {
        for bad in [
            "panic@s",          // missing index
            "panic@s@x",        // non-numeric index
            "transient@s@1",    // missing attempt count
            "transient@s@1@no", // non-numeric attempt count
            "explode@s@1",      // unknown kind
            "panic@@1",         // empty sweep
        ] {
            assert!(PointFaultPlan::parse(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn io_faults_parse_alongside_point_faults() {
        let plan =
            PointFaultPlan::parse("panic@fig5:benches@3,bitflip@4096@3,torn@100,dup@0@20").unwrap();
        assert_eq!(plan.entries().len(), 1);
        assert_eq!(plan.io_faults().len(), 3);
        assert_eq!(
            plan.io_faults()[0],
            crate::bytes::ByteFault::BitFlip {
                offset: 4096,
                bit: 3
            }
        );
        assert_eq!(
            plan.disposition("fig5:benches", 3, 1),
            PointDisposition::Panic
        );
        assert_eq!(plan.io_plan().faults(), plan.io_faults());
        assert!(!plan.is_empty());
        let io_only = PointFaultPlan::parse("truncate@12").unwrap();
        assert!(io_only.entries().is_empty());
        assert!(!io_only.is_empty());
    }

    #[test]
    fn malformed_io_faults_stay_fatal() {
        for bad in [
            "bitflip@",
            "bitflip@x@1",
            "truncate@1@2@3",
            "torn@",
            "dup@5",
        ] {
            assert!(PointFaultPlan::parse(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn serve_faults_parse_alongside_everything_else() {
        let plan = PointFaultPlan::parse(
            "shard-panic@2@100,refresh-stall@0@5,queue-overload@1@7,panic@s@1,bitflip@64",
        )
        .unwrap();
        assert_eq!(plan.serve_faults().len(), 3);
        assert_eq!(plan.entries().len(), 1);
        assert_eq!(plan.io_faults().len(), 1);
        assert_eq!(
            plan.serve_fault_at(ServeFaultKind::ShardPanic, 2, 100),
            Some(ServeFault {
                kind: ServeFaultKind::ShardPanic,
                shard: 2,
                request: 100
            })
        );
        assert_eq!(plan.serve_fault_at(ServeFaultKind::ShardPanic, 2, 99), None);
        assert_eq!(
            plan.serve_fault_at(ServeFaultKind::QueueOverload, 2, 100),
            None,
            "kind must match, not just the coordinates"
        );
        let shard0: Vec<ServeFaultKind> = plan.for_shard(0).map(|f| f.kind).collect();
        assert_eq!(shard0, vec![ServeFaultKind::RefreshStall]);
        let serve_only = PointFaultPlan::parse("refresh-stall@0@0").unwrap();
        assert!(!serve_only.is_empty());
        assert!(serve_only.entries().is_empty());
    }

    #[test]
    fn malformed_serve_faults_stay_fatal() {
        for bad in [
            "shard-panic@1",       // missing request ordinal
            "shard-panic@1@2@3",   // extra field
            "refresh-stall@x@1",   // non-numeric shard
            "queue-overload@1@y",  // non-numeric request
            "shard-panic@@1",      // empty shard
            "queue-overload@1@-2", // negative ordinal
        ] {
            assert!(PointFaultPlan::parse(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn for_sweep_filters() {
        let plan = PointFaultPlan::parse("panic@s@1,error@t@2,panic@s@9").unwrap();
        let s: Vec<usize> = plan.for_sweep("s").map(|e| e.index).collect();
        assert_eq!(s, vec![1, 9]);
    }
}
