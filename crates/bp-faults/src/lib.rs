//! Deterministic fault injection for the HyBP reproduction.
//!
//! HyBP's central latency-hiding claim is a *safety invariant*: a
//! non-stalling code-book refresh may serve stale or partially rewritten
//! index keys, and that must only ever degrade prediction accuracy — never
//! correctness, never a crash, never an observable timing change. This crate
//! provides the machinery to *disturb* the simulated hardware at named sites
//! and let the harnesses in `tests/fault_injection.rs` machine-check that
//! invariant:
//!
//! * SRAM bit flips in the randomized index keys tables ([`FaultHook::on_key_read`]),
//! * bit flips in BTB target payloads and direction-counter reads
//!   ([`FaultHook::on_btb_target`], [`FaultHook::flip_direction`]),
//! * delayed and dropped code-book refreshes ([`FaultHook::on_refresh`]),
//! * access-counter saturation ([`FaultHook::saturate_counter`]),
//! * trace anomalies: dropped or duplicated branch records
//!   ([`FaultHook::on_branch_record`]),
//! * OS disturbances: forced context switches and timer interrupts, e.g. in
//!   the middle of an in-flight refresh ([`FaultHook::on_os_tick`]).
//!
//! Components accept an optional [`FaultInjector`] (a cheaply clonable
//! handle to one shared hook); when absent, the instrumented sites cost one
//! branch on an `Option` and nothing else. [`FaultPlan`] is the standard
//! hook: a seedable, fully deterministic schedule over all fault classes.
//!
//! This crate is the workspace's no-panic exemplar: `unwrap`/`expect`/
//! `panic!` are denied, and every API degrades gracefully.
//!
//! # Examples
//!
//! ```
//! use bp_faults::{FaultInjector, FaultPlan};
//!
//! let plan = FaultPlan::new(7).with_key_bit_flips(100);
//! let injector = FaultInjector::from_plan(plan);
//! // Threaded into a component; every 100th key read flips a stored bit.
//! let flipped = (0..500).filter_map(|_| injector.on_key_read(0, 3, 10, 0)).count();
//! assert_eq!(flipped, 5);
//! assert_eq!(injector.stats().key_bit_flips, 5);
//! ```

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
#![deny(missing_docs)]

pub mod bytes;
pub mod points;

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use bp_common::rng::SplitMix64;
use bp_common::Cycle;

/// What a component should do with a code-book refresh request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefreshDisposition {
    /// Perform the refresh normally.
    #[default]
    Proceed,
    /// The SRAM rewrite silently starts this many cycles late (the request
    /// is acknowledged on time, so no timing channel opens; the stale-key
    /// window just grows).
    Delay(Cycle),
    /// The request is lost; the table keeps its previous keys until the
    /// next renewal trigger.
    Drop,
}

/// What the pipeline should do with a fetched branch record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceDisposition {
    /// Process the record normally.
    #[default]
    Keep,
    /// The record is truncated from the trace: fetch it as a plain
    /// instruction and never show it to the predictor.
    Drop,
    /// The record appears twice: the predictor processes it again
    /// back-to-back (retirement still counts it once).
    Duplicate,
}

/// An OS-level disturbance the pipeline injects at a cycle boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OsDisturbance {
    /// Force a scheduler entry (context switch) now, regardless of the
    /// configured interval — e.g. in the middle of an in-flight refresh.
    pub force_context_switch: bool,
    /// Force a timer-interrupt kernel episode now.
    pub force_timer: bool,
}

impl OsDisturbance {
    /// Whether anything is being disturbed.
    pub fn is_quiet(&self) -> bool {
        !self.force_context_switch && !self.force_timer
    }
}

/// Counters of injected faults, by class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Persistent bit flips applied to stored index keys.
    pub key_bit_flips: u64,
    /// Bit flips applied to BTB target payloads on read.
    pub btb_target_flips: u64,
    /// Direction predictions inverted on read.
    pub direction_flips: u64,
    /// Refreshes whose SRAM rewrite was delayed.
    pub refreshes_delayed: u64,
    /// Refresh requests dropped entirely.
    pub refreshes_dropped: u64,
    /// Access counters forced to saturation.
    pub counters_saturated: u64,
    /// Branch records truncated from the trace.
    pub records_dropped: u64,
    /// Branch records duplicated in the trace.
    pub records_duplicated: u64,
    /// Context switches forced outside the schedule.
    pub forced_context_switches: u64,
    /// Timer interrupts forced outside the schedule.
    pub forced_timers: u64,
}

impl FaultStats {
    /// Total faults injected across all classes.
    pub fn total(&self) -> u64 {
        self.key_bit_flips
            + self.btb_target_flips
            + self.direction_flips
            + self.refreshes_delayed
            + self.refreshes_dropped
            + self.counters_saturated
            + self.records_dropped
            + self.records_duplicated
            + self.forced_context_switches
            + self.forced_timers
    }
}

/// A disturbance source consulted at the instrumented sites.
///
/// Every method has a no-op default, so a hook implements only the classes
/// it cares about. Implementations must be deterministic for reproducible
/// runs.
pub trait FaultHook: fmt::Debug {
    /// Called on every index-key read. Returning `Some(bit)` flips that bit
    /// of the *stored* key (persistent SRAM corruption); `bit` is taken
    /// modulo `key_bits` by the caller.
    fn on_key_read(&mut self, slot: usize, entry: usize, key_bits: u32, now: Cycle) -> Option<u32> {
        let _ = (slot, entry, key_bits, now);
        None
    }

    /// Called when a slot's code-book refresh is requested.
    fn on_refresh(&mut self, slot: usize, now: Cycle) -> RefreshDisposition {
        let _ = (slot, now);
        RefreshDisposition::Proceed
    }

    /// Called on every renewal-counter check. Returning `true` saturates
    /// the access counter, forcing an immediate renewal.
    fn saturate_counter(&mut self, slot: usize, now: Cycle) -> bool {
        let _ = (slot, now);
        false
    }

    /// Called on every BTB target read that hit. Returning `Some(bit)`
    /// flips that bit of the predicted target (transient payload
    /// corruption; the stored entry is unchanged).
    fn on_btb_target(&mut self, target: u64, now: Cycle) -> Option<u32> {
        let _ = (target, now);
        None
    }

    /// Called on every conditional direction prediction. Returning `true`
    /// inverts the predicted direction (transient counter-read corruption).
    fn flip_direction(&mut self, now: Cycle) -> bool {
        let _ = now;
        false
    }

    /// Called when the pipeline pulls a branch record from a trace
    /// generator.
    fn on_branch_record(&mut self, hw: usize, now: Cycle) -> TraceDisposition {
        let _ = (hw, now);
        TraceDisposition::Keep
    }

    /// Called once per simulated cycle per user-mode hardware thread.
    fn on_os_tick(&mut self, hw: usize, now: Cycle) -> OsDisturbance {
        let _ = (hw, now);
        OsDisturbance::default()
    }

    /// Injection counters accumulated so far.
    fn stats(&self) -> FaultStats {
        FaultStats::default()
    }
}

/// The trivial hook: injects nothing. Useful as an explicit placeholder.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultHook for NoFaults {}

/// Periodic schedule state for one fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Every {
    period: u64,
    count: u64,
}

impl Every {
    fn new(period: u64) -> Option<Self> {
        (period > 0).then_some(Every { period, count: 0 })
    }

    /// Counts one event; true on every `period`-th.
    fn fire(this: &mut Option<Self>) -> bool {
        match this {
            Some(e) => {
                e.count += 1;
                if e.count >= e.period {
                    e.count = 0;
                    true
                } else {
                    false
                }
            }
            None => false,
        }
    }
}

/// A deterministic, seedable schedule of faults across all classes.
///
/// Built with `with_*` methods; classes left unconfigured are never
/// injected. All pseudo-randomness (which bit to flip) derives from the
/// seed, so a plan replays exactly.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: SplitMix64,
    key_flip: Option<Every>,
    btb_flip: Option<Every>,
    dir_flip: Option<Every>,
    refresh_delay: Option<Every>,
    refresh_delay_cycles: Cycle,
    refresh_drop: Option<Every>,
    counter_saturate: Option<Every>,
    record_drop: Option<Every>,
    record_dup: Option<Every>,
    force_cs_period: Option<Cycle>,
    force_timer_period: Option<Cycle>,
    next_forced_cs: Vec<Cycle>,
    next_forced_timer: Vec<Cycle>,
    stats: FaultStats,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            rng: SplitMix64::new(seed ^ 0xFA01_75EED),
            key_flip: None,
            btb_flip: None,
            dir_flip: None,
            refresh_delay: None,
            refresh_delay_cycles: 0,
            refresh_drop: None,
            counter_saturate: None,
            record_drop: None,
            record_dup: None,
            force_cs_period: None,
            force_timer_period: None,
            next_forced_cs: Vec::new(),
            next_forced_timer: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// Flip a pseudo-random stored key bit on every `period`-th key read.
    pub fn with_key_bit_flips(mut self, period: u64) -> Self {
        self.key_flip = Every::new(period);
        self
    }

    /// Flip a pseudo-random target bit on every `period`-th BTB hit.
    pub fn with_btb_target_flips(mut self, period: u64) -> Self {
        self.btb_flip = Every::new(period);
        self
    }

    /// Invert every `period`-th direction prediction.
    pub fn with_direction_flips(mut self, period: u64) -> Self {
        self.dir_flip = Every::new(period);
        self
    }

    /// Delay the SRAM rewrite of every `period`-th refresh by `delay`
    /// cycles.
    pub fn with_refresh_delays(mut self, period: u64, delay: Cycle) -> Self {
        self.refresh_delay = Every::new(period);
        self.refresh_delay_cycles = delay;
        self
    }

    /// Drop every `period`-th refresh request.
    pub fn with_refresh_drops(mut self, period: u64) -> Self {
        self.refresh_drop = Every::new(period);
        self
    }

    /// Saturate the access counter on every `period`-th counter check.
    pub fn with_counter_saturation(mut self, period: u64) -> Self {
        self.counter_saturate = Every::new(period);
        self
    }

    /// Truncate every `period`-th branch record from the trace.
    pub fn with_record_drops(mut self, period: u64) -> Self {
        self.record_drop = Every::new(period);
        self
    }

    /// Duplicate every `period`-th branch record.
    pub fn with_record_duplicates(mut self, period: u64) -> Self {
        self.record_dup = Every::new(period);
        self
    }

    /// Force a context switch on every hardware thread every `period`
    /// cycles (on top of the configured schedule).
    pub fn with_forced_context_switches(mut self, period: Cycle) -> Self {
        self.force_cs_period = (period > 0).then_some(period);
        self
    }

    /// Force a timer interrupt on every hardware thread every `period`
    /// cycles.
    pub fn with_forced_timers(mut self, period: Cycle) -> Self {
        self.force_timer_period = (period > 0).then_some(period);
        self
    }

    fn forced_due(next: &mut Vec<Cycle>, hw: usize, now: Cycle, period: Cycle) -> bool {
        if next.len() <= hw {
            next.resize(hw + 1, period);
        }
        if now >= next[hw] {
            next[hw] = now + period;
            true
        } else {
            false
        }
    }
}

impl FaultHook for FaultPlan {
    fn on_key_read(
        &mut self,
        _slot: usize,
        _entry: usize,
        key_bits: u32,
        _now: Cycle,
    ) -> Option<u32> {
        if Every::fire(&mut self.key_flip) {
            self.stats.key_bit_flips += 1;
            Some(self.rng.next_below(u64::from(key_bits.max(1))) as u32)
        } else {
            None
        }
    }

    fn on_refresh(&mut self, _slot: usize, _now: Cycle) -> RefreshDisposition {
        if Every::fire(&mut self.refresh_drop) {
            self.stats.refreshes_dropped += 1;
            return RefreshDisposition::Drop;
        }
        if Every::fire(&mut self.refresh_delay) {
            self.stats.refreshes_delayed += 1;
            return RefreshDisposition::Delay(self.refresh_delay_cycles);
        }
        RefreshDisposition::Proceed
    }

    fn saturate_counter(&mut self, _slot: usize, _now: Cycle) -> bool {
        if Every::fire(&mut self.counter_saturate) {
            self.stats.counters_saturated += 1;
            true
        } else {
            false
        }
    }

    fn on_btb_target(&mut self, _target: u64, _now: Cycle) -> Option<u32> {
        if Every::fire(&mut self.btb_flip) {
            self.stats.btb_target_flips += 1;
            // Flip within the low 32 bits: keeps the corrupted target in a
            // plausible code region while guaranteeing a mismatch.
            Some(self.rng.next_below(32) as u32)
        } else {
            None
        }
    }

    fn flip_direction(&mut self, _now: Cycle) -> bool {
        if Every::fire(&mut self.dir_flip) {
            self.stats.direction_flips += 1;
            true
        } else {
            false
        }
    }

    fn on_branch_record(&mut self, _hw: usize, _now: Cycle) -> TraceDisposition {
        if Every::fire(&mut self.record_drop) {
            self.stats.records_dropped += 1;
            return TraceDisposition::Drop;
        }
        if Every::fire(&mut self.record_dup) {
            self.stats.records_duplicated += 1;
            return TraceDisposition::Duplicate;
        }
        TraceDisposition::Keep
    }

    fn on_os_tick(&mut self, hw: usize, now: Cycle) -> OsDisturbance {
        let mut d = OsDisturbance::default();
        if let Some(period) = self.force_cs_period {
            if Self::forced_due(&mut self.next_forced_cs, hw, now, period) {
                self.stats.forced_context_switches += 1;
                d.force_context_switch = true;
            }
        }
        if let Some(period) = self.force_timer_period {
            if Self::forced_due(&mut self.next_forced_timer, hw, now, period) {
                self.stats.forced_timers += 1;
                d.force_timer = true;
            }
        }
        d
    }

    fn stats(&self) -> FaultStats {
        self.stats
    }
}

/// A cheaply clonable handle to one shared [`FaultHook`].
///
/// One injector is threaded through the keys tables, the BPU and the
/// pipeline so that a single plan coordinates faults across layers (and a
/// single [`FaultStats`] accounts for all of them). Forwarding methods
/// tolerate re-entrant borrows by degrading to the no-op disposition —
/// injection machinery must never be able to crash the system under test.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    hook: Rc<RefCell<dyn FaultHook>>,
}

impl FaultInjector {
    /// Wraps any hook.
    pub fn new(hook: impl FaultHook + 'static) -> Self {
        FaultInjector {
            hook: Rc::new(RefCell::new(hook)),
        }
    }

    /// Wraps a [`FaultPlan`].
    pub fn from_plan(plan: FaultPlan) -> Self {
        Self::new(plan)
    }

    /// See [`FaultHook::on_key_read`].
    pub fn on_key_read(&self, slot: usize, entry: usize, key_bits: u32, now: Cycle) -> Option<u32> {
        match self.hook.try_borrow_mut() {
            Ok(mut h) => h.on_key_read(slot, entry, key_bits, now),
            Err(_) => None,
        }
    }

    /// See [`FaultHook::on_refresh`].
    pub fn on_refresh(&self, slot: usize, now: Cycle) -> RefreshDisposition {
        match self.hook.try_borrow_mut() {
            Ok(mut h) => h.on_refresh(slot, now),
            Err(_) => RefreshDisposition::Proceed,
        }
    }

    /// See [`FaultHook::saturate_counter`].
    pub fn saturate_counter(&self, slot: usize, now: Cycle) -> bool {
        match self.hook.try_borrow_mut() {
            Ok(mut h) => h.saturate_counter(slot, now),
            Err(_) => false,
        }
    }

    /// See [`FaultHook::on_btb_target`].
    pub fn on_btb_target(&self, target: u64, now: Cycle) -> Option<u32> {
        match self.hook.try_borrow_mut() {
            Ok(mut h) => h.on_btb_target(target, now),
            Err(_) => None,
        }
    }

    /// See [`FaultHook::flip_direction`].
    pub fn flip_direction(&self, now: Cycle) -> bool {
        match self.hook.try_borrow_mut() {
            Ok(mut h) => h.flip_direction(now),
            Err(_) => false,
        }
    }

    /// See [`FaultHook::on_branch_record`].
    pub fn on_branch_record(&self, hw: usize, now: Cycle) -> TraceDisposition {
        match self.hook.try_borrow_mut() {
            Ok(mut h) => h.on_branch_record(hw, now),
            Err(_) => TraceDisposition::Keep,
        }
    }

    /// See [`FaultHook::on_os_tick`].
    pub fn on_os_tick(&self, hw: usize, now: Cycle) -> OsDisturbance {
        match self.hook.try_borrow_mut() {
            Ok(mut h) => h.on_os_tick(hw, now),
            Err(_) => OsDisturbance::default(),
        }
    }

    /// See [`FaultHook::stats`].
    pub fn stats(&self) -> FaultStats {
        match self.hook.try_borrow() {
            Ok(h) => h.stats(),
            Err(_) => FaultStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let inj = FaultInjector::from_plan(FaultPlan::new(1));
        for i in 0..1000u64 {
            assert_eq!(inj.on_key_read(0, i as usize, 10, i), None);
            assert_eq!(inj.on_refresh(0, i), RefreshDisposition::Proceed);
            assert!(!inj.saturate_counter(0, i));
            assert_eq!(inj.on_btb_target(0xF00, i), None);
            assert!(!inj.flip_direction(i));
            assert_eq!(inj.on_branch_record(0, i), TraceDisposition::Keep);
            assert!(inj.on_os_tick(0, i).is_quiet());
        }
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn key_flips_follow_the_period() {
        let inj = FaultInjector::from_plan(FaultPlan::new(3).with_key_bit_flips(10));
        let flips: Vec<bool> = (0..40)
            .map(|i| inj.on_key_read(0, i, 10, 0).is_some())
            .collect();
        assert_eq!(flips.iter().filter(|&&f| f).count(), 4);
        // Every 10th read, i.e. indices 9, 19, 29, 39.
        assert!(flips[9] && flips[19] && flips[29] && flips[39]);
        assert_eq!(inj.stats().key_bit_flips, 4);
    }

    #[test]
    fn flipped_bits_stay_in_key_width() {
        let inj = FaultInjector::from_plan(FaultPlan::new(9).with_key_bit_flips(1));
        for i in 0..200 {
            if let Some(bit) = inj.on_key_read(0, i, 10, 0) {
                assert!(bit < 10, "bit {bit} outside a 10-bit key");
            }
        }
    }

    #[test]
    fn plans_replay_deterministically() {
        let mk = || FaultInjector::from_plan(FaultPlan::new(42).with_btb_target_flips(3));
        let (a, b) = (mk(), mk());
        for i in 0..100u64 {
            assert_eq!(a.on_btb_target(0x4000, i), b.on_btb_target(0x4000, i));
        }
    }

    #[test]
    fn refresh_drop_takes_priority_over_delay() {
        let inj = FaultInjector::from_plan(
            FaultPlan::new(5)
                .with_refresh_drops(2)
                .with_refresh_delays(1, 100),
        );
        let first = inj.on_refresh(0, 0);
        let second = inj.on_refresh(0, 10);
        assert_eq!(first, RefreshDisposition::Delay(100));
        assert_eq!(second, RefreshDisposition::Drop);
        let s = inj.stats();
        assert_eq!(s.refreshes_delayed, 1);
        assert_eq!(s.refreshes_dropped, 1);
    }

    #[test]
    fn trace_dispositions_fire() {
        let inj = FaultInjector::from_plan(
            FaultPlan::new(6)
                .with_record_drops(5)
                .with_record_duplicates(3),
        );
        let mut drops = 0;
        let mut dups = 0;
        for i in 0..60 {
            match inj.on_branch_record(0, i) {
                TraceDisposition::Drop => drops += 1,
                TraceDisposition::Duplicate => dups += 1,
                TraceDisposition::Keep => {}
            }
        }
        assert!(drops >= 10, "drops {drops}");
        assert!(dups >= 10, "dups {dups}");
        assert_eq!(inj.stats().records_dropped, drops);
        assert_eq!(inj.stats().records_duplicated, dups);
    }

    #[test]
    fn forced_os_events_respect_period_per_thread() {
        let inj = FaultInjector::from_plan(FaultPlan::new(8).with_forced_context_switches(100));
        let mut fired = [0u32; 2];
        for now in 0..1000u64 {
            for (hw, count) in fired.iter_mut().enumerate() {
                if inj.on_os_tick(hw, now).force_context_switch {
                    *count += 1;
                }
            }
        }
        // First firing at now == period, then every `period` cycles.
        assert_eq!(fired, [9, 9]);
        assert_eq!(inj.stats().forced_context_switches, 18);
    }

    #[test]
    fn counter_saturation_fires() {
        let inj = FaultInjector::from_plan(FaultPlan::new(2).with_counter_saturation(4));
        let fired = (0..20).filter(|&i| inj.saturate_counter(0, i)).count();
        assert_eq!(fired, 5);
    }

    #[test]
    fn custom_hooks_work_through_the_injector() {
        #[derive(Debug)]
        struct AlwaysFlip;
        impl FaultHook for AlwaysFlip {
            fn flip_direction(&mut self, _now: Cycle) -> bool {
                true
            }
        }
        let inj = FaultInjector::new(AlwaysFlip);
        assert!(inj.flip_direction(0));
        assert_eq!(inj.on_btb_target(1, 0), None, "unimplemented hooks default");
    }
}
