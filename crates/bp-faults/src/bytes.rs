//! Deterministic byte-stream faults for on-disk artifacts.
//!
//! The fault classes in the crate root disturb the *simulated hardware*;
//! [`points`](crate::points) disturbs the *experiment runner*. This module
//! disturbs *stored bytes* — the damage a trace file accumulates between the
//! run that wrote it and the run that replays it: a flipped bit on a worn
//! medium, a truncation from a full disk, a torn tail from an interrupted
//! write, a doubled extent from a botched copy. The `bp-trace` reader's
//! corruption tolerance is machine-checked against exactly these faults.
//!
//! All damage is specified at explicit offsets (or derived from a seed via
//! [`ByteFaultPlan::seeded`]), so a corrupted artifact is exactly
//! reproducible: the same plan applied to the same bytes yields the same
//! bytes, every time, on every machine.
//!
//! # Examples
//!
//! ```
//! use bp_faults::bytes::{ByteFault, ByteFaultPlan};
//!
//! let plan = ByteFaultPlan::parse("bitflip@5@3,truncate@8").expect("valid spec");
//! let mut bytes = vec![0u8; 16];
//! let applied = plan.apply(&mut bytes);
//! assert_eq!(applied, 2);
//! assert_eq!(bytes.len(), 8);
//! assert_eq!(bytes[5], 1 << 3);
//! ```

use std::fmt;

use bp_common::rng::SplitMix64;

/// Bytes appended past the cut point by a torn write (the stale garbage a
/// partially flushed block leaves behind).
pub const TORN_TAIL_BYTES: usize = 64;

/// One deterministic disturbance of a byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByteFault {
    /// Flip bit `bit` (0..=7) of the byte at `offset`.
    BitFlip {
        /// Byte offset of the target.
        offset: u64,
        /// Bit within the byte (taken modulo 8).
        bit: u8,
    },
    /// Cut the stream cleanly at `offset` (full-disk / interrupted copy).
    Truncate {
        /// Length the stream is cut to.
        offset: u64,
    },
    /// Cut the stream at `offset`, then append [`TORN_TAIL_BYTES`] of
    /// seeded garbage — an interrupted write whose final block carries
    /// stale data rather than ending cleanly.
    TornWrite {
        /// Offset where the real data ends.
        offset: u64,
    },
    /// Duplicate `len` bytes starting at `offset`, splicing the copy in
    /// right after the original (a doubled extent from a botched copy).
    DuplicateRange {
        /// Start of the doubled range.
        offset: u64,
        /// Length of the doubled range.
        len: u64,
    },
}

impl fmt::Display for ByteFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ByteFault::BitFlip { offset, bit } => write!(f, "bitflip@{offset}@{bit}"),
            ByteFault::Truncate { offset } => write!(f, "truncate@{offset}"),
            ByteFault::TornWrite { offset } => write!(f, "torn@{offset}"),
            ByteFault::DuplicateRange { offset, len } => write!(f, "dup@{offset}@{len}"),
        }
    }
}

impl ByteFault {
    /// Parses one spec entry (the grammar shared with
    /// `HYBP_FAULT_POINTS`): `bitflip@<offset>[@<bit>]`,
    /// `truncate@<offset>`, `torn@<offset>`, or `dup@<offset>@<len>`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed entry and the accepted
    /// forms; a typo must never silently inject nothing.
    pub fn parse(raw: &str) -> Result<ByteFault, String> {
        let fields: Vec<&str> = raw.split('@').collect();
        match fields.as_slice() {
            ["bitflip", offset] => Ok(ByteFault::BitFlip {
                offset: parse_num(raw, offset)?,
                bit: 0,
            }),
            ["bitflip", offset, bit] => Ok(ByteFault::BitFlip {
                offset: parse_num(raw, offset)?,
                bit: (parse_num(raw, bit)? % 8) as u8,
            }),
            ["truncate", offset] => Ok(ByteFault::Truncate {
                offset: parse_num(raw, offset)?,
            }),
            ["torn", offset] => Ok(ByteFault::TornWrite {
                offset: parse_num(raw, offset)?,
            }),
            ["dup", offset, len] => Ok(ByteFault::DuplicateRange {
                offset: parse_num(raw, offset)?,
                len: parse_num(raw, len)?,
            }),
            _ => Err(format!(
                "invalid byte fault '{raw}': expected bitflip@<offset>[@<bit>], \
                 truncate@<offset>, torn@<offset>, or dup@<offset>@<len>"
            )),
        }
    }

    /// Applies the fault to `bytes` in place. Returns `false` (and leaves
    /// the stream untouched) when the offset lies beyond the current
    /// length — damage cannot land outside the artifact.
    pub fn apply(&self, bytes: &mut Vec<u8>) -> bool {
        match *self {
            ByteFault::BitFlip { offset, bit } => {
                let Ok(i) = usize::try_from(offset) else {
                    return false;
                };
                match bytes.get_mut(i) {
                    Some(b) => {
                        *b ^= 1 << (bit % 8);
                        true
                    }
                    None => false,
                }
            }
            ByteFault::Truncate { offset } => {
                let Ok(i) = usize::try_from(offset) else {
                    return false;
                };
                if i >= bytes.len() {
                    return false;
                }
                bytes.truncate(i);
                true
            }
            ByteFault::TornWrite { offset } => {
                let Ok(i) = usize::try_from(offset) else {
                    return false;
                };
                if i >= bytes.len() {
                    return false;
                }
                bytes.truncate(i);
                // Garbage derives from the cut point, so the torn tail is a
                // pure function of the fault.
                let mut rng = SplitMix64::new(offset ^ 0x0070_4770_4111);
                bytes.extend((0..TORN_TAIL_BYTES).map(|_| (rng.next_u64() & 0xFF) as u8));
                true
            }
            ByteFault::DuplicateRange { offset, len } => {
                let (Ok(i), Ok(n)) = (usize::try_from(offset), usize::try_from(len)) else {
                    return false;
                };
                let end = i.saturating_add(n);
                if n == 0 || end > bytes.len() {
                    return false;
                }
                let copy: Vec<u8> = bytes[i..end].to_vec();
                bytes.splice(end..end, copy);
                true
            }
        }
    }
}

/// An ordered list of byte faults, applied left to right (later faults see
/// the damage earlier ones did — exactly like real life).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ByteFaultPlan {
    faults: Vec<ByteFault>,
}

impl ByteFaultPlan {
    /// A plan injecting nothing.
    pub fn empty() -> ByteFaultPlan {
        ByteFaultPlan::default()
    }

    /// Wraps an explicit fault list.
    pub fn new(faults: Vec<ByteFault>) -> ByteFaultPlan {
        ByteFaultPlan { faults }
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The faults, in application order.
    pub fn faults(&self) -> &[ByteFault] {
        &self.faults
    }

    /// Parses a comma-separated list of [`ByteFault::parse`] entries. An
    /// empty spec is the empty plan.
    ///
    /// # Errors
    ///
    /// Propagates the first entry's parse error.
    pub fn parse(spec: &str) -> Result<ByteFaultPlan, String> {
        let mut faults = Vec::new();
        for raw in spec.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            faults.push(ByteFault::parse(raw)?);
        }
        Ok(ByteFaultPlan { faults })
    }

    /// A pseudo-random plan of one to three faults landing inside a stream
    /// of `len` bytes, fully determined by `seed`. A zero-length stream
    /// gets the empty plan (there is nothing to damage).
    pub fn seeded(seed: u64, len: u64) -> ByteFaultPlan {
        if len == 0 {
            return ByteFaultPlan::empty();
        }
        let mut rng = SplitMix64::new(seed ^ 0xB17E_FAA1);
        let n = 1 + rng.next_below(3);
        let faults = (0..n)
            .map(|_| {
                let offset = rng.next_below(len);
                match rng.next_below(4) {
                    0 => ByteFault::BitFlip {
                        offset,
                        bit: (rng.next_below(8)) as u8,
                    },
                    1 => ByteFault::Truncate { offset },
                    2 => ByteFault::TornWrite { offset },
                    _ => ByteFault::DuplicateRange {
                        offset,
                        len: 1 + rng.next_below(256),
                    },
                }
            })
            .collect();
        ByteFaultPlan { faults }
    }

    /// Applies every fault in order; returns how many actually landed
    /// (an out-of-range fault is a no-op, not an error).
    pub fn apply(&self, bytes: &mut Vec<u8>) -> u64 {
        self.faults.iter().filter(|f| f.apply(bytes)).count() as u64
    }
}

impl fmt::Display for ByteFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

fn parse_num(entry: &str, field: &str) -> Result<u64, String> {
    field
        .parse::<u64>()
        .map_err(|_| format!("invalid number '{field}' in byte fault '{entry}'"))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn bitflip_flips_exactly_one_bit() {
        let mut b = vec![0u8; 4];
        assert!(ByteFault::BitFlip { offset: 2, bit: 7 }.apply(&mut b));
        assert_eq!(b, vec![0, 0, 0x80, 0]);
        // Flipping again restores the original.
        assert!(ByteFault::BitFlip { offset: 2, bit: 7 }.apply(&mut b));
        assert_eq!(b, vec![0u8; 4]);
    }

    #[test]
    fn truncate_and_torn_cut_the_stream() {
        let mut b: Vec<u8> = (0..100).collect();
        assert!(ByteFault::Truncate { offset: 10 }.apply(&mut b));
        assert_eq!(b.len(), 10);
        let mut t: Vec<u8> = (0..100).collect();
        assert!(ByteFault::TornWrite { offset: 10 }.apply(&mut t));
        assert_eq!(t.len(), 10 + TORN_TAIL_BYTES);
        assert_eq!(&t[..10], &b[..]);
    }

    #[test]
    fn torn_tails_are_deterministic() {
        let mk = || {
            let mut t: Vec<u8> = (0..50).collect();
            ByteFault::TornWrite { offset: 20 }.apply(&mut t);
            t
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn duplicate_splices_a_copy_in_place() {
        let mut b = vec![1u8, 2, 3, 4, 5];
        assert!(ByteFault::DuplicateRange { offset: 1, len: 2 }.apply(&mut b));
        assert_eq!(b, vec![1, 2, 3, 2, 3, 4, 5]);
    }

    #[test]
    fn out_of_range_faults_are_no_ops() {
        let mut b = vec![1u8, 2, 3];
        assert!(!ByteFault::BitFlip { offset: 3, bit: 0 }.apply(&mut b));
        assert!(!ByteFault::Truncate { offset: 3 }.apply(&mut b));
        assert!(!ByteFault::TornWrite { offset: 9 }.apply(&mut b));
        assert!(!ByteFault::DuplicateRange { offset: 2, len: 2 }.apply(&mut b));
        assert!(!ByteFault::DuplicateRange { offset: 0, len: 0 }.apply(&mut b));
        assert_eq!(b, vec![1, 2, 3]);
    }

    #[test]
    fn parses_every_form_and_rejects_typos() {
        let plan =
            ByteFaultPlan::parse("bitflip@5@3, truncate@8 ,torn@4,dup@0@16,bitflip@9").unwrap();
        assert_eq!(plan.faults().len(), 5);
        assert_eq!(plan.faults()[0], ByteFault::BitFlip { offset: 5, bit: 3 });
        assert_eq!(plan.faults()[4], ByteFault::BitFlip { offset: 9, bit: 0 });
        for bad in [
            "bitflip",      // missing offset
            "bitflip@x",    // non-numeric offset
            "truncate@1@2", // extra field
            "dup@3",        // missing length
            "shred@1",      // unknown kind
        ] {
            assert!(ByteFaultPlan::parse(bad).is_err(), "{bad:?} accepted");
        }
        assert!(ByteFaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let plan = ByteFaultPlan::parse("bitflip@5@3,truncate@8,torn@4,dup@0@16").unwrap();
        assert_eq!(ByteFaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        for seed in 0..50u64 {
            let a = ByteFaultPlan::seeded(seed, 10_000);
            assert_eq!(a, ByteFaultPlan::seeded(seed, 10_000));
            assert!(!a.is_empty() && a.faults().len() <= 3);
            for f in a.faults() {
                let off = match *f {
                    ByteFault::BitFlip { offset, .. }
                    | ByteFault::Truncate { offset }
                    | ByteFault::TornWrite { offset }
                    | ByteFault::DuplicateRange { offset, .. } => offset,
                };
                assert!(off < 10_000);
            }
        }
        assert!(ByteFaultPlan::seeded(1, 0).is_empty());
    }

    #[test]
    fn plan_applies_in_order() {
        // The truncate runs after the flip, so the flip's damage survives
        // only if it landed before the cut.
        let plan = ByteFaultPlan::parse("bitflip@2@0,truncate@4,bitflip@9@1").unwrap();
        let mut b = vec![0u8; 16];
        assert_eq!(plan.apply(&mut b), 2); // the second flip misses
        assert_eq!(b, vec![0, 0, 1, 0]);
    }
}
