//! Resilient prediction-as-a-service runtime on top of the HyBP model.
//!
//! The simulator crates answer "how accurate/fast is the predictor"; this
//! crate answers "what happens when you *serve* it": a long-running engine
//! hosts N supervised worker shards, each owning one [`SecureBpu`] plus its
//! QARMA key manager, and routes prediction requests to shards by
//! `(hardware thread, ASID)`. The failure semantics are explicit and typed:
//!
//! - **Backpressure.** Each shard models a bounded single-server queue in
//!   virtual time. A request arriving while the queue holds
//!   `queue_capacity` admitted-but-unfinished requests is shed as
//!   [`ShedReason::QueueOverload`] — counted, never silently dropped.
//! - **Deadline shedding.** A request whose service could not complete
//!   within `deadline_cycles` of submission is shed as
//!   [`ShedReason::DeadlineExpired`] *before* it trains the predictor, so
//!   shed requests never perturb the model stream.
//! - **Supervision.** A shard panic (injectable via `HYBP_FAULT_POINTS`
//!   `shard-panic@<shard>@<request>`) is caught at the request boundary.
//!   The in-flight request is reported [`Response::Lost`], the shard is
//!   rebuilt from its latest snapshot plus the journal tail, and a seeded
//!   [`RetryPolicy`] restart budget bounds how many times this may happen
//!   before the shard is marked [`Health::Failed`] and the remainder of its
//!   queue is shed as [`ShedReason::ShardFailed`].
//! - **Stale-key degraded mode.** When a key-table refresh stalls (paper
//!   §V-C2: predictions during a rewrite use the old epoch instead of
//!   blocking), the shard keeps serving and flags its answers `degraded`
//!   until the slot's key generation advances. Degraded mode moves accuracy
//!   counters only — never correctness.
//!
//! Every submitted request is accounted exactly once — answered, shed, or
//! lost to a restart — and the full report is bit-identical regardless of
//! the worker pool's thread count: shards are partitioned deterministically
//! and each shard's entire lifetime runs inside one order-preserving
//! [`Pool::par_map`] task.

use std::fmt;
use std::path::PathBuf;

use bp_common::pool::{Pool, RetryPolicy};
use bp_common::rng::SplitMix64;
use bp_common::telemetry::{Gauge, Health, Histogram, Observable, Readiness, TelemetrySnapshot};
use bp_common::{Addr, Asid, BranchKind, BranchRecord, Cycle, HwThreadId};
use bp_faults::points::PointFaultPlan;
use hybp::{Mechanism, SecureBpu};

mod shard;
mod snapshot;

pub use shard::ShardOutcome;

/// A rejected engine configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError(String);

impl ServeError {
    pub(crate) fn new(msg: impl Into<String>) -> ServeError {
        ServeError(msg.into())
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serve config rejected: {}", self.0)
    }
}

impl std::error::Error for ServeError {}

/// Static configuration of a serving engine.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of worker shards (each owns one `SecureBpu` + key manager).
    pub shards: usize,
    /// Hardware threads modeled per shard BPU.
    pub hw_threads: usize,
    /// Predictor mechanism hosted by every shard.
    pub mechanism: Mechanism,
    /// Base seed; shard `k` derives its own sub-seed from it.
    pub seed: u64,
    /// Bounded queue depth per shard; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Virtual cycles one prediction occupies the shard's server.
    pub service_cycles: Cycle,
    /// Budget from submission to completion before a request is shed.
    pub deadline_cycles: Cycle,
    /// Virtual cycles a shard restart keeps its server busy (on top of the
    /// retry policy's seeded backoff, folded in as cycles).
    pub restart_penalty_cycles: Cycle,
    /// Answered requests between predictor-state snapshots.
    pub snapshot_interval: u64,
    /// Restart budget: a shard may lose `max_attempts` requests to panics
    /// before it is marked failed.
    pub restart_budget: RetryPolicy,
    /// Where shard snapshots are persisted; `None` keeps restore purely
    /// journal-based (in memory).
    pub snapshot_dir: Option<PathBuf>,
}

impl ServeConfig {
    /// The default service point used by the soak benchmark and tests:
    /// four HyBP shards on SMT-2 cores, a 32-deep queue, and a restart
    /// budget of three lives.
    pub fn paper_default() -> ServeConfig {
        ServeConfig {
            shards: 4,
            hw_threads: 2,
            mechanism: Mechanism::hybp_default(),
            seed: 0x5eed_5e4e_0000_0008,
            queue_capacity: 32,
            service_cycles: 64,
            deadline_cycles: 4096,
            restart_penalty_cycles: 20_000,
            snapshot_interval: 256,
            restart_budget: RetryPolicy::standard(0x5eed_5e4e_0000_0008),
            snapshot_dir: None,
        }
    }
}

/// One prediction request submitted to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Globally unique, monotonically assigned id (submission order).
    pub id: u64,
    /// Hardware thread the branch executes on.
    pub hw: HwThreadId,
    /// Address space the branch belongs to (drives key-domain routing).
    pub asid: Asid,
    /// The dynamic branch to predict and train on.
    pub record: BranchRecord,
    /// Virtual cycle the request entered the engine.
    pub submitted_at: Cycle,
}

/// Why a request was shed instead of served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShedReason {
    /// The shard's bounded queue was full at arrival.
    QueueOverload,
    /// Service could not finish within the request's deadline.
    DeadlineExpired,
    /// The shard exhausted its restart budget before this request ran.
    ShardFailed,
}

impl ShedReason {
    /// Stable lowercase name for journals and reports.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::QueueOverload => "queue-overload",
            ShedReason::DeadlineExpired => "deadline-expired",
            ShedReason::ShardFailed => "shard-failed",
        }
    }
}

/// The engine's verdict on one request. Every submitted request produces
/// exactly one `Response`; nothing is silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response {
    /// The request was served: predicted, compared, and trained.
    Answered {
        /// Request id.
        id: u64,
        /// Shard that served it.
        shard: usize,
        /// Direction mispredicted (conditionals only).
        direction_mispredict: bool,
        /// Target mispredicted or BTB miss.
        target_mispredict: bool,
        /// Virtual cycle service completed.
        completed_at: Cycle,
        /// `completed_at - submitted_at`.
        latency: Cycle,
        /// Served during a stale-key window (accuracy-only effect).
        degraded: bool,
        /// Key-table generation of the serving slot at completion
        /// (0 for mechanisms without a key manager).
        key_generation: u64,
    },
    /// The request was shed under load or failure — typed and counted.
    Shed {
        /// Request id.
        id: u64,
        /// Shard that shed it.
        shard: usize,
        /// Why.
        reason: ShedReason,
        /// Virtual cycle of the shed decision.
        at: Cycle,
    },
    /// The request was in flight when its shard panicked.
    Lost {
        /// Request id.
        id: u64,
        /// Shard that lost it.
        shard: usize,
        /// 1-based restart this loss triggered.
        restart: u32,
    },
}

impl Response {
    /// The request id this response accounts for.
    pub fn id(&self) -> u64 {
        match *self {
            Response::Answered { id, .. }
            | Response::Shed { id, .. }
            | Response::Lost { id, .. } => id,
        }
    }

    /// The shard that produced this response.
    pub fn shard(&self) -> usize {
        match *self {
            Response::Answered { shard, .. }
            | Response::Shed { shard, .. }
            | Response::Lost { shard, .. } => shard,
        }
    }
}

/// Per-shard counters, gauges, and final health.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Requests routed to this shard.
    pub submitted: u64,
    /// Requests served to completion.
    pub answered: u64,
    /// Requests shed because the queue was full.
    pub shed_overload: u64,
    /// Requests shed because the deadline could not be met.
    pub shed_deadline: u64,
    /// Requests shed after the shard failed permanently.
    pub shed_failed: u64,
    /// Requests lost to shard panics (one per restart attempt).
    pub lost: u64,
    /// Answers served inside a stale-key degraded window.
    pub degraded_answers: u64,
    /// Distinct stale-key windows entered.
    pub degraded_windows: u64,
    /// Successful supervisor restarts.
    pub restarts: u64,
    /// Snapshot files written.
    pub snapshots_written: u64,
    /// Restores that replayed from a snapshot file.
    pub snapshot_restores: u64,
    /// Snapshot writes or loads that failed validation (restore then
    /// falls back to the in-memory journal).
    pub snapshot_failures: u64,
    /// Restores that replayed the full in-memory journal.
    pub journal_replays: u64,
    /// Final shard health.
    pub health: Health,
    /// Queue depth observed at each arrival (current / peak / samples).
    pub queue_depth: Gauge,
    /// Answered-request latency distribution (power-of-two buckets).
    pub latency: Histogram,
}

impl ShardStats {
    pub(crate) fn new(shard: usize) -> ShardStats {
        ShardStats {
            shard,
            submitted: 0,
            answered: 0,
            shed_overload: 0,
            shed_deadline: 0,
            shed_failed: 0,
            lost: 0,
            degraded_answers: 0,
            degraded_windows: 0,
            restarts: 0,
            snapshots_written: 0,
            snapshot_restores: 0,
            snapshot_failures: 0,
            journal_replays: 0,
            health: Health::Ready,
            queue_depth: Gauge::new(),
            latency: Histogram::new(),
        }
    }

    /// Requests shed for any reason.
    pub fn shed(&self) -> u64 {
        self.shed_overload + self.shed_deadline + self.shed_failed
    }

    /// Whether every submitted request is accounted exactly once.
    pub fn accounting_exact(&self) -> bool {
        self.submitted == self.answered + self.shed() + self.lost
    }
}

impl Observable for ShardStats {
    fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::new("serve/shard")
            .with("shard", self.shard as u64)
            .with("submitted", self.submitted)
            .with("answered", self.answered)
            .with("shed_overload", self.shed_overload)
            .with("shed_deadline", self.shed_deadline)
            .with("shed_failed", self.shed_failed)
            .with("lost", self.lost)
            .with("degraded_answers", self.degraded_answers)
            .with("degraded_windows", self.degraded_windows)
            .with("restarts", self.restarts)
            .with("snapshots_written", self.snapshots_written)
            .with("snapshot_restores", self.snapshot_restores)
            .with("snapshot_failures", self.snapshot_failures)
            .with("journal_replays", self.journal_replays)
            .with("health_failed", u64::from(self.health == Health::Failed))
            .with(
                "health_degraded",
                u64::from(self.health == Health::Degraded),
            )
            .with("queue_depth_peak", self.queue_depth.peak())
            .with("latency_count", self.latency.count())
            .with("latency_sum", self.latency.sum())
    }
}

/// Engine-wide totals aggregated over all shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeTotals {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests answered.
    pub answered: u64,
    /// Requests shed (all reasons).
    pub shed: u64,
    /// Requests lost to restarts.
    pub lost: u64,
    /// Degraded-mode answers.
    pub degraded_answers: u64,
    /// Supervisor restarts.
    pub restarts: u64,
    /// Answers that mispredicted direction or target.
    pub mispredicted: u64,
}

/// The complete, deterministic result of one serving run.
///
/// `responses` is in global submission order (sorted by request id) and is
/// bit-identical for any worker-pool thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// One response per submitted request, in submission order.
    pub responses: Vec<Response>,
    /// Per-shard statistics, indexed by shard.
    pub shards: Vec<ShardStats>,
}

impl ServeReport {
    /// Aggregated totals over all shards.
    pub fn totals(&self) -> ServeTotals {
        let mut t = ServeTotals::default();
        for s in &self.shards {
            t.submitted += s.submitted;
            t.answered += s.answered;
            t.shed += s.shed();
            t.lost += s.lost;
            t.degraded_answers += s.degraded_answers;
            t.restarts += s.restarts;
        }
        for r in &self.responses {
            if let Response::Answered {
                direction_mispredict,
                target_mispredict,
                ..
            } = r
            {
                t.mispredicted += u64::from(*direction_mispredict || *target_mispredict);
            }
        }
        t
    }

    /// Readiness over the final health of every shard.
    pub fn readiness(&self) -> Readiness {
        Readiness::new(self.shards.iter().map(|s| s.health).collect())
    }

    /// Whether every shard accounts every request exactly once and the
    /// response list covers ids `0..submitted` exactly.
    pub fn accounting_exact(&self) -> bool {
        if !self.shards.iter().all(ShardStats::accounting_exact) {
            return false;
        }
        let t = self.totals();
        if self.responses.len() as u64 != t.submitted {
            return false;
        }
        // Responses are sorted by id on merge; exact coverage of the id
        // space means position == id.
        self.responses
            .iter()
            .enumerate()
            .all(|(i, r)| r.id() == i as u64)
    }
}

impl Observable for ServeReport {
    fn snapshot(&self) -> TelemetrySnapshot {
        let t = self.totals();
        let r = self.readiness();
        TelemetrySnapshot::new("serve")
            .with("shards", self.shards.len() as u64)
            .with("submitted", t.submitted)
            .with("answered", t.answered)
            .with("shed", t.shed)
            .with("lost", t.lost)
            .with("degraded_answers", t.degraded_answers)
            .with("restarts", t.restarts)
            .with("mispredicted", t.mispredicted)
            .with("shards_ready", r.count(Health::Ready))
            .with("shards_degraded", r.count(Health::Degraded))
            .with("shards_failed", r.count(Health::Failed))
            .with("is_ready", u64::from(r.is_ready()))
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

pub(crate) fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The prediction-serving engine: validates a config once, then runs
/// request batches through supervised shards.
#[derive(Debug, Clone)]
pub struct ServeEngine {
    config: ServeConfig,
    faults: PointFaultPlan,
}

impl ServeEngine {
    /// Validates the configuration (including a trial BPU construction so
    /// per-shard builds cannot fail later) and returns an engine.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] naming the rejected field.
    pub fn new(config: ServeConfig) -> Result<ServeEngine, ServeError> {
        if config.shards == 0 {
            return Err(ServeError::new("shards must be positive"));
        }
        if config.queue_capacity == 0 {
            return Err(ServeError::new("queue_capacity must be positive"));
        }
        if config.service_cycles == 0 {
            return Err(ServeError::new("service_cycles must be positive"));
        }
        if config.deadline_cycles < config.service_cycles {
            return Err(ServeError::new(
                "deadline_cycles must be at least service_cycles (everything would shed)",
            ));
        }
        if config.snapshot_interval == 0 {
            return Err(ServeError::new("snapshot_interval must be positive"));
        }
        if config.restart_budget.max_attempts == 0 {
            return Err(ServeError::new(
                "restart_budget.max_attempts must be positive",
            ));
        }
        SecureBpu::new(config.mechanism, config.hw_threads, config.seed)
            .map_err(|e| ServeError::new(format!("mechanism rejected: {e}")))?;
        Ok(ServeEngine {
            config,
            faults: PointFaultPlan::empty(),
        })
    }

    /// Replaces the fault plan (default: inject nothing). The service
    /// faults of the plan (`shard-panic`, `refresh-stall`,
    /// `queue-overload`) key on `(shard, dequeue ordinal)`.
    pub fn with_faults(mut self, faults: PointFaultPlan) -> ServeEngine {
        self.faults = faults;
        self
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The shard serving `(hw, asid)`. Pure: FNV-1a over both ids modulo
    /// the shard count, so a software thread's requests always land on the
    /// same shard and key domain.
    pub fn route(&self, hw: HwThreadId, asid: Asid) -> usize {
        let mut h = fnv1a(&[hw.raw()], FNV_OFFSET);
        h = fnv1a(&asid.raw().to_le_bytes(), h);
        (h % self.config.shards as u64) as usize
    }

    /// Serves one batch of requests (submission order, non-decreasing
    /// `submitted_at`) and returns the complete accounting.
    ///
    /// Requests are partitioned per shard preserving submission order;
    /// each shard's entire lifetime — queueing, prediction, supervision,
    /// snapshots, restarts — runs inside one order-preserving
    /// [`Pool::par_map`] task, so the merged report is independent of the
    /// pool's thread count.
    pub fn run(&self, requests: &[Request], pool: &Pool) -> ServeReport {
        let mut partitions: Vec<(usize, Vec<Request>)> =
            (0..self.config.shards).map(|s| (s, Vec::new())).collect();
        for req in requests {
            let shard = self.route(req.hw, req.asid);
            partitions[shard].1.push(*req);
        }
        let outcomes = pool.par_map(&partitions, |(shard, reqs)| {
            shard::run_shard(&self.config, *shard, reqs, &self.faults)
        });
        let mut responses = Vec::with_capacity(requests.len());
        let mut shards = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            responses.extend(outcome.responses);
            shards.push(outcome.stats);
        }
        // Ids are unique and assigned in submission order, so this restores
        // the global stream deterministically.
        responses.sort_unstable_by_key(Response::id);
        ServeReport { responses, shards }
    }
}

/// Shape of a synthetic closed-loop request stream.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Total requests to generate.
    pub requests: u64,
    /// Hardware threads to round-robin over.
    pub hw_threads: usize,
    /// Distinct ASIDs cycled per hardware thread.
    pub asids_per_thread: u16,
    /// Requests between ASID switches on one hardware thread.
    pub switch_period: u64,
    /// Mean inter-arrival gap in cycles outside bursts.
    pub mean_interarrival: Cycle,
    /// Every `burst_period` requests, `burst_len` arrivals land on the
    /// same cycle to exercise queue backpressure (0 disables bursts).
    pub burst_period: u64,
    /// Arrivals per burst.
    pub burst_len: u64,
    /// Workload seed (independent of the engine seed).
    pub seed: u64,
}

impl WorkloadSpec {
    /// The soak workload used by the benchmark and tests.
    pub fn soak(requests: u64, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            requests,
            hw_threads: 2,
            asids_per_thread: 4,
            switch_period: 97,
            mean_interarrival: 48,
            burst_period: 512,
            burst_len: 24,
            seed,
        }
    }
}

/// Generates a deterministic synthetic request stream: a few hot branch
/// PCs per ASID with biased directions, round-robin hardware threads,
/// periodic ASID switches, and periodic arrival bursts.
pub fn synth_requests(spec: &WorkloadSpec) -> Vec<Request> {
    let mut rng = SplitMix64::new(spec.seed);
    let hw_threads = spec.hw_threads.max(1);
    let asids = spec.asids_per_thread.max(1);
    let switch_period = spec.switch_period.max(1);
    let mut out = Vec::with_capacity(spec.requests as usize);
    let mut now: Cycle = 0;
    let mut asid_slot: Vec<u64> = vec![0; hw_threads];
    for id in 0..spec.requests {
        let hwi = (id as usize) % hw_threads;
        if id > 0 && id % switch_period == 0 {
            asid_slot[hwi] += 1;
        }
        let asid = Asid::new(((asid_slot[hwi] % u64::from(asids)) as u16) + 1 + (hwi as u16) * 100);
        // A small working set of branch PCs per ASID; biased-taken
        // conditionals dominate, with some direct and indirect jumps.
        let pc_index = rng.next_below(24);
        let pc = Addr::new(0x40_0000 + u64::from(asid.raw()) * 0x1_0000 + pc_index * 16);
        let target = pc.wrapping_add(64 + pc_index * 4);
        let roll = rng.next_below(100);
        let record = if roll < 75 {
            let taken = rng.next_below(100) < 80;
            BranchRecord::conditional(pc, target, taken, (rng.next_below(12) + 4) as u32)
        } else if roll < 90 {
            BranchRecord::unconditional(pc, BranchKind::Direct, target, 8)
        } else {
            let t = target.wrapping_add(rng.next_below(4) * 32);
            BranchRecord::unconditional(pc, BranchKind::Indirect, t, 8)
        };
        let in_burst = spec.burst_period > 0
            && spec.burst_len > 0
            && id % spec.burst_period.max(1) < spec.burst_len;
        if !in_burst {
            now += 1 + rng.next_below(2 * spec.mean_interarrival.max(1));
        }
        out.push(Request {
            id,
            hw: HwThreadId::new(hwi as u8),
            asid,
            record,
            submitted_at: now,
        });
    }
    out
}

#[cfg(test)]
mod tests;
