//! Shard snapshot persistence, mirroring the model-cache serialization
//! discipline: a versioned magic line, a key line naming what the payload
//! belongs to, hex-encoded content lines, an FNV-1a seal, and an `end`
//! terminator whose absence marks a truncated write. Files are written to
//! a temporary name and renamed into place so a crash mid-write can never
//! leave a plausible-looking partial snapshot.
//!
//! The payload is the shard's replay journal prefix (not raw table bits):
//! replaying it through the exact live-serving path reconstructs the
//! predictor state bit-for-bit, and validation stays cheap and total.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::fnv1a;
use crate::shard::{decode_kind, JournalEntry};

const MAGIC: &str = "hybp-serve-snapshot v1";
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Process-wide tmp-name uniquifier (pid alone is not enough: several
/// shards of one process may snapshot into the same directory).
static NAME_SEQ: AtomicU64 = AtomicU64::new(0);

fn snapshot_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard{shard}.snap"))
}

fn key_line(shard: usize, seed: u64, entries: usize) -> String {
    format!("key shard={shard} seed={seed:016x} entries={entries}")
}

fn entry_line(e: &JournalEntry) -> String {
    format!(
        "e {:x} {:x} {:x} {:x} {:x} {} {:x} {:x} {}",
        e.hw,
        e.asid,
        e.pc,
        e.kind,
        e.target,
        u8::from(e.taken),
        e.gap,
        e.now,
        u8::from(e.arm_stall),
    )
}

/// Serializes and atomically installs the journal prefix for `shard`.
pub(crate) fn write(
    dir: &Path,
    shard: usize,
    seed: u64,
    journal: &[JournalEntry],
) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let key = key_line(shard, seed, journal.len());
    let mut body = String::with_capacity(64 + journal.len() * 64);
    let _ = writeln!(body, "{MAGIC}");
    let _ = writeln!(body, "{key}");
    let mut seal = fnv1a(key.as_bytes(), FNV_OFFSET);
    for e in journal {
        let line = entry_line(e);
        seal = fnv1a(line.as_bytes(), seal);
        let _ = writeln!(body, "{line}");
    }
    let _ = writeln!(body, "sum {seal:016x}");
    let _ = writeln!(body, "end");

    let seq = NAME_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = dir.join(format!(".shard{shard}.{}.{seq}.tmp", std::process::id()));
    fs::write(&tmp, body.as_bytes())?;
    match fs::rename(&tmp, snapshot_path(dir, shard)) {
        Ok(()) => Ok(()),
        Err(err) => {
            let _ = fs::remove_file(&tmp);
            Err(err)
        }
    }
}

fn parse_hex_u64(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

fn parse_flag(s: &str) -> Option<bool> {
    match s {
        "0" => Some(false),
        "1" => Some(true),
        _ => None,
    }
}

fn parse_entry(line: &str) -> Option<JournalEntry> {
    let mut it = line.split(' ');
    if it.next()? != "e" {
        return None;
    }
    let hw = parse_hex_u64(it.next()?)?;
    let asid = parse_hex_u64(it.next()?)?;
    let pc = parse_hex_u64(it.next()?)?;
    let kind = parse_hex_u64(it.next()?)?;
    let target = parse_hex_u64(it.next()?)?;
    let taken = parse_flag(it.next()?)?;
    let gap = parse_hex_u64(it.next()?)?;
    let now = parse_hex_u64(it.next()?)?;
    let arm_stall = parse_flag(it.next()?)?;
    if it.next().is_some() {
        return None;
    }
    if hw > u64::from(u8::MAX) || asid > u64::from(u16::MAX) || gap > u64::from(u32::MAX) {
        return None;
    }
    let kind = u8::try_from(kind).ok()?;
    decode_kind(kind)?;
    Some(JournalEntry {
        hw: hw as u8,
        asid: asid as u16,
        pc,
        kind,
        target,
        taken,
        gap: gap as u32,
        now,
        arm_stall,
    })
}

/// Loads and fully validates the snapshot for `shard`, or `None` when the
/// file is missing, foreign (wrong shard/seed), truncated, or corrupt.
/// Callers additionally compare the result against their in-memory journal
/// prefix before trusting it.
pub(crate) fn load(dir: &Path, shard: usize, seed: u64) -> Option<Vec<JournalEntry>> {
    let text = fs::read_to_string(snapshot_path(dir, shard)).ok()?;
    let mut lines = text.lines();
    if lines.next()? != MAGIC {
        return None;
    }
    let key = lines.next()?;
    let rest = key.strip_prefix(&format!("key shard={shard} seed={seed:016x} entries="))?;
    let expected: usize = rest.parse().ok()?;
    let mut seal = fnv1a(key.as_bytes(), FNV_OFFSET);
    let mut entries = Vec::with_capacity(expected);
    loop {
        let line = lines.next()?;
        if let Some(sum) = line.strip_prefix("sum ") {
            if parse_hex_u64(sum)? != seal {
                return None;
            }
            break;
        }
        seal = fnv1a(line.as_bytes(), seal);
        entries.push(parse_entry(line)?);
        if entries.len() > expected {
            return None;
        }
    }
    if entries.len() != expected || lines.next()? != "end" || lines.next().is_some() {
        return None;
    }
    Some(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bp-serve-snap-{tag}-{}-{}",
            std::process::id(),
            NAME_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    fn sample_journal() -> Vec<JournalEntry> {
        (0..5)
            .map(|i| JournalEntry {
                hw: (i % 2) as u8,
                asid: 100 + i as u16,
                pc: 0x40_0000 + i * 16,
                kind: (i % 5) as u8,
                target: 0x40_0400 + i * 4,
                taken: i % 2 == 0,
                gap: 7 + i as u32,
                now: 1_000 * (i + 1),
                arm_stall: i == 3,
            })
            .collect()
    }

    #[test]
    fn snapshot_roundtrips_exactly() {
        let dir = tmpdir("roundtrip");
        let journal = sample_journal();
        write(&dir, 2, 0xfeed, &journal).expect("write snapshot");
        assert_eq!(load(&dir, 2, 0xfeed), Some(journal));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_rejects_foreign_shard_or_seed() {
        let dir = tmpdir("foreign");
        write(&dir, 1, 0xfeed, &sample_journal()).expect("write snapshot");
        assert_eq!(load(&dir, 3, 0xfeed), None, "wrong shard has no file");
        // Same path, wrong seed: the key line refuses it.
        fs::rename(dir.join("shard1.snap"), dir.join("shard3.snap")).expect("rename");
        assert_eq!(load(&dir, 3, 0xfeed), None);
        fs::rename(dir.join("shard3.snap"), dir.join("shard1.snap")).expect("rename back");
        assert_eq!(load(&dir, 1, 0xbad), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_rejects_corruption_and_truncation() {
        let dir = tmpdir("corrupt");
        let journal = sample_journal();
        write(&dir, 0, 0xfeed, &journal).expect("write snapshot");
        let path = snapshot_path(&dir, 0);
        let good = fs::read_to_string(&path).expect("read back");

        // Flip one hex digit inside an entry line: seal mismatch.
        let tampered = good.replacen("e 0 64", "e 1 64", 1);
        assert_ne!(tampered, good);
        fs::write(&path, tampered).expect("tamper");
        assert_eq!(load(&dir, 0, 0xfeed), None);

        // Drop the trailing `end`: torn write.
        let torn = good.trim_end().strip_suffix("end").unwrap().to_string();
        fs::write(&path, torn).expect("truncate");
        assert_eq!(load(&dir, 0, 0xfeed), None);

        // Restore intact bytes: loads again.
        fs::write(&path, good).expect("restore");
        assert_eq!(load(&dir, 0, 0xfeed), Some(journal));
        let _ = fs::remove_dir_all(&dir);
    }
}
