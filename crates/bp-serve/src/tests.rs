//! Engine-level tests: exact accounting under fault soaks, thread-count
//! invariance, snapshot-backed restart stream identity, degraded-mode
//! semantics, and budget exhaustion.

use std::path::PathBuf;

use bp_common::pool::{Pool, RetryPolicy};
use bp_common::telemetry::Health;

use super::*;

fn test_config() -> ServeConfig {
    ServeConfig {
        shards: 4,
        hw_threads: 2,
        mechanism: Mechanism::hybp_default(),
        seed: 0xd15e_a5e0_0bad_cafe,
        queue_capacity: 8,
        service_cycles: 64,
        deadline_cycles: 1024,
        restart_penalty_cycles: 10_000,
        snapshot_interval: 32,
        restart_budget: RetryPolicy::standard(7),
        snapshot_dir: None,
    }
}

fn soak_requests(n: u64) -> Vec<Request> {
    synth_requests(&WorkloadSpec::soak(n, 0x1234_5678))
}

/// Two distinct shards that actually receive traffic from `requests`
/// (the soak workload has only a handful of `(hw, asid)` pairs, so a
/// hard-coded shard index may sit idle).
fn busy_shards(engine: &ServeEngine, requests: &[Request]) -> (usize, usize) {
    let first = engine.route(requests[0].hw, requests[0].asid);
    let second = requests
        .iter()
        .map(|r| engine.route(r.hw, r.asid))
        .find(|&s| s != first)
        .unwrap_or(first);
    (first, second)
}

fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bp-serve-test-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    // bp-lint: allow(panic-freedom) reason="cfg(test)-only helper in a standalone test file: a failed tmpdir create must abort the test"
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

#[test]
fn config_validation_rejects_degenerate_values() {
    let ok = ServeEngine::new(test_config());
    assert!(ok.is_ok());
    for (mutate, what) in [
        (
            (|c: &mut ServeConfig| c.shards = 0) as fn(&mut ServeConfig),
            "shards",
        ),
        (|c| c.queue_capacity = 0, "queue_capacity"),
        (|c| c.service_cycles = 0, "service_cycles"),
        (|c| c.deadline_cycles = 1, "deadline_cycles"),
        (|c| c.snapshot_interval = 0, "snapshot_interval"),
        (|c| c.restart_budget.max_attempts = 0, "max_attempts"),
    ] {
        let mut cfg = test_config();
        mutate(&mut cfg);
        assert!(ServeEngine::new(cfg).is_err(), "{what} must be rejected");
    }
}

#[test]
fn routing_is_pure_and_covers_all_shards() {
    let engine = ServeEngine::new(test_config()).expect("valid config");
    let mut hit = vec![false; 4];
    for hw in 0..2u8 {
        for asid in 1..64u16 {
            let s = engine.route(HwThreadId::new(hw), Asid::new(asid));
            assert!(s < 4);
            assert_eq!(s, engine.route(HwThreadId::new(hw), Asid::new(asid)));
            hit[s] = true;
        }
    }
    assert!(hit.iter().all(|&h| h), "every shard serves some domain");
}

#[test]
fn fault_free_soak_accounts_every_request_exactly_once() {
    let engine = ServeEngine::new(test_config()).expect("valid config");
    let requests = soak_requests(2_000);
    let report = engine.run(&requests, &Pool::new(2));
    assert!(report.accounting_exact());
    let t = report.totals();
    assert_eq!(t.submitted, 2_000);
    assert_eq!(t.lost, 0);
    assert_eq!(t.restarts, 0);
    assert_eq!(t.degraded_answers, 0);
    assert!(t.answered > 1_000, "most of the soak is served: {t:?}");
    // The bursty arrivals exercise real backpressure against the 8-deep
    // queue and the deadline.
    assert!(
        t.shed > 0,
        "bursts must shed under the bounded queue: {t:?}"
    );
    assert!(report.readiness().is_ready());
    let snap = report.snapshot();
    assert_eq!(snap.scope, "serve");
    assert_eq!(snap.get("submitted"), 2_000);
    assert_eq!(snap.get("is_ready"), 1);
}

#[test]
fn report_is_bit_identical_across_pool_thread_counts() {
    let mut cfg = test_config();
    cfg.snapshot_dir = Some(tmpdir("threads"));
    let requests = soak_requests(1_500);
    let probe = ServeEngine::new(cfg.clone()).expect("valid config");
    let (sa, sb) = busy_shards(&probe, &requests);
    let plan = PointFaultPlan::parse(&format!(
        "shard-panic@{sa}@40,refresh-stall@{sb}@25,queue-overload@{sa}@10,queue-overload@{sb}@5"
    ))
    .expect("valid fault spec");
    let engine = probe.with_faults(plan);
    let base = engine.run(&requests, &Pool::new(1));
    for threads in [2, 4] {
        let got = engine.run(&requests, &Pool::new(threads));
        assert_eq!(got, base, "report drifted at {threads} pool threads");
    }
    assert!(base.accounting_exact());
    assert_eq!(base.totals().lost, 1);
    let _ = std::fs::remove_dir_all(cfg.snapshot_dir.expect("set above"));
}

#[test]
fn forced_queue_overload_sheds_typed_and_counted() {
    let requests = soak_requests(400);
    let probe = ServeEngine::new(test_config()).expect("valid config");
    let (target, _) = busy_shards(&probe, &requests);
    let plan =
        PointFaultPlan::parse(&format!("queue-overload@{target}@3")).expect("valid fault spec");
    let engine = probe.with_faults(plan);
    let report = engine.run(&requests, &Pool::new(2));
    assert!(report.accounting_exact());
    assert!(report.shards[target].shed_overload >= 1);
    assert!(report.responses.iter().any(|r| matches!(
        r,
        Response::Shed {
            reason: ShedReason::QueueOverload,
            ..
        } if r.shard() == target
    )));
}

/// A panicked-and-restarted shard must resume bit-identical to a shard
/// that never saw the lost request. With a zero-cycle restart penalty the
/// faulted run (minus its lost request) and a clean run over the stream
/// with that request omitted must agree on *every* response field.
#[test]
fn restart_resumes_stream_identical_predictions_from_snapshot() {
    let mut cfg = test_config();
    cfg.queue_capacity = 1 << 16; // no shedding: isolate the restart path
    cfg.deadline_cycles = 1 << 40;
    cfg.restart_penalty_cycles = 0;
    cfg.restart_budget = RetryPolicy {
        max_attempts: 3,
        base_backoff_ms: 0,
        seed: 7,
        retry_panics: true,
    };
    cfg.snapshot_interval = 16;
    cfg.snapshot_dir = Some(tmpdir("restart"));
    let requests = soak_requests(1_200);
    let probe = ServeEngine::new(cfg.clone()).expect("valid config");
    let (target_shard, _) = busy_shards(&probe, &requests);
    let plan =
        PointFaultPlan::parse(&format!("shard-panic@{target_shard}@50")).expect("valid fault spec");
    let engine = probe.with_faults(plan);
    let faulted = engine.run(&requests, &Pool::new(2));
    assert!(faulted.accounting_exact());
    let stats = &faulted.shards[target_shard];
    assert_eq!(stats.lost, 1);
    assert_eq!(stats.restarts, 1);
    assert_eq!(
        stats.snapshot_restores, 1,
        "the panic lands past snapshot_interval, so restore must come from disk: {stats:?}"
    );
    assert_eq!(stats.snapshot_failures, 0);
    assert_eq!(stats.journal_replays, 0);
    assert!(stats.snapshots_written >= 1);
    assert_eq!(stats.health, Health::Degraded, "restarted but serving");

    let lost_id = faulted
        .responses
        .iter()
        .find_map(|r| match *r {
            Response::Lost { id, .. } => Some(id),
            _ => None,
        })
        .expect("exactly one lost request");

    let clean_engine = ServeEngine::new(ServeConfig {
        snapshot_dir: None,
        ..cfg.clone()
    })
    .expect("valid config");
    let without_lost: Vec<Request> = requests
        .iter()
        .copied()
        .filter(|r| r.id != lost_id)
        .collect();
    let clean = clean_engine.run(&without_lost, &Pool::new(2));

    let resumed: Vec<&Response> = faulted
        .responses
        .iter()
        .filter(|r| r.id() != lost_id)
        .collect();
    assert_eq!(resumed.len(), clean.responses.len());
    for (f, c) in resumed.iter().zip(clean.responses.iter()) {
        assert_eq!(**f, *c, "stream diverged after restart at id {}", c.id());
    }
    let _ = std::fs::remove_dir_all(cfg.snapshot_dir.expect("set above"));
}

/// A stalled key refresh opens a degraded window: answers are flagged and
/// counted, but which requests get answered/shed and when is unchanged —
/// stale keys cost accuracy, never correctness (paper §V-C2).
#[test]
fn refresh_stall_degrades_accuracy_only() {
    let cfg = test_config();
    let requests = soak_requests(1_500);
    let clean_engine = ServeEngine::new(cfg.clone()).expect("valid config");
    let (sa, sb) = busy_shards(&clean_engine, &requests);
    let clean = clean_engine.run(&requests, &Pool::new(2));
    let plan = PointFaultPlan::parse(&format!("refresh-stall@{sa}@20,refresh-stall@{sb}@30"))
        .expect("valid fault spec");
    let stalled = ServeEngine::new(cfg)
        .expect("valid config")
        .with_faults(plan)
        .run(&requests, &Pool::new(2));

    assert!(stalled.accounting_exact());
    assert_eq!(clean.responses.len(), stalled.responses.len());
    for (c, s) in clean.responses.iter().zip(stalled.responses.iter()) {
        assert_eq!(c.id(), s.id());
        assert_eq!(c.shard(), s.shard());
        match (c, s) {
            (
                Response::Answered {
                    completed_at: ca,
                    latency: la,
                    ..
                },
                Response::Answered {
                    completed_at: cb,
                    latency: lb,
                    ..
                },
            ) => {
                // Identical service timing: the non-stalling refresh never
                // blocks the server.
                assert_eq!(ca, cb);
                assert_eq!(la, lb);
            }
            (
                Response::Shed {
                    reason: ra, at: aa, ..
                },
                Response::Shed {
                    reason: rb, at: ab, ..
                },
            ) => {
                assert_eq!(ra, rb);
                assert_eq!(aa, ab);
            }
            (c, s) => panic!("response kind changed under stall: {c:?} vs {s:?}"),
        }
    }
    assert_eq!(clean.totals().degraded_answers, 0);
    let t = stalled.totals();
    assert!(t.degraded_answers > 0, "stall must open a degraded window");
    assert_eq!(t.lost, 0);
    assert_eq!(t.restarts, 0);
    let windows: u64 = stalled.shards.iter().map(|s| s.degraded_windows).sum();
    assert!(windows >= 1);
    // Some answers were visibly flagged while the stale-key window was
    // open, and a later generation advance closed it again: the shard
    // self-heals, so final readiness recovers to ready.
    assert!(stalled
        .responses
        .iter()
        .any(|r| matches!(r, Response::Answered { degraded: true, .. })));
    assert_eq!(stalled.readiness().count(Health::Failed), 0);
}

#[test]
fn restart_budget_exhaustion_fails_shard_and_sheds_remainder() {
    let mut cfg = test_config();
    // Immediate re-panics must reach the panic site instead of being
    // deadline-shed behind the restart penalty.
    cfg.queue_capacity = 1 << 16;
    cfg.deadline_cycles = 1 << 40;
    cfg.restart_penalty_cycles = 0;
    cfg.restart_budget = RetryPolicy {
        max_attempts: 2,
        base_backoff_ms: 0,
        seed: 7,
        retry_panics: true,
    };
    let requests = soak_requests(1_200);
    let probe = ServeEngine::new(cfg).expect("valid config");
    let (target, _) = busy_shards(&probe, &requests);
    let plan = PointFaultPlan::parse(&format!(
        "shard-panic@{target}@10,shard-panic@{target}@11,shard-panic@{target}@12"
    ))
    .expect("valid fault spec");
    let engine = probe.with_faults(plan);
    let report = engine.run(&requests, &Pool::new(2));
    assert!(report.accounting_exact());
    let s = &report.shards[target];
    assert_eq!(s.lost, 2, "two panics consumed the two-life budget");
    assert_eq!(s.restarts, 1, "only the first panic earned a restart");
    assert_eq!(s.health, Health::Failed);
    assert!(s.shed_failed > 0, "the failed shard's tail is shed, typed");
    assert!(report
        .shards
        .iter()
        .all(|s| s.shard == target || s.health != Health::Failed));
    let r = report.readiness();
    assert_eq!(r.worst(), Health::Failed);
    assert_eq!(report.snapshot().get("shards_failed"), 1);
}

#[test]
fn synth_workload_is_deterministic_and_ordered() {
    let spec = WorkloadSpec::soak(500, 42);
    let a = synth_requests(&spec);
    let b = synth_requests(&spec);
    assert_eq!(a, b);
    assert_eq!(a.len(), 500);
    assert!(a.windows(2).all(|w| w[0].submitted_at <= w[1].submitted_at));
    assert!(a.windows(2).all(|w| w[0].id + 1 == w[1].id));
}
