//! One supervised worker shard: bounded virtual-time queue, prediction,
//! panic isolation, snapshot-backed restart, and stale-key tracking.
//!
//! A [`SecureBpu`] holds an `Rc`-based fault injector and is therefore not
//! `Send`; a shard's entire lifetime — construction, every request, every
//! restart — runs inside a single order-preserving `Pool::par_map` task.
//! Everything that crosses back to the engine ([`ShardOutcome`]) is plain
//! data.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use bp_common::telemetry::Health;
use bp_common::{Addr, Asid, BranchKind, BranchRecord, Cycle, HwThreadId};
use bp_faults::points::{PointFaultPlan, ServeFaultKind};
use bp_faults::{FaultHook, FaultInjector, RefreshDisposition};
use hybp::{BranchOutcome, SecureBpu};

use crate::snapshot;
use crate::{Request, Response, ServeConfig, ShardStats, ShedReason};

/// The Send result of one shard's complete run: one response per routed
/// request (in dequeue order) plus the shard's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardOutcome {
    /// One response per request routed to the shard.
    pub responses: Vec<Response>,
    /// The shard's statistics and final health.
    pub stats: ShardStats,
}

/// One answered request as recorded for replay. Applying the journal to a
/// freshly built shard reproduces its predictor state bit-for-bit: the
/// live path and the replay path share [`LiveShard::apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct JournalEntry {
    pub hw: u8,
    pub asid: u16,
    pub pc: u64,
    pub kind: u8,
    pub target: u64,
    pub taken: bool,
    pub gap: u32,
    pub now: Cycle,
    /// Whether a refresh-stall was armed immediately before this request;
    /// replay re-arms it so the same renewal is dropped.
    pub arm_stall: bool,
}

pub(crate) fn encode_kind(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::Direct => 1,
        BranchKind::Indirect => 2,
        BranchKind::Call => 3,
        BranchKind::Return => 4,
    }
}

pub(crate) fn decode_kind(code: u8) -> Option<BranchKind> {
    match code {
        0 => Some(BranchKind::Conditional),
        1 => Some(BranchKind::Direct),
        2 => Some(BranchKind::Indirect),
        3 => Some(BranchKind::Call),
        4 => Some(BranchKind::Return),
        _ => None,
    }
}

impl JournalEntry {
    fn from_request(req: &Request, now: Cycle, arm_stall: bool) -> JournalEntry {
        JournalEntry {
            hw: req.hw.raw(),
            asid: req.asid.raw(),
            pc: req.record.pc.into(),
            kind: encode_kind(req.record.kind),
            target: req.record.target.into(),
            taken: req.record.taken,
            gap: req.record.gap,
            now,
            arm_stall,
        }
    }

    fn record(&self) -> BranchRecord {
        BranchRecord {
            pc: Addr::new(self.pc),
            // The in-memory journal only holds encodings of real kinds;
            // snapshot loading re-validates codes before building entries.
            kind: decode_kind(self.kind).unwrap_or(BranchKind::Conditional),
            target: Addr::new(self.target),
            taken: self.taken,
            gap: self.gap,
        }
    }
}

/// Fault hook dropping the next `armed` key-table refreshes — the
/// injectable "refresh stall" that opens a stale-key window. The counter
/// is shared with the shard loop through an `Rc<Cell>`; the shard never
/// crosses threads, so the non-atomic cell is sound.
#[derive(Debug)]
struct StallHook {
    armed: Rc<Cell<u32>>,
}

impl FaultHook for StallHook {
    fn on_refresh(&mut self, _slot: usize, _now: Cycle) -> RefreshDisposition {
        let pending = self.armed.get();
        if pending > 0 {
            self.armed.set(pending - 1);
            RefreshDisposition::Drop
        } else {
            RefreshDisposition::Proceed
        }
    }
}

/// The mutable, non-`Send` core of a shard: the predictor plus the ASID
/// view per hardware thread and the shared stall trigger.
struct LiveShard {
    bpu: SecureBpu,
    stall: Rc<Cell<u32>>,
    asids: Vec<Option<u16>>,
}

impl LiveShard {
    fn build(cfg: &ServeConfig, shard: usize) -> Result<LiveShard, ()> {
        let seed = crate::fnv1a(
            &(shard as u64).to_le_bytes(),
            cfg.seed ^ crate::fnv1a(b"shard", 0xcbf2_9ce4_8422_2325),
        );
        let mut bpu = SecureBpu::new(cfg.mechanism, cfg.hw_threads, seed).map_err(|_| ())?;
        let stall = Rc::new(Cell::new(0u32));
        bpu.set_fault_injector(Some(FaultInjector::new(StallHook {
            armed: Rc::clone(&stall),
        })));
        Ok(LiveShard {
            bpu,
            stall,
            asids: vec![None; cfg.hw_threads],
        })
    }

    /// Applies one journal entry: arm any recorded stall, context-switch if
    /// the hardware thread changed ASID, then predict-and-train. Live
    /// serving and restart replay both go through here, which is what makes
    /// restored shards stream-identical.
    fn apply(&mut self, entry: &JournalEntry) -> BranchOutcome {
        if entry.arm_stall {
            self.stall.set(self.stall.get() + 1);
        }
        let hw = HwThreadId::new(entry.hw);
        let hwi = hw.index().min(self.asids.len().saturating_sub(1));
        if self.asids[hwi] != Some(entry.asid) {
            self.bpu
                .on_context_switch(hw, Asid::new(entry.asid), entry.now);
            self.asids[hwi] = Some(entry.asid);
        }
        self.bpu.process_branch(hw, &entry.record(), entry.now)
    }
}

/// Sheds every remaining request of a permanently failed shard.
fn shed_rest(
    requests: &[Request],
    from: usize,
    shard: usize,
    stats: &mut ShardStats,
    responses: &mut Vec<Response>,
) {
    for req in &requests[from..] {
        stats.submitted += 1;
        stats.shed_failed += 1;
        responses.push(Response::Shed {
            id: req.id,
            shard,
            reason: ShedReason::ShardFailed,
            at: req.submitted_at,
        });
    }
}

/// Runs one shard's complete soak: every routed request is answered, shed,
/// or lost — exactly once — and the result is a pure function of
/// `(cfg, shard, requests, plan)`.
pub(crate) fn run_shard(
    cfg: &ServeConfig,
    shard: usize,
    requests: &[Request],
    plan: &PointFaultPlan,
) -> ShardOutcome {
    let mut stats = ShardStats::new(shard);
    let mut responses = Vec::with_capacity(requests.len());

    let mut live = match LiveShard::build(cfg, shard) {
        Ok(l) => l,
        Err(()) => {
            // Unreachable after ServeEngine::new's trial construction, but
            // a build refusal must fail the shard loudly, not panic.
            stats.health = Health::Failed;
            shed_rest(requests, 0, shard, &mut stats, &mut responses);
            return ShardOutcome { responses, stats };
        }
    };

    let mut journal: Vec<JournalEntry> = Vec::new();
    let mut snapshot_len: usize = 0; // journal prefix captured on disk
    let mut busy_until: Cycle = 0;
    let mut inflight: VecDeque<Cycle> = VecDeque::new();
    let mut attempts_used: u32 = 0;
    let mut seen_stalls: u64 = 0;
    let mut degraded = false;
    let mut gen_at_stall: u64 = 0;

    for (i, req) in requests.iter().enumerate() {
        stats.submitted += 1;
        // Dequeue ordinal — what serve faults key on.
        let deq = i as u64;

        // Retire completions up to this arrival, then check backpressure.
        while inflight.front().is_some_and(|&c| c <= req.submitted_at) {
            inflight.pop_front();
        }
        stats.queue_depth.set(inflight.len() as u64);
        let forced_overload = plan
            .serve_fault_at(ServeFaultKind::QueueOverload, shard, deq)
            .is_some();
        if forced_overload || inflight.len() >= cfg.queue_capacity {
            stats.shed_overload += 1;
            responses.push(Response::Shed {
                id: req.id,
                shard,
                reason: ShedReason::QueueOverload,
                at: req.submitted_at,
            });
            continue;
        }

        // Deadline check happens before any predictor mutation: a shed
        // request must never train the model.
        let start = busy_until.max(req.submitted_at);
        let finish = start + cfg.service_cycles;
        if finish > req.submitted_at + cfg.deadline_cycles {
            stats.shed_deadline += 1;
            responses.push(Response::Shed {
                id: req.id,
                shard,
                reason: ShedReason::DeadlineExpired,
                at: req.submitted_at,
            });
            continue;
        }

        let arm_stall = plan
            .serve_fault_at(ServeFaultKind::RefreshStall, shard, deq)
            .is_some();
        let entry = JournalEntry::from_request(req, start, arm_stall);
        let panic_armed = plan
            .serve_fault_at(ServeFaultKind::ShardPanic, shard, deq)
            .is_some();

        // Supervision boundary. AssertUnwindSafe is sound because a caught
        // panic discards `live` wholesale and rebuilds it from the journal.
        let served = catch_unwind(AssertUnwindSafe(|| {
            if panic_armed {
                // bp-lint: allow(panic-freedom) reason="fault injection: this panic exists to exercise the supervision boundary below and is caught by it"
                panic!("injected shard-panic (shard {shard}, dequeue {deq})");
            }
            live.apply(&entry)
        }));

        match served {
            Ok(outcome) => {
                journal.push(entry);
                busy_until = finish;
                inflight.push_back(finish);
                let latency = finish - req.submitted_at;
                stats.latency.record(latency);

                // Stale-key window tracking: a manager-wide stall count
                // moving without a generation advance opens degraded mode;
                // the serving slot's next generation advance closes it.
                let slot = live.bpu.domain(req.hw).isolation_slot();
                let mut key_generation = 0;
                if let Some(epoch) = live.bpu.key_epoch(slot, finish) {
                    key_generation = epoch.generation;
                    if epoch.refresh_stalls > seen_stalls {
                        seen_stalls = epoch.refresh_stalls;
                        if !degraded {
                            stats.degraded_windows += 1;
                        }
                        degraded = true;
                        gen_at_stall = epoch.generation;
                    } else if degraded && epoch.generation > gen_at_stall {
                        degraded = false;
                    }
                }
                if degraded {
                    stats.degraded_answers += 1;
                }
                stats.answered += 1;
                responses.push(Response::Answered {
                    id: req.id,
                    shard,
                    direction_mispredict: outcome.direction_mispredict,
                    target_mispredict: outcome.target_mispredict,
                    completed_at: finish,
                    latency,
                    degraded,
                    key_generation,
                });

                if let Some(dir) = cfg.snapshot_dir.as_deref() {
                    if journal.len() >= snapshot_len + cfg.snapshot_interval as usize {
                        match snapshot::write(dir, shard, cfg.seed, &journal) {
                            Ok(()) => {
                                snapshot_len = journal.len();
                                stats.snapshots_written += 1;
                            }
                            Err(_) => stats.snapshot_failures += 1,
                        }
                    }
                }
            }
            Err(_) => {
                // The in-flight request is lost; the supervisor decides
                // between restart and permanent failure.
                attempts_used += 1;
                stats.lost += 1;
                responses.push(Response::Lost {
                    id: req.id,
                    shard,
                    restart: attempts_used,
                });
                if attempts_used >= cfg.restart_budget.max_attempts {
                    stats.health = Health::Failed;
                    shed_rest(requests, i + 1, shard, &mut stats, &mut responses);
                    return ShardOutcome { responses, stats };
                }

                let mut fresh = match LiveShard::build(cfg, shard) {
                    Ok(l) => l,
                    Err(()) => {
                        stats.health = Health::Failed;
                        shed_rest(requests, i + 1, shard, &mut stats, &mut responses);
                        return ShardOutcome { responses, stats };
                    }
                };
                // Prefer the on-disk snapshot (exercising the serialized
                // form) and replay the journal tail after it; any
                // validation failure falls back to the full in-memory
                // journal. Both paths rebuild identical predictor state.
                let mut replayed_from_disk = false;
                if let Some(dir) = cfg.snapshot_dir.as_deref() {
                    if snapshot_len > 0 {
                        match snapshot::load(dir, shard, cfg.seed) {
                            Some(entries) if entries.as_slice() == &journal[..snapshot_len] => {
                                for e in &entries {
                                    fresh.apply(e);
                                }
                                for e in &journal[snapshot_len..] {
                                    fresh.apply(e);
                                }
                                stats.snapshot_restores += 1;
                                replayed_from_disk = true;
                            }
                            _ => stats.snapshot_failures += 1,
                        }
                    }
                }
                if !replayed_from_disk {
                    for e in &journal {
                        fresh.apply(e);
                    }
                    stats.journal_replays += 1;
                }
                live = fresh;
                stats.restarts += 1;

                // The restart keeps the shard's virtual server busy: fixed
                // penalty plus the retry policy's seeded backoff, folded in
                // as cycles (attempt numbering is 2-based in the policy).
                busy_until = busy_until.max(req.submitted_at)
                    + cfg.restart_penalty_cycles
                    + cfg.restart_budget.backoff_ms(shard, attempts_used + 1);
            }
        }
    }

    stats.health = if stats.health == Health::Failed {
        Health::Failed
    } else if degraded || stats.restarts > 0 {
        Health::Degraded
    } else {
        Health::Ready
    };
    ShardOutcome { responses, stats }
}
