//! Prints measured TAGE-SC-L accuracy per benchmark vs the calibrated target.
use bp_predictors::codec::IdentityCodec;
use bp_predictors::tage_scl::TageScL;
use bp_predictors::DirectionPredictor;
use bp_workloads::{SpecBenchmark, WorkloadGenerator};

fn main() {
    println!(
        "{:<14} {:>8} {:>8} {:>7}",
        "benchmark", "measured", "target", "delta"
    );
    for bench in SpecBenchmark::ALL {
        let p = bench.profile();
        let mut g = WorkloadGenerator::new(p, 13);
        let mut t = TageScL::paper_default();
        let mut c = IdentityCodec::new();
        let (mut ok, mut total) = (0u64, 0u64);
        let mut step = 0u64;
        let mut warmup = 40_000i64;
        while total < 80_000 {
            let r = g.next_branch();
            step += 1;
            if !r.kind.is_conditional() {
                continue;
            }
            let pred = t.predict(r.pc, &mut c, step);
            t.update(r.pc, r.taken, &mut c, step);
            if warmup > 0 {
                warmup -= 1;
                continue;
            }
            if pred == r.taken {
                ok += 1;
            }
            total += 1;
        }
        let acc = ok as f64 / total as f64;
        println!(
            "{:<14} {:>8.4} {:>8.4} {:>+7.4}",
            p.benchmark.name(),
            acc,
            p.target_accuracy,
            acc - p.target_accuracy
        );
    }
}
