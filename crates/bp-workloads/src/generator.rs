//! The synthetic branch-stream generator.
//!
//! Turns a [`BenchmarkProfile`] into an infinite, deterministic stream of
//! [`BranchRecord`]s with the statistical structure branch predictors react
//! to:
//!
//! * a *hot working set* of static branches walked with loop-like locality,
//! * per-branch outcome models (strong bias with rare flips, short periodic
//!   patterns, fixed-trip loops, global-history correlation, biased noise),
//! * indirect branches cycling through per-site target sets,
//! * matched call/return pairs exercising the RAS.
//!
//! Two generators with the same profile and seed produce identical streams;
//! different seeds produce statistically identical but distinct programs
//! (used for distinct software threads in the context-switch experiments).

use bp_common::rng::Xoshiro256StarStar;
use bp_common::{Addr, BranchKind, BranchRecord};

use crate::profile::BenchmarkProfile;

/// Outcome model of one static conditional branch.
#[derive(Debug, Clone)]
enum OutcomeModel {
    /// Nearly always `taken`, flipping with `flip_prob`.
    Biased { taken: bool, flip_prob: f64 },
    /// Deterministic short pattern over its execution count.
    Pattern { bits: u32, period: u32 },
    /// Fixed-trip loop: taken `trip - 1` times, then one not-taken.
    Loop { trip: u32 },
    /// Equal to the XOR of the last two global outcomes (learnable from
    /// history, invisible to a per-branch counter).
    HistoryXor,
    /// Biased coin flip (the unpredictable fraction).
    Noise { p_taken: f64 },
}

/// One static branch site.
#[derive(Debug, Clone)]
struct StaticBranch {
    pc: Addr,
    kind: BranchKind,
    /// For direct branches: the fixed target. For indirect: the target base.
    target: Addr,
    model: OutcomeModel,
    /// Per-branch dynamic execution count (drives Pattern/Loop models).
    executions: u64,
    /// Indirect branches: current target index + number of targets.
    indirect_targets: u32,
}

/// Deterministic branch-stream generator for one software thread.
///
/// # Examples
///
/// ```
/// use bp_workloads::{SpecBenchmark, WorkloadGenerator};
///
/// let mut gen = WorkloadGenerator::new(SpecBenchmark::Mcf.profile(), 42);
/// let a = gen.next_branch();
/// let mut gen2 = WorkloadGenerator::new(SpecBenchmark::Mcf.profile(), 42);
/// assert_eq!(a, gen2.next_branch()); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    profile: BenchmarkProfile,
    branches: Vec<StaticBranch>,
    rng: Xoshiro256StarStar,
    /// Inner-loop regions: `(start, len)` slices of the working set. The
    /// walk loops within a region for a number of iterations before moving
    /// on — the nested-loop locality real programs have, and what makes
    /// pattern/history branches learnable at realistic rates.
    regions: Vec<(usize, usize)>,
    region: usize,
    pos: usize,
    iters_left: u32,
    /// Recent global outcomes (for HistoryXor).
    last_two: (bool, bool),
    /// Open call sites awaiting a return (return target = call pc + 4).
    call_stack: Vec<Addr>,
    /// Total instructions represented so far (branches + gaps).
    instructions: u64,
    code_base: u64,
}

impl WorkloadGenerator {
    /// Builds a generator for `profile` with a deterministic `seed`.
    pub fn new(profile: BenchmarkProfile, seed: u64) -> Self {
        let mut rng = Xoshiro256StarStar::seeded(seed ^ 0xB0B0_0001);
        // Distinct software threads (seeds) live in distinct code regions so
        // their PCs do not collide — like different processes' layouts.
        let code_base = 0x10_0000 + (seed % 1024) * 0x40_0000;
        let n = profile.static_branches;
        let mut branches = Vec::with_capacity(n);
        let mut pc_cursor = code_base;
        for i in 0..n {
            // Irregular 4..=32-byte spacing: real branch PCs exercise all
            // low index bits (a fixed stride would leave most sets unused).
            pc_cursor += 4 + 4 * rng.next_below(8);
            let pc = Addr::new(pc_cursor);
            let u = rng.next_f64();
            let is_indirect = rng.chance(
                profile.indirect_frac / profile.branch_fraction.max(1e-9) * profile.branch_fraction,
            );
            // Assign kinds: a sprinkle of calls (paired with returns at run
            // time), indirect jumps per profile, rest conditional.
            let kind = if is_indirect {
                BranchKind::Indirect
            } else if rng.chance(0.04) {
                BranchKind::Call
            } else if rng.chance(0.02) {
                BranchKind::Direct
            } else {
                BranchKind::Conditional
            };
            let model = if u < profile.strongly_biased_frac {
                OutcomeModel::Biased {
                    taken: rng.chance(0.7),
                    flip_prob: profile.bias_flip_prob,
                }
            } else if u < profile.strongly_biased_frac + profile.pattern_frac {
                if rng.chance(0.5) {
                    let period = 2 + rng.next_below(3) as u32;
                    OutcomeModel::Pattern {
                        bits: (rng.next_u64() & ((1 << period) - 1)) as u32,
                        period,
                    }
                } else {
                    OutcomeModel::Loop {
                        trip: 3 + rng.next_below(14) as u32,
                    }
                }
            } else if u < profile.strongly_biased_frac + profile.pattern_frac + profile.history_frac
            {
                OutcomeModel::HistoryXor
            } else {
                OutcomeModel::Noise {
                    p_taken: profile.random_bias,
                }
            };
            let target = Addr::new(code_base + 0x20_0000 + (i as u64 * 64));
            branches.push(StaticBranch {
                pc,
                kind,
                target,
                model,
                executions: 0,
                indirect_targets: profile.indirect_targets as u32,
            });
        }
        // Carve the working set into inner-loop regions of 4..=40 branches.
        let mut regions = Vec::new();
        let mut start = 0usize;
        while start < n {
            let len = (4 + rng.next_below(37) as usize).min(n - start);
            regions.push((start, len));
            start += len;
        }
        let mut gen = WorkloadGenerator {
            profile,
            branches,
            rng,
            regions,
            region: 0,
            pos: 0,
            iters_left: 1,
            last_two: (false, false),
            call_stack: Vec::new(),
            instructions: 0,
            code_base,
        };
        gen.enter_region(0);
        gen
    }

    fn enter_region(&mut self, region: usize) {
        self.region = region % self.regions.len();
        self.pos = 0;
        let (lo, hi) = self.profile.region_iters;
        self.iters_left = lo + self.rng.next_below(u64::from(hi - lo + 1)) as u32;
    }

    /// The profile this generator realizes.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Instructions represented so far (gaps + branches).
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Produces the next dynamic branch.
    pub fn next_branch(&mut self) -> BranchRecord {
        // Pending return? Close the innermost call with some probability.
        // The emptiness check must stay *before* the RNG draw so the
        // branch stream (and with it every CSV) is bit-identical to the
        // pre-refactor generator.
        if !self.call_stack.is_empty() && self.rng.chance(0.3) {
            if let Some(ret_target) = self.call_stack.pop() {
                let gap = self.gap();
                let pc =
                    Addr::new(self.code_base + 0x30_0000 + (self.call_stack.len() as u64 * 32));
                self.instructions += u64::from(gap) + 1;
                return BranchRecord::unconditional(pc, BranchKind::Return, ret_target, gap);
            }
        }

        // Walk: sequential within the current inner-loop region; at the
        // region's end, either iterate again or move to the next region
        // (occasionally a far jump — irregular control flow).
        let (start, len) = self.regions[self.region];
        let i = start + self.pos;
        self.pos += 1;
        if self.pos >= len {
            self.pos = 0;
            self.iters_left = self.iters_left.saturating_sub(1);
            if self.iters_left == 0 {
                if self.rng.chance(0.05) {
                    let far = self.rng.next_below(self.regions.len() as u64) as usize;
                    self.enter_region(far);
                } else {
                    self.enter_region(self.region + 1);
                }
            }
        }

        let gap = self.gap();
        self.instructions += u64::from(gap) + 1;

        let (pc, kind, n_targets) = {
            let b = &self.branches[i];
            (b.pc, b.kind, b.indirect_targets)
        };
        match kind {
            BranchKind::Conditional => {
                let taken = self.outcome(i);
                self.last_two = (taken, self.last_two.0);
                let target = self.branches[i].target;
                BranchRecord::conditional(pc, target, taken, gap)
            }
            BranchKind::Indirect => {
                // Zipf-ish target selection: favourite target 70% of the time.
                let t = if self.rng.chance(0.7) {
                    0
                } else {
                    self.rng.next_below(u64::from(n_targets)) as u32
                };
                let target = Addr::new(self.branches[i].target.raw() + u64::from(t) * 16);
                BranchRecord::unconditional(pc, BranchKind::Indirect, target, gap)
            }
            BranchKind::Call => {
                // Bounded call depth keeps the stream realistic.
                if self.call_stack.len() < 24 {
                    self.call_stack.push(pc.wrapping_add(4));
                }
                let target = self.branches[i].target;
                BranchRecord::unconditional(pc, BranchKind::Call, target, gap)
            }
            BranchKind::Direct => {
                let target = self.branches[i].target;
                BranchRecord::unconditional(pc, BranchKind::Direct, target, gap)
            }
            // Static profiles never contain `Return` rows (returns are
            // synthesized from the call stack above); degrade a buggy one to
            // a direct branch rather than aborting the workload stream.
            BranchKind::Return => {
                debug_assert!(false, "returns are synthesized from the call stack");
                let target = self.branches[i].target;
                BranchRecord::unconditional(pc, BranchKind::Direct, target, gap)
            }
        }
    }

    fn gap(&mut self) -> u32 {
        self.rng.gap(self.profile.mean_gap(), 64)
    }

    fn outcome(&mut self, i: usize) -> bool {
        let execs = self.branches[i].executions;
        self.branches[i].executions += 1;
        match &self.branches[i].model {
            OutcomeModel::Biased { taken, flip_prob } => {
                let (t, f) = (*taken, *flip_prob);
                t != self.rng.chance(f)
            }
            OutcomeModel::Pattern { bits, period } => {
                (bits >> (execs % u64::from(*period))) & 1 == 1
            }
            OutcomeModel::Loop { trip } => (execs % u64::from(*trip)) + 1 < u64::from(*trip),
            OutcomeModel::HistoryXor => self.last_two.0 ^ self.last_two.1,
            OutcomeModel::Noise { p_taken } => {
                let p = *p_taken;
                self.rng.chance(p)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SpecBenchmark;

    #[test]
    fn deterministic_per_seed() {
        let p = SpecBenchmark::Xz.profile();
        let mut a = WorkloadGenerator::new(p, 7);
        let mut b = WorkloadGenerator::new(p, 7);
        for _ in 0..1000 {
            assert_eq!(a.next_branch(), b.next_branch());
        }
    }

    #[test]
    fn different_seeds_use_different_code_regions() {
        let p = SpecBenchmark::Xz.profile();
        let mut a = WorkloadGenerator::new(p, 1);
        let mut b = WorkloadGenerator::new(p, 2);
        let pa = a.next_branch().pc;
        let pb = b.next_branch().pc;
        assert!((pa.raw() as i64 - pb.raw() as i64).unsigned_abs() > 0x10_0000);
    }

    #[test]
    fn branch_fraction_is_respected() {
        let p = SpecBenchmark::Mcf.profile(); // branch fraction 0.19
        let mut g = WorkloadGenerator::new(p, 3);
        let n = 20_000;
        for _ in 0..n {
            g.next_branch();
        }
        let frac = n as f64 / g.instructions() as f64;
        assert!(
            (frac - 0.19).abs() < 0.03,
            "observed branch fraction {frac}"
        );
    }

    #[test]
    fn calls_and_returns_are_matched() {
        let p = SpecBenchmark::Xalancbmk.profile();
        let mut g = WorkloadGenerator::new(p, 5);
        let mut stack = Vec::new();
        let mut returns_checked = 0;
        for _ in 0..50_000 {
            let r = g.next_branch();
            match r.kind {
                BranchKind::Call => stack.push(r.pc.wrapping_add(4)),
                BranchKind::Return => {
                    if let Some(expect) = stack.pop() {
                        assert_eq!(r.target, expect, "return must match call site");
                        returns_checked += 1;
                    }
                }
                _ => {}
            }
        }
        assert!(returns_checked > 50, "saw only {returns_checked} returns");
    }

    #[test]
    fn working_set_size_matches_profile() {
        let p = SpecBenchmark::Lbm.profile(); // 260 static branches
        let mut g = WorkloadGenerator::new(p, 9);
        let mut pcs = std::collections::BTreeSet::new();
        for _ in 0..50_000 {
            pcs.insert(g.next_branch().pc);
        }
        // Returns add a few extra PCs beyond the static set.
        assert!(
            pcs.len() >= 200 && pcs.len() < 400,
            "distinct PCs {}",
            pcs.len()
        );
    }

    #[test]
    fn indirect_branches_have_multiple_targets() {
        let p = SpecBenchmark::Xalancbmk.profile();
        let mut g = WorkloadGenerator::new(p, 11);
        let mut targets: std::collections::BTreeMap<u64, std::collections::BTreeSet<u64>> =
            std::collections::BTreeMap::new();
        for _ in 0..200_000 {
            let r = g.next_branch();
            if r.kind == BranchKind::Indirect {
                targets
                    .entry(r.pc.raw())
                    .or_default()
                    .insert(r.target.raw());
            }
        }
        let multi = targets.values().filter(|s| s.len() > 1).count();
        assert!(multi > 0, "some indirect sites must have several targets");
    }

    #[test]
    fn tage_reaches_profile_accuracy_class() {
        // End-to-end calibration: the paper-scale TAGE-SC-L must reach each
        // profile's accuracy ceiling within a few points on conditionals.
        use bp_predictors::codec::IdentityCodec;
        use bp_predictors::tage_scl::TageScL;
        use bp_predictors::DirectionPredictor;
        for bench in [SpecBenchmark::Lbm, SpecBenchmark::Mcf, SpecBenchmark::Wrf] {
            let p = bench.profile();
            let mut g = WorkloadGenerator::new(p, 13);
            let mut t = TageScL::paper_default();
            let mut c = IdentityCodec::new();
            let (mut ok, mut total) = (0u64, 0u64);
            let mut step = 0u64;
            let mut warmup = 30_000i64;
            while total < 60_000 {
                let r = g.next_branch();
                step += 1;
                if !r.kind.is_conditional() {
                    continue;
                }
                let pred = t.predict(r.pc, &mut c, step);
                t.update(r.pc, r.taken, &mut c, step);
                if warmup > 0 {
                    warmup -= 1;
                    continue;
                }
                if pred == r.taken {
                    ok += 1;
                }
                total += 1;
            }
            let acc = ok as f64 / total as f64;
            let target = p.target_accuracy;
            assert!(
                (acc - target).abs() < 0.03,
                "{bench}: accuracy {acc:.4} vs calibrated target {target:.4}"
            );
        }
    }
}
