//! Synthetic SPEC CPU2017-like branch workloads for the HyBP reproduction.
//!
//! The paper evaluates on SPEC CPU2017 with reference inputs under gem5.
//! That environment consumes two things from each benchmark: its *branch
//! behaviour* (how predictable its branches are, how large its branch
//! working set is, how much state the predictor must keep warm) and its
//! *intrinsic ILP* (how fast it runs when branches are free). This crate
//! synthesizes both:
//!
//! * [`profile`] — one calibrated [`profile::BenchmarkProfile`] per SPEC
//!   benchmark the paper names, with the branch-class mix chosen so the
//!   paper-scale TAGE-SC-L reaches each benchmark's published accuracy
//!   class, plus an intrinsic-IPC figure for the SMT model;
//! * [`generator`] — a deterministic, seedable [`generator::WorkloadGenerator`]
//!   that turns a profile into an infinite [`bp_common::BranchRecord`]
//!   stream (loops, biased branches, history-correlated branches, indirect
//!   branches with target sets, matched call/return pairs);
//! * [`mixes`] — the paper's Table V SMT-2 pairings (mix1..mix12) with
//!   their H-ILP / MIX / L-ILP classification.
//!
//! See `DESIGN.md` §2 for why this substitution preserves the evaluated
//! behaviour.

pub mod generator;
pub mod mixes;
pub mod profile;
pub mod trace;

pub use generator::WorkloadGenerator;
pub use mixes::{IlpClass, Mix, TABLE_V_MIXES};
pub use profile::{BenchmarkProfile, SpecBenchmark};
pub use trace::BranchTrace;
