//! Branch-trace recording and replay.
//!
//! The generators in this crate are deterministic, but experiments sometimes
//! need to freeze an exact dynamic stream — e.g. to replay the same branch
//! sequence against two mechanisms, to ship a regression trace with a bug
//! report, or to cut simulator time by skipping generation. A [`BranchTrace`]
//! is such a frozen stream, with a compact text serialization.
//!
//! # Examples
//!
//! ```
//! use bp_workloads::trace::BranchTrace;
//! use bp_workloads::{SpecBenchmark, WorkloadGenerator};
//!
//! let mut gen = WorkloadGenerator::new(SpecBenchmark::Mcf.profile(), 1);
//! let trace = BranchTrace::record(&mut gen, 100);
//! let text = trace.to_text();
//! let back = BranchTrace::from_text(&text).unwrap();
//! assert_eq!(trace, back);
//! ```

use bp_common::{Addr, BranchKind, BranchRecord};

use crate::generator::WorkloadGenerator;

/// A recorded dynamic branch stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BranchTrace {
    records: Vec<BranchRecord>,
}

/// Error parsing a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.reason
        )
    }
}

impl std::error::Error for ParseTraceError {}

fn kind_code(k: BranchKind) -> char {
    match k {
        BranchKind::Conditional => 'C',
        BranchKind::Direct => 'D',
        BranchKind::Indirect => 'I',
        BranchKind::Call => 'L',
        BranchKind::Return => 'R',
    }
}

fn kind_from_code(c: &str) -> Option<BranchKind> {
    match c {
        "C" => Some(BranchKind::Conditional),
        "D" => Some(BranchKind::Direct),
        "I" => Some(BranchKind::Indirect),
        "L" => Some(BranchKind::Call),
        "R" => Some(BranchKind::Return),
        _ => None,
    }
}

impl BranchTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        BranchTrace::default()
    }

    /// Records `n` branches from a generator.
    pub fn record(gen: &mut WorkloadGenerator, n: usize) -> Self {
        BranchTrace {
            records: (0..n).map(|_| gen.next_branch()).collect(),
        }
    }

    /// Wraps an explicit record list.
    pub fn from_records(records: Vec<BranchRecord>) -> Self {
        BranchTrace { records }
    }

    /// The records.
    pub fn records(&self) -> &[BranchRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total instructions the trace represents (branches + gaps).
    pub fn instructions(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.gap) + 1).sum()
    }

    /// Serializes to the line format `kind,pc,target,taken,gap` (hex
    /// addresses), one record per line.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 32);
        for r in &self.records {
            out.push_str(&format!(
                "{},{:x},{:x},{},{}\n",
                kind_code(r.kind),
                r.pc.raw(),
                r.target.raw(),
                u8::from(r.taken),
                r.gap
            ));
        }
        out
    }

    /// Parses the [`BranchTrace::to_text`] format.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] naming the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, ParseTraceError> {
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let err = |reason: &str| ParseTraceError {
                line: i + 1,
                reason: reason.to_string(),
            };
            let parts: Vec<&str> = line.split(',').collect();
            if parts.len() != 5 {
                return Err(err("expected 5 comma-separated fields"));
            }
            let kind = kind_from_code(parts[0]).ok_or_else(|| err("unknown branch kind"))?;
            let pc = u64::from_str_radix(parts[1], 16).map_err(|_| err("bad pc"))?;
            let target = u64::from_str_radix(parts[2], 16).map_err(|_| err("bad target"))?;
            let taken = match parts[3] {
                "0" => false,
                "1" => true,
                _ => return Err(err("taken must be 0 or 1")),
            };
            let gap: u32 = parts[4].parse().map_err(|_| err("bad gap"))?;
            if kind != BranchKind::Conditional && !taken {
                return Err(err("unconditional branches must be taken"));
            }
            records.push(BranchRecord {
                pc: Addr::new(pc),
                kind,
                target: Addr::new(target),
                taken,
                gap,
            });
        }
        Ok(BranchTrace { records })
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, BranchRecord> {
        self.records.iter()
    }
}

impl FromIterator<BranchRecord> for BranchTrace {
    fn from_iter<T: IntoIterator<Item = BranchRecord>>(iter: T) -> Self {
        BranchTrace {
            records: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a BranchTrace {
    type Item = &'a BranchRecord;
    type IntoIter = std::slice::Iter<'a, BranchRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SpecBenchmark;

    #[test]
    fn record_and_roundtrip() {
        let mut gen = WorkloadGenerator::new(SpecBenchmark::Xz.profile(), 3);
        let trace = BranchTrace::record(&mut gen, 500);
        assert_eq!(trace.len(), 500);
        assert!(trace.instructions() >= 500);
        let text = trace.to_text();
        let back = BranchTrace::from_text(&text).expect("roundtrip");
        assert_eq!(trace, back);
    }

    #[test]
    fn empty_trace() {
        let t = BranchTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.instructions(), 0);
        assert_eq!(BranchTrace::from_text("").unwrap(), t);
    }

    #[test]
    fn parse_errors_name_the_line() {
        let e = BranchTrace::from_text("C,10,20,1,3\nX,10,20,1,3\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.reason.contains("kind"));
        let e = BranchTrace::from_text("C,zz,20,1,3\n").unwrap_err();
        assert!(e.reason.contains("pc"));
        let e = BranchTrace::from_text("D,10,20,0,3\n").unwrap_err();
        assert!(e.reason.contains("unconditional"));
    }

    #[test]
    fn replay_is_mechanism_fair() {
        // The trace replays identically across predictors — the property the
        // module exists for.
        use bp_predictors::codec::IdentityCodec;
        use bp_predictors::tage_scl::TageScL;
        use bp_predictors::DirectionPredictor;
        let mut gen = WorkloadGenerator::new(SpecBenchmark::Cam4.profile(), 7);
        let trace = BranchTrace::record(&mut gen, 2_000);
        let run = |trace: &BranchTrace| {
            let mut p = TageScL::paper_default();
            let mut c = IdentityCodec::new();
            let mut mis = 0;
            for (i, r) in trace.iter().enumerate() {
                if r.kind.is_conditional() {
                    if p.predict(r.pc, &mut c, i as u64) != r.taken {
                        mis += 1;
                    }
                    p.update(r.pc, r.taken, &mut c, i as u64);
                }
            }
            mis
        };
        assert_eq!(run(&trace), run(&trace));
    }

    #[test]
    fn collect_from_iterator() {
        let r = BranchRecord::conditional(Addr::new(4), Addr::new(8), true, 1);
        let t: BranchTrace = std::iter::repeat_n(r, 5).collect();
        assert_eq!(t.len(), 5);
    }
}
