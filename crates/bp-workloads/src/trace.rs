//! Branch-trace recording and replay.
//!
//! The generators in this crate are deterministic, but experiments sometimes
//! need to freeze an exact dynamic stream — e.g. to replay the same branch
//! sequence against two mechanisms, to ship a regression trace with a bug
//! report, or to cut simulator time by skipping generation. A [`BranchTrace`]
//! is such a frozen stream, with a compact text serialization.
//!
//! # Examples
//!
//! ```
//! use bp_workloads::trace::BranchTrace;
//! use bp_workloads::{SpecBenchmark, WorkloadGenerator};
//!
//! let mut gen = WorkloadGenerator::new(SpecBenchmark::Mcf.profile(), 1);
//! let trace = BranchTrace::record(&mut gen, 100);
//! let text = trace.to_text();
//! let back = BranchTrace::from_text(&text).unwrap();
//! assert_eq!(trace, back);
//! ```

use bp_common::{Addr, BranchKind, BranchRecord};

use crate::generator::WorkloadGenerator;

/// A recorded dynamic branch stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BranchTrace {
    records: Vec<BranchRecord>,
}

/// Error parsing a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.reason
        )
    }
}

impl std::error::Error for ParseTraceError {}

fn kind_code(k: BranchKind) -> char {
    match k {
        BranchKind::Conditional => 'C',
        BranchKind::Direct => 'D',
        BranchKind::Indirect => 'I',
        BranchKind::Call => 'L',
        BranchKind::Return => 'R',
    }
}

fn kind_from_code(c: &str) -> Option<BranchKind> {
    match c {
        "C" => Some(BranchKind::Conditional),
        "D" => Some(BranchKind::Direct),
        "I" => Some(BranchKind::Indirect),
        "L" => Some(BranchKind::Call),
        "R" => Some(BranchKind::Return),
        _ => None,
    }
}

impl BranchTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        BranchTrace::default()
    }

    /// Records `n` branches from a generator.
    pub fn record(gen: &mut WorkloadGenerator, n: usize) -> Self {
        BranchTrace {
            records: (0..n).map(|_| gen.next_branch()).collect(),
        }
    }

    /// Wraps an explicit record list.
    pub fn from_records(records: Vec<BranchRecord>) -> Self {
        BranchTrace { records }
    }

    /// The records.
    pub fn records(&self) -> &[BranchRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total instructions the trace represents (branches + gaps).
    pub fn instructions(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.gap) + 1).sum()
    }

    /// Serializes to the line format `kind,pc,target,taken,gap` (hex
    /// addresses), one record per line, preceded by a `# records: N`
    /// header that lets [`BranchTrace::from_text`] detect truncation — a
    /// text trace cut short at a line boundary would otherwise parse
    /// cleanly as a shorter trace.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 32 + 24);
        out.push_str(&format!("# records: {}\n", self.records.len()));
        for r in &self.records {
            out.push_str(&format!(
                "{},{:x},{:x},{},{}\n",
                kind_code(r.kind),
                r.pc.raw(),
                r.target.raw(),
                u8::from(r.taken),
                r.gap
            ));
        }
        out
    }

    /// Parses the [`BranchTrace::to_text`] format.
    ///
    /// The `# records: N` header, when present, must match the number of
    /// record lines that follow — a mismatch means the file was truncated
    /// (or padded) in transit and is rejected rather than silently
    /// replayed short. Headerless input is still accepted for
    /// compatibility with traces written before the header existed, but
    /// gets no truncation protection; re-serialize with
    /// [`BranchTrace::to_text`] to upgrade such files. Other `#` lines are
    /// comments and are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] naming the first malformed line, or the
    /// header line on a record-count mismatch.
    pub fn from_text(text: &str) -> Result<Self, ParseTraceError> {
        let mut records = Vec::new();
        let mut declared: Option<(usize, usize)> = None; // (count, header line)
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let err = |reason: &str| ParseTraceError {
                line: i + 1,
                reason: reason.to_string(),
            };
            if let Some(rest) = line.strip_prefix('#') {
                if let Some(n) = rest.trim().strip_prefix("records:") {
                    if declared.is_some() {
                        return Err(err("duplicate '# records:' header"));
                    }
                    if !records.is_empty() {
                        return Err(err("'# records:' header must precede all records"));
                    }
                    let count: usize = n
                        .trim()
                        .parse()
                        .map_err(|_| err("bad record count in '# records:' header"))?;
                    declared = Some((count, i + 1));
                }
                continue;
            }
            let parts: Vec<&str> = line.split(',').collect();
            if parts.len() != 5 {
                return Err(err("expected 5 comma-separated fields"));
            }
            let kind = kind_from_code(parts[0]).ok_or_else(|| err("unknown branch kind"))?;
            let pc = u64::from_str_radix(parts[1], 16).map_err(|_| err("bad pc"))?;
            let target = u64::from_str_radix(parts[2], 16).map_err(|_| err("bad target"))?;
            let taken = match parts[3] {
                "0" => false,
                "1" => true,
                _ => return Err(err("taken must be 0 or 1")),
            };
            let gap: u32 = parts[4].parse().map_err(|_| err("bad gap"))?;
            if kind != BranchKind::Conditional && !taken {
                return Err(err("unconditional branches must be taken"));
            }
            records.push(BranchRecord {
                pc: Addr::new(pc),
                kind,
                target: Addr::new(target),
                taken,
                gap,
            });
        }
        if let Some((count, header_line)) = declared {
            if count != records.len() {
                return Err(ParseTraceError {
                    line: header_line,
                    reason: format!(
                        "truncated trace: header declares {count} records, found {}",
                        records.len()
                    ),
                });
            }
        }
        Ok(BranchTrace { records })
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, BranchRecord> {
        self.records.iter()
    }
}

impl FromIterator<BranchRecord> for BranchTrace {
    fn from_iter<T: IntoIterator<Item = BranchRecord>>(iter: T) -> Self {
        BranchTrace {
            records: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a BranchTrace {
    type Item = &'a BranchRecord;
    type IntoIter = std::slice::Iter<'a, BranchRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SpecBenchmark;

    #[test]
    fn record_and_roundtrip() {
        let mut gen = WorkloadGenerator::new(SpecBenchmark::Xz.profile(), 3);
        let trace = BranchTrace::record(&mut gen, 500);
        assert_eq!(trace.len(), 500);
        assert!(trace.instructions() >= 500);
        let text = trace.to_text();
        let back = BranchTrace::from_text(&text).expect("roundtrip");
        assert_eq!(trace, back);
    }

    #[test]
    fn empty_trace() {
        let t = BranchTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.instructions(), 0);
        assert_eq!(BranchTrace::from_text("").unwrap(), t);
    }

    #[test]
    fn header_detects_truncation() {
        let mut gen = WorkloadGenerator::new(SpecBenchmark::Mcf.profile(), 9);
        let trace = BranchTrace::record(&mut gen, 50);
        let text = trace.to_text();
        assert!(text.starts_with("# records: 50\n"));

        // Cut the last 10 record lines: headerful parse must refuse.
        let cut: String = text.lines().take(41).map(|l| format!("{l}\n")).collect();
        let e = BranchTrace::from_text(&cut).unwrap_err();
        assert_eq!(e.line, 1, "the header line is what broke the promise");
        assert!(e.reason.contains("truncated"), "{e}");
        assert!(e.reason.contains("50") && e.reason.contains("40"), "{e}");

        // The same cut without its header parses (back-compat) — shorter.
        let headerless: String = cut.lines().skip(1).map(|l| format!("{l}\n")).collect();
        assert_eq!(BranchTrace::from_text(&headerless).unwrap().len(), 40);
    }

    #[test]
    fn header_is_strictly_validated() {
        let e = BranchTrace::from_text("# records: zz\n").unwrap_err();
        assert!(e.reason.contains("bad record count"), "{e}");
        let e = BranchTrace::from_text("# records: 1\n# records: 1\nC,10,20,1,3\n").unwrap_err();
        assert!(e.reason.contains("duplicate"), "{e}");
        let e = BranchTrace::from_text("C,10,20,1,3\n# records: 1\n").unwrap_err();
        assert!(e.reason.contains("precede"), "{e}");
        // Non-header comments stay comments.
        let t = BranchTrace::from_text("# a comment\nC,10,20,1,3\n").unwrap();
        assert_eq!(t.len(), 1);
        // An explicit zero-record header is valid.
        assert!(BranchTrace::from_text("# records: 0\n").unwrap().is_empty());
    }

    #[test]
    fn parse_errors_name_the_line() {
        let e = BranchTrace::from_text("C,10,20,1,3\nX,10,20,1,3\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.reason.contains("kind"));
        let e = BranchTrace::from_text("C,zz,20,1,3\n").unwrap_err();
        assert!(e.reason.contains("pc"));
        let e = BranchTrace::from_text("D,10,20,0,3\n").unwrap_err();
        assert!(e.reason.contains("unconditional"));
    }

    #[test]
    fn replay_is_mechanism_fair() {
        // The trace replays identically across predictors — the property the
        // module exists for.
        use bp_predictors::codec::IdentityCodec;
        use bp_predictors::tage_scl::TageScL;
        use bp_predictors::DirectionPredictor;
        let mut gen = WorkloadGenerator::new(SpecBenchmark::Cam4.profile(), 7);
        let trace = BranchTrace::record(&mut gen, 2_000);
        let run = |trace: &BranchTrace| {
            let mut p = TageScL::paper_default();
            let mut c = IdentityCodec::new();
            let mut mis = 0;
            for (i, r) in trace.iter().enumerate() {
                if r.kind.is_conditional() {
                    if p.predict(r.pc, &mut c, i as u64) != r.taken {
                        mis += 1;
                    }
                    p.update(r.pc, r.taken, &mut c, i as u64);
                }
            }
            mis
        };
        assert_eq!(run(&trace), run(&trace));
    }

    #[test]
    fn collect_from_iterator() {
        let r = BranchRecord::conditional(Addr::new(4), Addr::new(8), true, 1);
        let t: BranchTrace = std::iter::repeat_n(r, 5).collect();
        assert_eq!(t.len(), 5);
    }
}
