//! Per-benchmark branch-behaviour profiles.
//!
//! Each profile describes a benchmark through the knobs that matter to the
//! paper's experiments: the branch-class mix (how much of the dynamic branch
//! stream is strongly biased / pattern-driven / history-correlated /
//! data-dependent), the static branch working set (pressure on BTB and
//! tagged tables — this is what context switches and partitioning hurt),
//! indirect-branch behaviour, and the intrinsic ILP-limited IPC that the
//! SMT contention model uses.
//!
//! Calibration targets come from the published branch-prediction
//! characteristics of SPEC CPU2017 (and the accuracy figures quoted in the
//! paper's Figure 2): FP codes like `lbm`/`bwaves` predict at 99.9%, while
//! `mcf`/`xz`/`deepsjeng` sit in the 92–95% band.

use crate::mixes::IlpClass;

/// The SPEC CPU2017 benchmarks used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum SpecBenchmark {
    CactuBssn,
    Imagick,
    Wrf,
    Namd,
    Exchange2,
    Fotonik3d,
    Deepsjeng,
    Xz,
    Cam4,
    Xalancbmk,
    Lbm,
    Bwaves,
    Mcf,
    Roms,
    /// Synthetic OS-kernel code (syscall/interrupt handlers, scheduler):
    /// small hot working set, decent predictability. Not part of
    /// [`SpecBenchmark::ALL`]; used for privilege-change episodes.
    Kernel,
}

impl SpecBenchmark {
    /// All benchmarks, in a stable order.
    pub const ALL: [SpecBenchmark; 14] = [
        SpecBenchmark::CactuBssn,
        SpecBenchmark::Imagick,
        SpecBenchmark::Wrf,
        SpecBenchmark::Namd,
        SpecBenchmark::Exchange2,
        SpecBenchmark::Fotonik3d,
        SpecBenchmark::Deepsjeng,
        SpecBenchmark::Xz,
        SpecBenchmark::Cam4,
        SpecBenchmark::Xalancbmk,
        SpecBenchmark::Lbm,
        SpecBenchmark::Bwaves,
        SpecBenchmark::Mcf,
        SpecBenchmark::Roms,
    ];

    /// SPEC-style name (`_r` suffix as in the paper's tables).
    pub fn name(self) -> &'static str {
        match self {
            SpecBenchmark::CactuBssn => "cactuBSSN_r",
            SpecBenchmark::Imagick => "imagick_r",
            SpecBenchmark::Wrf => "wrf_r",
            SpecBenchmark::Namd => "namd_r",
            SpecBenchmark::Exchange2 => "exchange2_r",
            SpecBenchmark::Fotonik3d => "fotonik3d_r",
            SpecBenchmark::Deepsjeng => "deepsjeng_r",
            SpecBenchmark::Xz => "xz_r",
            SpecBenchmark::Cam4 => "cam4_r",
            SpecBenchmark::Xalancbmk => "xalancbmk_r",
            SpecBenchmark::Lbm => "lbm_r",
            SpecBenchmark::Bwaves => "bwaves_r",
            SpecBenchmark::Mcf => "mcf_r",
            SpecBenchmark::Roms => "roms_r",
            SpecBenchmark::Kernel => "kernel",
        }
    }

    /// The calibrated profile.
    pub fn profile(self) -> BenchmarkProfile {
        use SpecBenchmark::*;
        match self {
            // High-ILP FP codes: few, highly predictable branches.
            CactuBssn => BenchmarkProfile::new(self, IlpClass::High, 3.6, 0.05)
                .classes(0.96, 0.03, 0.005, 0.005, 0.9)
                .working_set(900)
                .indirect(0.002, 4)
                .flip(0.0015)
                .target(0.995),
            Imagick => BenchmarkProfile::new(self, IlpClass::High, 4.4, 0.11)
                .classes(0.97, 0.02, 0.005, 0.005, 0.9)
                .working_set(700)
                .indirect(0.002, 4)
                .flip(0.001)
                .target(0.996),
            Wrf => BenchmarkProfile::new(self, IlpClass::High, 3.2, 0.10)
                .classes(0.965, 0.025, 0.005, 0.005, 0.85)
                .working_set(2400)
                .indirect(0.004, 4)
                .flip(0.002)
                .target(0.988)
                .iters(3, 20),
            Namd => BenchmarkProfile::new(self, IlpClass::High, 4.1, 0.05)
                .classes(0.96, 0.03, 0.005, 0.005, 0.85)
                .working_set(1100)
                .indirect(0.002, 4)
                .flip(0.0015)
                .target(0.990),
            Exchange2 => BenchmarkProfile::new(self, IlpClass::High, 3.7, 0.17)
                .classes(0.88, 0.08, 0.02, 0.02, 0.8)
                .working_set(1400)
                .indirect(0.001, 2)
                .flip(0.003)
                .target(0.982),
            // fotonik3d: predictable but with a *large* instruction/branch
            // footprint — capacity-sensitive (the paper's Partition pain).
            Fotonik3d => BenchmarkProfile::new(self, IlpClass::High, 3.0, 0.06)
                .classes(0.97, 0.02, 0.005, 0.005, 0.9)
                .working_set(5000)
                .indirect(0.003, 4)
                .flip(0.002)
                .target(0.991)
                .iters(2, 4),
            // deepsjeng: deep-history game tree search — very context-switch
            // sensitive (lots of warm predictor state).
            Deepsjeng => BenchmarkProfile::new(self, IlpClass::High, 2.6, 0.15)
                .classes(0.85, 0.06, 0.03, 0.06, 0.72)
                .working_set(3800)
                .indirect(0.015, 8)
                .flip(0.005)
                .target(0.942)
                .iters(2, 10),
            // Low-ILP integer codes with hard branches.
            Xz => BenchmarkProfile::new(self, IlpClass::Low, 1.9, 0.15)
                .classes(0.83, 0.06, 0.04, 0.07, 0.70)
                .working_set(5200)
                .indirect(0.010, 6)
                .flip(0.005)
                .target(0.934)
                .iters(2, 8),
            Cam4 => BenchmarkProfile::new(self, IlpClass::Low, 2.0, 0.12)
                .classes(0.87, 0.08, 0.03, 0.02, 0.75)
                .working_set(3000)
                .indirect(0.006, 4)
                .flip(0.003)
                .target(0.975)
                .iters(3, 16),
            Xalancbmk => BenchmarkProfile::new(self, IlpClass::Low, 1.8, 0.22)
                .classes(0.93, 0.03, 0.02, 0.02, 0.72)
                .working_set(4200)
                .indirect(0.030, 12)
                .flip(0.003)
                .target(0.971)
                .iters(2, 8),
            Lbm => BenchmarkProfile::new(self, IlpClass::Low, 1.4, 0.01)
                .classes(0.97, 0.02, 0.005, 0.005, 0.9)
                .working_set(260)
                .indirect(0.001, 2)
                .flip(0.0005)
                .target(0.997),
            Bwaves => BenchmarkProfile::new(self, IlpClass::Low, 1.5, 0.03)
                .classes(0.97, 0.025, 0.0025, 0.0025, 0.9)
                .working_set(600)
                .indirect(0.001, 2)
                .flip(0.001)
                .target(0.995),
            Mcf => BenchmarkProfile::new(self, IlpClass::Low, 1.1, 0.19)
                .classes(0.66, 0.15, 0.11, 0.08, 0.70)
                .working_set(1900)
                .indirect(0.008, 6)
                .flip(0.006)
                .target(0.928)
                .iters(2, 12),
            Kernel => BenchmarkProfile::new(self, IlpClass::Low, 1.6, 0.18)
                .classes(0.80, 0.12, 0.04, 0.04, 0.75)
                .working_set(420)
                .indirect(0.02, 6)
                .flip(0.004)
                .target(0.965),
            Roms => BenchmarkProfile::new(self, IlpClass::Low, 2.7, 0.06)
                .classes(0.96, 0.03, 0.005, 0.005, 0.85)
                .working_set(1500)
                .indirect(0.002, 4)
                .flip(0.002)
                .target(0.992),
        }
    }
}

impl std::fmt::Display for SpecBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Branch-behaviour and ILP profile of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkProfile {
    /// Which benchmark this profiles.
    pub benchmark: SpecBenchmark,
    /// H-ILP / L-ILP classification (Table V grouping).
    pub ilp_class: IlpClass,
    /// Intrinsic ILP-limited IPC on the modeled 8-wide core with perfect
    /// branch prediction (memory behaviour folded in).
    pub base_ipc: f64,
    /// Fraction of dynamic instructions that are branches.
    pub branch_fraction: f64,
    /// Number of static branches in the hot working set.
    pub static_branches: usize,
    /// Fraction of static branches that are strongly biased.
    pub strongly_biased_frac: f64,
    /// Fraction with short learnable patterns (incl. fixed-trip loops).
    pub pattern_frac: f64,
    /// Fraction correlated with recent global history.
    pub history_frac: f64,
    /// Fraction that are effectively data-dependent noise.
    pub random_frac: f64,
    /// Taken-probability of the noise branches (their accuracy ceiling).
    pub random_bias: f64,
    /// Fraction of dynamic branches that are indirect jumps.
    pub indirect_frac: f64,
    /// Distinct targets per indirect branch.
    pub indirect_targets: usize,
    /// Probability a strongly biased branch deviates from its bias.
    pub bias_flip_prob: f64,
    /// Calibrated steady-state TAGE-SC-L direction accuracy this profile is
    /// tuned to produce (the figures the paper quotes in parentheses in
    /// Figure 2 are this class of number).
    pub target_accuracy: f64,
    /// Range of consecutive iterations an inner-loop region runs before the
    /// phase moves on. Deep counts (the default) give tight loop locality;
    /// shallow counts give the flat, footprint-heavy behaviour of codes
    /// like fotonik3d/xz whose working sets punish partitioned tables.
    pub region_iters: (u32, u32),
}

impl BenchmarkProfile {
    fn new(
        benchmark: SpecBenchmark,
        ilp_class: IlpClass,
        base_ipc: f64,
        branch_fraction: f64,
    ) -> Self {
        BenchmarkProfile {
            benchmark,
            ilp_class,
            base_ipc,
            branch_fraction,
            static_branches: 1000,
            strongly_biased_frac: 0.8,
            pattern_frac: 0.1,
            history_frac: 0.05,
            random_frac: 0.05,
            random_bias: 0.75,
            indirect_frac: 0.005,
            indirect_targets: 4,
            bias_flip_prob: 0.003,
            target_accuracy: 0.97,
            region_iters: (4, 68),
        }
    }

    fn iters(mut self, min: u32, max: u32) -> Self {
        assert!(min >= 1 && max >= min, "invalid iteration range");
        self.region_iters = (min, max);
        self
    }

    fn flip(mut self, prob: f64) -> Self {
        self.bias_flip_prob = prob;
        self
    }

    fn target(mut self, accuracy: f64) -> Self {
        self.target_accuracy = accuracy;
        self
    }

    fn classes(
        mut self,
        strongly_biased: f64,
        pattern: f64,
        history: f64,
        random: f64,
        random_bias: f64,
    ) -> Self {
        let sum = strongly_biased + pattern + history + random;
        assert!((sum - 1.0).abs() < 1e-9, "class fractions must sum to 1");
        self.strongly_biased_frac = strongly_biased;
        self.pattern_frac = pattern;
        self.history_frac = history;
        self.random_frac = random;
        self.random_bias = random_bias;
        self
    }

    fn working_set(mut self, static_branches: usize) -> Self {
        self.static_branches = static_branches;
        self
    }

    fn indirect(mut self, frac: f64, targets: usize) -> Self {
        self.indirect_frac = frac;
        self.indirect_targets = targets.max(1);
        self
    }

    /// Mean non-branch instructions between branches.
    pub fn mean_gap(&self) -> f64 {
        (1.0 / self.branch_fraction - 1.0).max(1.0)
    }

    /// A rough analytic ceiling on direction accuracy: perfect on
    /// biased/pattern/history classes, `max(p, 1-p)` on the noise class.
    pub fn accuracy_ceiling(&self) -> f64 {
        let noise_best = self.random_bias.max(1.0 - self.random_bias);
        self.strongly_biased_frac * 0.995
            + self.pattern_frac * 0.99
            + self.history_frac * 0.98
            + self.random_frac * noise_best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_are_consistent() {
        for b in SpecBenchmark::ALL {
            let p = b.profile();
            let sum = p.strongly_biased_frac + p.pattern_frac + p.history_frac + p.random_frac;
            assert!((sum - 1.0).abs() < 1e-9, "{b}: class sum {sum}");
            assert!(
                p.base_ipc > 0.5 && p.base_ipc < 8.0,
                "{b}: ipc {}",
                p.base_ipc
            );
            assert!(
                p.branch_fraction > 0.0 && p.branch_fraction < 0.5,
                "{b}: branch fraction"
            );
            assert!(p.static_branches >= 100, "{b}: working set");
            assert!(p.indirect_targets >= 1);
        }
    }

    #[test]
    fn names_match_spec_convention() {
        assert_eq!(SpecBenchmark::CactuBssn.name(), "cactuBSSN_r");
        assert_eq!(SpecBenchmark::Xalancbmk.to_string(), "xalancbmk_r");
    }

    #[test]
    fn high_ilp_benchmarks_are_faster() {
        use bp_common::stats::mean;
        let hi: Vec<f64> = SpecBenchmark::ALL
            .iter()
            .map(|b| b.profile())
            .filter(|p| p.ilp_class == IlpClass::High)
            .map(|p| p.base_ipc)
            .collect();
        let lo: Vec<f64> = SpecBenchmark::ALL
            .iter()
            .map(|b| b.profile())
            .filter(|p| p.ilp_class == IlpClass::Low)
            .map(|p| p.base_ipc)
            .collect();
        assert!(mean(&hi).unwrap() > mean(&lo).unwrap() + 1.0);
    }

    #[test]
    fn fp_codes_have_higher_accuracy_targets_than_int() {
        let lbm = SpecBenchmark::Lbm.profile().target_accuracy;
        let mcf = SpecBenchmark::Mcf.profile().target_accuracy;
        assert!(lbm > 0.99, "lbm target {lbm}");
        assert!(mcf < 0.95, "mcf target {mcf}");
        assert!(lbm > mcf);
    }

    #[test]
    fn ceilings_bound_targets_loosely() {
        // The analytic ceiling is optimistic; targets sit at or below it.
        for b in SpecBenchmark::ALL {
            let p = b.profile();
            assert!(
                p.target_accuracy <= p.accuracy_ceiling() + 0.02,
                "{b}: target {} vs ceiling {}",
                p.target_accuracy,
                p.accuracy_ceiling()
            );
        }
    }

    #[test]
    fn mean_gap_matches_branch_fraction() {
        let p = SpecBenchmark::Xalancbmk.profile();
        let g = p.mean_gap();
        assert!((g - (1.0 / 0.22 - 1.0)).abs() < 1e-9);
    }
}
