//! The paper's Table V SMT-2 workload mixes.
//!
//! Pair-wise SPEC combinations selected per the standard SMT methodology,
//! classified by the ILP of their members: H-ILP (both high), L-ILP (both
//! low), MIX (one of each).

use crate::profile::SpecBenchmark;

/// ILP class of a benchmark or mix member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IlpClass {
    /// High instruction-level parallelism.
    High,
    /// Low instruction-level parallelism.
    Low,
}

impl std::fmt::Display for IlpClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IlpClass::High => "H-ILP",
            IlpClass::Low => "L-ILP",
        })
    }
}

/// Classification of a two-thread mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MixClass {
    /// Both members high-ILP.
    HighIlp,
    /// One high, one low.
    Mixed,
    /// Both members low-ILP.
    LowIlp,
}

impl std::fmt::Display for MixClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MixClass::HighIlp => "H-ILP",
            MixClass::Mixed => "MIX",
            MixClass::LowIlp => "L-ILP",
        })
    }
}

/// One SMT-2 workload mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Mix number (1..=12, as in Table V).
    pub id: u8,
    /// The two co-running benchmarks.
    pub pair: [SpecBenchmark; 2],
}

impl Mix {
    /// The mix's class, derived from its members.
    pub fn class(&self) -> MixClass {
        use IlpClass::*;
        match (
            self.pair[0].profile().ilp_class,
            self.pair[1].profile().ilp_class,
        ) {
            (High, High) => MixClass::HighIlp,
            (Low, Low) => MixClass::LowIlp,
            _ => MixClass::Mixed,
        }
    }

    /// Table-style label, e.g. `mix1: cactuBSSN_r+imagick_r`.
    pub fn label(&self) -> String {
        format!(
            "mix{}: {}+{}",
            self.id,
            self.pair[0].name(),
            self.pair[1].name()
        )
    }
}

impl std::fmt::Display for Mix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mix{}", self.id)
    }
}

/// Table V: the twelve SMT-2 mixes.
pub const TABLE_V_MIXES: [Mix; 12] = {
    use SpecBenchmark::*;
    [
        Mix {
            id: 1,
            pair: [CactuBssn, Imagick],
        },
        Mix {
            id: 2,
            pair: [Wrf, Namd],
        },
        Mix {
            id: 3,
            pair: [Fotonik3d, Exchange2],
        },
        Mix {
            id: 4,
            pair: [Wrf, CactuBssn],
        },
        Mix {
            id: 5,
            pair: [Imagick, Xz],
        },
        Mix {
            id: 6,
            pair: [Imagick, Bwaves],
        },
        Mix {
            id: 7,
            pair: [Wrf, Mcf],
        },
        Mix {
            id: 8,
            pair: [Namd, Roms],
        },
        Mix {
            id: 9,
            pair: [Xz, Cam4],
        },
        Mix {
            id: 10,
            pair: [Cam4, Xalancbmk],
        },
        Mix {
            id: 11,
            pair: [Lbm, Bwaves],
        },
        Mix {
            id: 12,
            pair: [Cam4, Bwaves],
        },
    ]
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_mixes_with_sequential_ids() {
        assert_eq!(TABLE_V_MIXES.len(), 12);
        for (i, m) in TABLE_V_MIXES.iter().enumerate() {
            assert_eq!(m.id as usize, i + 1);
        }
    }

    #[test]
    fn classes_match_table_v_layout() {
        // Table V: mixes 1-4 are H-ILP, 5-8 are MIX, 9-12 are L-ILP.
        for m in &TABLE_V_MIXES[0..4] {
            assert_eq!(m.class(), MixClass::HighIlp, "{}", m.label());
        }
        for m in &TABLE_V_MIXES[4..8] {
            assert_eq!(m.class(), MixClass::Mixed, "{}", m.label());
        }
        for m in &TABLE_V_MIXES[8..12] {
            assert_eq!(m.class(), MixClass::LowIlp, "{}", m.label());
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(TABLE_V_MIXES[0].label(), "mix1: cactuBSSN_r+imagick_r");
        assert_eq!(TABLE_V_MIXES[6].label(), "mix7: wrf_r+mcf_r");
        assert_eq!(TABLE_V_MIXES[11].label(), "mix12: cam4_r+bwaves_r");
    }
}
