//! Property-based tests: cipher permutation properties and keys-table
//! invariants under arbitrary keys, tweaks and geometries, on the in-repo
//! deterministic harness (`bp_common::check`).

use bp_common::check::Checker;
use bp_common::{Asid, Vmid};
use bp_crypto::keys::{IndexSeed, KeysTable, KeysTableConfig};
use bp_crypto::{Llbc, Prince, Qarma64, TweakableBlockCipher, XorCipher};

/// Decrypt inverts encrypt for every cipher, key, tweak and plaintext.
#[test]
fn all_ciphers_roundtrip() {
    Checker::new("all_ciphers_roundtrip").cases(128).run(|g| {
        let (seed, pt, tweak) = (g.u64(), g.u64(), g.u64());
        let ciphers: Vec<Box<dyn TweakableBlockCipher>> = vec![
            Box::new(Qarma64::from_seed(seed)),
            Box::new(Prince::from_seed(seed)),
            Box::new(Llbc::from_seed(seed)),
            Box::new(XorCipher::new(seed)),
        ];
        for c in &ciphers {
            assert_eq!(c.decrypt(c.encrypt(pt, tweak), tweak), pt, "{}", c.name());
        }
    });
}

/// Encryption is injective on sampled pairs (a permutation cannot collide).
#[test]
fn qarma_injective_on_pairs() {
    Checker::new("qarma_injective_on_pairs")
        .cases(256)
        .run(|g| {
            let (seed, a, b, tweak) = (g.u64(), g.u64(), g.u64(), g.u64());
            if a == b {
                return;
            }
            let c = Qarma64::from_seed(seed);
            assert_ne!(c.encrypt(a, tweak), c.encrypt(b, tweak));
        });
}

/// Different tweaks give independent permutations (outputs differ for at
/// least one of a few sampled plaintexts).
#[test]
fn qarma_tweak_separation() {
    Checker::new("qarma_tweak_separation").cases(256).run(|g| {
        let (seed, t1, t2) = (g.u64(), g.u64(), g.u64());
        if t1 == t2 {
            return;
        }
        let c = Qarma64::from_seed(seed);
        let differs = (0..8u64).any(|x| c.encrypt(x, t1) != c.encrypt(x, t2));
        assert!(differs);
    });
}

/// Keys never exceed their configured width, for arbitrary valid geometry.
#[test]
fn keys_fit_width() {
    Checker::new("keys_fit_width").run(|g| {
        let entries_pow = g.u32_in(4, 13);
        let key_bits = g.u32_in(4, 20);
        let seed = g.u64();
        let cfg = KeysTableConfig::checked(1usize << entries_pow, key_bits, 40.max(key_bits), 7)
            .expect("geometry is valid by construction");
        let mut t = KeysTable::new(cfg).expect("valid config");
        let cipher = Qarma64::from_seed(seed);
        t.begin_refresh(
            &cipher,
            IndexSeed::derive(Asid::new(1), Vmid::new(2), seed),
            0,
            0,
        );
        let far = 10_000_000;
        for i in (0..cfg.entries).step_by((cfg.entries / 16).max(1)) {
            let k = t.key_at(i, far);
            assert!(key_bits == 64 || k < (1u64 << key_bits));
        }
    });
}

/// During a refresh, each entry transitions stale→fresh exactly at its
/// word's rewrite time and never flips back.
#[test]
fn refresh_is_monotone() {
    Checker::new("refresh_is_monotone").run(|g| {
        let entry = g.usize_in(0, 1024);
        let seed = g.u64();
        let cipher = Qarma64::from_seed(seed);
        let mut t = KeysTable::new(KeysTableConfig::paper_default()).expect("paper default");
        let s1 = IndexSeed::derive(Asid::new(1), Vmid::new(0), seed);
        let s2 = IndexSeed::derive(Asid::new(2), Vmid::new(0), seed ^ 1);
        t.begin_refresh(&cipher, s1, 0, 0);
        let old = t.key_at(entry, 1_000_000);
        t.begin_refresh(&cipher, s2, 999, 2_000_000);
        let new = t.key_at(entry, 3_000_000);
        let mut seen_fresh = false;
        for now in (2_000_000u64..2_000_300).step_by(7) {
            let k = t.key_at(entry, now);
            if k == new && new != old {
                seen_fresh = true;
            } else if seen_fresh && new != old {
                assert_eq!(k, new, "entry flipped back to stale");
            }
        }
        // After the refresh window it must equal the new generation.
        assert_eq!(t.key_at(entry, 2_000_400), new);
    });
}

/// Index seeds are distinct across (asid, vmid, rand) perturbations.
#[test]
fn index_seed_sensitivity() {
    Checker::new("index_seed_sensitivity").cases(256).run(|g| {
        let asid = g.u32_in(0, u32::from(u16::MAX)) as u16;
        let vmid = g.u32_in(0, u32::from(u16::MAX)) as u16;
        let r = g.u64();
        let base = IndexSeed::derive(Asid::new(asid), Vmid::new(vmid), r);
        let d1 = IndexSeed::derive(Asid::new(asid.wrapping_add(1)), Vmid::new(vmid), r);
        let d2 = IndexSeed::derive(Asid::new(asid), Vmid::new(vmid), r ^ 1);
        assert_ne!(base.raw(), d1.raw());
        assert_ne!(base.raw(), d2.raw());
    });
}
