//! Property-based tests: cipher permutation properties and keys-table
//! invariants under arbitrary keys, tweaks and geometries.

use bp_common::{Asid, Vmid};
use bp_crypto::keys::{IndexSeed, KeysTable, KeysTableConfig};
use bp_crypto::{Llbc, Prince, Qarma64, TweakableBlockCipher, XorCipher};
use proptest::prelude::*;

proptest! {
    /// Decrypt inverts encrypt for every cipher, key, tweak and plaintext.
    #[test]
    fn all_ciphers_roundtrip(seed in any::<u64>(), pt in any::<u64>(), tweak in any::<u64>()) {
        let ciphers: Vec<Box<dyn TweakableBlockCipher>> = vec![
            Box::new(Qarma64::from_seed(seed)),
            Box::new(Prince::from_seed(seed)),
            Box::new(Llbc::from_seed(seed)),
            Box::new(XorCipher::new(seed)),
        ];
        for c in &ciphers {
            prop_assert_eq!(c.decrypt(c.encrypt(pt, tweak), tweak), pt, "{}", c.name());
        }
    }

    /// Encryption is injective on sampled pairs (a permutation cannot
    /// collide).
    #[test]
    fn qarma_injective_on_pairs(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>(), tweak in any::<u64>()) {
        prop_assume!(a != b);
        let c = Qarma64::from_seed(seed);
        prop_assert_ne!(c.encrypt(a, tweak), c.encrypt(b, tweak));
    }

    /// Different tweaks give independent permutations (outputs differ for
    /// at least one of a few sampled plaintexts).
    #[test]
    fn qarma_tweak_separation(seed in any::<u64>(), t1 in any::<u64>(), t2 in any::<u64>()) {
        prop_assume!(t1 != t2);
        let c = Qarma64::from_seed(seed);
        let differs = (0..8u64).any(|x| c.encrypt(x, t1) != c.encrypt(x, t2));
        prop_assert!(differs);
    }

    /// Keys never exceed their configured width, for arbitrary geometry.
    #[test]
    fn keys_fit_width(
        entries_pow in 4u32..13,
        key_bits in 4u32..20,
        seed in any::<u64>(),
    ) {
        let cfg = KeysTableConfig {
            entries: 1usize << entries_pow,
            key_bits,
            word_bits: 40.max(key_bits),
            pipeline_fill: 7,
        };
        let mut t = KeysTable::new(cfg);
        let cipher = Qarma64::from_seed(seed);
        t.begin_refresh(&cipher, IndexSeed::derive(Asid::new(1), Vmid::new(2), seed), 0, 0);
        let far = 10_000_000;
        for i in (0..cfg.entries).step_by((cfg.entries / 16).max(1)) {
            let k = t.key_at(i, far);
            prop_assert!(key_bits == 64 || k < (1u64 << key_bits));
        }
    }

    /// During a refresh, each entry transitions stale→fresh exactly at its
    /// word's rewrite time and never flips back.
    #[test]
    fn refresh_is_monotone(entry in 0usize..1024, seed in any::<u64>()) {
        let cipher = Qarma64::from_seed(seed);
        let mut t = KeysTable::new(KeysTableConfig::paper_default());
        let s1 = IndexSeed::derive(Asid::new(1), Vmid::new(0), seed);
        let s2 = IndexSeed::derive(Asid::new(2), Vmid::new(0), seed ^ 1);
        t.begin_refresh(&cipher, s1, 0, 0);
        let old = t.key_at(entry, 1_000_000);
        t.begin_refresh(&cipher, s2, 999, 2_000_000);
        let new = t.key_at(entry, 3_000_000);
        let mut seen_fresh = false;
        for now in (2_000_000u64..2_000_300).step_by(7) {
            let k = t.key_at(entry, now);
            if k == new && new != old {
                seen_fresh = true;
            } else if seen_fresh && new != old {
                prop_assert_eq!(k, new, "entry flipped back to stale");
            }
        }
        // After the refresh window it must equal the new generation.
        prop_assert_eq!(t.key_at(entry, 2_000_400), new);
    }

    /// Index seeds are distinct across (asid, vmid, rand) perturbations.
    #[test]
    fn index_seed_sensitivity(asid in any::<u16>(), vmid in any::<u16>(), r in any::<u64>()) {
        let base = IndexSeed::derive(Asid::new(asid), Vmid::new(vmid), r);
        let d1 = IndexSeed::derive(Asid::new(asid.wrapping_add(1)), Vmid::new(vmid), r);
        let d2 = IndexSeed::derive(Asid::new(asid), Vmid::new(vmid), r ^ 1);
        prop_assert_ne!(base.raw(), d1.raw());
        prop_assert_ne!(base.raw(), d2.raw());
    }
}
