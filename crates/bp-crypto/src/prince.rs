//! PRINCE: a low-latency block cipher (Borghoff et al., ASIACRYPT 2012).
//!
//! PRINCE is the other "strong, but still ~8-cycle" cipher the paper cites as
//! a candidate for branch predictor randomization. It is included both as an
//! alternative code-book filler and as a latency reference point for the
//! Figure-2 experiment.
//!
//! PRINCE is *not* tweakable; the [`crate::TweakableBlockCipher`] impl folds
//! the tweak into the plaintext whitening (`E(x ⊕ t) ⊕ t`), which is the
//! standard LRW-lite trick used when a tweak is needed from a plain block
//! cipher in simulation contexts.
//!
//! Validated against the five published test vectors of the PRINCE paper.

use crate::TweakableBlockCipher;

/// PRINCE round constants. `RC[i] ^ RC[11 - i] = α` for all i.
const RC: [u64; 12] = [
    0x0000000000000000,
    0x13198a2e03707344,
    0xa4093822299f31d0,
    0x082efa98ec4e6c89,
    0x452821e638d01377,
    0xbe5466cf34e90c6c,
    0x7ef84f78fd955cb1,
    0x85840851f1ac43aa,
    0xc882d32f25323c54,
    0x64a51195e0e3610d,
    0xd3b5a399ca0c2399,
    0xc0ac29b7c97c50dd,
];

/// The PRINCE S-box and its inverse.
const SBOX: [u8; 16] = [
    0xB, 0xF, 0x3, 0x2, 0xA, 0xC, 0x9, 0x1, 0x6, 0x7, 0x8, 0x0, 0xE, 0x5, 0xD, 0x4,
];
const SBOX_INV: [u8; 16] = [
    0xB, 0x7, 0x3, 0x2, 0xF, 0xD, 0x8, 0x9, 0xA, 0x6, 0x4, 0x0, 0x5, 0xE, 0xC, 0x1,
];

/// ShiftRows nibble permutation (output nibble i comes from input SR[i],
/// nibble 0 being the most significant).
const SR: [usize; 16] = [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11];
const SR_INV: [usize; 16] = [0, 13, 10, 7, 4, 1, 14, 11, 8, 5, 2, 15, 12, 9, 6, 3];

fn sub_nibbles(x: u64, sbox: &[u8; 16]) -> u64 {
    let mut out = 0u64;
    for i in 0..16 {
        let n = ((x >> (60 - 4 * i)) & 0xF) as usize;
        out |= u64::from(sbox[n]) << (60 - 4 * i);
    }
    out
}

fn shift_rows(x: u64, perm: &[usize; 16]) -> u64 {
    let mut out = 0u64;
    for (i, &src) in perm.iter().enumerate() {
        let n = (x >> (60 - 4 * src)) & 0xF;
        out |= n << (60 - 4 * i);
    }
    out
}

/// One of the four 4x4 binary blocks `M0..M3`: `M_i` zeroes input bit `i`
/// of the nibble (bit 0 = most significant bit of the nibble).
fn m_block(n: u64, i: usize) -> u64 {
    n & !(1u64 << (3 - i))
}

/// Applies M̂0 or M̂1 to one 16-bit group (4 nibbles, nibble 0 most
/// significant). `offset` is 0 for M̂0 and 1 for M̂1.
fn m_hat(group: u64, offset: usize) -> u64 {
    let n = [
        (group >> 12) & 0xF,
        (group >> 8) & 0xF,
        (group >> 4) & 0xF,
        group & 0xF,
    ];
    let mut out = 0u64;
    for (row, out_shift) in (0..4).zip([12u32, 8, 4, 0]) {
        let mut acc = 0u64;
        for (k, &nk) in n.iter().enumerate() {
            acc ^= m_block(nk, (row + k + offset) % 4);
        }
        out |= acc << out_shift;
    }
    out
}

/// The involutory M' layer: diag(M̂0, M̂1, M̂1, M̂0) over the four 16-bit
/// groups of the state.
fn m_prime(x: u64) -> u64 {
    let g0 = m_hat((x >> 48) & 0xFFFF, 0);
    let g1 = m_hat((x >> 32) & 0xFFFF, 1);
    let g2 = m_hat((x >> 16) & 0xFFFF, 1);
    let g3 = m_hat(x & 0xFFFF, 0);
    (g0 << 48) | (g1 << 32) | (g2 << 16) | g3
}

/// The PRINCE block cipher with its 128-bit key `k0 ‖ k1`.
///
/// # Examples
///
/// ```
/// use bp_crypto::Prince;
/// let c = Prince::new(0, 0);
/// assert_eq!(c.encrypt_block(0), 0x818665aa0d02dfda);
/// assert_eq!(c.decrypt_block(0x818665aa0d02dfda), 0);
/// ```
// No `Debug`: key halves are key material (secret-hygiene, bp-lint
// secret-debug).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Prince {
    k0: u64,
    k1: u64,
}

impl Prince {
    /// Creates PRINCE from the two 64-bit key halves.
    pub const fn new(k0: u64, k1: u64) -> Self {
        Prince { k0, k1 }
    }

    /// Creates a cipher with both key halves derived from a seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = bp_common::rng::SplitMix64::new(seed);
        Prince::new(sm.next_u64(), sm.next_u64())
    }

    /// `k0' = (k0 ⋙ 1) ⊕ (k0 ≫ 63)`, the FX-construction output whitening key.
    fn k0_prime(&self) -> u64 {
        self.k0.rotate_right(1) ^ (self.k0 >> 63)
    }

    /// Encrypts one block (no tweak).
    pub fn encrypt_block(&self, plaintext: u64) -> u64 {
        let core_in = plaintext ^ self.k0;
        let core_out = self.core(core_in, self.k1);
        core_out ^ self.k0_prime()
    }

    /// Decrypts one block (no tweak).
    pub fn decrypt_block(&self, ciphertext: u64) -> u64 {
        // The α-reflection property: D_{(k0, k0', k1)} = E_{(k0', k0, k1 ⊕ α)}.
        let core_in = ciphertext ^ self.k0_prime();
        let core_out = self.core(core_in, self.k1 ^ RC[11]);
        core_out ^ self.k0
    }

    /// PRINCE-core: 12 rounds around the involutive middle layer.
    fn core(&self, input: u64, k1: u64) -> u64 {
        let mut s = input ^ k1 ^ RC[0];
        // Rounds 1..=5: S, M (= SR ∘ M'), add RC ⊕ k1.
        for rc in &RC[1..6] {
            s = sub_nibbles(s, &SBOX);
            s = m_prime(s);
            s = shift_rows(s, &SR);
            s ^= rc ^ k1;
        }
        // Middle: S, M', S⁻¹.
        s = sub_nibbles(s, &SBOX);
        s = m_prime(s);
        s = sub_nibbles(s, &SBOX_INV);
        // Rounds 6..=11: add RC ⊕ k1, M⁻¹ (= M'⁻¹ ∘ SR⁻¹), S⁻¹.
        for rc in &RC[6..11] {
            s ^= rc ^ k1;
            s = shift_rows(s, &SR_INV);
            s = m_prime(s);
            s = sub_nibbles(s, &SBOX_INV);
        }
        s ^ k1 ^ RC[11]
    }
}

impl TweakableBlockCipher for Prince {
    fn encrypt(&self, plaintext: u64, tweak: u64) -> u64 {
        self.encrypt_block(plaintext ^ tweak) ^ tweak
    }

    fn decrypt(&self, ciphertext: u64, tweak: u64) -> u64 {
        self.decrypt_block(ciphertext ^ tweak) ^ tweak
    }

    fn latency_cycles(&self) -> u32 {
        // Paper §I: ~8 cycles on a 4 GHz processor.
        8
    }

    fn name(&self) -> &'static str {
        "prince"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_inverse_consistent() {
        for x in 0..16u8 {
            assert_eq!(SBOX_INV[SBOX[x as usize] as usize], x);
        }
    }

    #[test]
    fn shift_rows_inverse_consistent() {
        for i in 0..16 {
            assert_eq!(SR[SR_INV[i]], i);
            assert_eq!(SR_INV[SR[i]], i);
        }
    }

    #[test]
    fn m_prime_is_involutory() {
        let mut sm = bp_common::rng::SplitMix64::new(9);
        for _ in 0..200 {
            let x = sm.next_u64();
            assert_eq!(m_prime(m_prime(x)), x);
        }
    }

    #[test]
    fn alpha_reflection_constant_property() {
        for i in 0..12 {
            assert_eq!(RC[i] ^ RC[11 - i], RC[11] ^ RC[0]);
        }
    }

    #[test]
    fn published_test_vectors() {
        // The five test vectors from the PRINCE paper (plaintext, k0, k1, ct).
        let vectors = [
            (0x0000000000000000u64, 0u64, 0u64, 0x818665aa0d02dfdau64),
            (0xffffffffffffffff, 0, 0, 0x604ae6ca03c20ada),
            (
                0x0000000000000000,
                0xffffffffffffffff,
                0,
                0x9fb51935fc3df524,
            ),
            (
                0x0000000000000000,
                0,
                0xffffffffffffffff,
                0x78a54cbe737bb7ef,
            ),
            (
                0x0123456789abcdef,
                0x0000000000000000,
                0xfedcba9876543210,
                0xae25ad3ca8fa9ccf,
            ),
        ];
        for (pt, k0, k1, ct) in vectors {
            let c = Prince::new(k0, k1);
            assert_eq!(
                c.encrypt_block(pt),
                ct,
                "pt={pt:016x} k0={k0:016x} k1={k1:016x}"
            );
            assert_eq!(c.decrypt_block(ct), pt, "decrypt of {ct:016x}");
        }
    }

    #[test]
    fn roundtrip_random() {
        let mut sm = bp_common::rng::SplitMix64::new(21);
        let c = Prince::from_seed(7);
        for _ in 0..500 {
            let pt = sm.next_u64();
            assert_eq!(c.decrypt_block(c.encrypt_block(pt)), pt);
        }
    }

    #[test]
    fn tweaked_roundtrip() {
        let mut sm = bp_common::rng::SplitMix64::new(22);
        let c = Prince::from_seed(8);
        for _ in 0..200 {
            let pt = sm.next_u64();
            let tw = sm.next_u64();
            assert_eq!(c.decrypt(c.encrypt(pt, tw), tw), pt);
        }
    }

    #[test]
    fn tweak_changes_output() {
        let c = Prince::from_seed(1);
        assert_ne!(c.encrypt(5, 1), c.encrypt(5, 2));
    }

    #[test]
    fn avalanche() {
        let c = Prince::from_seed(33);
        let mut sm = bp_common::rng::SplitMix64::new(4);
        let mut total = 0u32;
        let n = 200;
        for _ in 0..n {
            let pt = sm.next_u64();
            let bit = 1u64 << sm.next_below(64);
            total += (c.encrypt_block(pt) ^ c.encrypt_block(pt ^ bit)).count_ones();
        }
        let avg = f64::from(total) / f64::from(n);
        assert!(avg > 24.0 && avg < 40.0, "avalanche average {avg}");
    }
}
