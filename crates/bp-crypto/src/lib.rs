//! Cryptographic components of the HyBP reproduction.
//!
//! HyBP randomizes the *large* predictor tables by encrypting their set
//! indices (through a precomputed keys table, the "code book") and their
//! contents (XOR with a per-domain content key). This crate provides:
//!
//! * [`TweakableBlockCipher`] — the common 64-bit tweakable cipher interface,
//! * [`Qarma64`] — a full implementation of the QARMA-64 tweakable block
//!   cipher (Avanzi, 2017), the cipher HyBP uses to fill the code book,
//! * [`Prince`] — the PRINCE low-latency cipher (Borghoff et al., 2012),
//!   validated against the published test vectors,
//! * [`Llbc`] — a CEASER-style *linear* low-latency cipher, kept as a
//!   deliberately weak comparison point (its linearity is exploited in
//!   `bp-attacks`),
//! * [`XorCipher`] / [`IdentityCipher`] — trivial codecs for baselines,
//! * [`keys`] — the randomized index keys table ([`keys::KeysTable`]) with its
//!   non-stalling refresh timing model, [`keys::IndexSeed`] derivation and the
//!   per-domain [`keys::KeyManager`].
//!
//! # Examples
//!
//! ```
//! use bp_crypto::{Qarma64, TweakableBlockCipher};
//!
//! let cipher = Qarma64::new(0x84be85ce9804e94b, 0xec2802d4e0a488e4);
//! let ct = cipher.encrypt(0xfb623599da6e8127, 0x477d469dec0b8762);
//! assert_eq!(cipher.decrypt(ct, 0x477d469dec0b8762), 0xfb623599da6e8127);
//! ```

pub mod keys;
mod llbc;
mod prince;
mod qarma;

pub use llbc::Llbc;
pub use prince::Prince;
pub use qarma::{Qarma64, QarmaSbox};

/// A 64-bit tweakable block cipher as used by the randomization layer.
///
/// Implementations must be deterministic permutations of the 64-bit block for
/// every fixed tweak, with [`TweakableBlockCipher::decrypt`] the exact
/// inverse of [`TweakableBlockCipher::encrypt`].
///
/// The [`latency_cycles`](TweakableBlockCipher::latency_cycles) method reports
/// the *modeled hardware latency* of the cipher at the paper's 4 GHz design
/// point; the pipeline model charges this many extra front-end cycles when a
/// cipher is placed on the prediction critical path (which HyBP avoids via
/// the precomputed code book).
// Deliberately NOT `fmt::Debug`: implementors hold key material, and a
// `Debug` supertrait would force every cipher to be printable. Identify
// ciphers by `name()` instead.
pub trait TweakableBlockCipher: Send + Sync {
    /// Encrypts one 64-bit block under the given tweak.
    fn encrypt(&self, plaintext: u64, tweak: u64) -> u64;

    /// Decrypts one 64-bit block under the given tweak.
    fn decrypt(&self, ciphertext: u64, tweak: u64) -> u64;

    /// Encrypts every block in place under one shared tweak. Equivalent to
    /// calling [`encrypt`](TweakableBlockCipher::encrypt) per block — the
    /// default does exactly that — but ciphers with per-tweak key-schedule
    /// work (QARMA) override it to amortize the schedule across the batch.
    /// The key-table refresh encrypts its whole code book this way.
    fn encrypt_batch(&self, blocks: &mut [u64], tweak: u64) {
        for b in blocks.iter_mut() {
            *b = self.encrypt(*b, tweak);
        }
    }

    /// Modeled hardware latency in cycles when used inline in a pipeline.
    fn latency_cycles(&self) -> u32;

    /// Short human-readable cipher name.
    fn name(&self) -> &'static str;

    /// Whether the cipher is GF(2)-affine in its plaintext for a fixed
    /// (key, tweak) — i.e. `E(x) = A·x ⊕ b`. Linear ciphers (LLBC, XOR) are
    /// vulnerable to the cryptanalytic shortcuts of Purnal et al.; strong
    /// ciphers (QARMA, PRINCE) are not.
    fn is_linear(&self) -> bool {
        false
    }
}

/// Trivial XOR "cipher": `E(x) = x ⊕ key ⊕ tweak`.
///
/// This is the content-encoding primitive HyBP uses for table *contents*
/// (where linearity is acceptable because contents are never used for
/// indexing), and the strawman index cipher that `bp-attacks` breaks.
// No `Debug`: `key` is key material (secret-hygiene, bp-lint secret-debug).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct XorCipher {
    key: u64,
}

impl XorCipher {
    /// Creates an XOR cipher with the given key.
    pub const fn new(key: u64) -> Self {
        XorCipher { key }
    }

    /// Returns the key.
    pub const fn key(&self) -> u64 {
        self.key
    }
}

impl TweakableBlockCipher for XorCipher {
    fn encrypt(&self, plaintext: u64, tweak: u64) -> u64 {
        plaintext ^ self.key ^ tweak
    }

    fn decrypt(&self, ciphertext: u64, tweak: u64) -> u64 {
        ciphertext ^ self.key ^ tweak
    }

    fn latency_cycles(&self) -> u32 {
        1
    }

    fn name(&self) -> &'static str {
        "xor"
    }

    fn is_linear(&self) -> bool {
        true
    }
}

/// The do-nothing cipher, used by the unprotected baseline configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdentityCipher;

impl IdentityCipher {
    /// Creates the identity cipher.
    pub const fn new() -> Self {
        IdentityCipher
    }
}

impl TweakableBlockCipher for IdentityCipher {
    fn encrypt(&self, plaintext: u64, _tweak: u64) -> u64 {
        plaintext
    }

    fn decrypt(&self, ciphertext: u64, _tweak: u64) -> u64 {
        ciphertext
    }

    fn latency_cycles(&self) -> u32 {
        0
    }

    fn name(&self) -> &'static str {
        "identity"
    }

    fn is_linear(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_roundtrip() {
        let c = XorCipher::new(0xdead_beef_cafe_f00d);
        for x in [0u64, 1, u64::MAX, 0x1234_5678] {
            assert_eq!(c.decrypt(c.encrypt(x, 7), 7), x);
        }
    }

    #[test]
    fn xor_is_linear_flagged() {
        assert!(XorCipher::new(1).is_linear());
        assert!(IdentityCipher::new().is_linear());
    }

    #[test]
    fn identity_passes_through() {
        let c = IdentityCipher::new();
        assert_eq!(c.encrypt(42, 9), 42);
        assert_eq!(c.decrypt(42, 9), 42);
        assert_eq!(c.latency_cycles(), 0);
    }

    #[test]
    fn ciphers_are_object_safe() {
        let ciphers: Vec<Box<dyn TweakableBlockCipher>> =
            vec![Box::new(XorCipher::new(3)), Box::new(IdentityCipher::new())];
        for c in &ciphers {
            assert_eq!(c.decrypt(c.encrypt(5, 0), 0), 5);
        }
    }
}
