//! A CEASER-style Low-Latency Block Cipher (LLBC).
//!
//! CEASER (Qureshi, MICRO 2018) proposed a 2-cycle Feistel-like cipher whose
//! round function is composed *only* of XORs and bit shuffles — making the
//! whole cipher GF(2)-affine. Purnal et al. (S&P 2021) and Bodduna et al.
//! (CAL 2020) showed this linearity collapses its security: an attacker can
//! recover the full affine map with 64 chosen queries and then construct
//! eviction sets as if no randomization were present. The HyBP paper cites
//! exactly this result as the reason simple low-latency ciphers are
//! insufficient (§III-A).
//!
//! This module implements such a cipher faithfully to its *structure*
//! (L rounds of bit-permutation + XOR-fold + round-key addition) so that
//! `bp-attacks::linear` can demonstrate the break against a running
//! predictor, and so the evaluation can quote its 2-cycle latency.

use crate::TweakableBlockCipher;
use bp_common::rng::SplitMix64;

/// Number of rounds; CEASER's LLBC uses 4 stages folded into 2 cycles.
const ROUNDS: usize = 4;

/// A linear (GF(2)-affine) low-latency block cipher in the style of CEASER.
///
/// Every round applies a fixed bit rotation/interleave (a linear map), an
/// XOR-fold of the high half into the low half (linear), and a round-key XOR
/// (affine). The composition is therefore `E(x) = A·x ⊕ b(key, tweak)` for a
/// fixed invertible matrix `A` — exactly the weakness the attacks exploit.
///
/// # Examples
///
/// ```
/// use bp_crypto::{Llbc, TweakableBlockCipher};
/// let c = Llbc::from_seed(3);
/// let ct = c.encrypt(0x1234, 7);
/// assert_eq!(c.decrypt(ct, 7), 0x1234);
/// // Linearity: E(x) ⊕ E(y) ⊕ E(z) = E(x ⊕ y ⊕ z)
/// let (x, y, z) = (5u64, 99u64, 0xabcdu64);
/// assert_eq!(
///     c.encrypt(x, 7) ^ c.encrypt(y, 7) ^ c.encrypt(z, 7),
///     c.encrypt(x ^ y ^ z, 7)
/// );
/// ```
// No `Debug`: round keys are key material (secret-hygiene, bp-lint
// secret-debug).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Llbc {
    round_keys: [u64; ROUNDS],
}

/// The fixed linear diffusion step: rotate and fold. Invertible because the
/// fold `x ^= (x & HI_MASK) >> 32` is triangular.
fn diffuse(x: u64) -> u64 {
    let r = x.rotate_left(19);
    r ^ ((r & 0xFFFF_FFFF_0000_0000) >> 32)
}

fn diffuse_inv(x: u64) -> u64 {
    // Undo the fold first (the high half was untouched), then the rotation.
    let unfolded = x ^ ((x & 0xFFFF_FFFF_0000_0000) >> 32);
    unfolded.rotate_right(19)
}

impl Llbc {
    /// Creates the cipher from explicit round keys.
    pub const fn new(round_keys: [u64; ROUNDS]) -> Self {
        Llbc { round_keys }
    }

    /// Creates the cipher with round keys derived from a seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Llbc {
            round_keys: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl TweakableBlockCipher for Llbc {
    fn encrypt(&self, plaintext: u64, tweak: u64) -> u64 {
        let mut s = plaintext;
        for (i, &rk) in self.round_keys.iter().enumerate() {
            s = diffuse(s);
            // Tweak enters each round rotated so it diffuses like a key.
            s ^= rk ^ tweak.rotate_left(i as u32 * 13);
        }
        s
    }

    fn decrypt(&self, ciphertext: u64, tweak: u64) -> u64 {
        let mut s = ciphertext;
        for (i, &rk) in self.round_keys.iter().enumerate().rev() {
            s ^= rk ^ tweak.rotate_left(i as u32 * 13);
            s = diffuse_inv(s);
        }
        s
    }

    fn latency_cycles(&self) -> u32 {
        // CEASER's LLBC produces a ciphertext in 2 cycles (§III-A).
        2
    }

    fn name(&self) -> &'static str {
        "llbc"
    }

    fn is_linear(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diffuse_roundtrip() {
        let mut sm = SplitMix64::new(1);
        for _ in 0..500 {
            let x = sm.next_u64();
            assert_eq!(diffuse_inv(diffuse(x)), x);
        }
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let c = Llbc::from_seed(42);
        let mut sm = SplitMix64::new(2);
        for _ in 0..500 {
            let pt = sm.next_u64();
            let tw = sm.next_u64();
            assert_eq!(c.decrypt(c.encrypt(pt, tw), tw), pt);
        }
    }

    #[test]
    fn is_affine_in_plaintext() {
        // E(x ⊕ y ⊕ z) = E(x) ⊕ E(y) ⊕ E(z) for fixed tweak: the defining
        // affine identity (constants cancel in the triple XOR).
        let c = Llbc::from_seed(9);
        let mut sm = SplitMix64::new(3);
        for _ in 0..200 {
            let (x, y, z) = (sm.next_u64(), sm.next_u64(), sm.next_u64());
            let tw = sm.next_u64();
            assert_eq!(
                c.encrypt(x, tw) ^ c.encrypt(y, tw) ^ c.encrypt(z, tw),
                c.encrypt(x ^ y ^ z, tw)
            );
        }
    }

    #[test]
    fn qarma_is_not_affine() {
        // Sanity contrast: the strong cipher must violate the affine identity.
        use crate::Qarma64;
        let c = Qarma64::from_seed(5);
        let (x, y, z) = (1u64, 2u64, 4u64);
        assert_ne!(
            c.encrypt(x, 0) ^ c.encrypt(y, 0) ^ c.encrypt(z, 0),
            c.encrypt(x ^ y ^ z, 0)
        );
    }

    #[test]
    fn affine_map_recoverable_with_64_queries() {
        // The practical break: query E(0) and E(e_i) for all unit vectors,
        // then predict E(x) for arbitrary x without the key.
        let c = Llbc::from_seed(77);
        let tw = 0xdead_beef;
        let b = c.encrypt(0, tw);
        let mut cols = [0u64; 64];
        for (i, col) in cols.iter_mut().enumerate() {
            *col = c.encrypt(1u64 << i, tw) ^ b;
        }
        let predict = |x: u64| {
            let mut acc = b;
            for (i, col) in cols.iter().enumerate() {
                if (x >> i) & 1 == 1 {
                    acc ^= col;
                }
            }
            acc
        };
        let mut sm = SplitMix64::new(4);
        for _ in 0..200 {
            let x = sm.next_u64();
            assert_eq!(predict(x), c.encrypt(x, tw), "affine model must predict E");
        }
    }

    #[test]
    fn latency_is_two_cycles() {
        assert_eq!(Llbc::from_seed(0).latency_cycles(), 2);
    }
}
