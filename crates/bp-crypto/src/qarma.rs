//! QARMA-64: a lightweight tweakable block cipher (Avanzi, IACR ToSC 2017).
//!
//! QARMA is the cipher HyBP uses to fill the randomized index keys table.
//! It is a three-round Even-Mansour-like construction with a central
//! *pseudo-reflector*: `r` forward rounds, a reflector keyed with the core
//! key, and `r` backward rounds, over a 64-bit state viewed as a 4x4 array of
//! 4-bit cells.
//!
//! The implementation follows the reference description: the σ₀/σ₁/σ₂
//! S-boxes, the `τ` cell shuffle, the involutory `M = circ(0, ρ¹, ρ², ρ¹)`
//! MixColumns over cell rotations, the `h`-permutation + LFSR tweak schedule,
//! and the `(w0, k0)` key specialisation.
//!
//! **Validation note.** The build environment has no access to the published
//! QARMA test-vector table, so the implementation is validated *structurally*
//! (decrypt is the exact inverse of encrypt for all S-boxes and round counts,
//! `M` is involutory, the tweak schedule round-trips, avalanche is ≈ 32/64
//! bits) and pinned by regression vectors generated from this implementation.
//! For HyBP's purposes — a strong non-linear keyed permutation feeding the
//! code book — these are the properties that matter; see `DESIGN.md`.

use crate::TweakableBlockCipher;

/// Round constants (digits of pi), shared with PRINCE's constant list.
const C: [u64; 8] = [
    0x0000000000000000,
    0x13198A2E03707344,
    0xA4093822299F31D0,
    0x082EFA98EC4E6C89,
    0x452821E638D01377,
    0xBE5466CF34E90C6C,
    0x3F84D5B5B5470917,
    0x9216D5D98979FB1B,
];

/// The reflection constant α.
const ALPHA: u64 = 0xC0AC29B7C97C50DD;

/// Forward S-boxes σ₀, σ₁, σ₂.
const SBOX: [[u8; 16]; 3] = [
    [0, 14, 2, 10, 9, 15, 8, 11, 6, 4, 3, 7, 13, 12, 1, 5],
    [10, 13, 14, 6, 15, 7, 3, 5, 9, 8, 0, 12, 11, 1, 2, 4],
    [11, 6, 8, 15, 12, 0, 9, 14, 3, 7, 4, 5, 13, 2, 1, 10],
];

/// Inverse S-boxes.
const SBOX_INV: [[u8; 16]; 3] = [
    [0, 14, 2, 10, 9, 15, 8, 11, 6, 4, 3, 7, 13, 12, 1, 5],
    [10, 13, 14, 6, 15, 7, 3, 5, 9, 8, 0, 12, 11, 1, 2, 4],
    [5, 14, 13, 8, 10, 11, 1, 9, 2, 6, 15, 0, 4, 12, 7, 3],
];

/// Cell shuffle τ and its inverse.
const TAU: [usize; 16] = [0, 11, 6, 13, 10, 1, 12, 7, 5, 14, 3, 8, 15, 4, 9, 2];
const TAU_INV: [usize; 16] = [0, 5, 15, 10, 13, 8, 2, 7, 11, 14, 4, 1, 6, 3, 9, 12];

/// Tweak-cell permutation h and its inverse.
const H: [usize; 16] = [6, 5, 14, 15, 0, 1, 2, 3, 7, 12, 13, 4, 8, 9, 10, 11];
// Only the reference/test path inverts the tweak schedule.
#[cfg(test)]
const H_INV: [usize; 16] = [4, 5, 6, 7, 11, 1, 0, 8, 12, 13, 14, 15, 9, 10, 2, 3];

/// MixColumns matrix M4,2 = circ(0, 1, 2, 1): entry is the cell rotation
/// amount, 0 meaning "no contribution".
const M: [u8; 16] = [0, 1, 2, 1, 1, 0, 1, 2, 2, 1, 0, 1, 1, 2, 1, 0];

/// Cells the tweak-schedule LFSR is applied to.
const LFSR_CELLS: [usize; 7] = [0, 1, 3, 4, 8, 11, 13];

/// Which of the three QARMA S-boxes to use. The cipher's security margin
/// analysis in the original paper recommends [`QarmaSbox::Sigma1`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QarmaSbox {
    /// σ₀ — an involution, cheapest.
    Sigma0,
    /// σ₁ — the recommended trade-off (default).
    #[default]
    Sigma1,
    /// σ₂ — highest nonlinearity, deepest circuit.
    Sigma2,
}

impl QarmaSbox {
    const fn index(self) -> usize {
        match self {
            QarmaSbox::Sigma0 => 0,
            QarmaSbox::Sigma1 => 1,
            QarmaSbox::Sigma2 => 2,
        }
    }
}

type Cells = [u8; 16];

fn to_cells(x: u64) -> Cells {
    let mut c = [0u8; 16];
    for (i, cell) in c.iter_mut().enumerate() {
        *cell = ((x >> (60 - 4 * i)) & 0xF) as u8;
    }
    c
}

fn from_cells(c: &Cells) -> u64 {
    let mut x = 0u64;
    for (i, &cell) in c.iter().enumerate() {
        x |= u64::from(cell) << (60 - 4 * i);
    }
    x
}

/// Rotates a 4-bit cell left by `r` (1..=3).
fn rot4(x: u8, r: u8) -> u8 {
    ((x << r) | (x >> (4 - r))) & 0xF
}

/// The involutory MixColumns: every output cell is the XOR of the rotated
/// cells of its column according to `M`.
fn mix_columns(cells: &Cells) -> Cells {
    let mut out = [0u8; 16];
    for x in 0..4 {
        for y in 0..4 {
            let mut acc = 0u8;
            for j in 0..4 {
                let b = M[4 * x + j];
                if b != 0 {
                    acc ^= rot4(cells[4 * j + y], b);
                }
            }
            out[4 * x + y] = acc;
        }
    }
    out
}

/// Tweak-schedule LFSR: (b3, b2, b1, b0) -> (b0 ^ b1, b3, b2, b1).
fn lfsr(x: u8) -> u8 {
    let b0 = x & 1;
    let b1 = (x >> 1) & 1;
    let b2 = (x >> 2) & 1;
    let b3 = (x >> 3) & 1;
    ((b0 ^ b1) << 3) | (b3 << 2) | (b2 << 1) | b1
}

/// Inverse of [`lfsr`].
#[cfg(test)]
fn lfsr_inv(x: u8) -> u8 {
    let n0 = x & 1;
    let n1 = (x >> 1) & 1;
    let n2 = (x >> 2) & 1;
    let n3 = (x >> 3) & 1;
    // forward: n3 = b0^b1, n2 = b3, n1 = b2, n0 = b1
    let b1 = n0;
    let b2 = n1;
    let b3 = n2;
    let b0 = n3 ^ b1;
    (b3 << 3) | (b2 << 2) | (b1 << 1) | b0
}

fn forward_update_tweak(tweak: u64) -> u64 {
    let cell = to_cells(tweak);
    let mut perm = [0u8; 16];
    for i in 0..16 {
        perm[i] = cell[H[i]];
    }
    for &i in &LFSR_CELLS {
        perm[i] = lfsr(perm[i]);
    }
    from_cells(&perm)
}

/// Inverse of [`forward_update_tweak`]. The schedule builder only walks the
/// tweak forward, so this survives purely as the reference-path inverse the
/// equivalence tests exercise.
#[cfg(test)]
fn backward_update_tweak(tweak: u64) -> u64 {
    let mut cell = to_cells(tweak);
    for &i in &LFSR_CELLS {
        cell[i] = lfsr_inv(cell[i]);
    }
    let mut perm = [0u8; 16];
    for i in 0..16 {
        perm[i] = cell[H_INV[i]];
    }
    from_cells(&perm)
}

// ---- Packed-domain round primitives ------------------------------------
//
// The cipher state stays a plain `u64` through every round: SubCells is
// eight byte-table lookups, the tau shuffles are precomputed per-byte
// scatter tables, and MixColumns is a handful of shifts and masks. The
// arithmetic is bit-identical to the 16-cell reference form (the regression
// vectors and the `packed_rounds_match_cell_reference` test pin this); it
// exists because the per-round `to_cells`/`from_cells` round-trips dominated
// the encryption cost.

const MASK_LO1: u64 = 0x1111_1111_1111_1111;
const MASK_LO2: u64 = 0x3333_3333_3333_3333;
const MASK_HI1: u64 = 0xEEEE_EEEE_EEEE_EEEE;
const MASK_HI2: u64 = 0xCCCC_CCCC_CCCC_CCCC;

/// Rotates every 4-bit cell of `x` left by 1.
fn rot_cells_1(x: u64) -> u64 {
    ((x << 1) & MASK_HI1) | ((x >> 3) & MASK_LO1)
}

/// Rotates every 4-bit cell of `x` left by 2.
fn rot_cells_2(x: u64) -> u64 {
    ((x << 2) & MASK_HI2) | ((x >> 2) & MASK_LO2)
}

/// Packed MixColumns. Rows of the 4x4 cell array are contiguous 16-bit
/// lanes of the packed word, so `M = circ(0, rho1, rho2, rho1)` becomes:
/// rotate all cells by 1 and 2 at once, then recombine whole rows.
fn mix_columns_packed(x: u64) -> u64 {
    let r1 = rot_cells_1(x);
    let r2 = rot_cells_2(x);
    let (a1, b1, c1, d1) = (
        r1 >> 48,
        (r1 >> 32) & 0xFFFF,
        (r1 >> 16) & 0xFFFF,
        r1 & 0xFFFF,
    );
    let (a2, b2, c2, d2) = (
        r2 >> 48,
        (r2 >> 32) & 0xFFFF,
        (r2 >> 16) & 0xFFFF,
        r2 & 0xFFFF,
    );
    ((b1 ^ c2 ^ d1) << 48) | ((a1 ^ c1 ^ d2) << 32) | ((a2 ^ b1 ^ d1) << 16) | (a1 ^ b2 ^ c1)
}

/// Per-byte scatter tables realising a 16-cell permutation
/// `out[i] = cell[P[i]]` on the packed word: entry `[p][v]` is the permuted
/// contribution of source byte `p` (holding cells `2p` and `2p+1`) with
/// value `v`; applying the permutation is 8 lookups OR-ed together.
const fn scatter_tables(perm: [usize; 16]) -> [[u64; 256]; 8] {
    let mut t = [[0u64; 256]; 8];
    let mut p = 0;
    while p < 8 {
        let mut v = 0;
        while v < 256 {
            let hi = (v >> 4) as u64;
            let lo = (v & 0xF) as u64;
            let mut out = 0u64;
            let mut i = 0;
            while i < 16 {
                if perm[i] == 2 * p {
                    out |= hi << (60 - 4 * i);
                }
                if perm[i] == 2 * p + 1 {
                    out |= lo << (60 - 4 * i);
                }
                i += 1;
            }
            t[p][v] = out;
            v += 1;
        }
        p += 1;
    }
    t
}

static TAU_SCATTER: [[u64; 256]; 8] = scatter_tables(TAU);
static TAU_INV_SCATTER: [[u64; 256]; 8] = scatter_tables(TAU_INV);

fn permute_cells(x: u64, t: &[[u64; 256]; 8]) -> u64 {
    t[0][(x >> 56) as usize]
        | t[1][((x >> 48) & 0xFF) as usize]
        | t[2][((x >> 40) & 0xFF) as usize]
        | t[3][((x >> 32) & 0xFF) as usize]
        | t[4][((x >> 24) & 0xFF) as usize]
        | t[5][((x >> 16) & 0xFF) as usize]
        | t[6][((x >> 8) & 0xFF) as usize]
        | t[7][(x & 0xFF) as usize]
}

/// A 4-bit S-box applied to both nibbles of a byte.
const fn sbox_byte_table(s: &[u8; 16]) -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut v = 0;
    while v < 256 {
        t[v] = (s[v >> 4] << 4) | s[v & 0xF];
        v += 1;
    }
    t
}

static SBOX_BYTES: [[u8; 256]; 3] = [
    sbox_byte_table(&SBOX[0]),
    sbox_byte_table(&SBOX[1]),
    sbox_byte_table(&SBOX[2]),
];
static SBOX_INV_BYTES: [[u8; 256]; 3] = [
    sbox_byte_table(&SBOX_INV[0]),
    sbox_byte_table(&SBOX_INV[1]),
    sbox_byte_table(&SBOX_INV[2]),
];

fn sub_cells_packed(x: u64, t: &[u8; 256]) -> u64 {
    let b = x.to_be_bytes();
    u64::from_be_bytes([
        t[b[0] as usize],
        t[b[1] as usize],
        t[b[2] as usize],
        t[b[3] as usize],
        t[b[4] as usize],
        t[b[5] as usize],
        t[b[6] as usize],
        t[b[7] as usize],
    ])
}

/// One forward round: AddRoundTweakey, then (for full rounds) ShuffleCells
/// and MixColumns, then SubCells.
fn forward(is: u64, tweakey: u64, full_round: bool, sbox: &[u8; 256]) -> u64 {
    let mut is = is ^ tweakey;
    if full_round {
        is = mix_columns_packed(permute_cells(is, &TAU_SCATTER));
    }
    sub_cells_packed(is, sbox)
}

/// One backward round: inverse SubCells, then (for full rounds) inverse
/// MixColumns (M is involutory) and inverse ShuffleCells, then
/// AddRoundTweakey.
fn backward(is: u64, tweakey: u64, full_round: bool, sbox_inv: &[u8; 256]) -> u64 {
    let mut is = sub_cells_packed(is, sbox_inv);
    if full_round {
        is = permute_cells(mix_columns_packed(is), &TAU_INV_SCATTER);
    }
    is ^ tweakey
}

/// The keyed central reflector.
fn pseudo_reflect(is: u64, key: u64) -> u64 {
    permute_cells(
        mix_columns_packed(permute_cells(is, &TAU_SCATTER)) ^ key,
        &TAU_INV_SCATTER,
    )
}

/// Precomputed round material for one `(key, tweak)` pair: the whitening
/// keys plus every round tweakey of the forward pass, the reflector key and
/// the backward pass. Building one walks the tweak schedule exactly once;
/// applying it to a block touches no schedule state at all — which is what
/// makes [`TweakableBlockCipher::encrypt_batch`] (a code-book refresh
/// encrypts hundreds of words under one constant tweak) cheap.
// No `Debug`: round tweakeys are key material (secret-hygiene, bp-lint
// secret-debug).
struct Schedule {
    rounds: usize,
    sbox: usize,
    in_white: u64,
    out_white: u64,
    fwd: [u64; 8],
    mid_fwd: u64,
    reflect: u64,
    mid_bwd: u64,
    bwd: [u64; 8],
}

impl Schedule {
    // Indexing C by the round counter matches the QARMA specification.
    #[allow(clippy::needless_range_loop)]
    fn build(
        rounds: usize,
        sbox: usize,
        in_white: u64,
        out_white: u64,
        k0: u64,
        k1: u64,
        mut tweak: u64,
    ) -> Self {
        let mut fwd = [0u64; 8];
        let mut bwd = [0u64; 8];
        for i in 0..rounds {
            fwd[i] = k0 ^ tweak ^ C[i];
            bwd[i] = fwd[i] ^ ALPHA;
            tweak = forward_update_tweak(tweak);
        }
        Schedule {
            rounds,
            sbox,
            in_white,
            out_white,
            fwd,
            mid_fwd: out_white ^ tweak,
            reflect: k1,
            mid_bwd: in_white ^ tweak,
            bwd,
        }
    }

    fn apply(&self, block: u64) -> u64 {
        let sb = &SBOX_BYTES[self.sbox];
        let sbi = &SBOX_INV_BYTES[self.sbox];
        let mut is = block ^ self.in_white;
        for i in 0..self.rounds {
            is = forward(is, self.fwd[i], i != 0, sb);
        }
        is = forward(is, self.mid_fwd, true, sb);
        is = pseudo_reflect(is, self.reflect);
        is = backward(is, self.mid_bwd, true, sbi);
        for i in (0..self.rounds).rev() {
            is = backward(is, self.bwd[i], i != 0, sbi);
        }
        is ^ self.out_white
    }
}

/// The orthomorphism `o(x) = (x ⋙ 1) ⊕ (x ≫ 63)` used by the key schedule.
fn ortho(w: u64) -> u64 {
    w.rotate_right(1) ^ (w >> 63)
}

/// QARMA-64 tweakable block cipher.
///
/// # Examples
///
/// ```
/// use bp_crypto::{Qarma64, QarmaSbox, TweakableBlockCipher};
///
/// // Published test vector (σ₁, r = 7).
/// let c = Qarma64::with_params(0x84be85ce9804e94b, 0xec2802d4e0a488e4, QarmaSbox::Sigma1, 7);
/// let ct = c.encrypt(0xfb623599da6e8127, 0x477d469dec0b8762);
/// assert_eq!(c.decrypt(ct, 0x477d469dec0b8762), 0xfb623599da6e8127);
/// ```
// No `Debug`: round keys are key material (secret-hygiene, bp-lint
// secret-debug).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Qarma64 {
    w0: u64,
    k0: u64,
    /// `o(w0)`, precomputed at key install.
    w1: u64,
    /// `M . k0`, the decryption reflector key, precomputed at key install.
    dec_k1: u64,
    sbox: QarmaSbox,
    rounds: usize,
}

impl Qarma64 {
    /// Default round count (the paper's recommended r for QARMA-64).
    pub const DEFAULT_ROUNDS: usize = 7;

    /// Creates QARMA-64 with the recommended σ₁ S-box and r = 7.
    ///
    /// `w0` is the whitening key half and `k0` the core key half of the
    /// 128-bit master key `w0 ‖ k0`.
    pub fn new(w0: u64, k0: u64) -> Self {
        Self::with_params(w0, k0, QarmaSbox::Sigma1, Self::DEFAULT_ROUNDS)
    }

    /// Creates QARMA-64 with an explicit S-box choice and round count.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is 0 or greater than 8 (the round-constant table).
    pub fn with_params(w0: u64, k0: u64, sbox: QarmaSbox, rounds: usize) -> Self {
        assert!(rounds >= 1 && rounds <= C.len(), "rounds must be in 1..=8");
        Qarma64 {
            w0,
            k0,
            w1: ortho(w0),
            dec_k1: from_cells(&mix_columns(&to_cells(k0))),
            sbox,
            rounds,
        }
    }

    /// Creates a cipher from a 128-bit key given as two halves derived from a
    /// seed, for simulation convenience.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = bp_common::rng::SplitMix64::new(seed);
        Qarma64::new(sm.next_u64(), sm.next_u64())
    }

    /// The encryption schedule for one tweak.
    fn enc_schedule(&self, tweak: u64) -> Schedule {
        Schedule::build(
            self.rounds,
            self.sbox.index(),
            self.w0,
            self.w1,
            self.k0,
            self.k0,
            tweak,
        )
    }

    /// The decryption schedule: encryption with the specialized inverse key
    /// (swap w0/w1, replace k0 by k0 ^ alpha, reflect with M.k0).
    fn dec_schedule(&self, tweak: u64) -> Schedule {
        Schedule::build(
            self.rounds,
            self.sbox.index(),
            self.w1,
            self.w0,
            self.k0 ^ ALPHA,
            self.dec_k1,
            tweak,
        )
    }
}

impl TweakableBlockCipher for Qarma64 {
    fn encrypt(&self, plaintext: u64, tweak: u64) -> u64 {
        self.enc_schedule(tweak).apply(plaintext)
    }

    fn decrypt(&self, ciphertext: u64, tweak: u64) -> u64 {
        self.dec_schedule(tweak).apply(ciphertext)
    }

    fn encrypt_batch(&self, blocks: &mut [u64], tweak: u64) {
        // One schedule walk for the whole batch; a code-book refresh
        // encrypts every word under the same seed tweak.
        let sched = self.enc_schedule(tweak);
        for b in blocks.iter_mut() {
            *b = sched.apply(*b);
        }
    }

    fn latency_cycles(&self) -> u32 {
        // Paper §I/§V-A: ~8 cycles for QARMA at a 4 GHz design point.
        8
    }

    fn name(&self) -> &'static str {
        "qarma-64"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TV_W0: u64 = 0x84be85ce9804e94b;
    const TV_K0: u64 = 0xec2802d4e0a488e4;
    const TV_TWEAK: u64 = 0x477d469dec0b8762;
    const TV_PT: u64 = 0xfb623599da6e8127;

    #[test]
    fn sbox_inverses_are_consistent() {
        for s in 0..3 {
            for x in 0..16u8 {
                assert_eq!(SBOX_INV[s][SBOX[s][x as usize] as usize], x, "sbox {s}");
            }
        }
    }

    #[test]
    fn tau_and_h_are_permutations_with_correct_inverses() {
        for i in 0..16 {
            assert_eq!(TAU[TAU_INV[i]], i);
            assert_eq!(TAU_INV[TAU[i]], i);
            assert_eq!(H[H_INV[i]], i);
            assert_eq!(H_INV[H[i]], i);
        }
    }

    #[test]
    fn cells_roundtrip() {
        for x in [0u64, u64::MAX, 0x0123_4567_89AB_CDEF, TV_PT] {
            assert_eq!(from_cells(&to_cells(x)), x);
        }
    }

    #[test]
    fn mix_columns_is_involutory() {
        let mut sm = bp_common::rng::SplitMix64::new(5);
        for _ in 0..100 {
            let x = to_cells(sm.next_u64());
            assert_eq!(mix_columns(&mix_columns(&x)), x);
        }
    }

    #[test]
    fn lfsr_roundtrip() {
        for x in 0..16u8 {
            assert_eq!(lfsr_inv(lfsr(x)), x);
            assert_eq!(lfsr(lfsr_inv(x)), x);
        }
    }

    #[test]
    fn lfsr_has_full_period_on_nonzero() {
        // A maximal 4-bit LFSR cycles through all 15 non-zero states.
        let mut x = 1u8;
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..15 {
            assert!(seen.insert(x));
            x = lfsr(x);
        }
        assert_eq!(x, 1);
        assert_eq!(lfsr(0), 0);
    }

    #[test]
    fn tweak_update_roundtrip() {
        let mut sm = bp_common::rng::SplitMix64::new(11);
        for _ in 0..200 {
            let t = sm.next_u64();
            assert_eq!(backward_update_tweak(forward_update_tweak(t)), t);
        }
    }

    // ---- Cell-domain reference implementation --------------------------
    //
    // The straightforward 16-cell form of the round functions, as the spec
    // writes them. The hot path uses the packed-u64 forms above; these exist
    // solely so `packed_rounds_match_cell_reference` can pin the two against
    // each other.

    fn ref_forward(is: u64, tweakey: u64, full_round: bool, sbox: usize) -> u64 {
        let is = is ^ tweakey;
        let mut cell = to_cells(is);
        if full_round {
            let mut perm = [0u8; 16];
            for i in 0..16 {
                perm[i] = cell[TAU[i]];
            }
            cell = mix_columns(&perm);
        }
        for c in cell.iter_mut() {
            *c = SBOX[sbox][*c as usize];
        }
        from_cells(&cell)
    }

    fn ref_backward(is: u64, tweakey: u64, full_round: bool, sbox: usize) -> u64 {
        let mut cell = to_cells(is);
        for c in cell.iter_mut() {
            *c = SBOX_INV[sbox][*c as usize];
        }
        if full_round {
            cell = mix_columns(&cell);
            let mut perm = [0u8; 16];
            for i in 0..16 {
                perm[i] = cell[TAU_INV[i]];
            }
            cell = perm;
        }
        from_cells(&cell) ^ tweakey
    }

    fn ref_pseudo_reflect(is: u64, key: u64) -> u64 {
        let cell = to_cells(is);
        let mut perm = [0u8; 16];
        for i in 0..16 {
            perm[i] = cell[TAU[i]];
        }
        let mut mixed = mix_columns(&perm);
        for (i, c) in mixed.iter_mut().enumerate() {
            *c ^= ((key >> (60 - 4 * i)) & 0xF) as u8;
        }
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = mixed[TAU_INV[i]];
        }
        from_cells(&out)
    }

    /// The full cipher in cell-domain reference form, walking the tweak
    /// forward and backward exactly as the spec does.
    fn ref_encrypt(c: &Qarma64, plaintext: u64, mut tweak: u64) -> u64 {
        let s = c.sbox.index();
        let (w0, k0) = (c.w0, c.k0);
        let w1 = ortho(w0);
        let mut is = plaintext ^ w0;
        for i in 0..c.rounds {
            is = ref_forward(is, k0 ^ tweak ^ C[i], i != 0, s);
            tweak = forward_update_tweak(tweak);
        }
        is = ref_forward(is, w1 ^ tweak, true, s);
        is = ref_pseudo_reflect(is, k0);
        is = ref_backward(is, w0 ^ tweak, true, s);
        for i in (0..c.rounds).rev() {
            tweak = backward_update_tweak(tweak);
            is = ref_backward(is, k0 ^ tweak ^ C[i] ^ ALPHA, i != 0, s);
        }
        is ^ w1
    }

    #[test]
    fn packed_rounds_match_cell_reference() {
        let mut sm = bp_common::rng::SplitMix64::new(23);
        for sbox in [QarmaSbox::Sigma0, QarmaSbox::Sigma1, QarmaSbox::Sigma2] {
            for rounds in [1, 4, 7, 8] {
                let c = Qarma64::with_params(sm.next_u64(), sm.next_u64(), sbox, rounds);
                for _ in 0..50 {
                    let (pt, tw) = (sm.next_u64(), sm.next_u64());
                    assert_eq!(
                        c.encrypt(pt, tw),
                        ref_encrypt(&c, pt, tw),
                        "packed/reference divergence: {sbox:?} r={rounds}"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_primitives_match_cell_forms() {
        let mut sm = bp_common::rng::SplitMix64::new(29);
        for _ in 0..200 {
            let x = sm.next_u64();
            let tk = sm.next_u64();
            // τ and τ⁻¹ scatter tables against direct cell shuffles.
            let cell = to_cells(x);
            let mut tau_ref = [0u8; 16];
            let mut tau_inv_ref = [0u8; 16];
            for i in 0..16 {
                tau_ref[i] = cell[TAU[i]];
                tau_inv_ref[i] = cell[TAU_INV[i]];
            }
            assert_eq!(permute_cells(x, &TAU_SCATTER), from_cells(&tau_ref));
            assert_eq!(permute_cells(x, &TAU_INV_SCATTER), from_cells(&tau_inv_ref));
            // Packed MixColumns against the cell-array form.
            assert_eq!(mix_columns_packed(x), from_cells(&mix_columns(&cell)));
            // Round functions for both full and short rounds, every S-box.
            for s in 0..3 {
                for full in [false, true] {
                    assert_eq!(
                        forward(x, tk, full, &SBOX_BYTES[s]),
                        ref_forward(x, tk, full, s)
                    );
                    assert_eq!(
                        backward(x, tk, full, &SBOX_INV_BYTES[s]),
                        ref_backward(x, tk, full, s)
                    );
                }
            }
            assert_eq!(pseudo_reflect(x, tk), ref_pseudo_reflect(x, tk));
        }
    }

    #[test]
    fn encrypt_batch_matches_per_block_encrypt() {
        use crate::TweakableBlockCipher;
        let c = Qarma64::with_params(TV_W0, TV_K0, QarmaSbox::Sigma1, 7);
        let mut sm = bp_common::rng::SplitMix64::new(31);
        let original: Vec<u64> = (0..257).map(|_| sm.next_u64()).collect();
        let mut batch = original.clone();
        c.encrypt_batch(&mut batch, TV_TWEAK);
        for (b, o) in batch.iter().zip(&original) {
            assert_eq!(*b, c.encrypt(*o, TV_TWEAK));
        }
    }

    #[test]
    fn regression_vectors() {
        // Pinned outputs of this implementation (see the module-level
        // validation note). These guard against accidental changes to the
        // S-boxes, permutations, schedule or round structure.
        let expected: [[u64; 3]; 3] = [
            // r = 5, 6, 7
            [0x7a3eded1ea33c6cb, 0x259814aea1ecfdf7, 0xd9aceb2eb2c00bab], // σ0
            [0x9a28b6046cf03d0d, 0x8900dc0212b06cf3, 0x31a0e755c950c441], // σ1
            [0x7ab76b43b4abc682, 0xeabd6713dede2976, 0xd0bb103361f084f5], // σ2
        ];
        let sboxes = [QarmaSbox::Sigma0, QarmaSbox::Sigma1, QarmaSbox::Sigma2];
        for (si, &sbox) in sboxes.iter().enumerate() {
            for (ri, r) in (5..=7).enumerate() {
                let c = Qarma64::with_params(TV_W0, TV_K0, sbox, r);
                assert_eq!(
                    c.encrypt(TV_PT, TV_TWEAK),
                    expected[si][ri],
                    "sbox σ{si}, r={r}"
                );
            }
        }
    }

    #[test]
    fn output_distribution_is_balanced() {
        // Encrypting a counter sequence must produce ~uniform low bits: each
        // of 16 buckets of the low 4 bits gets 1/16 ± 25% of 4096 samples.
        let c = Qarma64::new(TV_W0, TV_K0);
        let mut buckets = [0u32; 16];
        for i in 0..4096u64 {
            buckets[(c.encrypt(i, 0) & 0xF) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((192..=320).contains(&b), "bucket {i} count {b}");
        }
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let mut sm = bp_common::rng::SplitMix64::new(77);
        for sbox in [QarmaSbox::Sigma0, QarmaSbox::Sigma1, QarmaSbox::Sigma2] {
            let c = Qarma64::with_params(sm.next_u64(), sm.next_u64(), sbox, 7);
            for _ in 0..200 {
                let pt = sm.next_u64();
                let tw = sm.next_u64();
                assert_eq!(c.decrypt(c.encrypt(pt, tw), tw), pt);
            }
        }
    }

    #[test]
    fn different_tweaks_give_different_ciphertexts() {
        let c = Qarma64::new(TV_W0, TV_K0);
        let a = c.encrypt(TV_PT, 1);
        let b = c.encrypt(TV_PT, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = Qarma64::new(1, 2).encrypt(TV_PT, 0);
        let b = Qarma64::new(3, 4).encrypt(TV_PT, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn avalanche_on_plaintext_bitflip() {
        // A strong cipher flips close to half the output bits for a 1-bit
        // input change; require at least 16 of 64 on average.
        let c = Qarma64::new(TV_W0, TV_K0);
        let mut total = 0u32;
        let n = 200;
        let mut sm = bp_common::rng::SplitMix64::new(3);
        for _ in 0..n {
            let pt = sm.next_u64();
            let bit = 1u64 << sm.next_below(64);
            total += (c.encrypt(pt, 0) ^ c.encrypt(pt ^ bit, 0)).count_ones();
        }
        let avg = f64::from(total) / f64::from(n);
        assert!(avg > 24.0 && avg < 40.0, "avalanche average {avg}");
    }

    #[test]
    #[should_panic(expected = "rounds")]
    fn zero_rounds_rejected() {
        let _ = Qarma64::with_params(0, 0, QarmaSbox::Sigma1, 0);
    }
}
